/root/repo/target/release/deps/sdx_bench-ece59f4a555d7402.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsdx_bench-ece59f4a555d7402.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsdx_bench-ece59f4a555d7402.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
