/root/repo/target/release/deps/sdx_cli-20eb32ba9b2fe27c.d: src/bin/sdx-cli.rs

/root/repo/target/release/deps/sdx_cli-20eb32ba9b2fe27c: src/bin/sdx-cli.rs

src/bin/sdx-cli.rs:
