/root/repo/target/release/deps/fig7-4c7a2b6b11fe446b.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-4c7a2b6b11fe446b: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
