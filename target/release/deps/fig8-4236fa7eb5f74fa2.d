/root/repo/target/release/deps/fig8-4236fa7eb5f74fa2.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-4236fa7eb5f74fa2: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
