/root/repo/target/release/deps/fig5a-99560c7b086ed18a.d: crates/bench/src/bin/fig5a.rs

/root/repo/target/release/deps/fig5a-99560c7b086ed18a: crates/bench/src/bin/fig5a.rs

crates/bench/src/bin/fig5a.rs:

# env-dep:CARGO=/root/.rustup/toolchains/stable-x86_64-unknown-linux-gnu/bin/cargo
