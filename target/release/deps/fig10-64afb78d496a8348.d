/root/repo/target/release/deps/fig10-64afb78d496a8348.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-64afb78d496a8348: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
