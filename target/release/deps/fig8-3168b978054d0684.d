/root/repo/target/release/deps/fig8-3168b978054d0684.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-3168b978054d0684: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
