/root/repo/target/release/deps/sdx_analyze-b9094380fa0e03b6.d: crates/analyze/src/lib.rs crates/analyze/src/conflict.rs crates/analyze/src/loops.rs crates/analyze/src/shadow.rs crates/analyze/src/vnh.rs

/root/repo/target/release/deps/libsdx_analyze-b9094380fa0e03b6.rlib: crates/analyze/src/lib.rs crates/analyze/src/conflict.rs crates/analyze/src/loops.rs crates/analyze/src/shadow.rs crates/analyze/src/vnh.rs

/root/repo/target/release/deps/libsdx_analyze-b9094380fa0e03b6.rmeta: crates/analyze/src/lib.rs crates/analyze/src/conflict.rs crates/analyze/src/loops.rs crates/analyze/src/shadow.rs crates/analyze/src/vnh.rs

crates/analyze/src/lib.rs:
crates/analyze/src/conflict.rs:
crates/analyze/src/loops.rs:
crates/analyze/src/shadow.rs:
crates/analyze/src/vnh.rs:
