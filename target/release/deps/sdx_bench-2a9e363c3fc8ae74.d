/root/repo/target/release/deps/sdx_bench-2a9e363c3fc8ae74.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsdx_bench-2a9e363c3fc8ae74.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsdx_bench-2a9e363c3fc8ae74.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
