/root/repo/target/release/deps/sdx_analyze-0c1cb2d5855cb91b.d: crates/analyze/src/lib.rs crates/analyze/src/conflict.rs crates/analyze/src/loops.rs crates/analyze/src/shadow.rs crates/analyze/src/vnh.rs

/root/repo/target/release/deps/libsdx_analyze-0c1cb2d5855cb91b.rlib: crates/analyze/src/lib.rs crates/analyze/src/conflict.rs crates/analyze/src/loops.rs crates/analyze/src/shadow.rs crates/analyze/src/vnh.rs

/root/repo/target/release/deps/libsdx_analyze-0c1cb2d5855cb91b.rmeta: crates/analyze/src/lib.rs crates/analyze/src/conflict.rs crates/analyze/src/loops.rs crates/analyze/src/shadow.rs crates/analyze/src/vnh.rs

crates/analyze/src/lib.rs:
crates/analyze/src/conflict.rs:
crates/analyze/src/loops.rs:
crates/analyze/src/shadow.rs:
crates/analyze/src/vnh.rs:
