/root/repo/target/release/deps/sdx-c3f7eb620bcd8301.d: src/lib.rs src/scenario.rs

/root/repo/target/release/deps/libsdx-c3f7eb620bcd8301.rlib: src/lib.rs src/scenario.rs

/root/repo/target/release/deps/libsdx-c3f7eb620bcd8301.rmeta: src/lib.rs src/scenario.rs

src/lib.rs:
src/scenario.rs:
