/root/repo/target/release/deps/fig7-3ee06d8171ce75c8.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-3ee06d8171ce75c8: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
