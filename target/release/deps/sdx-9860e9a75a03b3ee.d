/root/repo/target/release/deps/sdx-9860e9a75a03b3ee.d: src/lib.rs src/scenario.rs

/root/repo/target/release/deps/libsdx-9860e9a75a03b3ee.rlib: src/lib.rs src/scenario.rs

/root/repo/target/release/deps/libsdx-9860e9a75a03b3ee.rmeta: src/lib.rs src/scenario.rs

src/lib.rs:
src/scenario.rs:
