/root/repo/target/release/deps/fig6-91f3397fbb88f160.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-91f3397fbb88f160: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
