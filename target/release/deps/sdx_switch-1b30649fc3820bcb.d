/root/repo/target/release/deps/sdx_switch-1b30649fc3820bcb.d: crates/switch/src/lib.rs crates/switch/src/arp.rs crates/switch/src/frame.rs crates/switch/src/openflow.rs crates/switch/src/pcap.rs crates/switch/src/router.rs crates/switch/src/switch.rs crates/switch/src/table.rs

/root/repo/target/release/deps/libsdx_switch-1b30649fc3820bcb.rlib: crates/switch/src/lib.rs crates/switch/src/arp.rs crates/switch/src/frame.rs crates/switch/src/openflow.rs crates/switch/src/pcap.rs crates/switch/src/router.rs crates/switch/src/switch.rs crates/switch/src/table.rs

/root/repo/target/release/deps/libsdx_switch-1b30649fc3820bcb.rmeta: crates/switch/src/lib.rs crates/switch/src/arp.rs crates/switch/src/frame.rs crates/switch/src/openflow.rs crates/switch/src/pcap.rs crates/switch/src/router.rs crates/switch/src/switch.rs crates/switch/src/table.rs

crates/switch/src/lib.rs:
crates/switch/src/arp.rs:
crates/switch/src/frame.rs:
crates/switch/src/openflow.rs:
crates/switch/src/pcap.rs:
crates/switch/src/router.rs:
crates/switch/src/switch.rs:
crates/switch/src/table.rs:
