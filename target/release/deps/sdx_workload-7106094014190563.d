/root/repo/target/release/deps/sdx_workload-7106094014190563.d: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/policies.rs crates/workload/src/topology.rs crates/workload/src/traffic.rs crates/workload/src/updates.rs

/root/repo/target/release/deps/libsdx_workload-7106094014190563.rlib: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/policies.rs crates/workload/src/topology.rs crates/workload/src/traffic.rs crates/workload/src/updates.rs

/root/repo/target/release/deps/libsdx_workload-7106094014190563.rmeta: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/policies.rs crates/workload/src/topology.rs crates/workload/src/traffic.rs crates/workload/src/updates.rs

crates/workload/src/lib.rs:
crates/workload/src/analysis.rs:
crates/workload/src/policies.rs:
crates/workload/src/topology.rs:
crates/workload/src/traffic.rs:
crates/workload/src/updates.rs:
