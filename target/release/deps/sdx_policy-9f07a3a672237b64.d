/root/repo/target/release/deps/sdx_policy-9f07a3a672237b64.d: crates/policy/src/lib.rs crates/policy/src/classifier.rs crates/policy/src/compile.rs crates/policy/src/cover.rs crates/policy/src/field.rs crates/policy/src/intern.rs crates/policy/src/matcher.rs crates/policy/src/packet.rs crates/policy/src/parser.rs crates/policy/src/pattern.rs crates/policy/src/policy.rs crates/policy/src/predicate.rs

/root/repo/target/release/deps/libsdx_policy-9f07a3a672237b64.rlib: crates/policy/src/lib.rs crates/policy/src/classifier.rs crates/policy/src/compile.rs crates/policy/src/cover.rs crates/policy/src/field.rs crates/policy/src/intern.rs crates/policy/src/matcher.rs crates/policy/src/packet.rs crates/policy/src/parser.rs crates/policy/src/pattern.rs crates/policy/src/policy.rs crates/policy/src/predicate.rs

/root/repo/target/release/deps/libsdx_policy-9f07a3a672237b64.rmeta: crates/policy/src/lib.rs crates/policy/src/classifier.rs crates/policy/src/compile.rs crates/policy/src/cover.rs crates/policy/src/field.rs crates/policy/src/intern.rs crates/policy/src/matcher.rs crates/policy/src/packet.rs crates/policy/src/parser.rs crates/policy/src/pattern.rs crates/policy/src/policy.rs crates/policy/src/predicate.rs

crates/policy/src/lib.rs:
crates/policy/src/classifier.rs:
crates/policy/src/compile.rs:
crates/policy/src/cover.rs:
crates/policy/src/field.rs:
crates/policy/src/intern.rs:
crates/policy/src/matcher.rs:
crates/policy/src/packet.rs:
crates/policy/src/parser.rs:
crates/policy/src/pattern.rs:
crates/policy/src/policy.rs:
crates/policy/src/predicate.rs:
