/root/repo/target/release/deps/sdx_ip-78f4a2f87c7b1d12.d: crates/ip/src/lib.rs crates/ip/src/error.rs crates/ip/src/mac.rs crates/ip/src/prefix.rs crates/ip/src/set.rs crates/ip/src/trie.rs

/root/repo/target/release/deps/libsdx_ip-78f4a2f87c7b1d12.rlib: crates/ip/src/lib.rs crates/ip/src/error.rs crates/ip/src/mac.rs crates/ip/src/prefix.rs crates/ip/src/set.rs crates/ip/src/trie.rs

/root/repo/target/release/deps/libsdx_ip-78f4a2f87c7b1d12.rmeta: crates/ip/src/lib.rs crates/ip/src/error.rs crates/ip/src/mac.rs crates/ip/src/prefix.rs crates/ip/src/set.rs crates/ip/src/trie.rs

crates/ip/src/lib.rs:
crates/ip/src/error.rs:
crates/ip/src/mac.rs:
crates/ip/src/prefix.rs:
crates/ip/src/set.rs:
crates/ip/src/trie.rs:
