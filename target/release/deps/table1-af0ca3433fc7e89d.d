/root/repo/target/release/deps/table1-af0ca3433fc7e89d.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-af0ca3433fc7e89d: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
