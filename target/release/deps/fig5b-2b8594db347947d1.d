/root/repo/target/release/deps/fig5b-2b8594db347947d1.d: crates/bench/src/bin/fig5b.rs

/root/repo/target/release/deps/fig5b-2b8594db347947d1: crates/bench/src/bin/fig5b.rs

crates/bench/src/bin/fig5b.rs:

# env-dep:CARGO=/root/.rustup/toolchains/stable-x86_64-unknown-linux-gnu/bin/cargo
