/root/repo/target/release/deps/sdx_core-3425caf84e29ac62.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/clause.rs crates/core/src/compile.rs crates/core/src/control.rs crates/core/src/fec.rs crates/core/src/multiswitch.rs crates/core/src/participant.rs crates/core/src/runtime.rs crates/core/src/sim.rs crates/core/src/vnh.rs

/root/repo/target/release/deps/libsdx_core-3425caf84e29ac62.rlib: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/clause.rs crates/core/src/compile.rs crates/core/src/control.rs crates/core/src/fec.rs crates/core/src/multiswitch.rs crates/core/src/participant.rs crates/core/src/runtime.rs crates/core/src/sim.rs crates/core/src/vnh.rs

/root/repo/target/release/deps/libsdx_core-3425caf84e29ac62.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/clause.rs crates/core/src/compile.rs crates/core/src/control.rs crates/core/src/fec.rs crates/core/src/multiswitch.rs crates/core/src/participant.rs crates/core/src/runtime.rs crates/core/src/sim.rs crates/core/src/vnh.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/clause.rs:
crates/core/src/compile.rs:
crates/core/src/control.rs:
crates/core/src/fec.rs:
crates/core/src/multiswitch.rs:
crates/core/src/participant.rs:
crates/core/src/runtime.rs:
crates/core/src/sim.rs:
crates/core/src/vnh.rs:
