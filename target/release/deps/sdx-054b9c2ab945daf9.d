/root/repo/target/release/deps/sdx-054b9c2ab945daf9.d: src/lib.rs src/scenario.rs

/root/repo/target/release/deps/libsdx-054b9c2ab945daf9.rlib: src/lib.rs src/scenario.rs

/root/repo/target/release/deps/libsdx-054b9c2ab945daf9.rmeta: src/lib.rs src/scenario.rs

src/lib.rs:
src/scenario.rs:
