/root/repo/target/release/deps/sdx_core-a7c2d944ee30a4ca.d: crates/core/src/lib.rs crates/core/src/clause.rs crates/core/src/compile.rs crates/core/src/control.rs crates/core/src/fec.rs crates/core/src/multiswitch.rs crates/core/src/participant.rs crates/core/src/runtime.rs crates/core/src/sim.rs crates/core/src/vnh.rs

/root/repo/target/release/deps/libsdx_core-a7c2d944ee30a4ca.rlib: crates/core/src/lib.rs crates/core/src/clause.rs crates/core/src/compile.rs crates/core/src/control.rs crates/core/src/fec.rs crates/core/src/multiswitch.rs crates/core/src/participant.rs crates/core/src/runtime.rs crates/core/src/sim.rs crates/core/src/vnh.rs

/root/repo/target/release/deps/libsdx_core-a7c2d944ee30a4ca.rmeta: crates/core/src/lib.rs crates/core/src/clause.rs crates/core/src/compile.rs crates/core/src/control.rs crates/core/src/fec.rs crates/core/src/multiswitch.rs crates/core/src/participant.rs crates/core/src/runtime.rs crates/core/src/sim.rs crates/core/src/vnh.rs

crates/core/src/lib.rs:
crates/core/src/clause.rs:
crates/core/src/compile.rs:
crates/core/src/control.rs:
crates/core/src/fec.rs:
crates/core/src/multiswitch.rs:
crates/core/src/participant.rs:
crates/core/src/runtime.rs:
crates/core/src/sim.rs:
crates/core/src/vnh.rs:
