/root/repo/target/release/deps/fig10-94fa83b7cba45c4d.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-94fa83b7cba45c4d: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
