/root/repo/target/release/deps/sdx_cli-9a77d1d2a5340ed8.d: src/bin/sdx-cli.rs

/root/repo/target/release/deps/sdx_cli-9a77d1d2a5340ed8: src/bin/sdx-cli.rs

src/bin/sdx-cli.rs:
