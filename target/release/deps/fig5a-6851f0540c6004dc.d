/root/repo/target/release/deps/fig5a-6851f0540c6004dc.d: crates/bench/src/bin/fig5a.rs

/root/repo/target/release/deps/fig5a-6851f0540c6004dc: crates/bench/src/bin/fig5a.rs

crates/bench/src/bin/fig5a.rs:

# env-dep:CARGO=/root/.rustup/toolchains/stable-x86_64-unknown-linux-gnu/bin/cargo
