/root/repo/target/release/deps/sdx_workload-c394bc7ab7674733.d: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/policies.rs crates/workload/src/topology.rs crates/workload/src/traffic.rs crates/workload/src/updates.rs

/root/repo/target/release/deps/libsdx_workload-c394bc7ab7674733.rlib: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/policies.rs crates/workload/src/topology.rs crates/workload/src/traffic.rs crates/workload/src/updates.rs

/root/repo/target/release/deps/libsdx_workload-c394bc7ab7674733.rmeta: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/policies.rs crates/workload/src/topology.rs crates/workload/src/traffic.rs crates/workload/src/updates.rs

crates/workload/src/lib.rs:
crates/workload/src/analysis.rs:
crates/workload/src/policies.rs:
crates/workload/src/topology.rs:
crates/workload/src/traffic.rs:
crates/workload/src/updates.rs:
