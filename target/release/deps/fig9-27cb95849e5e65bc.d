/root/repo/target/release/deps/fig9-27cb95849e5e65bc.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-27cb95849e5e65bc: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
