/root/repo/target/release/deps/fig6-0d71707b7e9eff2f.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-0d71707b7e9eff2f: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
