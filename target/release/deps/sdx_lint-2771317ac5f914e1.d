/root/repo/target/release/deps/sdx_lint-2771317ac5f914e1.d: src/bin/sdx-lint.rs

/root/repo/target/release/deps/sdx_lint-2771317ac5f914e1: src/bin/sdx-lint.rs

src/bin/sdx-lint.rs:
