/root/repo/target/release/deps/sdx_lint-b2045f518b9259ae.d: src/bin/sdx-lint.rs

/root/repo/target/release/deps/sdx_lint-b2045f518b9259ae: src/bin/sdx-lint.rs

src/bin/sdx-lint.rs:
