/root/repo/target/release/deps/sdx_cli-eae79667ed0e18bd.d: src/bin/sdx-cli.rs

/root/repo/target/release/deps/sdx_cli-eae79667ed0e18bd: src/bin/sdx-cli.rs

src/bin/sdx-cli.rs:
