/root/repo/target/release/deps/fig5b-2ad9d6d7ea764876.d: crates/bench/src/bin/fig5b.rs

/root/repo/target/release/deps/fig5b-2ad9d6d7ea764876: crates/bench/src/bin/fig5b.rs

crates/bench/src/bin/fig5b.rs:

# env-dep:CARGO=/root/.rustup/toolchains/stable-x86_64-unknown-linux-gnu/bin/cargo
