/root/repo/target/release/deps/sdx_switch-49fc6d7a2a6841af.d: crates/switch/src/lib.rs crates/switch/src/arp.rs crates/switch/src/frame.rs crates/switch/src/openflow.rs crates/switch/src/pcap.rs crates/switch/src/router.rs crates/switch/src/switch.rs crates/switch/src/table.rs

/root/repo/target/release/deps/libsdx_switch-49fc6d7a2a6841af.rlib: crates/switch/src/lib.rs crates/switch/src/arp.rs crates/switch/src/frame.rs crates/switch/src/openflow.rs crates/switch/src/pcap.rs crates/switch/src/router.rs crates/switch/src/switch.rs crates/switch/src/table.rs

/root/repo/target/release/deps/libsdx_switch-49fc6d7a2a6841af.rmeta: crates/switch/src/lib.rs crates/switch/src/arp.rs crates/switch/src/frame.rs crates/switch/src/openflow.rs crates/switch/src/pcap.rs crates/switch/src/router.rs crates/switch/src/switch.rs crates/switch/src/table.rs

crates/switch/src/lib.rs:
crates/switch/src/arp.rs:
crates/switch/src/frame.rs:
crates/switch/src/openflow.rs:
crates/switch/src/pcap.rs:
crates/switch/src/router.rs:
crates/switch/src/switch.rs:
crates/switch/src/table.rs:
