/root/repo/target/release/deps/table1-d0a6e757654c4f14.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-d0a6e757654c4f14: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
