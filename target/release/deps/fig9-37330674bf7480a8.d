/root/repo/target/release/deps/fig9-37330674bf7480a8.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-37330674bf7480a8: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
