/root/repo/target/release/examples/quickstart-04a3ac35b8e070c1.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-04a3ac35b8e070c1: examples/quickstart.rs

examples/quickstart.rs:
