/root/repo/target/debug/examples/wide_area_load_balancer-cece01d68411fd9c.d: examples/wide_area_load_balancer.rs

/root/repo/target/debug/examples/wide_area_load_balancer-cece01d68411fd9c: examples/wide_area_load_balancer.rs

examples/wide_area_load_balancer.rs:
