/root/repo/target/debug/examples/middlebox_steering-c11e5b16d953586f.d: examples/middlebox_steering.rs

/root/repo/target/debug/examples/middlebox_steering-c11e5b16d953586f: examples/middlebox_steering.rs

examples/middlebox_steering.rs:
