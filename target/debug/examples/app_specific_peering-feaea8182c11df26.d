/root/repo/target/debug/examples/app_specific_peering-feaea8182c11df26.d: examples/app_specific_peering.rs Cargo.toml

/root/repo/target/debug/examples/libapp_specific_peering-feaea8182c11df26.rmeta: examples/app_specific_peering.rs Cargo.toml

examples/app_specific_peering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
