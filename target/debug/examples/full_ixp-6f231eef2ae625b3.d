/root/repo/target/debug/examples/full_ixp-6f231eef2ae625b3.d: examples/full_ixp.rs

/root/repo/target/debug/examples/full_ixp-6f231eef2ae625b3: examples/full_ixp.rs

examples/full_ixp.rs:
