/root/repo/target/debug/examples/inbound_traffic_engineering-5837f0e4b20478fe.d: examples/inbound_traffic_engineering.rs

/root/repo/target/debug/examples/inbound_traffic_engineering-5837f0e4b20478fe: examples/inbound_traffic_engineering.rs

examples/inbound_traffic_engineering.rs:
