/root/repo/target/debug/examples/quickstart-e252aa6359fa4d0a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e252aa6359fa4d0a: examples/quickstart.rs

examples/quickstart.rs:
