/root/repo/target/debug/examples/inbound_traffic_engineering-7343aed45a6762a8.d: examples/inbound_traffic_engineering.rs

/root/repo/target/debug/examples/inbound_traffic_engineering-7343aed45a6762a8: examples/inbound_traffic_engineering.rs

examples/inbound_traffic_engineering.rs:
