/root/repo/target/debug/examples/full_ixp-16f45a8a4e3cf164.d: examples/full_ixp.rs Cargo.toml

/root/repo/target/debug/examples/libfull_ixp-16f45a8a4e3cf164.rmeta: examples/full_ixp.rs Cargo.toml

examples/full_ixp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
