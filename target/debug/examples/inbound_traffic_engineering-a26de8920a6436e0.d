/root/repo/target/debug/examples/inbound_traffic_engineering-a26de8920a6436e0.d: examples/inbound_traffic_engineering.rs Cargo.toml

/root/repo/target/debug/examples/libinbound_traffic_engineering-a26de8920a6436e0.rmeta: examples/inbound_traffic_engineering.rs Cargo.toml

examples/inbound_traffic_engineering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
