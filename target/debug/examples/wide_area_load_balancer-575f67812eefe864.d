/root/repo/target/debug/examples/wide_area_load_balancer-575f67812eefe864.d: examples/wide_area_load_balancer.rs

/root/repo/target/debug/examples/wide_area_load_balancer-575f67812eefe864: examples/wide_area_load_balancer.rs

examples/wide_area_load_balancer.rs:
