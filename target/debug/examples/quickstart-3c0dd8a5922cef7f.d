/root/repo/target/debug/examples/quickstart-3c0dd8a5922cef7f.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-3c0dd8a5922cef7f: examples/quickstart.rs

examples/quickstart.rs:
