/root/repo/target/debug/examples/wide_area_load_balancer-39f310dbb5acb94d.d: examples/wide_area_load_balancer.rs Cargo.toml

/root/repo/target/debug/examples/libwide_area_load_balancer-39f310dbb5acb94d.rmeta: examples/wide_area_load_balancer.rs Cargo.toml

examples/wide_area_load_balancer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
