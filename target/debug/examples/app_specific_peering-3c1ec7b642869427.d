/root/repo/target/debug/examples/app_specific_peering-3c1ec7b642869427.d: examples/app_specific_peering.rs

/root/repo/target/debug/examples/app_specific_peering-3c1ec7b642869427: examples/app_specific_peering.rs

examples/app_specific_peering.rs:
