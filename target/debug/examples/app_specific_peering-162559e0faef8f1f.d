/root/repo/target/debug/examples/app_specific_peering-162559e0faef8f1f.d: examples/app_specific_peering.rs

/root/repo/target/debug/examples/app_specific_peering-162559e0faef8f1f: examples/app_specific_peering.rs

examples/app_specific_peering.rs:
