/root/repo/target/debug/examples/full_ixp-90971b643f2049ec.d: examples/full_ixp.rs

/root/repo/target/debug/examples/full_ixp-90971b643f2049ec: examples/full_ixp.rs

examples/full_ixp.rs:
