/root/repo/target/debug/examples/inbound_traffic_engineering-25088b6948dd8a27.d: examples/inbound_traffic_engineering.rs

/root/repo/target/debug/examples/inbound_traffic_engineering-25088b6948dd8a27: examples/inbound_traffic_engineering.rs

examples/inbound_traffic_engineering.rs:
