/root/repo/target/debug/examples/quickstart-b66dc6d19b25666c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-b66dc6d19b25666c: examples/quickstart.rs

examples/quickstart.rs:
