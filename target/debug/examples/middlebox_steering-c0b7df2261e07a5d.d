/root/repo/target/debug/examples/middlebox_steering-c0b7df2261e07a5d.d: examples/middlebox_steering.rs

/root/repo/target/debug/examples/middlebox_steering-c0b7df2261e07a5d: examples/middlebox_steering.rs

examples/middlebox_steering.rs:
