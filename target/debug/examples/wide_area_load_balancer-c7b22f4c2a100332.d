/root/repo/target/debug/examples/wide_area_load_balancer-c7b22f4c2a100332.d: examples/wide_area_load_balancer.rs

/root/repo/target/debug/examples/wide_area_load_balancer-c7b22f4c2a100332: examples/wide_area_load_balancer.rs

examples/wide_area_load_balancer.rs:
