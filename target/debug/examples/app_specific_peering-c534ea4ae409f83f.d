/root/repo/target/debug/examples/app_specific_peering-c534ea4ae409f83f.d: examples/app_specific_peering.rs

/root/repo/target/debug/examples/app_specific_peering-c534ea4ae409f83f: examples/app_specific_peering.rs

examples/app_specific_peering.rs:
