/root/repo/target/debug/examples/middlebox_steering-cfa7a64bf8de389d.d: examples/middlebox_steering.rs Cargo.toml

/root/repo/target/debug/examples/libmiddlebox_steering-cfa7a64bf8de389d.rmeta: examples/middlebox_steering.rs Cargo.toml

examples/middlebox_steering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
