/root/repo/target/debug/examples/full_ixp-7789dbec3c04aa7f.d: examples/full_ixp.rs

/root/repo/target/debug/examples/full_ixp-7789dbec3c04aa7f: examples/full_ixp.rs

examples/full_ixp.rs:
