/root/repo/target/debug/examples/middlebox_steering-badc06f7ac780272.d: examples/middlebox_steering.rs

/root/repo/target/debug/examples/middlebox_steering-badc06f7ac780272: examples/middlebox_steering.rs

examples/middlebox_steering.rs:
