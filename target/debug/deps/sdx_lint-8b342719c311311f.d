/root/repo/target/debug/deps/sdx_lint-8b342719c311311f.d: src/bin/sdx-lint.rs Cargo.toml

/root/repo/target/debug/deps/libsdx_lint-8b342719c311311f.rmeta: src/bin/sdx-lint.rs Cargo.toml

src/bin/sdx-lint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
