/root/repo/target/debug/deps/fig8_compile_time-f28cf4b25d890582.d: crates/bench/benches/fig8_compile_time.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_compile_time-f28cf4b25d890582.rmeta: crates/bench/benches/fig8_compile_time.rs Cargo.toml

crates/bench/benches/fig8_compile_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
