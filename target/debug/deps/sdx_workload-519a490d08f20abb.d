/root/repo/target/debug/deps/sdx_workload-519a490d08f20abb.d: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/policies.rs crates/workload/src/topology.rs crates/workload/src/traffic.rs crates/workload/src/updates.rs

/root/repo/target/debug/deps/sdx_workload-519a490d08f20abb: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/policies.rs crates/workload/src/topology.rs crates/workload/src/traffic.rs crates/workload/src/updates.rs

crates/workload/src/lib.rs:
crates/workload/src/analysis.rs:
crates/workload/src/policies.rs:
crates/workload/src/topology.rs:
crates/workload/src/traffic.rs:
crates/workload/src/updates.rs:
