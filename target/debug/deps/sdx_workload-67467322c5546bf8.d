/root/repo/target/debug/deps/sdx_workload-67467322c5546bf8.d: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/policies.rs crates/workload/src/topology.rs crates/workload/src/traffic.rs crates/workload/src/updates.rs Cargo.toml

/root/repo/target/debug/deps/libsdx_workload-67467322c5546bf8.rmeta: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/policies.rs crates/workload/src/topology.rs crates/workload/src/traffic.rs crates/workload/src/updates.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/analysis.rs:
crates/workload/src/policies.rs:
crates/workload/src/topology.rs:
crates/workload/src/traffic.rs:
crates/workload/src/updates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
