/root/repo/target/debug/deps/fig5a-51eb1fc4f70d0e81.d: crates/bench/src/bin/fig5a.rs

/root/repo/target/debug/deps/fig5a-51eb1fc4f70d0e81: crates/bench/src/bin/fig5a.rs

crates/bench/src/bin/fig5a.rs:

# env-dep:CARGO=/root/.rustup/toolchains/stable-x86_64-unknown-linux-gnu/bin/cargo
