/root/repo/target/debug/deps/ablation_fastpath-f5dc03a3587b6e54.d: crates/bench/benches/ablation_fastpath.rs Cargo.toml

/root/repo/target/debug/deps/libablation_fastpath-f5dc03a3587b6e54.rmeta: crates/bench/benches/ablation_fastpath.rs Cargo.toml

crates/bench/benches/ablation_fastpath.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
