/root/repo/target/debug/deps/prop-34457acfd18c9e78.d: crates/core/tests/prop.rs

/root/repo/target/debug/deps/prop-34457acfd18c9e78: crates/core/tests/prop.rs

crates/core/tests/prop.rs:
