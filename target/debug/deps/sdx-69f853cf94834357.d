/root/repo/target/debug/deps/sdx-69f853cf94834357.d: src/lib.rs src/scenario.rs Cargo.toml

/root/repo/target/debug/deps/libsdx-69f853cf94834357.rmeta: src/lib.rs src/scenario.rs Cargo.toml

src/lib.rs:
src/scenario.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
