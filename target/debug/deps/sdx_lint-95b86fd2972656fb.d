/root/repo/target/debug/deps/sdx_lint-95b86fd2972656fb.d: src/bin/sdx-lint.rs

/root/repo/target/debug/deps/sdx_lint-95b86fd2972656fb: src/bin/sdx-lint.rs

src/bin/sdx-lint.rs:
