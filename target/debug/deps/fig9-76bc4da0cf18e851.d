/root/repo/target/debug/deps/fig9-76bc4da0cf18e851.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-76bc4da0cf18e851: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
