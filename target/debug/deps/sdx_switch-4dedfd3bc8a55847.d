/root/repo/target/debug/deps/sdx_switch-4dedfd3bc8a55847.d: crates/switch/src/lib.rs crates/switch/src/arp.rs crates/switch/src/frame.rs crates/switch/src/openflow.rs crates/switch/src/pcap.rs crates/switch/src/router.rs crates/switch/src/switch.rs crates/switch/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libsdx_switch-4dedfd3bc8a55847.rmeta: crates/switch/src/lib.rs crates/switch/src/arp.rs crates/switch/src/frame.rs crates/switch/src/openflow.rs crates/switch/src/pcap.rs crates/switch/src/router.rs crates/switch/src/switch.rs crates/switch/src/table.rs Cargo.toml

crates/switch/src/lib.rs:
crates/switch/src/arp.rs:
crates/switch/src/frame.rs:
crates/switch/src/openflow.rs:
crates/switch/src/pcap.rs:
crates/switch/src/router.rs:
crates/switch/src/switch.rs:
crates/switch/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
