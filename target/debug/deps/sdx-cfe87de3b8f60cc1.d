/root/repo/target/debug/deps/sdx-cfe87de3b8f60cc1.d: src/lib.rs src/scenario.rs

/root/repo/target/debug/deps/libsdx-cfe87de3b8f60cc1.rlib: src/lib.rs src/scenario.rs

/root/repo/target/debug/deps/libsdx-cfe87de3b8f60cc1.rmeta: src/lib.rs src/scenario.rs

src/lib.rs:
src/scenario.rs:
