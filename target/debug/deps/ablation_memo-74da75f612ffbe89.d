/root/repo/target/debug/deps/ablation_memo-74da75f612ffbe89.d: crates/bench/benches/ablation_memo.rs Cargo.toml

/root/repo/target/debug/deps/libablation_memo-74da75f612ffbe89.rmeta: crates/bench/benches/ablation_memo.rs Cargo.toml

crates/bench/benches/ablation_memo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
