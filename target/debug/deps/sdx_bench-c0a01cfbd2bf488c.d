/root/repo/target/debug/deps/sdx_bench-c0a01cfbd2bf488c.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsdx_bench-c0a01cfbd2bf488c.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
