/root/repo/target/debug/deps/sdx_cli-f99729bfca8c4723.d: src/bin/sdx-cli.rs

/root/repo/target/debug/deps/sdx_cli-f99729bfca8c4723: src/bin/sdx-cli.rs

src/bin/sdx-cli.rs:
