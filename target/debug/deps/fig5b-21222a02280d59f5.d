/root/repo/target/debug/deps/fig5b-21222a02280d59f5.d: crates/bench/src/bin/fig5b.rs

/root/repo/target/debug/deps/fig5b-21222a02280d59f5: crates/bench/src/bin/fig5b.rs

crates/bench/src/bin/fig5b.rs:

# env-dep:CARGO=/root/.rustup/toolchains/stable-x86_64-unknown-linux-gnu/bin/cargo
