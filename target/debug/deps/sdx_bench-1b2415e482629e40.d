/root/repo/target/debug/deps/sdx_bench-1b2415e482629e40.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsdx_bench-1b2415e482629e40.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
