/root/repo/target/debug/deps/prop-61c61f382559d7be.d: crates/policy/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-61c61f382559d7be.rmeta: crates/policy/tests/prop.rs Cargo.toml

crates/policy/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
