/root/repo/target/debug/deps/figure1-a62f05cb7c22d751.d: crates/core/tests/figure1.rs

/root/repo/target/debug/deps/figure1-a62f05cb7c22d751: crates/core/tests/figure1.rs

crates/core/tests/figure1.rs:
