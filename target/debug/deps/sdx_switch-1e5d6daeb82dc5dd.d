/root/repo/target/debug/deps/sdx_switch-1e5d6daeb82dc5dd.d: crates/switch/src/lib.rs crates/switch/src/arp.rs crates/switch/src/frame.rs crates/switch/src/openflow.rs crates/switch/src/pcap.rs crates/switch/src/router.rs crates/switch/src/switch.rs crates/switch/src/table.rs

/root/repo/target/debug/deps/sdx_switch-1e5d6daeb82dc5dd: crates/switch/src/lib.rs crates/switch/src/arp.rs crates/switch/src/frame.rs crates/switch/src/openflow.rs crates/switch/src/pcap.rs crates/switch/src/router.rs crates/switch/src/switch.rs crates/switch/src/table.rs

crates/switch/src/lib.rs:
crates/switch/src/arp.rs:
crates/switch/src/frame.rs:
crates/switch/src/openflow.rs:
crates/switch/src/pcap.rs:
crates/switch/src/router.rs:
crates/switch/src/switch.rs:
crates/switch/src/table.rs:
