/root/repo/target/debug/deps/sdx-6d2a7ced3eda95c6.d: src/lib.rs src/scenario.rs

/root/repo/target/debug/deps/libsdx-6d2a7ced3eda95c6.rlib: src/lib.rs src/scenario.rs

/root/repo/target/debug/deps/libsdx-6d2a7ced3eda95c6.rmeta: src/lib.rs src/scenario.rs

src/lib.rs:
src/scenario.rs:
