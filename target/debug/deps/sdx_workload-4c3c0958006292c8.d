/root/repo/target/debug/deps/sdx_workload-4c3c0958006292c8.d: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/policies.rs crates/workload/src/topology.rs crates/workload/src/traffic.rs crates/workload/src/updates.rs

/root/repo/target/debug/deps/libsdx_workload-4c3c0958006292c8.rlib: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/policies.rs crates/workload/src/topology.rs crates/workload/src/traffic.rs crates/workload/src/updates.rs

/root/repo/target/debug/deps/libsdx_workload-4c3c0958006292c8.rmeta: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/policies.rs crates/workload/src/topology.rs crates/workload/src/traffic.rs crates/workload/src/updates.rs

crates/workload/src/lib.rs:
crates/workload/src/analysis.rs:
crates/workload/src/policies.rs:
crates/workload/src/topology.rs:
crates/workload/src/traffic.rs:
crates/workload/src/updates.rs:
