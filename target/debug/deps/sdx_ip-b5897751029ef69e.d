/root/repo/target/debug/deps/sdx_ip-b5897751029ef69e.d: crates/ip/src/lib.rs crates/ip/src/error.rs crates/ip/src/mac.rs crates/ip/src/prefix.rs crates/ip/src/set.rs crates/ip/src/trie.rs

/root/repo/target/debug/deps/sdx_ip-b5897751029ef69e: crates/ip/src/lib.rs crates/ip/src/error.rs crates/ip/src/mac.rs crates/ip/src/prefix.rs crates/ip/src/set.rs crates/ip/src/trie.rs

crates/ip/src/lib.rs:
crates/ip/src/error.rs:
crates/ip/src/mac.rs:
crates/ip/src/prefix.rs:
crates/ip/src/set.rs:
crates/ip/src/trie.rs:
