/root/repo/target/debug/deps/end_to_end-fcf4ef5fb7e4e6d8.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-fcf4ef5fb7e4e6d8: tests/end_to_end.rs

tests/end_to_end.rs:
