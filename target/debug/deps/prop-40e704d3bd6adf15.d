/root/repo/target/debug/deps/prop-40e704d3bd6adf15.d: crates/core/tests/prop.rs

/root/repo/target/debug/deps/prop-40e704d3bd6adf15: crates/core/tests/prop.rs

crates/core/tests/prop.rs:
