/root/repo/target/debug/deps/fig7-a7e21c9792a2ddfb.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-a7e21c9792a2ddfb: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
