/root/repo/target/debug/deps/fig6_prefix_groups-5b7d012cb99f3d1a.d: crates/bench/benches/fig6_prefix_groups.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_prefix_groups-5b7d012cb99f3d1a.rmeta: crates/bench/benches/fig6_prefix_groups.rs Cargo.toml

crates/bench/benches/fig6_prefix_groups.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
