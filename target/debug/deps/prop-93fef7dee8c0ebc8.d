/root/repo/target/debug/deps/prop-93fef7dee8c0ebc8.d: crates/switch/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-93fef7dee8c0ebc8.rmeta: crates/switch/tests/prop.rs Cargo.toml

crates/switch/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
