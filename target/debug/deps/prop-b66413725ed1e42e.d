/root/repo/target/debug/deps/prop-b66413725ed1e42e.d: crates/ip/tests/prop.rs

/root/repo/target/debug/deps/prop-b66413725ed1e42e: crates/ip/tests/prop.rs

crates/ip/tests/prop.rs:
