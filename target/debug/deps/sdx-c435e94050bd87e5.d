/root/repo/target/debug/deps/sdx-c435e94050bd87e5.d: src/lib.rs src/scenario.rs

/root/repo/target/debug/deps/libsdx-c435e94050bd87e5.rlib: src/lib.rs src/scenario.rs

/root/repo/target/debug/deps/libsdx-c435e94050bd87e5.rmeta: src/lib.rs src/scenario.rs

src/lib.rs:
src/scenario.rs:
