/root/repo/target/debug/deps/scenario-cadc03d5eba5b0da.d: tests/scenario.rs

/root/repo/target/debug/deps/scenario-cadc03d5eba5b0da: tests/scenario.rs

tests/scenario.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
