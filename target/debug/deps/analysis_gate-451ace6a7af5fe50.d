/root/repo/target/debug/deps/analysis_gate-451ace6a7af5fe50.d: crates/core/tests/analysis_gate.rs

/root/repo/target/debug/deps/analysis_gate-451ace6a7af5fe50: crates/core/tests/analysis_gate.rs

crates/core/tests/analysis_gate.rs:
