/root/repo/target/debug/deps/sdx_ip-934f071d5abeed31.d: crates/ip/src/lib.rs crates/ip/src/error.rs crates/ip/src/mac.rs crates/ip/src/prefix.rs crates/ip/src/set.rs crates/ip/src/trie.rs Cargo.toml

/root/repo/target/debug/deps/libsdx_ip-934f071d5abeed31.rmeta: crates/ip/src/lib.rs crates/ip/src/error.rs crates/ip/src/mac.rs crates/ip/src/prefix.rs crates/ip/src/set.rs crates/ip/src/trie.rs Cargo.toml

crates/ip/src/lib.rs:
crates/ip/src/error.rs:
crates/ip/src/mac.rs:
crates/ip/src/prefix.rs:
crates/ip/src/set.rs:
crates/ip/src/trie.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
