/root/repo/target/debug/deps/fig6-c9f20b3c7f2bb542.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-c9f20b3c7f2bb542: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
