/root/repo/target/debug/deps/table1-3efd54a6291d460a.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-3efd54a6291d460a: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
