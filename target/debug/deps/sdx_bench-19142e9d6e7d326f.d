/root/repo/target/debug/deps/sdx_bench-19142e9d6e7d326f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsdx_bench-19142e9d6e7d326f.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsdx_bench-19142e9d6e7d326f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
