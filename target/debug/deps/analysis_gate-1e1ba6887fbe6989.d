/root/repo/target/debug/deps/analysis_gate-1e1ba6887fbe6989.d: crates/core/tests/analysis_gate.rs Cargo.toml

/root/repo/target/debug/deps/libanalysis_gate-1e1ba6887fbe6989.rmeta: crates/core/tests/analysis_gate.rs Cargo.toml

crates/core/tests/analysis_gate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
