/root/repo/target/debug/deps/lint-d1e5a0ec5e886456.d: tests/lint.rs

/root/repo/target/debug/deps/lint-d1e5a0ec5e886456: tests/lint.rs

tests/lint.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
