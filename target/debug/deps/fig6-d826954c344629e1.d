/root/repo/target/debug/deps/fig6-d826954c344629e1.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-d826954c344629e1: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
