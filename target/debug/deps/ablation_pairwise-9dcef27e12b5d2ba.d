/root/repo/target/debug/deps/ablation_pairwise-9dcef27e12b5d2ba.d: crates/bench/benches/ablation_pairwise.rs Cargo.toml

/root/repo/target/debug/deps/libablation_pairwise-9dcef27e12b5d2ba.rmeta: crates/bench/benches/ablation_pairwise.rs Cargo.toml

crates/bench/benches/ablation_pairwise.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
