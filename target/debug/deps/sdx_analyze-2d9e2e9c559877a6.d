/root/repo/target/debug/deps/sdx_analyze-2d9e2e9c559877a6.d: crates/analyze/src/lib.rs crates/analyze/src/conflict.rs crates/analyze/src/loops.rs crates/analyze/src/shadow.rs crates/analyze/src/vnh.rs

/root/repo/target/debug/deps/libsdx_analyze-2d9e2e9c559877a6.rlib: crates/analyze/src/lib.rs crates/analyze/src/conflict.rs crates/analyze/src/loops.rs crates/analyze/src/shadow.rs crates/analyze/src/vnh.rs

/root/repo/target/debug/deps/libsdx_analyze-2d9e2e9c559877a6.rmeta: crates/analyze/src/lib.rs crates/analyze/src/conflict.rs crates/analyze/src/loops.rs crates/analyze/src/shadow.rs crates/analyze/src/vnh.rs

crates/analyze/src/lib.rs:
crates/analyze/src/conflict.rs:
crates/analyze/src/loops.rs:
crates/analyze/src/shadow.rs:
crates/analyze/src/vnh.rs:
