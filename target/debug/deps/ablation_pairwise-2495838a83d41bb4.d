/root/repo/target/debug/deps/ablation_pairwise-2495838a83d41bb4.d: crates/bench/benches/ablation_pairwise.rs Cargo.toml

/root/repo/target/debug/deps/libablation_pairwise-2495838a83d41bb4.rmeta: crates/bench/benches/ablation_pairwise.rs Cargo.toml

crates/bench/benches/ablation_pairwise.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
