/root/repo/target/debug/deps/fig5b-1623c40568b9451a.d: crates/bench/src/bin/fig5b.rs

/root/repo/target/debug/deps/fig5b-1623c40568b9451a: crates/bench/src/bin/fig5b.rs

crates/bench/src/bin/fig5b.rs:

# env-dep:CARGO=/root/.rustup/toolchains/stable-x86_64-unknown-linux-gnu/bin/cargo
