/root/repo/target/debug/deps/sdx_bench-efad2ac147f30bc5.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsdx_bench-efad2ac147f30bc5.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsdx_bench-efad2ac147f30bc5.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
