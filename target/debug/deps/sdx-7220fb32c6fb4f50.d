/root/repo/target/debug/deps/sdx-7220fb32c6fb4f50.d: src/lib.rs src/scenario.rs Cargo.toml

/root/repo/target/debug/deps/libsdx-7220fb32c6fb4f50.rmeta: src/lib.rs src/scenario.rs Cargo.toml

src/lib.rs:
src/scenario.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
