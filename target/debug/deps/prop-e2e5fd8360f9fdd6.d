/root/repo/target/debug/deps/prop-e2e5fd8360f9fdd6.d: crates/switch/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-e2e5fd8360f9fdd6.rmeta: crates/switch/tests/prop.rs Cargo.toml

crates/switch/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
