/root/repo/target/debug/deps/fig6-bc9befae4c7e9b58.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-bc9befae4c7e9b58: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
