/root/repo/target/debug/deps/lint-54b267a3f3d47d69.d: tests/lint.rs

/root/repo/target/debug/deps/lint-54b267a3f3d47d69: tests/lint.rs

tests/lint.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
