/root/repo/target/debug/deps/sdx_cli-e153d310e52a2abf.d: src/bin/sdx-cli.rs

/root/repo/target/debug/deps/sdx_cli-e153d310e52a2abf: src/bin/sdx-cli.rs

src/bin/sdx-cli.rs:
