/root/repo/target/debug/deps/prop-c009d78cfb496f7a.d: crates/bgp/tests/prop.rs

/root/repo/target/debug/deps/prop-c009d78cfb496f7a: crates/bgp/tests/prop.rs

crates/bgp/tests/prop.rs:
