/root/repo/target/debug/deps/sdx_analyze-1399d7d9a355b1cd.d: crates/analyze/src/lib.rs crates/analyze/src/conflict.rs crates/analyze/src/loops.rs crates/analyze/src/shadow.rs crates/analyze/src/vnh.rs

/root/repo/target/debug/deps/sdx_analyze-1399d7d9a355b1cd: crates/analyze/src/lib.rs crates/analyze/src/conflict.rs crates/analyze/src/loops.rs crates/analyze/src/shadow.rs crates/analyze/src/vnh.rs

crates/analyze/src/lib.rs:
crates/analyze/src/conflict.rs:
crates/analyze/src/loops.rs:
crates/analyze/src/shadow.rs:
crates/analyze/src/vnh.rs:
