/root/repo/target/debug/deps/fig6-94792a995e376ba3.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-94792a995e376ba3: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
