/root/repo/target/debug/deps/parallel_compile-bb6b3cdf5736bc9d.d: tests/parallel_compile.rs

/root/repo/target/debug/deps/parallel_compile-bb6b3cdf5736bc9d: tests/parallel_compile.rs

tests/parallel_compile.rs:
