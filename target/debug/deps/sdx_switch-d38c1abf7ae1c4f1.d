/root/repo/target/debug/deps/sdx_switch-d38c1abf7ae1c4f1.d: crates/switch/src/lib.rs crates/switch/src/arp.rs crates/switch/src/frame.rs crates/switch/src/openflow.rs crates/switch/src/pcap.rs crates/switch/src/router.rs crates/switch/src/switch.rs crates/switch/src/table.rs

/root/repo/target/debug/deps/sdx_switch-d38c1abf7ae1c4f1: crates/switch/src/lib.rs crates/switch/src/arp.rs crates/switch/src/frame.rs crates/switch/src/openflow.rs crates/switch/src/pcap.rs crates/switch/src/router.rs crates/switch/src/switch.rs crates/switch/src/table.rs

crates/switch/src/lib.rs:
crates/switch/src/arp.rs:
crates/switch/src/frame.rs:
crates/switch/src/openflow.rs:
crates/switch/src/pcap.rs:
crates/switch/src/router.rs:
crates/switch/src/switch.rs:
crates/switch/src/table.rs:
