/root/repo/target/debug/deps/sdx-b0f8209487e66e20.d: src/lib.rs src/scenario.rs

/root/repo/target/debug/deps/sdx-b0f8209487e66e20: src/lib.rs src/scenario.rs

src/lib.rs:
src/scenario.rs:
