/root/repo/target/debug/deps/fig7-c8f91baca86643b3.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-c8f91baca86643b3: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
