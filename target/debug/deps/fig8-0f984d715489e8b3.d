/root/repo/target/debug/deps/fig8-0f984d715489e8b3.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-0f984d715489e8b3: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
