/root/repo/target/debug/deps/prop-a8960f45f4028b0c.d: crates/core/tests/prop.rs

/root/repo/target/debug/deps/prop-a8960f45f4028b0c: crates/core/tests/prop.rs

crates/core/tests/prop.rs:
