/root/repo/target/debug/deps/fig5a-e60df5713ede39b6.d: crates/bench/src/bin/fig5a.rs Cargo.toml

/root/repo/target/debug/deps/libfig5a-e60df5713ede39b6.rmeta: crates/bench/src/bin/fig5a.rs Cargo.toml

crates/bench/src/bin/fig5a.rs:
Cargo.toml:

# env-dep:CARGO=/root/.rustup/toolchains/stable-x86_64-unknown-linux-gnu/bin/cargo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
