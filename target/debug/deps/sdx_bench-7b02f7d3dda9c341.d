/root/repo/target/debug/deps/sdx_bench-7b02f7d3dda9c341.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsdx_bench-7b02f7d3dda9c341.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsdx_bench-7b02f7d3dda9c341.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
