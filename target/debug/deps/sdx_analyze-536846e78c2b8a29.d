/root/repo/target/debug/deps/sdx_analyze-536846e78c2b8a29.d: crates/analyze/src/lib.rs crates/analyze/src/conflict.rs crates/analyze/src/loops.rs crates/analyze/src/shadow.rs crates/analyze/src/vnh.rs

/root/repo/target/debug/deps/sdx_analyze-536846e78c2b8a29: crates/analyze/src/lib.rs crates/analyze/src/conflict.rs crates/analyze/src/loops.rs crates/analyze/src/shadow.rs crates/analyze/src/vnh.rs

crates/analyze/src/lib.rs:
crates/analyze/src/conflict.rs:
crates/analyze/src/loops.rs:
crates/analyze/src/shadow.rs:
crates/analyze/src/vnh.rs:
