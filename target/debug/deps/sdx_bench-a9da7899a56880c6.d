/root/repo/target/debug/deps/sdx_bench-a9da7899a56880c6.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/sdx_bench-a9da7899a56880c6: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
