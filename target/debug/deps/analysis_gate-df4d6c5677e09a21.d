/root/repo/target/debug/deps/analysis_gate-df4d6c5677e09a21.d: crates/core/tests/analysis_gate.rs

/root/repo/target/debug/deps/analysis_gate-df4d6c5677e09a21: crates/core/tests/analysis_gate.rs

crates/core/tests/analysis_gate.rs:
