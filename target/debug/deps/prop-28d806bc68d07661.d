/root/repo/target/debug/deps/prop-28d806bc68d07661.d: crates/policy/tests/prop.rs

/root/repo/target/debug/deps/prop-28d806bc68d07661: crates/policy/tests/prop.rs

crates/policy/tests/prop.rs:
