/root/repo/target/debug/deps/scenario-b68ba99f583a422d.d: tests/scenario.rs Cargo.toml

/root/repo/target/debug/deps/libscenario-b68ba99f583a422d.rmeta: tests/scenario.rs Cargo.toml

tests/scenario.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
