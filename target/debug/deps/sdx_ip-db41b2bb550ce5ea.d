/root/repo/target/debug/deps/sdx_ip-db41b2bb550ce5ea.d: crates/ip/src/lib.rs crates/ip/src/error.rs crates/ip/src/mac.rs crates/ip/src/prefix.rs crates/ip/src/set.rs crates/ip/src/trie.rs

/root/repo/target/debug/deps/libsdx_ip-db41b2bb550ce5ea.rlib: crates/ip/src/lib.rs crates/ip/src/error.rs crates/ip/src/mac.rs crates/ip/src/prefix.rs crates/ip/src/set.rs crates/ip/src/trie.rs

/root/repo/target/debug/deps/libsdx_ip-db41b2bb550ce5ea.rmeta: crates/ip/src/lib.rs crates/ip/src/error.rs crates/ip/src/mac.rs crates/ip/src/prefix.rs crates/ip/src/set.rs crates/ip/src/trie.rs

crates/ip/src/lib.rs:
crates/ip/src/error.rs:
crates/ip/src/mac.rs:
crates/ip/src/prefix.rs:
crates/ip/src/set.rs:
crates/ip/src/trie.rs:
