/root/repo/target/debug/deps/sdx-87307ef99a7ecba5.d: src/lib.rs src/scenario.rs

/root/repo/target/debug/deps/sdx-87307ef99a7ecba5: src/lib.rs src/scenario.rs

src/lib.rs:
src/scenario.rs:
