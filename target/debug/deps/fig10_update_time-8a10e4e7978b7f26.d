/root/repo/target/debug/deps/fig10_update_time-8a10e4e7978b7f26.d: crates/bench/benches/fig10_update_time.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_update_time-8a10e4e7978b7f26.rmeta: crates/bench/benches/fig10_update_time.rs Cargo.toml

crates/bench/benches/fig10_update_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
