/root/repo/target/debug/deps/sdx_cli-8c2d20e54875883a.d: src/bin/sdx-cli.rs Cargo.toml

/root/repo/target/debug/deps/libsdx_cli-8c2d20e54875883a.rmeta: src/bin/sdx-cli.rs Cargo.toml

src/bin/sdx-cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
