/root/repo/target/debug/deps/sdx_analyze-852f17f59d04cc85.d: crates/analyze/src/lib.rs crates/analyze/src/conflict.rs crates/analyze/src/loops.rs crates/analyze/src/shadow.rs crates/analyze/src/vnh.rs

/root/repo/target/debug/deps/libsdx_analyze-852f17f59d04cc85.rlib: crates/analyze/src/lib.rs crates/analyze/src/conflict.rs crates/analyze/src/loops.rs crates/analyze/src/shadow.rs crates/analyze/src/vnh.rs

/root/repo/target/debug/deps/libsdx_analyze-852f17f59d04cc85.rmeta: crates/analyze/src/lib.rs crates/analyze/src/conflict.rs crates/analyze/src/loops.rs crates/analyze/src/shadow.rs crates/analyze/src/vnh.rs

crates/analyze/src/lib.rs:
crates/analyze/src/conflict.rs:
crates/analyze/src/loops.rs:
crates/analyze/src/shadow.rs:
crates/analyze/src/vnh.rs:
