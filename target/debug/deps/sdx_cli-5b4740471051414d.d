/root/repo/target/debug/deps/sdx_cli-5b4740471051414d.d: src/bin/sdx-cli.rs

/root/repo/target/debug/deps/sdx_cli-5b4740471051414d: src/bin/sdx-cli.rs

src/bin/sdx-cli.rs:
