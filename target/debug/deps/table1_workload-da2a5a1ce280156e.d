/root/repo/target/debug/deps/table1_workload-da2a5a1ce280156e.d: crates/bench/benches/table1_workload.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_workload-da2a5a1ce280156e.rmeta: crates/bench/benches/table1_workload.rs Cargo.toml

crates/bench/benches/table1_workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
