/root/repo/target/debug/deps/sdx_lint-e485f95a22d84891.d: src/bin/sdx-lint.rs

/root/repo/target/debug/deps/sdx_lint-e485f95a22d84891: src/bin/sdx-lint.rs

src/bin/sdx-lint.rs:
