/root/repo/target/debug/deps/sdx_lint-d57ca881581d23ec.d: src/bin/sdx-lint.rs Cargo.toml

/root/repo/target/debug/deps/libsdx_lint-d57ca881581d23ec.rmeta: src/bin/sdx-lint.rs Cargo.toml

src/bin/sdx-lint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
