/root/repo/target/debug/deps/prop-6dd278beb60ad35a.d: crates/ip/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-6dd278beb60ad35a.rmeta: crates/ip/tests/prop.rs Cargo.toml

crates/ip/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
