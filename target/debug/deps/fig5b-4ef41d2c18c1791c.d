/root/repo/target/debug/deps/fig5b-4ef41d2c18c1791c.d: crates/bench/src/bin/fig5b.rs

/root/repo/target/debug/deps/fig5b-4ef41d2c18c1791c: crates/bench/src/bin/fig5b.rs

crates/bench/src/bin/fig5b.rs:

# env-dep:CARGO=/root/.rustup/toolchains/stable-x86_64-unknown-linux-gnu/bin/cargo
