/root/repo/target/debug/deps/fig7-d51af5beb52a0511.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-d51af5beb52a0511: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
