/root/repo/target/debug/deps/fig9-5ec9c3d7fa3465e4.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-5ec9c3d7fa3465e4: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
