/root/repo/target/debug/deps/table1-aed61477e0a6778a.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-aed61477e0a6778a: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
