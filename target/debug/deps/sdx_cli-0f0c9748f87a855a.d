/root/repo/target/debug/deps/sdx_cli-0f0c9748f87a855a.d: src/bin/sdx-cli.rs

/root/repo/target/debug/deps/sdx_cli-0f0c9748f87a855a: src/bin/sdx-cli.rs

src/bin/sdx-cli.rs:
