/root/repo/target/debug/deps/ablation_mds-b07da56c324d35f9.d: crates/bench/benches/ablation_mds.rs Cargo.toml

/root/repo/target/debug/deps/libablation_mds-b07da56c324d35f9.rmeta: crates/bench/benches/ablation_mds.rs Cargo.toml

crates/bench/benches/ablation_mds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
