/root/repo/target/debug/deps/fig8-cc7ebb78e87f0a6e.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-cc7ebb78e87f0a6e: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
