/root/repo/target/debug/deps/fig6-2e0620c096b53459.d: crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-2e0620c096b53459.rmeta: crates/bench/src/bin/fig6.rs Cargo.toml

crates/bench/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
