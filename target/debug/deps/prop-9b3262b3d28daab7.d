/root/repo/target/debug/deps/prop-9b3262b3d28daab7.d: crates/switch/tests/prop.rs

/root/repo/target/debug/deps/prop-9b3262b3d28daab7: crates/switch/tests/prop.rs

crates/switch/tests/prop.rs:
