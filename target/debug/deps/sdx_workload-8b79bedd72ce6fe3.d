/root/repo/target/debug/deps/sdx_workload-8b79bedd72ce6fe3.d: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/policies.rs crates/workload/src/topology.rs crates/workload/src/traffic.rs crates/workload/src/updates.rs

/root/repo/target/debug/deps/libsdx_workload-8b79bedd72ce6fe3.rlib: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/policies.rs crates/workload/src/topology.rs crates/workload/src/traffic.rs crates/workload/src/updates.rs

/root/repo/target/debug/deps/libsdx_workload-8b79bedd72ce6fe3.rmeta: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/policies.rs crates/workload/src/topology.rs crates/workload/src/traffic.rs crates/workload/src/updates.rs

crates/workload/src/lib.rs:
crates/workload/src/analysis.rs:
crates/workload/src/policies.rs:
crates/workload/src/topology.rs:
crates/workload/src/traffic.rs:
crates/workload/src/updates.rs:
