/root/repo/target/debug/deps/parallel_compile-54ae5258a8f490ee.d: tests/parallel_compile.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_compile-54ae5258a8f490ee.rmeta: tests/parallel_compile.rs Cargo.toml

tests/parallel_compile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
