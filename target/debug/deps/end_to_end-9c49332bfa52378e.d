/root/repo/target/debug/deps/end_to_end-9c49332bfa52378e.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-9c49332bfa52378e: tests/end_to_end.rs

tests/end_to_end.rs:
