/root/repo/target/debug/deps/end_to_end-fc3903c5cea6a277.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-fc3903c5cea6a277: tests/end_to_end.rs

tests/end_to_end.rs:
