/root/repo/target/debug/deps/sdx_workload-b609716ac821e945.d: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/policies.rs crates/workload/src/topology.rs crates/workload/src/traffic.rs crates/workload/src/updates.rs

/root/repo/target/debug/deps/libsdx_workload-b609716ac821e945.rlib: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/policies.rs crates/workload/src/topology.rs crates/workload/src/traffic.rs crates/workload/src/updates.rs

/root/repo/target/debug/deps/libsdx_workload-b609716ac821e945.rmeta: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/policies.rs crates/workload/src/topology.rs crates/workload/src/traffic.rs crates/workload/src/updates.rs

crates/workload/src/lib.rs:
crates/workload/src/analysis.rs:
crates/workload/src/policies.rs:
crates/workload/src/topology.rs:
crates/workload/src/traffic.rs:
crates/workload/src/updates.rs:
