/root/repo/target/debug/deps/sdx_bench-c892924d53a012f0.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/sdx_bench-c892924d53a012f0: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
