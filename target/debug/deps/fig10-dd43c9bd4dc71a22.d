/root/repo/target/debug/deps/fig10-dd43c9bd4dc71a22.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-dd43c9bd4dc71a22: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
