/root/repo/target/debug/deps/figure1-e9d6521479777d75.d: crates/core/tests/figure1.rs

/root/repo/target/debug/deps/figure1-e9d6521479777d75: crates/core/tests/figure1.rs

crates/core/tests/figure1.rs:
