/root/repo/target/debug/deps/ablation_fastpath-e2a1e0fe3002eb97.d: crates/bench/benches/ablation_fastpath.rs Cargo.toml

/root/repo/target/debug/deps/libablation_fastpath-e2a1e0fe3002eb97.rmeta: crates/bench/benches/ablation_fastpath.rs Cargo.toml

crates/bench/benches/ablation_fastpath.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
