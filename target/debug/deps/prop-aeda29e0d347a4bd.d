/root/repo/target/debug/deps/prop-aeda29e0d347a4bd.d: crates/core/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-aeda29e0d347a4bd.rmeta: crates/core/tests/prop.rs Cargo.toml

crates/core/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
