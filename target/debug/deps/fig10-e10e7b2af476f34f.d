/root/repo/target/debug/deps/fig10-e10e7b2af476f34f.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-e10e7b2af476f34f: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
