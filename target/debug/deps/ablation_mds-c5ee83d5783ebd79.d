/root/repo/target/debug/deps/ablation_mds-c5ee83d5783ebd79.d: crates/bench/benches/ablation_mds.rs Cargo.toml

/root/repo/target/debug/deps/libablation_mds-c5ee83d5783ebd79.rmeta: crates/bench/benches/ablation_mds.rs Cargo.toml

crates/bench/benches/ablation_mds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
