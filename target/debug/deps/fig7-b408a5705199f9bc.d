/root/repo/target/debug/deps/fig7-b408a5705199f9bc.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-b408a5705199f9bc: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
