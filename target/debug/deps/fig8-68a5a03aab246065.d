/root/repo/target/debug/deps/fig8-68a5a03aab246065.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-68a5a03aab246065: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
