/root/repo/target/debug/deps/fig5b-de068e10cffc2ca1.d: crates/bench/src/bin/fig5b.rs Cargo.toml

/root/repo/target/debug/deps/libfig5b-de068e10cffc2ca1.rmeta: crates/bench/src/bin/fig5b.rs Cargo.toml

crates/bench/src/bin/fig5b.rs:
Cargo.toml:

# env-dep:CARGO=/root/.rustup/toolchains/stable-x86_64-unknown-linux-gnu/bin/cargo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
