/root/repo/target/debug/deps/figure1-a262e9e1a5357720.d: crates/core/tests/figure1.rs Cargo.toml

/root/repo/target/debug/deps/libfigure1-a262e9e1a5357720.rmeta: crates/core/tests/figure1.rs Cargo.toml

crates/core/tests/figure1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
