/root/repo/target/debug/deps/fig10-4f65a6f589bedb47.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-4f65a6f589bedb47: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
