/root/repo/target/debug/deps/table1-c934f72cafac7051.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-c934f72cafac7051: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
