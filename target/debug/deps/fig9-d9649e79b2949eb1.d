/root/repo/target/debug/deps/fig9-d9649e79b2949eb1.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-d9649e79b2949eb1: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
