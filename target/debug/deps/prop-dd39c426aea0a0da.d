/root/repo/target/debug/deps/prop-dd39c426aea0a0da.d: crates/bgp/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-dd39c426aea0a0da.rmeta: crates/bgp/tests/prop.rs Cargo.toml

crates/bgp/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
