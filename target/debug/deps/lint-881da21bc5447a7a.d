/root/repo/target/debug/deps/lint-881da21bc5447a7a.d: tests/lint.rs Cargo.toml

/root/repo/target/debug/deps/liblint-881da21bc5447a7a.rmeta: tests/lint.rs Cargo.toml

tests/lint.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
