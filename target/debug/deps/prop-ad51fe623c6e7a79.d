/root/repo/target/debug/deps/prop-ad51fe623c6e7a79.d: crates/policy/tests/prop.rs

/root/repo/target/debug/deps/prop-ad51fe623c6e7a79: crates/policy/tests/prop.rs

crates/policy/tests/prop.rs:
