/root/repo/target/debug/deps/fig5b-e770c1eada00d1eb.d: crates/bench/src/bin/fig5b.rs

/root/repo/target/debug/deps/fig5b-e770c1eada00d1eb: crates/bench/src/bin/fig5b.rs

crates/bench/src/bin/fig5b.rs:

# env-dep:CARGO=/root/.rustup/toolchains/stable-x86_64-unknown-linux-gnu/bin/cargo
