/root/repo/target/debug/deps/table1-c0863fff8cb726a3.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-c0863fff8cb726a3: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
