/root/repo/target/debug/deps/sdx_core-4ab0bfbb6c6f2fcc.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/clause.rs crates/core/src/compile.rs crates/core/src/control.rs crates/core/src/fec.rs crates/core/src/multiswitch.rs crates/core/src/participant.rs crates/core/src/runtime.rs crates/core/src/sim.rs crates/core/src/vnh.rs

/root/repo/target/debug/deps/sdx_core-4ab0bfbb6c6f2fcc: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/clause.rs crates/core/src/compile.rs crates/core/src/control.rs crates/core/src/fec.rs crates/core/src/multiswitch.rs crates/core/src/participant.rs crates/core/src/runtime.rs crates/core/src/sim.rs crates/core/src/vnh.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/clause.rs:
crates/core/src/compile.rs:
crates/core/src/control.rs:
crates/core/src/fec.rs:
crates/core/src/multiswitch.rs:
crates/core/src/participant.rs:
crates/core/src/runtime.rs:
crates/core/src/sim.rs:
crates/core/src/vnh.rs:
