/root/repo/target/debug/deps/sdx_workload-30975acaaf1b5751.d: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/policies.rs crates/workload/src/topology.rs crates/workload/src/traffic.rs crates/workload/src/updates.rs

/root/repo/target/debug/deps/sdx_workload-30975acaaf1b5751: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/policies.rs crates/workload/src/topology.rs crates/workload/src/traffic.rs crates/workload/src/updates.rs

crates/workload/src/lib.rs:
crates/workload/src/analysis.rs:
crates/workload/src/policies.rs:
crates/workload/src/topology.rs:
crates/workload/src/traffic.rs:
crates/workload/src/updates.rs:
