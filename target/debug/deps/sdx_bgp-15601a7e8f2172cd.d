/root/repo/target/debug/deps/sdx_bgp-15601a7e8f2172cd.d: crates/bgp/src/lib.rs crates/bgp/src/aspath_pattern.rs crates/bgp/src/decision.rs crates/bgp/src/export.rs crates/bgp/src/rib.rs crates/bgp/src/route.rs crates/bgp/src/route_server.rs crates/bgp/src/rpki.rs crates/bgp/src/session.rs crates/bgp/src/types.rs crates/bgp/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libsdx_bgp-15601a7e8f2172cd.rmeta: crates/bgp/src/lib.rs crates/bgp/src/aspath_pattern.rs crates/bgp/src/decision.rs crates/bgp/src/export.rs crates/bgp/src/rib.rs crates/bgp/src/route.rs crates/bgp/src/route_server.rs crates/bgp/src/rpki.rs crates/bgp/src/session.rs crates/bgp/src/types.rs crates/bgp/src/wire.rs Cargo.toml

crates/bgp/src/lib.rs:
crates/bgp/src/aspath_pattern.rs:
crates/bgp/src/decision.rs:
crates/bgp/src/export.rs:
crates/bgp/src/rib.rs:
crates/bgp/src/route.rs:
crates/bgp/src/route_server.rs:
crates/bgp/src/rpki.rs:
crates/bgp/src/session.rs:
crates/bgp/src/types.rs:
crates/bgp/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
