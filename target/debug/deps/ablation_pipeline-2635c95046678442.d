/root/repo/target/debug/deps/ablation_pipeline-2635c95046678442.d: crates/bench/benches/ablation_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libablation_pipeline-2635c95046678442.rmeta: crates/bench/benches/ablation_pipeline.rs Cargo.toml

crates/bench/benches/ablation_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
