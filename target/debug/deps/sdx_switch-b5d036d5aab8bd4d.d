/root/repo/target/debug/deps/sdx_switch-b5d036d5aab8bd4d.d: crates/switch/src/lib.rs crates/switch/src/arp.rs crates/switch/src/frame.rs crates/switch/src/openflow.rs crates/switch/src/pcap.rs crates/switch/src/router.rs crates/switch/src/switch.rs crates/switch/src/table.rs

/root/repo/target/debug/deps/libsdx_switch-b5d036d5aab8bd4d.rlib: crates/switch/src/lib.rs crates/switch/src/arp.rs crates/switch/src/frame.rs crates/switch/src/openflow.rs crates/switch/src/pcap.rs crates/switch/src/router.rs crates/switch/src/switch.rs crates/switch/src/table.rs

/root/repo/target/debug/deps/libsdx_switch-b5d036d5aab8bd4d.rmeta: crates/switch/src/lib.rs crates/switch/src/arp.rs crates/switch/src/frame.rs crates/switch/src/openflow.rs crates/switch/src/pcap.rs crates/switch/src/router.rs crates/switch/src/switch.rs crates/switch/src/table.rs

crates/switch/src/lib.rs:
crates/switch/src/arp.rs:
crates/switch/src/frame.rs:
crates/switch/src/openflow.rs:
crates/switch/src/pcap.rs:
crates/switch/src/router.rs:
crates/switch/src/switch.rs:
crates/switch/src/table.rs:
