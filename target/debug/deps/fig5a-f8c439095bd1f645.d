/root/repo/target/debug/deps/fig5a-f8c439095bd1f645.d: crates/bench/src/bin/fig5a.rs

/root/repo/target/debug/deps/fig5a-f8c439095bd1f645: crates/bench/src/bin/fig5a.rs

crates/bench/src/bin/fig5a.rs:

# env-dep:CARGO=/root/.rustup/toolchains/stable-x86_64-unknown-linux-gnu/bin/cargo
