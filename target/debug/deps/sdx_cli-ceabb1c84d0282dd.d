/root/repo/target/debug/deps/sdx_cli-ceabb1c84d0282dd.d: src/bin/sdx-cli.rs

/root/repo/target/debug/deps/sdx_cli-ceabb1c84d0282dd: src/bin/sdx-cli.rs

src/bin/sdx-cli.rs:
