/root/repo/target/debug/deps/prop-a5af1a32595e158d.d: crates/switch/tests/prop.rs

/root/repo/target/debug/deps/prop-a5af1a32595e158d: crates/switch/tests/prop.rs

crates/switch/tests/prop.rs:
