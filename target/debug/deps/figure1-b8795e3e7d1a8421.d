/root/repo/target/debug/deps/figure1-b8795e3e7d1a8421.d: crates/core/tests/figure1.rs

/root/repo/target/debug/deps/figure1-b8795e3e7d1a8421: crates/core/tests/figure1.rs

crates/core/tests/figure1.rs:
