/root/repo/target/debug/deps/sdx_core-44682b4e88d0f170.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/clause.rs crates/core/src/compile.rs crates/core/src/control.rs crates/core/src/fec.rs crates/core/src/multiswitch.rs crates/core/src/participant.rs crates/core/src/runtime.rs crates/core/src/sim.rs crates/core/src/vnh.rs Cargo.toml

/root/repo/target/debug/deps/libsdx_core-44682b4e88d0f170.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/clause.rs crates/core/src/compile.rs crates/core/src/control.rs crates/core/src/fec.rs crates/core/src/multiswitch.rs crates/core/src/participant.rs crates/core/src/runtime.rs crates/core/src/sim.rs crates/core/src/vnh.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/clause.rs:
crates/core/src/compile.rs:
crates/core/src/control.rs:
crates/core/src/fec.rs:
crates/core/src/multiswitch.rs:
crates/core/src/participant.rs:
crates/core/src/runtime.rs:
crates/core/src/sim.rs:
crates/core/src/vnh.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
