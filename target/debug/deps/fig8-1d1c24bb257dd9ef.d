/root/repo/target/debug/deps/fig8-1d1c24bb257dd9ef.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-1d1c24bb257dd9ef: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
