/root/repo/target/debug/deps/scenario-f025a0dfa54bba68.d: tests/scenario.rs

/root/repo/target/debug/deps/scenario-f025a0dfa54bba68: tests/scenario.rs

tests/scenario.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
