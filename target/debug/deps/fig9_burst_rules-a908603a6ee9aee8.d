/root/repo/target/debug/deps/fig9_burst_rules-a908603a6ee9aee8.d: crates/bench/benches/fig9_burst_rules.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_burst_rules-a908603a6ee9aee8.rmeta: crates/bench/benches/fig9_burst_rules.rs Cargo.toml

crates/bench/benches/fig9_burst_rules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
