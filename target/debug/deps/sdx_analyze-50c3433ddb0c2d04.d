/root/repo/target/debug/deps/sdx_analyze-50c3433ddb0c2d04.d: crates/analyze/src/lib.rs crates/analyze/src/conflict.rs crates/analyze/src/loops.rs crates/analyze/src/shadow.rs crates/analyze/src/vnh.rs Cargo.toml

/root/repo/target/debug/deps/libsdx_analyze-50c3433ddb0c2d04.rmeta: crates/analyze/src/lib.rs crates/analyze/src/conflict.rs crates/analyze/src/loops.rs crates/analyze/src/shadow.rs crates/analyze/src/vnh.rs Cargo.toml

crates/analyze/src/lib.rs:
crates/analyze/src/conflict.rs:
crates/analyze/src/loops.rs:
crates/analyze/src/shadow.rs:
crates/analyze/src/vnh.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
