/root/repo/target/debug/deps/sdx_cli-b190b4c2ccc8b67a.d: src/bin/sdx-cli.rs

/root/repo/target/debug/deps/sdx_cli-b190b4c2ccc8b67a: src/bin/sdx-cli.rs

src/bin/sdx-cli.rs:
