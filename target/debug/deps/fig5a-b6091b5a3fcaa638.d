/root/repo/target/debug/deps/fig5a-b6091b5a3fcaa638.d: crates/bench/src/bin/fig5a.rs

/root/repo/target/debug/deps/fig5a-b6091b5a3fcaa638: crates/bench/src/bin/fig5a.rs

crates/bench/src/bin/fig5a.rs:

# env-dep:CARGO=/root/.rustup/toolchains/stable-x86_64-unknown-linux-gnu/bin/cargo
