/root/repo/target/debug/deps/fig7-70220242c614d2f7.d: crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-70220242c614d2f7.rmeta: crates/bench/src/bin/fig7.rs Cargo.toml

crates/bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
