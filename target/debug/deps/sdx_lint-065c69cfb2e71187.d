/root/repo/target/debug/deps/sdx_lint-065c69cfb2e71187.d: src/bin/sdx-lint.rs

/root/repo/target/debug/deps/sdx_lint-065c69cfb2e71187: src/bin/sdx-lint.rs

src/bin/sdx-lint.rs:
