/root/repo/target/debug/deps/fig7-3a82297a90ad87ea.d: crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-3a82297a90ad87ea.rmeta: crates/bench/src/bin/fig7.rs Cargo.toml

crates/bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
