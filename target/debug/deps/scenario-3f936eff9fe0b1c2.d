/root/repo/target/debug/deps/scenario-3f936eff9fe0b1c2.d: tests/scenario.rs

/root/repo/target/debug/deps/scenario-3f936eff9fe0b1c2: tests/scenario.rs

tests/scenario.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
