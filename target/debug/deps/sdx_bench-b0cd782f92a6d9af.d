/root/repo/target/debug/deps/sdx_bench-b0cd782f92a6d9af.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/sdx_bench-b0cd782f92a6d9af: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
