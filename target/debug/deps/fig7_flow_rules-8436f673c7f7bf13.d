/root/repo/target/debug/deps/fig7_flow_rules-8436f673c7f7bf13.d: crates/bench/benches/fig7_flow_rules.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_flow_rules-8436f673c7f7bf13.rmeta: crates/bench/benches/fig7_flow_rules.rs Cargo.toml

crates/bench/benches/fig7_flow_rules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
