/root/repo/target/debug/deps/sdx_lint-79a3c10144ba0ebc.d: src/bin/sdx-lint.rs

/root/repo/target/debug/deps/sdx_lint-79a3c10144ba0ebc: src/bin/sdx-lint.rs

src/bin/sdx-lint.rs:
