/root/repo/target/debug/deps/sdx_bgp-c3ce6cacc6fbc37e.d: crates/bgp/src/lib.rs crates/bgp/src/aspath_pattern.rs crates/bgp/src/decision.rs crates/bgp/src/export.rs crates/bgp/src/rib.rs crates/bgp/src/route.rs crates/bgp/src/route_server.rs crates/bgp/src/rpki.rs crates/bgp/src/session.rs crates/bgp/src/types.rs crates/bgp/src/wire.rs

/root/repo/target/debug/deps/sdx_bgp-c3ce6cacc6fbc37e: crates/bgp/src/lib.rs crates/bgp/src/aspath_pattern.rs crates/bgp/src/decision.rs crates/bgp/src/export.rs crates/bgp/src/rib.rs crates/bgp/src/route.rs crates/bgp/src/route_server.rs crates/bgp/src/rpki.rs crates/bgp/src/session.rs crates/bgp/src/types.rs crates/bgp/src/wire.rs

crates/bgp/src/lib.rs:
crates/bgp/src/aspath_pattern.rs:
crates/bgp/src/decision.rs:
crates/bgp/src/export.rs:
crates/bgp/src/rib.rs:
crates/bgp/src/route.rs:
crates/bgp/src/route_server.rs:
crates/bgp/src/rpki.rs:
crates/bgp/src/session.rs:
crates/bgp/src/types.rs:
crates/bgp/src/wire.rs:
