/root/repo/target/debug/deps/sdx-c007ec8dcebe1f14.d: src/lib.rs src/scenario.rs

/root/repo/target/debug/deps/sdx-c007ec8dcebe1f14: src/lib.rs src/scenario.rs

src/lib.rs:
src/scenario.rs:
