/root/repo/target/debug/deps/sdx_policy-abb6b5bdafbb210b.d: crates/policy/src/lib.rs crates/policy/src/classifier.rs crates/policy/src/compile.rs crates/policy/src/cover.rs crates/policy/src/field.rs crates/policy/src/intern.rs crates/policy/src/matcher.rs crates/policy/src/packet.rs crates/policy/src/parser.rs crates/policy/src/pattern.rs crates/policy/src/policy.rs crates/policy/src/predicate.rs Cargo.toml

/root/repo/target/debug/deps/libsdx_policy-abb6b5bdafbb210b.rmeta: crates/policy/src/lib.rs crates/policy/src/classifier.rs crates/policy/src/compile.rs crates/policy/src/cover.rs crates/policy/src/field.rs crates/policy/src/intern.rs crates/policy/src/matcher.rs crates/policy/src/packet.rs crates/policy/src/parser.rs crates/policy/src/pattern.rs crates/policy/src/policy.rs crates/policy/src/predicate.rs Cargo.toml

crates/policy/src/lib.rs:
crates/policy/src/classifier.rs:
crates/policy/src/compile.rs:
crates/policy/src/cover.rs:
crates/policy/src/field.rs:
crates/policy/src/intern.rs:
crates/policy/src/matcher.rs:
crates/policy/src/packet.rs:
crates/policy/src/parser.rs:
crates/policy/src/pattern.rs:
crates/policy/src/policy.rs:
crates/policy/src/predicate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
