/root/repo/target/debug/deps/sdx_cli-e541bbf7ba61baa2.d: src/bin/sdx-cli.rs Cargo.toml

/root/repo/target/debug/deps/libsdx_cli-e541bbf7ba61baa2.rmeta: src/bin/sdx-cli.rs Cargo.toml

src/bin/sdx-cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
