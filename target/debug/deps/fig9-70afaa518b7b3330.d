/root/repo/target/debug/deps/fig9-70afaa518b7b3330.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-70afaa518b7b3330: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
