/root/repo/target/debug/deps/fig10-75c6877f4c6746f6.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-75c6877f4c6746f6: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
