/root/repo/target/debug/deps/table1_workload-6bc8a141c731481b.d: crates/bench/benches/table1_workload.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_workload-6bc8a141c731481b.rmeta: crates/bench/benches/table1_workload.rs Cargo.toml

crates/bench/benches/table1_workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
