//! The paper's first deployment experiment (Figure 4a / 5a):
//! application-specific peering with a BGP route withdrawal.
//!
//! AS C hosts a client sending three 1-Mbps UDP flows towards an AWS-hosted
//! prefix reachable via both AS A and AS B. At t=565 s, C installs a policy
//! diverting port-80 traffic via B; at t=1253 s, B withdraws its route
//! (emulating a failure), and the SDX shifts everything back to A — keeping
//! the data plane in sync with BGP.
//!
//! Run with: `cargo run --example app_specific_peering`

use std::net::Ipv4Addr;

use sdx::bgp::{AsPath, Asn, PathAttributes};
use sdx::core::{
    Clause, FabricSim, Participant, ParticipantId, ParticipantPolicy, PortConfig, SdxRuntime,
};
use sdx::ip::MacAddr;
use sdx::policy::{match_, Field};
use sdx::workload::{render_series, run_timeline, FlowSpec, TimelineEvent, TrafficBin};

const A: ParticipantId = ParticipantId(1);
const B: ParticipantId = ParticipantId(2);
const C: ParticipantId = ParticipantId(3);
const AWS_PREFIX: &str = "54.0.0.0/16";

fn port(n: u32, ip_last: u8) -> PortConfig {
    PortConfig {
        port: n,
        mac: MacAddr::from_u64(0x0a00_0000_0000 + n as u64),
        ip: Ipv4Addr::new(172, 0, 0, ip_last),
    }
}

fn main() {
    let mut sdx = SdxRuntime::default();
    sdx.add_participant(Participant::new(A, Asn(65001), vec![port(1, 11)]));
    sdx.add_participant(Participant::new(B, Asn(65002), vec![port(2, 21)]));
    sdx.add_participant(Participant::new(C, Asn(65003), vec![port(3, 31)]));

    // Both transits reach the AWS prefix; A's shorter path makes it default.
    let aws: sdx::ip::Prefix = AWS_PREFIX.parse().unwrap();
    sdx.announce(
        A,
        [aws],
        PathAttributes::new(
            AsPath::sequence([65001, 14618]),
            Ipv4Addr::new(172, 0, 0, 11),
        ),
    );
    sdx.announce(
        B,
        [aws],
        PathAttributes::new(
            AsPath::sequence([65002, 2, 14618]),
            Ipv4Addr::new(172, 0, 0, 21),
        ),
    );
    sdx.compile().expect("initial compilation");

    let mut sim = FabricSim::new(sdx);

    // The client's three 1-Mbps UDP flows: one on port 80, two on others.
    let flow = |dst_port: u16| FlowSpec {
        from: C,
        src: Ipv4Addr::new(204, 57, 0, 67),
        dst: Ipv4Addr::new(54, 0, 13, 37),
        src_port: 40_000 + dst_port,
        dst_port,
        rate_mbps: 1.0,
    };
    let flows = [flow(80), flow(4321), flow(8642)];

    let events = vec![
        // t=565 s: C installs the application-specific peering policy.
        TimelineEvent::at(565, |sim: &mut FabricSim| {
            println!("# t=565: installing application-specific peering policy (port 80 via B)");
            sim.runtime_mut().set_policy(
                C,
                ParticipantPolicy::new().outbound(Clause::fwd(match_(Field::DstPort, 80u16), B)),
            );
            sim.runtime_mut().compile().expect("recompilation");
        }),
        // t=1253 s: B withdraws its route to AWS.
        TimelineEvent::at(1253, |sim: &mut FabricSim| {
            println!("# t=1253: AS B withdraws its route to {AWS_PREFIX}");
            sim.runtime_mut().withdraw(B, [AWS_PREFIX.parse().unwrap()]);
        }),
    ];

    let bins = run_timeline(&mut sim, &flows, events, 1800, 30);

    let via = |id: ParticipantId| {
        move |b: &TrafficBin| b.mbps_by_participant.get(&id).copied().unwrap_or(0.0)
    };
    println!("# Figure 5a — traffic rate by egress AS (Mbps)");
    print!(
        "{}",
        render_series(
            &bins,
            &[
                ("via_AS_A", Box::new(via(A))),
                ("via_AS_B", Box::new(via(B)))
            ]
        )
    );

    // Sanity summary.
    let at = |t: u64| bins.iter().find(|b| b.t_s == t).unwrap();
    assert_eq!(via(A)(at(0)), 3.0, "all traffic via A before the policy");
    assert_eq!(via(B)(at(600)), 1.0, "port-80 flow via B after the policy");
    assert_eq!(via(A)(at(600)), 2.0);
    assert_eq!(
        via(A)(at(1290)),
        3.0,
        "everything back via A after withdrawal"
    );
    println!("# shape check passed: 3.0 → (2.0 via A + 1.0 via B) → 3.0 via A");
}
