//! Redirection through middleboxes (§2, §3.2): steer all traffic *from*
//! video-provider prefixes — found with the paper's
//! `RIB.filter('as_path', '.*43515$')` idiom — through a transcoding box
//! attached to the exchange, without BGP hijacking.
//!
//! Run with: `cargo run --example middlebox_steering`

use std::net::Ipv4Addr;

use sdx::bgp::{AsPath, AsPathPattern, Asn, PathAttributes};
use sdx::core::{
    Clause, FabricSim, Participant, ParticipantId, ParticipantPolicy, PortConfig, SdxRuntime,
};
use sdx::ip::MacAddr;
use sdx::policy::{Field, Packet, Predicate};

const A: ParticipantId = ParticipantId(1); // eyeball installing the policy
const B: ParticipantId = ParticipantId(2); // transit carrying video routes
const C: ParticipantId = ParticipantId(3); // transit carrying other routes
const MBOX: ParticipantId = ParticipantId(9); // the middlebox "participant"
const YOUTUBE_ASN: u32 = 43515;

fn port(n: u32, ip_last: u8) -> PortConfig {
    PortConfig {
        port: n,
        mac: MacAddr::from_u64(0x0a00_0000_0000 + n as u64),
        ip: Ipv4Addr::new(172, 0, 0, ip_last),
    }
}

fn main() {
    let mut sdx = SdxRuntime::default();
    sdx.add_participant(Participant::new(A, Asn(65001), vec![port(1, 11)]));
    sdx.add_participant(Participant::new(B, Asn(65002), vec![port(2, 21)]));
    sdx.add_participant(Participant::new(C, Asn(65003), vec![port(3, 31)]));
    sdx.add_participant(Participant::new(MBOX, Asn(64512), vec![port(8, 81)]));

    // B carries routes originated by the video AS; C carries the rest.
    sdx.announce(
        B,
        [
            "208.65.152.0/22".parse().unwrap(),
            "208.117.224.0/19".parse().unwrap(),
        ],
        PathAttributes::new(
            AsPath::sequence([65002, 3356, YOUTUBE_ASN]),
            Ipv4Addr::new(172, 0, 0, 21),
        ),
    );
    sdx.announce(
        C,
        ["93.184.216.0/24".parse().unwrap()],
        PathAttributes::new(
            AsPath::sequence([65003, 15133]),
            Ipv4Addr::new(172, 0, 0, 31),
        ),
    );

    // The policy idiom from §3.2:
    //   YouTubePrefixes = RIB.filter('as_path', .*43515$)
    //   match(srcip={YouTubePrefixes}) >> fwd(E1)
    let pattern: AsPathPattern = format!(".*{YOUTUBE_ASN}$").parse().unwrap();
    let video_prefixes = sdx.route_server().filter_as_path(&pattern);
    println!("video prefixes (AS path ~ {pattern}): {video_prefixes}");

    sdx.set_policy(
        A,
        ParticipantPolicy::new().outbound(
            Clause::fwd(Predicate::in_prefixes(Field::SrcIp, video_prefixes), MBOX).unfiltered(),
        ),
    );
    sdx.compile().expect("compiles");

    let mut sim = FabricSim::new(sdx);
    sim.sync();

    let mut send = |src: &str, dst: &str| {
        let pkt = Packet::new()
            .with(Field::EthType, 0x0800u16)
            .with(Field::IpProto, 6u8)
            .with(Field::SrcIp, src.parse::<Ipv4Addr>().unwrap())
            .with(Field::DstIp, dst.parse::<Ipv4Addr>().unwrap())
            .with(Field::SrcPort, 443u16)
            .with(Field::DstPort, 50_000u16);
        let out = sim.send_from(A, pkt);
        let to = out
            .first()
            .map(|d| format!("{}", d.to))
            .unwrap_or_else(|| "dropped".into());
        println!("src {src:>16} dst {dst:>16} -> {to}");
        out.first().map(|d| d.to)
    };

    println!("\nsteering decisions for A's outbound traffic:");
    // Video traffic (response traffic from YouTube servers) → middlebox.
    let steered = send("208.65.153.10", "93.184.216.34");
    // Ordinary traffic → normal BGP forwarding via C.
    let normal = send("198.51.100.7", "93.184.216.34");

    assert_eq!(steered, Some(MBOX));
    assert_eq!(normal, Some(C));
    println!("\nmiddlebox steering verified: video sources transit the box, the rest do not");
}
