//! Quickstart: build a three-participant SDX, install the paper's
//! application-specific peering policy, and watch packets take
//! policy-chosen paths through the compiled fabric.
//!
//! Run with: `cargo run --example quickstart`

use std::net::Ipv4Addr;

use sdx::bgp::{AsPath, Asn, PathAttributes};
use sdx::core::{
    Clause, FabricSim, Participant, ParticipantId, ParticipantPolicy, PortConfig, SdxRuntime,
};
use sdx::ip::MacAddr;
use sdx::policy::{match_, Field, Packet};

fn port(n: u32, ip_last: u8) -> PortConfig {
    PortConfig {
        port: n,
        mac: MacAddr::from_u64(0x0a00_0000_0000 + n as u64),
        ip: Ipv4Addr::new(172, 0, 0, ip_last),
    }
}

fn main() {
    let a = ParticipantId(1);
    let b = ParticipantId(2);
    let c = ParticipantId(3);

    // 1. The exchange: three ASes, each with a border router on one port.
    let mut sdx = SdxRuntime::default();
    sdx.add_participant(Participant::new(a, Asn(65001), vec![port(1, 11)]));
    sdx.add_participant(Participant::new(b, Asn(65002), vec![port(2, 21)]));
    sdx.add_participant(Participant::new(c, Asn(65003), vec![port(3, 31)]));

    // 2. BGP: B and C both announce 20.0.0.0/8; C's path is shorter, so C is
    //    the default next hop.
    sdx.announce(
        b,
        ["20.0.0.0/8".parse().unwrap()],
        PathAttributes::new(
            AsPath::sequence([65002, 64999]),
            Ipv4Addr::new(172, 0, 0, 21),
        ),
    );
    sdx.announce(
        c,
        ["20.0.0.0/8".parse().unwrap()],
        PathAttributes::new(AsPath::sequence([65003]), Ipv4Addr::new(172, 0, 0, 31)),
    );

    // 3. A's application-specific peering policy (Figure 1a of the paper):
    //    web traffic via B; everything else follows BGP (via C).
    sdx.set_policy(
        a,
        ParticipantPolicy::new().outbound(Clause::fwd(match_(Field::DstPort, 80u16), b)),
    );

    // 4. Compile: policies + BGP → one flow table.
    let stats = sdx.compile().expect("compiles");
    println!(
        "compiled {} fabric rules, {} prefix groups, in {} µs",
        stats.rules, stats.groups, stats.duration_us
    );
    println!("\nflow table:\n{}", sdx.switch().table());

    // 5. Send traffic through the simulated fabric.
    let mut sim = FabricSim::new(sdx);
    sim.sync();

    let send = |sim: &mut FabricSim, dport: u16| {
        let pkt = Packet::new()
            .with(Field::EthType, 0x0800u16)
            .with(Field::IpProto, 6u8)
            .with(Field::SrcIp, Ipv4Addr::new(10, 0, 0, 1))
            .with(Field::DstIp, Ipv4Addr::new(20, 0, 0, 1))
            .with(Field::SrcPort, 5555u16)
            .with(Field::DstPort, dport);
        let out = sim.send_from(a, pkt);
        let to = out
            .first()
            .map(|d| format!("{}", d.to))
            .unwrap_or_else(|| "dropped".into());
        println!("dstport {dport:>5} -> {to}");
    };

    println!("\nforwarding decisions for A's traffic to 20.0.0.1:");
    send(&mut sim, 80); // policy: via B
    send(&mut sim, 443); // default: via C
    send(&mut sim, 22); // default: via C
}
