//! The paper's second deployment experiment (Figure 4b / 5b): wide-area
//! server load balancing by a *remote* participant.
//!
//! An AWS tenant with no physical presence at the exchange announces an
//! anycast service prefix through the SDX and, at t=246 s, installs a policy
//! rewriting request destinations by client source — splitting load across
//! two server instances reachable via different transits.
//!
//! Run with: `cargo run --example wide_area_load_balancer`

use std::net::Ipv4Addr;

use sdx::bgp::{AsPath, Asn, PathAttributes};
use sdx::core::{
    Clause, Dest, FabricSim, Participant, ParticipantId, ParticipantPolicy, PortConfig, SdxRuntime,
};
use sdx::ip::MacAddr;
use sdx::policy::Field;
use sdx::workload::{render_series, run_timeline, FlowSpec, TimelineEvent, TrafficBin};

const A: ParticipantId = ParticipantId(1); // eyeball hosting the clients
const B: ParticipantId = ParticipantId(2); // transit to instance #1
const C: ParticipantId = ParticipantId(3); // transit to instance #2
const TENANT: ParticipantId = ParticipantId(4); // remote AWS tenant

const ANYCAST: &str = "74.125.1.0/24";
const INSTANCE_1: &str = "52.10.0.10";
const INSTANCE_2: &str = "52.20.0.20";

fn port(n: u32, ip_last: u8) -> PortConfig {
    PortConfig {
        port: n,
        mac: MacAddr::from_u64(0x0a00_0000_0000 + n as u64),
        ip: Ipv4Addr::new(172, 0, 0, ip_last),
    }
}

fn main() {
    let mut sdx = SdxRuntime::default();
    sdx.add_participant(Participant::new(A, Asn(65001), vec![port(1, 11)]));
    sdx.add_participant(Participant::new(B, Asn(65002), vec![port(2, 21)]));
    sdx.add_participant(Participant::new(C, Asn(65003), vec![port(3, 31)]));
    sdx.add_participant(Participant::remote(TENANT, Asn(64500)));

    // Transits reach the two instance prefixes.
    sdx.announce(
        B,
        ["52.10.0.0/16".parse().unwrap()],
        PathAttributes::new(
            AsPath::sequence([65002, 16509]),
            Ipv4Addr::new(172, 0, 0, 21),
        ),
    );
    sdx.announce(
        C,
        ["52.20.0.0/16".parse().unwrap()],
        PathAttributes::new(
            AsPath::sequence([65003, 16509]),
            Ipv4Addr::new(172, 0, 0, 31),
        ),
    );
    // The tenant announces the anycast service prefix *through the SDX*.
    sdx.announce(
        TENANT,
        [ANYCAST.parse().unwrap()],
        PathAttributes::new(AsPath::sequence([64500]), Ipv4Addr::new(172, 0, 0, 99)),
    );

    // Initially every request goes to instance #1.
    let initial = ParticipantPolicy::new().inbound(Clause {
        match_: sdx::policy::Predicate::True,
        dst_prefixes: Some([ANYCAST.parse().unwrap()].into_iter().collect()),
        rewrites: vec![(
            Field::DstIp,
            u32::from(INSTANCE_1.parse::<Ipv4Addr>().unwrap()) as u64,
        )],
        dest: Dest::BgpDefault,
        unfiltered: false,
    });
    sdx.set_policy(TENANT, initial);
    sdx.compile().expect("initial compilation");

    let mut sim = FabricSim::new(sdx);

    // Three client flows towards the anycast address; one client
    // (204.57.0.67) will be shifted to instance #2.
    let flow = |src: [u8; 4], sport: u16| FlowSpec {
        from: A,
        src: Ipv4Addr::from(src),
        dst: "74.125.1.1".parse().unwrap(),
        src_port: sport,
        dst_port: 80,
        rate_mbps: 1.0,
    };
    let flows = [
        flow([204, 57, 0, 67], 1001),
        flow([10, 8, 0, 5], 1002),
        flow([10, 9, 0, 6], 1003),
    ];

    let events = vec![TimelineEvent::at(246, |sim: &mut FabricSim| {
        println!("# t=246: tenant installs the wide-area load-balance policy");
        let balanced = ParticipantPolicy::new()
            // The shifted client goes to instance #2...
            .inbound(Clause {
                match_: sdx::policy::Predicate::test_prefix(
                    Field::SrcIp,
                    "204.57.0.0/16".parse().unwrap(),
                ),
                dst_prefixes: Some([ANYCAST.parse().unwrap()].into_iter().collect()),
                rewrites: vec![(
                    Field::DstIp,
                    u32::from(INSTANCE_2.parse::<Ipv4Addr>().unwrap()) as u64,
                )],
                dest: Dest::BgpDefault,
                unfiltered: false,
            })
            // ...everyone else stays on instance #1.
            .inbound(Clause {
                match_: sdx::policy::Predicate::True,
                dst_prefixes: Some([ANYCAST.parse().unwrap()].into_iter().collect()),
                rewrites: vec![(
                    Field::DstIp,
                    u32::from(INSTANCE_1.parse::<Ipv4Addr>().unwrap()) as u64,
                )],
                dest: Dest::BgpDefault,
                unfiltered: false,
            });
        sim.runtime_mut().set_policy(TENANT, balanced);
        sim.runtime_mut().compile().expect("recompilation");
    })];

    let bins = run_timeline(&mut sim, &flows, events, 600, 15);

    let inst = |ip: &'static str| {
        move |b: &TrafficBin| {
            b.mbps_by_destination
                .get(&ip.parse::<Ipv4Addr>().unwrap())
                .copied()
                .unwrap_or(0.0)
        }
    };
    println!("# Figure 5b — traffic rate by AWS instance (Mbps)");
    print!(
        "{}",
        render_series(
            &bins,
            &[
                ("instance_1", Box::new(inst(INSTANCE_1))),
                ("instance_2", Box::new(inst(INSTANCE_2))),
            ],
        )
    );

    let at = |t: u64| bins.iter().find(|b| b.t_s == t).unwrap();
    assert_eq!(inst(INSTANCE_1)(at(0)), 3.0);
    assert_eq!(inst(INSTANCE_2)(at(0)), 0.0);
    assert_eq!(inst(INSTANCE_1)(at(255)), 2.0);
    assert_eq!(inst(INSTANCE_2)(at(255)), 1.0);
    println!("# shape check passed: (3.0, 0.0) → (2.0, 1.0) at the policy install");
}
