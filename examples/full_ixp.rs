//! A full synthetic IXP, end to end: generate an AMS-IX-shaped exchange
//! with the paper's §6.1 policy mix, compile it, replay a BGP update trace
//! through the fast path, reoptimize in the background, and report the
//! resulting traffic matrix — the whole system in one program.
//!
//! Run with: `cargo run --release --example full_ixp`

use std::net::Ipv4Addr;

use sdx::core::{FabricSim, SdxRuntime};
use sdx::policy::{Field, Packet};
use sdx::workload::{
    analyze_feed, generate_policies, generate_trace, table_sizes, IxpProfile, IxpTopology,
    ResetDetector, TraceConfig,
};

fn main() {
    // 1. A 60-member exchange announcing 2 000 prefixes with realistic skew.
    let topology = IxpTopology::generate(IxpProfile::ams_ix(60, 2_000), 42);
    println!(
        "exchange: {} members, {} prefixes (top 1% announce {:.0}%)",
        topology.participants.len(),
        topology.all_prefixes().len(),
        100.0 * topology.top_share(0.01),
    );

    // 2. The §6.1 policy mix.
    let mix = generate_policies(&topology, 42);
    println!(
        "policies: {} participants install {} clauses",
        mix.policies.len(),
        mix.clauses
    );

    // 3. Compile.
    let mut sdx = SdxRuntime::default();
    topology.install(&mut sdx);
    for (id, policy) in &mix.policies {
        sdx.set_policy(*id, policy.clone());
    }
    let stats = sdx.compile().expect("compiles");
    println!(
        "compiled: {} rules, {} prefix groups, {} policy sets, {:.1} ms",
        stats.rules,
        stats.groups,
        stats.policy_sets,
        stats.duration_us as f64 / 1_000.0
    );

    // 4. A two-hour update trace, analyzed with the Table 1 methodology and
    //    replayed through the fast path.
    let trace = generate_trace(
        &topology,
        TraceConfig {
            duration_s: 7_200,
            ..Default::default()
        },
        42,
    );
    let analysis = analyze_feed(
        &trace.events,
        &table_sizes(&topology),
        ResetDetector::default(),
    );
    println!(
        "trace: {} change events over 2h ({} raw updates modeled), {} prefixes touched, {} discarded as resets",
        trace.updates, trace.raw_updates, analysis.prefixes_updated, analysis.discarded_updates
    );

    let mut sim = FabricSim::new(sdx);
    sim.sync();
    for event in &trace.events {
        sim.runtime_mut().apply_update(event.from, &event.update);
    }
    sim.sync();
    let inc = sim.runtime().incremental_stats();
    println!(
        "fast path: {} updates processed, {} overlay rules pending, last update took {} µs",
        inc.updates, inc.overlay_rules, inc.last_update_us
    );

    // 5. Background reoptimization coalesces the overlays.
    let stats = sim.runtime_mut().reoptimize().expect("reoptimizes");
    sim.sync();
    println!(
        "reoptimized: back to {} rules ({} receiver blocks from cache)",
        stats.rules, stats.memo_hits
    );

    // 6. Send a sample of traffic and print the busiest matrix entries.
    let members: Vec<_> = topology.participants.iter().map(|p| p.id).collect();
    for &from in members.iter().take(20) {
        let own = topology.announced_by(from);
        for &to in members.iter().take(10) {
            if from == to {
                continue;
            }
            for prefix in topology.announced_by(to).difference(&own).iter().take(2) {
                let pkt = Packet::new()
                    .with(Field::EthType, 0x0800u16)
                    .with(Field::IpProto, 6u8)
                    .with(Field::SrcIp, Ipv4Addr::new(198, 51, 100, 1))
                    .with(Field::DstIp, prefix.first_addr())
                    .with(Field::SrcPort, 40_000u16)
                    .with(Field::DstPort, 80u16);
                sim.send_from(from, pkt);
            }
        }
    }
    let mut matrix: Vec<_> = sim
        .traffic_matrix()
        .iter()
        .map(|((a, b), n)| (*n, *a, *b))
        .collect();
    matrix.sort_by_key(|x| std::cmp::Reverse(x.0));
    println!("\nbusiest traffic-matrix entries (packets):");
    for (n, a, b) in matrix.iter().take(8) {
        println!("  {a} -> {b}: {n}");
    }
    let switch = sim.runtime().switch().stats();
    println!(
        "\nswitch: {} received, {} forwarded, {} dropped, {} misdirected",
        switch.received, switch.forwarded, switch.dropped, switch.misdirected
    );
    assert_eq!(switch.misdirected, 0);
    println!("\nall traffic forwarded consistently with policies and BGP");
}
