//! Inbound traffic engineering (§2, §3.1): a multi-homed eyeball AS steers
//! traffic across its two SDX ports by source prefix — direct control that
//! BGP can only approximate with AS-path prepending or selective
//! advertisements.
//!
//! Run with: `cargo run --example inbound_traffic_engineering`

use std::net::Ipv4Addr;

use sdx::bgp::{AsPath, Asn, PathAttributes};
use sdx::core::{
    Clause, FabricSim, Participant, ParticipantId, ParticipantPolicy, PortConfig, SdxRuntime,
};
use sdx::ip::MacAddr;
use sdx::policy::{match_prefix, Field, Packet};

const A: ParticipantId = ParticipantId(1); // content sender
const B: ParticipantId = ParticipantId(2); // multi-homed eyeball
const C: ParticipantId = ParticipantId(3); // another sender

fn port(n: u32, ip_last: u8) -> PortConfig {
    PortConfig {
        port: n,
        mac: MacAddr::from_u64(0x0a00_0000_0000 + n as u64),
        ip: Ipv4Addr::new(172, 0, 0, ip_last),
    }
}

fn main() {
    let mut sdx = SdxRuntime::default();
    sdx.add_participant(Participant::new(A, Asn(65001), vec![port(1, 11)]));
    // B attaches with two ports, B1 and B2.
    sdx.add_participant(Participant::new(
        B,
        Asn(65002),
        vec![port(2, 21), port(3, 22)],
    ));
    sdx.add_participant(Participant::new(C, Asn(65003), vec![port(4, 31)]));

    sdx.announce(
        B,
        ["20.0.0.0/8".parse().unwrap()],
        PathAttributes::new(AsPath::sequence([65002]), Ipv4Addr::new(172, 0, 0, 21)),
    );

    // B's inbound policy from Figure 1a: low source halves to B1 (port 2),
    // high halves to B2 (port 3).
    sdx.set_policy(
        B,
        ParticipantPolicy::new()
            .inbound(Clause::to_port(
                match_prefix(Field::SrcIp, "0.0.0.0/1".parse().unwrap()),
                2,
            ))
            .inbound(Clause::to_port(
                match_prefix(Field::SrcIp, "128.0.0.0/1".parse().unwrap()),
                3,
            )),
    );
    let stats = sdx.compile().expect("compiles");
    println!("compiled {} rules for the exchange", stats.rules);

    let mut sim = FabricSim::new(sdx);
    sim.sync();

    let mut send = |from: ParticipantId, src: [u8; 4]| {
        let pkt = Packet::new()
            .with(Field::EthType, 0x0800u16)
            .with(Field::IpProto, 6u8)
            .with(Field::SrcIp, Ipv4Addr::from(src))
            .with(Field::DstIp, Ipv4Addr::new(20, 0, 0, 1))
            .with(Field::SrcPort, 999u16)
            .with(Field::DstPort, 80u16);
        let out = sim.send_from(from, pkt);
        let where_ = out
            .first()
            .map(|d| format!("{} port {}", d.to, d.port))
            .unwrap_or_else(|| "dropped".into());
        println!("from {from} src {:>15} -> {where_}", Ipv4Addr::from(src));
        out.first().map(|d| d.port)
    };

    println!("\ninbound engineering decisions for traffic to 20.0.0.1:");
    let p1 = send(A, [10, 0, 0, 1]); // low half  -> B1 (port 2)
    let p2 = send(A, [200, 0, 0, 1]); // high half -> B2 (port 3)
    let p3 = send(C, [64, 10, 0, 1]); // applies to every sender
    let p4 = send(C, [130, 0, 0, 1]);

    assert_eq!(p1, Some(2));
    assert_eq!(p2, Some(3));
    assert_eq!(p3, Some(2));
    assert_eq!(p4, Some(3));
    println!("\ninbound TE verified: sources split across B's two ports");
}
