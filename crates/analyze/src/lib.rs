//! Static verification of a compiled SDX policy, run before any flow rule
//! reaches the fabric.
//!
//! The SDX compiler (§4 of the paper) is trusted to translate faithfully —
//! but a faithful translation of a *defective* policy still installs
//! defective rules. This crate analyzes the compiler's output together with
//! a summary of its input and reports [`Diagnostic`]s from four passes:
//!
//! 1. **Shadow** ([`shadow`]) — participant clauses and compiled rules that
//!    no packet can reach because the *union* of earlier entries covers
//!    them (multi-rule cover, beyond pairwise subsumption).
//! 2. **Conflict / blackhole** ([`conflict`]) — cross-participant
//!    contradictions: A forwards traffic that B's inbound policy drops; A
//!    forwards towards a peer that never advertised a matching prefix (the
//!    paper's BGP-safety invariant, §4.3); traffic steered at a remote
//!    participant that its inbound clauses don't catch.
//! 3. **Loop** ([`loops`]) — cycles in the virtual-switch forwarding graph,
//!    and compiled rules whose egress is an unresolved virtual port.
//! 4. **VNH / ARP** ([`vnh`]) — every VMAC the flow table matches on must
//!    trace back to an allocated virtual next hop (and, when ARP state is
//!    supplied, an ARP binding); allocated VNHs must be distinct.
//!
//! Findings carry provenance (participant, clause, rule index) and, where
//! the defect is about concrete traffic, a **witness packet** constructed by
//! the region analysis in [`sdx_policy::witness_outside`] — a counterexample
//! the packet interpreter can replay.
//!
//! The crate deliberately depends only on `sdx-policy` and `sdx-ip`: the
//! controller (`sdx-core`) converts its richer state into an
//! [`AnalysisInput`] and gates installation on the result.

use std::collections::BTreeSet;
use std::fmt;
use std::net::Ipv4Addr;

use sdx_policy::{Classifier, Field, Match, Packet};
use serde::{Deserialize, Serialize};

pub mod conflict;
pub mod diff;
pub mod hs;
pub mod loops;
pub mod reach;
pub mod shadow;
pub mod vnh;

pub use diff::{DiffReport, DiffSide};
pub use reach::{FibEntry, FibModel, GroupBinding, ReachReport, ReachTimes, VerifyInput};

/// When the controller runs the analyzer, and what it does with errors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnalysisMode {
    /// Do not analyze (the default; compilation benchmarks measure the
    /// compiler alone).
    #[default]
    Off,
    /// Analyze and record diagnostics, but always install.
    Warn,
    /// Analyze and refuse to install if any [`Severity::Error`] is found.
    Deny,
}

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not traffic-harming (e.g. a redundant compiled rule).
    Warning,
    /// A policy defect: dead policy, dropped traffic, or inconsistent
    /// forwarding state. Blocks installation in [`AnalysisMode::Deny`].
    Error,
}

/// Which pass produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassKind {
    /// Reachability / shadow analysis.
    Shadow,
    /// Cross-participant conflict and blackhole detection.
    Conflict,
    /// Forwarding-loop detection.
    Loop,
    /// VNH / ARP consistency.
    Vnh,
    /// Whole-fabric BGP consistency / isolation (symbolic reachability).
    Isolation,
    /// Whole-fabric cross-stage blackhole detection (symbolic reachability).
    Blackhole,
    /// Whole-fabric VNH / FIB tag integrity.
    VnhIntegrity,
    /// Differential equivalence of an incremental recompile against a
    /// from-scratch compile.
    Differential,
    /// Update-plan safety: intermediate-state checking of rule-level install
    /// orderings (the `sdx-plan` gate).
    Plan,
}

impl fmt::Display for PassKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassKind::Shadow => write!(f, "shadow"),
            PassKind::Conflict => write!(f, "conflict"),
            PassKind::Loop => write!(f, "loop"),
            PassKind::Vnh => write!(f, "vnh"),
            PassKind::Isolation => write!(f, "isolation"),
            PassKind::Blackhole => write!(f, "blackhole"),
            PassKind::VnhIntegrity => write!(f, "vnh-integrity"),
            PassKind::Differential => write!(f, "differential"),
            PassKind::Plan => write!(f, "plan"),
        }
    }
}

/// Whether a clause is outbound or inbound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Applied where the participant's traffic enters the fabric.
    Outbound,
    /// Applied at the participant's virtual port.
    Inbound,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Outbound => write!(f, "outbound"),
            Direction::Inbound => write!(f, "inbound"),
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// The pass that found it.
    pub pass: PassKind,
    /// Stable machine-readable code, e.g. `"shadowed-clause"`.
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
    /// The participant the finding is about, if any.
    pub participant: Option<u32>,
    /// The clause it is anchored to (direction, index), if any.
    pub clause: Option<(Direction, usize)>,
    /// A concrete packet demonstrating the defect, if the finding is about
    /// traffic (replayable through the packet interpreter).
    pub witness: Option<Packet>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "{sev}[{}/{}]", self.pass, self.code)?;
        if let Some(p) = self.participant {
            write!(f, " P{p}")?;
        }
        if let Some((dir, i)) = self.clause {
            write!(f, " {dir} clause {i}")?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(w) = &self.witness {
            write!(f, " (witness: {w})")?;
        }
        Ok(())
    }
}

/// The analyzer's verdict: every finding, in pass order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Analysis {
    /// All findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl Analysis {
    /// Number of [`Severity::Error`] findings.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of [`Severity::Warning`] findings.
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Any install-blocking findings?
    pub fn has_errors(&self) -> bool {
        self.errors() > 0
    }

    /// Findings with a given code (test and tooling convenience).
    pub fn with_code<'a>(&'a self, code: &'a str) -> impl Iterator<Item = &'a Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.code == code)
    }

    /// Rendered messages of the error-severity findings.
    pub fn error_messages(&self) -> Vec<String> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(|d| d.to_string())
            .collect()
    }
}

/// Apply the install gate: `Err` with the rendered error findings when
/// `mode` is [`AnalysisMode::Deny`] and the analysis found errors.
pub fn gate(mode: AnalysisMode, analysis: &Analysis) -> Result<(), Vec<String>> {
    if mode == AnalysisMode::Deny && analysis.has_errors() {
        return Err(analysis.error_messages());
    }
    Ok(())
}

/// Where a clause sends matching traffic (mirror of the controller's
/// `Dest`, kept here so the analyzer does not depend on `sdx-core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClauseDest {
    /// To another participant's virtual switch.
    Participant(u32),
    /// To one of the author's own physical ports.
    OwnPort(u32),
    /// Dropped.
    Drop,
    /// Resolved against BGP at compile time.
    BgpDefault,
}

/// A participant clause, reduced to what the passes need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClauseInfo {
    /// The pass-matches of the clause's compiled predicate (its traffic
    /// region as a union of cubes; empty for a `False` predicate).
    pub matches: Vec<Match>,
    /// Where matching traffic goes.
    pub dest: ClauseDest,
    /// Field rewrites the clause applies, in order.
    pub rewrites: Vec<(Field, u64)>,
    /// Whether the clause bypasses the BGP-consistency filter.
    pub unfiltered: bool,
    /// For a filtered clause towards a participant: does the target export
    /// at least one in-scope prefix to the author? `None` when the question
    /// does not apply (drop/own-port/unfiltered) or was not computed.
    pub exports_match: Option<bool>,
}

/// A participant, reduced to what the passes need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParticipantInfo {
    /// Participant number (the controller's `ParticipantId`).
    pub id: u32,
    /// Its virtual port in the fabric's port namespace.
    pub vport: u32,
    /// Its physical fabric ports (empty for remote participants).
    pub ports: Vec<u32>,
    /// Its border routers' interface MACs, as raw 48-bit values.
    pub router_macs: Vec<u64>,
    /// Its outbound clauses, in priority order.
    pub outbound: Vec<ClauseInfo>,
    /// Its inbound clauses, in priority order.
    pub inbound: Vec<ClauseInfo>,
}

impl ParticipantInfo {
    /// Does the participant have a physical presence at the exchange?
    pub fn is_physical(&self) -> bool {
        !self.ports.is_empty()
    }
}

/// Everything the analyzer reads: compiled tables plus a summary of the
/// compiler's input. The controller builds this from its `Compilation`.
#[derive(Debug, Clone, Default)]
pub struct AnalysisInput {
    /// All participants.
    pub participants: Vec<ParticipantInfo>,
    /// The composed single-table fabric (ignored when `multi_table`).
    pub fabric: Classifier,
    /// The sender stage.
    pub stage1: Classifier,
    /// The receiver stage.
    pub stage2: Classifier,
    /// Allocated virtual next hops: (VNH IP, VMAC as a raw 48-bit value),
    /// parallel to the compiler's FEC groups.
    pub vnh: Vec<(Ipv4Addr, u64)>,
    /// IPs the ARP responder answers for, when known. `None` skips the ARP
    /// binding check (e.g. when analyzing before installation).
    pub arp_bound: Option<BTreeSet<Ipv4Addr>>,
    /// First port number of the virtual-port namespace.
    pub vport_base: u32,
    /// Compiled for a two-table pipeline (no composed fabric)?
    pub multi_table: bool,
}

impl AnalysisInput {
    /// The participant with the given id.
    pub fn participant(&self, id: u32) -> Option<&ParticipantInfo> {
        self.participants.iter().find(|p| p.id == id)
    }

    /// Is `port` in the virtual-port namespace?
    pub fn is_vport(&self, port: u64) -> bool {
        port >= self.vport_base as u64
    }
}

/// Run all four passes.
pub fn analyze(input: &AnalysisInput) -> Analysis {
    let mut analysis = Analysis::default();
    shadow::run(input, &mut analysis.diagnostics);
    conflict::run(input, &mut analysis.diagnostics);
    loops::run(input, &mut analysis.diagnostics);
    vnh::run(input, &mut analysis.diagnostics);
    analysis
}
