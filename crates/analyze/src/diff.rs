//! Differential equivalence: after an incremental recompile (fast-path
//! overlays from a BGP update, or a policy change), the running fabric must
//! be *packet-equivalent* to a from-scratch compile of the same inputs.
//!
//! Rule-for-rule comparison is hopeless — the fast path deliberately
//! installs different rules (fresh VNHs, overlay priorities) that are
//! supposed to behave identically. Instead the check is symbolic and
//! end-to-end, *modulo the VNH tag*: for every sender and destination
//! prefix, the frame the sender's router emits (tagged with that side's
//! MAC) must produce the same delivered frames through both fabrics, where
//! an un-rewritten echo of the injected tag itself is not a difference (tag
//! values are an allocation artifact, not semantics).
//!
//! Symbolic cross-comparison finds *candidate* mismatches — terminal-region
//! pairs with different outcomes — and every candidate is then confirmed by
//! replaying its witness packet through both pipelines with the concrete
//! interpreter, which kills false positives from overlapping multicast
//! terminals. Only concretely-confirmed differences are reported.

use std::collections::BTreeMap;

use sdx_ip::Prefix;
use sdx_policy::{Classifier, Field, Match, Packet, Pattern, Region};

use crate::hs::{self, Flow, TRANSIT_REGION_LIMIT};
use crate::reach::FibModel;
use crate::{Diagnostic, PassKind, Severity};

/// One side of the comparison: a fabric pipeline plus the FIB/ARP tagging
/// model that fronts it.
#[derive(Debug, Clone, Default)]
pub struct DiffSide {
    /// The fabric tables, traversal order.
    pub tables: Vec<Classifier>,
    /// Border-router models, one per physical participant.
    pub fibs: Vec<FibModel>,
}

impl DiffSide {
    fn fib(&self, participant: u32) -> Option<&FibModel> {
        self.fibs.iter().find(|f| f.participant == participant)
    }

    /// Concrete end-to-end evaluation: all frames the pipeline finally
    /// emits for `pkt`.
    fn evaluate(&self, pkt: &Packet) -> std::collections::BTreeSet<Packet> {
        let mut current: std::collections::BTreeSet<Packet> = [pkt.clone()].into();
        for table in &self.tables {
            let mut next = std::collections::BTreeSet::new();
            for p in &current {
                next.extend(table.evaluate(p));
            }
            current = next;
        }
        current
    }
}

/// A confirmed difference plus timing; [`run`] returns the diagnostics.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Confirmed differences (empty = the fabrics are packet-equivalent).
    pub diagnostics: Vec<Diagnostic>,
    /// Wall-clock of the whole differential pass, microseconds.
    pub duration_us: u64,
    /// Symbolic candidates that concrete replay refuted (observability:
    /// high numbers mean the symbolic pairing is too coarse).
    pub refuted_candidates: usize,
    /// Injections skipped because the symbolic transit saturated.
    pub undecided: usize,
}

/// The outcome label of one terminal: `None` = dropped, `Some(acc)` = the
/// accumulated rewrite of a forwarding exit. Equal labels cannot produce
/// different frames for the same packet (modulo the injected tag).
type Label = Option<sdx_policy::Action>;

/// A terminal of one side's transit, tag constraint projected away.
struct Terminal {
    region: Region,
    label: Label,
}

fn terminals(side: &DiffSide, port: u32, tag: u64) -> Option<Vec<Terminal>> {
    let region = Region::from_match(
        Match::on(Field::Port, Pattern::Exact(port as u64))
            .and(Field::DstMac, Pattern::Exact(tag))
            .expect("distinct fields"),
    );
    let result = hs::transit_pipeline(
        &side.tables,
        vec![Flow::new(region)],
        Field::DstMac,
        TRANSIT_REGION_LIMIT,
    );
    if result.saturated {
        return None;
    }
    let mut out = Vec::new();
    for (o, _) in result.outputs {
        out.push(Terminal {
            region: o.flow.region.without_field(Field::DstMac),
            label: Some(o.flow.acc),
        });
    }
    for (_, d) in result.drops {
        out.push(Terminal {
            region: d.region.without_field(Field::DstMac),
            label: None,
        });
    }
    Some(out)
}

/// Normalize a concrete output frame for modulo-tag comparison: an output
/// whose destination MAC is still the injected tag (never rewritten) drops
/// the field, so the two sides' distinct tag allocations compare equal.
fn normalize(mut pkt: Packet, injected_tag: u64) -> Packet {
    if pkt.get(Field::DstMac) == Some(injected_tag) {
        pkt.unset(Field::DstMac);
    }
    pkt
}

fn confirm(
    old: &DiffSide,
    new: &DiffSide,
    witness: &Packet,
    old_tag: u64,
    new_tag: u64,
) -> Option<(String, String)> {
    let w_old = witness.clone().with(Field::DstMac, old_tag);
    let w_new = witness.clone().with(Field::DstMac, new_tag);
    let out_old: std::collections::BTreeSet<Packet> = old
        .evaluate(&w_old)
        .into_iter()
        .map(|p| normalize(p, old_tag))
        .collect();
    let out_new: std::collections::BTreeSet<Packet> = new
        .evaluate(&w_new)
        .into_iter()
        .map(|p| normalize(p, new_tag))
        .collect();
    if out_old == out_new {
        return None;
    }
    let render = |s: &std::collections::BTreeSet<Packet>| {
        if s.is_empty() {
            "dropped".to_string()
        } else {
            s.iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join(" | ")
        }
    };
    Some((render(&out_old), render(&out_new)))
}

/// Per-sender differential check.
fn check_sender(
    old: &DiffSide,
    new: &DiffSide,
    sender: u32,
    ports: &[u32],
) -> (Vec<Diagnostic>, usize, usize) {
    let mut diags = Vec::new();
    let mut refuted = 0usize;
    let mut undecided = 0usize;

    let empty = FibModel::default();
    let fib_old = old.fib(sender).unwrap_or(&empty);
    let fib_new = new.fib(sender).unwrap_or(&empty);
    let tags = |fib: &FibModel| -> BTreeMap<Prefix, Option<u64>> {
        fib.entries.iter().map(|e| (e.prefix, e.mac)).collect()
    };
    let old_tags = tags(fib_old);
    let new_tags = tags(fib_new);

    // Batch prefixes by their (old tag, new tag) pair: every prefix in a
    // batch is tagged identically on each side, so one symbolic injection
    // per batch covers them all.
    let mut batches: BTreeMap<(u64, u64), Vec<Prefix>> = BTreeMap::new();
    let all_prefixes: std::collections::BTreeSet<&Prefix> =
        old_tags.keys().chain(new_tags.keys()).collect();
    for prefix in all_prefixes {
        let o = old_tags.get(prefix).copied().flatten();
        let n = new_tags.get(prefix).copied().flatten();
        match (o, n) {
            (Some(a), Some(b)) => batches.entry((a, b)).or_default().push(*prefix),
            (None, None) => {} // unroutable on both sides: no traffic.
            (one, other) => diags.push(Diagnostic {
                severity: Severity::Error,
                pass: PassKind::Differential,
                code: "verify-diff-route",
                message: format!(
                    "P{sender}: {prefix} is tagged {} in the running fabric but {} \
                     in the fresh compile — the router would emit traffic under \
                     one compilation only",
                    one.map(|t| format!("{t:#x}"))
                        .unwrap_or_else(|| "nothing".into()),
                    other
                        .map(|t| format!("{t:#x}"))
                        .unwrap_or_else(|| "nothing".into()),
                ),
                participant: Some(sender),
                clause: None,
                witness: Some(
                    Packet::new()
                        .with(Field::Port, ports.first().copied().unwrap_or(0))
                        .with(Field::DstIp, u32::from(prefix.addr())),
                ),
            }),
        }
    }

    for port in ports {
        for ((old_tag, new_tag), prefixes) in &batches {
            let (Some(t_old), Some(t_new)) = (
                terminals(old, *port, *old_tag),
                terminals(new, *port, *new_tag),
            ) else {
                undecided += 1;
                continue;
            };
            let mut confirmed = false;
            'pairs: for a in &t_old {
                for b in &t_new {
                    if a.label == b.label {
                        continue; // identical rewrite: equal modulo tag.
                    }
                    let Some(overlap) = a.region.intersect(&b.region) else {
                        continue;
                    };
                    // Restrict to destinations the batch actually tags.
                    for prefix in prefixes {
                        let m = Match::on(Field::DstIp, Pattern::Prefix(*prefix));
                        let Some(w) = overlap.intersect_match(&m).and_then(|r| r.witness()) else {
                            continue;
                        };
                        match confirm(old, new, &w, *old_tag, *new_tag) {
                            Some((was, now)) => {
                                diags.push(Diagnostic {
                                    severity: Severity::Error,
                                    pass: PassKind::Differential,
                                    code: "verify-diff",
                                    message: format!(
                                        "P{sender} port {port}, {prefix}: the running \
                                         fabric (tag {old_tag:#x}) and a fresh compile \
                                         (tag {new_tag:#x}) disagree — running: {was}; \
                                         fresh: {now}",
                                    ),
                                    participant: Some(sender),
                                    clause: None,
                                    witness: Some(w.with(Field::DstMac, *old_tag)),
                                });
                                confirmed = true;
                                break 'pairs; // one witness per batch.
                            }
                            None => refuted += 1,
                        }
                    }
                }
            }
            let _ = confirmed;
        }
    }
    (diags, refuted, undecided)
}

/// Check that `old` (the running fabric) and `new` (a fresh compile of the
/// same inputs) are packet-equivalent for every sender, fanning senders out
/// over `threads` workers. Deterministic diagnostics order.
pub fn run(
    old: &DiffSide,
    new: &DiffSide,
    participants: &[(u32, Vec<u32>)],
    threads: usize,
) -> DiffReport {
    let start = std::time::Instant::now();
    let mut report = DiffReport::default();
    let senders: Vec<(u32, Vec<u32>)> = participants
        .iter()
        .filter(|(_, ports)| !ports.is_empty())
        .cloned()
        .collect();
    let worker = |(sender, ports): (u32, Vec<u32>)| check_sender(old, new, sender, &ports);
    let results: Vec<(Vec<Diagnostic>, usize, usize)> = if threads <= 1 || senders.len() < 2 {
        senders.into_iter().map(worker).collect()
    } else {
        crossbeam::pool::parallel_map(threads, senders, worker)
    };
    for (diags, refuted, undecided) in results {
        report.diagnostics.extend(diags);
        report.refuted_candidates += refuted;
        report.undecided += undecided;
    }
    report.duration_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
    report
}
