//! Pass 3: forwarding-loop detection.
//!
//! Two complementary checks:
//!
//! * **`forwarding-loop`** — cycles in the virtual-switch forwarding graph.
//!   The nodes are participants; there is an edge X → Y when one of X's
//!   inbound clauses redirects (a nonempty class of) traffic to Y's virtual
//!   switch. Under the paper's virtual-switch semantics each hop applies
//!   the receiver's inbound policy again, so a cycle means packets that
//!   ping-pong between virtual switches forever. (The compiler resolves
//!   only a single redirect hop when it collapses the pipeline, so a cycle
//!   also marks a spot where compiled behavior silently diverges from the
//!   virtual semantics — either way the policy is defective.)
//! * **`vport-egress`** — abstract interpretation of the composed fabric
//!   table: every reachable rule's egress must be a physical port. A rule
//!   that leaves a packet on a *virtual* port sends it back into the fabric
//!   with no receiver block behind it — a one-rule forwarding loop. Skipped
//!   in multi-table mode, where the sender stage legitimately forwards to
//!   virtual ports for table 1 to resolve.

use std::collections::BTreeSet;

use sdx_policy::{witness_outside, Field};

use crate::{AnalysisInput, ClauseDest, Diagnostic, Direction, PassKind, Severity};

/// Run the pass.
pub fn run(input: &AnalysisInput, out: &mut Vec<Diagnostic>) {
    find_cycles(input, out);
    if !input.multi_table {
        check_fabric_egress(input, out);
    }
}

/// DFS over the inbound redirect graph, reporting each cycle once (anchored
/// at its smallest participant id).
fn find_cycles(input: &AnalysisInput, out: &mut Vec<Diagnostic>) {
    // edges[i] = (neighbor participant id, clause index backing the edge)
    let ids: Vec<u32> = input.participants.iter().map(|p| p.id).collect();
    let edges: Vec<Vec<(u32, usize)>> = input
        .participants
        .iter()
        .map(|p| {
            p.inbound
                .iter()
                .enumerate()
                .filter_map(|(k, c)| match c.dest {
                    ClauseDest::Participant(to)
                        if to != p.id
                            && !c.matches.is_empty()
                            && input.participant(to).is_some() =>
                    {
                        Some((to, k))
                    }
                    _ => None,
                })
                .collect()
        })
        .collect();
    let index_of = |id: u32| ids.iter().position(|i| *i == id);

    let mut reported: BTreeSet<Vec<u32>> = BTreeSet::new();
    // colors: 0 = white, 1 = on stack, 2 = done
    let mut color = vec![0u8; ids.len()];
    let mut stack: Vec<(usize, usize)> = Vec::new(); // (node, clause edge used to enter)

    for start in 0..ids.len() {
        if color[start] != 0 {
            continue;
        }
        dfs(
            start,
            &edges,
            &ids,
            &index_of,
            &mut color,
            &mut stack,
            &mut reported,
            input,
            out,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    node: usize,
    edges: &[Vec<(u32, usize)>],
    ids: &[u32],
    index_of: &dyn Fn(u32) -> Option<usize>,
    color: &mut [u8],
    stack: &mut Vec<(usize, usize)>,
    reported: &mut BTreeSet<Vec<u32>>,
    input: &AnalysisInput,
    out: &mut Vec<Diagnostic>,
) {
    color[node] = 1;
    for &(to, clause) in &edges[node] {
        let Some(next) = index_of(to) else { continue };
        if color[next] == 1 {
            // Back edge: the cycle is the stack suffix from `next` plus this
            // edge. Canonicalize (rotate to smallest id) to dedup.
            let mut cycle: Vec<u32> = stack
                .iter()
                .map(|&(n, _)| ids[n])
                .chain([ids[node]])
                .collect();
            if let Some(pos) = cycle.iter().position(|&id| id == ids[next]) {
                cycle.drain(..pos);
            }
            let canon = canonical_rotation(&cycle);
            if reported.insert(canon.clone()) {
                let path: Vec<String> = canon.iter().map(|id| format!("P{id}")).collect();
                let witness = input
                    .participant(ids[node])
                    .and_then(|p| p.inbound.get(clause))
                    .and_then(|c| c.matches.first())
                    .and_then(|m| witness_outside(m, &[]));
                out.push(Diagnostic {
                    severity: Severity::Error,
                    pass: PassKind::Loop,
                    code: "forwarding-loop",
                    message: format!(
                        "inbound redirects form a forwarding loop: {} -> {}",
                        path.join(" -> "),
                        path[0]
                    ),
                    participant: Some(ids[node]),
                    clause: Some((Direction::Inbound, clause)),
                    witness,
                });
            }
            continue;
        }
        if color[next] == 0 {
            stack.push((node, clause));
            dfs(
                next, edges, ids, index_of, color, stack, reported, input, out,
            );
            stack.pop();
        }
    }
    color[node] = 2;
}

fn canonical_rotation(cycle: &[u32]) -> Vec<u32> {
    let min_pos = cycle
        .iter()
        .enumerate()
        .min_by_key(|(_, id)| **id)
        .map(|(i, _)| i)
        .unwrap_or(0);
    cycle
        .iter()
        .cycle()
        .skip(min_pos)
        .take(cycle.len())
        .copied()
        .collect()
}

/// Every non-drop fabric rule must egress on a physical port.
fn check_fabric_egress(input: &AnalysisInput, out: &mut Vec<Diagnostic>) {
    for (i, rule) in input.fabric.rules().iter().enumerate() {
        for action in &rule.actions {
            let Some(port) = action.get(Field::Port) else {
                continue;
            };
            if input.is_vport(port) {
                out.push(Diagnostic {
                    severity: Severity::Error,
                    pass: PassKind::Loop,
                    code: "vport-egress",
                    message: format!(
                        "fabric rule {i} egresses on virtual port {port}: the packet re-enters \
                         the fabric with no receiver block to resolve it"
                    ),
                    participant: None,
                    clause: None,
                    witness: witness_outside(&rule.match_, &[]),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClauseInfo, ParticipantInfo};
    use sdx_policy::{Action, Classifier, Match, Pattern, Rule};

    fn redirect(to: u32) -> ClauseInfo {
        ClauseInfo {
            matches: vec![Match::on(Field::DstPort, Pattern::Exact(80))],
            dest: ClauseDest::Participant(to),
            rewrites: Vec::new(),
            unfiltered: false,
            exports_match: None,
        }
    }

    fn participant(id: u32, inbound: Vec<ClauseInfo>) -> ParticipantInfo {
        ParticipantInfo {
            id,
            vport: 1_000_000 + id,
            ports: vec![id],
            router_macs: vec![id as u64],
            outbound: Vec::new(),
            inbound,
        }
    }

    fn run_on(participants: Vec<ParticipantInfo>) -> Vec<Diagnostic> {
        let input = AnalysisInput {
            participants,
            vport_base: 1_000_000,
            ..Default::default()
        };
        let mut out = Vec::new();
        run(&input, &mut out);
        out
    }

    #[test]
    fn two_party_loop_is_detected_once() {
        let out = run_on(vec![
            participant(1, vec![redirect(2)]),
            participant(2, vec![redirect(1)]),
        ]);
        let loops: Vec<_> = out.iter().filter(|d| d.code == "forwarding-loop").collect();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].severity, Severity::Error);
        assert!(loops[0].message.contains("P1 -> P2 -> P1"));
        assert!(loops[0].witness.is_some());
    }

    #[test]
    fn three_party_loop_is_detected() {
        let out = run_on(vec![
            participant(1, vec![redirect(2)]),
            participant(2, vec![redirect(3)]),
            participant(3, vec![redirect(1)]),
        ]);
        assert_eq!(
            out.iter().filter(|d| d.code == "forwarding-loop").count(),
            1
        );
    }

    #[test]
    fn chain_without_cycle_is_clean() {
        let out = run_on(vec![
            participant(1, vec![redirect(2)]),
            participant(2, vec![redirect(3)]),
            participant(3, Vec::new()),
        ]);
        assert!(out.iter().all(|d| d.code != "forwarding-loop"), "{out:?}");
    }

    #[test]
    fn vport_egress_in_composed_fabric_is_flagged() {
        let fabric = Classifier::new(vec![Rule {
            match_: Match::on(Field::DstPort, Pattern::Exact(80)),
            actions: vec![Action::set(Field::Port, 1_000_042u32)],
        }]);
        let input = AnalysisInput {
            participants: vec![participant(1, Vec::new())],
            fabric,
            vport_base: 1_000_000,
            multi_table: false,
            ..Default::default()
        };
        let mut out = Vec::new();
        run(&input, &mut out);
        let hits: Vec<_> = out.iter().filter(|d| d.code == "vport-egress").collect();
        assert_eq!(hits.len(), 1);
        assert!(hits[0].witness.is_some());
    }

    #[test]
    fn vport_egress_is_expected_in_multi_table_mode() {
        let fabric = Classifier::new(vec![Rule {
            match_: Match::on(Field::DstPort, Pattern::Exact(80)),
            actions: vec![Action::set(Field::Port, 1_000_042u32)],
        }]);
        let input = AnalysisInput {
            participants: vec![participant(1, Vec::new())],
            fabric,
            vport_base: 1_000_000,
            multi_table: true,
            ..Default::default()
        };
        let mut out = Vec::new();
        run(&input, &mut out);
        assert!(out.iter().all(|d| d.code != "vport-egress"), "{out:?}");
    }
}
