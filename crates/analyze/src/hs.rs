//! Header-space transit: push symbolic packet sets through compiled
//! classifier pipelines, tracking field rewrites across stage boundaries.
//!
//! A [`Flow`] pairs a [`Region`] — constraints on the *original* injected
//! headers — with an accumulated [`Action`] of every rewrite applied so far.
//! When a rule constrains a field the accumulator has already assigned, the
//! constraint resolves statically (the current value is known exactly); only
//! constraints on untouched fields remain symbolic and intersect or split
//! the region. This is the standard header-space-analysis trick specialised
//! to the SDX pipeline, where the interesting rewrites are the VNH tag
//! (destination MAC) and the fabric port.
//!
//! Every split keeps the invariant that the live regions of one injection
//! partition it: a concrete packet inside the injected region lands in
//! exactly one terminal ([`TransitResult::outputs`] entries sharing a region
//! come from one multi-action rule and denote multicast copies).

use sdx_policy::{Action, Classifier, Field, Match, Packet, Pattern, Region, Rule};

/// Per-injection cap on tracked regions; past it the transit gives up and
/// marks itself [`TransitResult::saturated`] (callers must treat saturation
/// as *undecided*, never as a violation).
pub const TRANSIT_REGION_LIMIT: usize = 4_096;

/// A symbolic packet set in flight: original-header constraints plus the
/// rewrites accumulated on the way here.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Constraints on the injected (pre-fabric) headers.
    pub region: Region,
    /// Field assignments applied so far; [`Action::apply`] of this to any
    /// packet in `region` yields the current in-flight headers.
    pub acc: Action,
}

impl Flow {
    /// An untouched flow covering `region`.
    pub fn new(region: Region) -> Self {
        Flow {
            region,
            acc: Action::identity(),
        }
    }

    /// The current (post-rewrite) value of a field, when it is known: an
    /// accumulator assignment wins, else an exactly-pinned original header.
    pub fn current_value(&self, field: Field) -> Option<u64> {
        if let Some(v) = self.acc.get(field) {
            return Some(v);
        }
        match self.region.pos_pattern(field) {
            Some(Pattern::Exact(v)) => Some(*v),
            _ => None,
        }
    }
}

/// A flow that matched a forwarding rule and left the table.
#[derive(Debug, Clone)]
pub struct FlowOut {
    /// The surviving flow, accumulator updated with the rule's action.
    pub flow: Flow,
    /// Index of the matched rule in the table it exited.
    pub rule: usize,
}

/// A flow that matched a drop rule.
#[derive(Debug, Clone)]
pub struct FlowDrop {
    /// The dropped packet set (original headers).
    pub region: Region,
    /// Rewrites accumulated before the drop.
    pub acc: Action,
    /// Index of the drop rule.
    pub rule: usize,
    /// Was it the table's final wildcard catch-all (completeness padding)
    /// rather than an explicit policy drop?
    pub catch_all: bool,
}

/// Everything that came out of one table (or pipeline) transit.
#[derive(Debug, Clone, Default)]
pub struct TransitResult {
    /// Flows that matched a forwarding rule, one entry per action (a
    /// multi-action rule emits one copy per action).
    pub outputs: Vec<FlowOut>,
    /// Flows that matched a drop rule.
    pub drops: Vec<FlowDrop>,
    /// The region cap was hit: results are incomplete and must not be used
    /// to report violations.
    pub saturated: bool,
}

/// The residual symbolic match of `m` for a flow with accumulator `acc`:
/// constraints on assigned fields resolve statically — `None` means one of
/// them failed (the rule can never match this flow), otherwise the returned
/// match holds only the constraints on untouched fields.
fn residual_match(m: &Match, acc: &Action) -> Option<Match> {
    let mut residual = Match::any();
    for (f, p) in m.iter() {
        match acc.get(*f) {
            Some(v) => {
                if !p.matches(v) {
                    return None;
                }
            }
            None => {
                residual = residual.and(*f, *p).expect("fresh field");
            }
        }
    }
    Some(residual)
}

/// Is rule `index` of a table with `total` rules the completeness catch-all?
fn is_catch_all(rule: &Rule, index: usize, total: usize) -> bool {
    index + 1 == total && rule.match_.is_any() && rule.is_drop()
}

/// Push `flows` through the listed `(index, rule)` candidates of a table
/// holding `total` rules. Callers may pre-filter the rule list to the
/// candidates that can possibly interact with the injection (see
/// [`pinned_candidates`]); indices are preserved so drop provenance and
/// catch-all detection stay correct.
pub fn transit_rules(
    candidates: &[(usize, &Rule)],
    total: usize,
    flows: Vec<Flow>,
    limit: usize,
) -> TransitResult {
    let mut result = TransitResult::default();
    let mut live = flows;
    for &(index, rule) in candidates {
        if live.is_empty() {
            break;
        }
        let mut next = Vec::new();
        for flow in live {
            let Some(residual) = residual_match(&rule.match_, &flow.acc) else {
                next.push(flow); // statically excluded: rule untouched.
                continue;
            };
            let hit = if residual.is_any() {
                Some(flow.region.clone())
            } else {
                flow.region.intersect_match(&residual)
            };
            let Some(hit) = hit else {
                next.push(flow); // symbolically disjoint.
                continue;
            };
            // The captured part terminates at this rule (first match wins).
            if rule.is_drop() {
                result.drops.push(FlowDrop {
                    region: hit,
                    acc: flow.acc.clone(),
                    rule: index,
                    catch_all: is_catch_all(rule, index, total),
                });
            } else {
                for action in &rule.actions {
                    result.outputs.push(FlowOut {
                        flow: Flow {
                            region: hit.clone(),
                            acc: flow.acc.then(action),
                        },
                        rule: index,
                    });
                }
            }
            // The rest continues to later rules.
            if !residual.is_any() {
                next.extend(
                    flow.region
                        .subtract(&residual)
                        .into_iter()
                        .map(|region| Flow {
                            region,
                            acc: flow.acc.clone(),
                        }),
                );
            }
            if next.len() > limit {
                result.saturated = true;
                return result;
            }
        }
        live = next;
    }
    // A complete classifier always terminates every flow; leftovers can only
    // come from a pre-filtered candidate list that was too narrow, which
    // would be a bug in the caller. Treat them as saturation to stay safe.
    if !live.is_empty() {
        result.saturated = true;
    }
    result
}

/// All `(index, rule)` pairs of `table`. Convenience for unfiltered transit.
pub fn all_candidates(table: &Classifier) -> Vec<(usize, &Rule)> {
    table.rules().iter().enumerate().collect()
}

/// The candidate rules of `table` for an injection whose `field` is pinned
/// to `value`: rules whose constraint on `field` excludes the value cannot
/// match *or* carve the injected region, so they are skipped wholesale. This
/// is what keeps whole-fabric transit tractable — VNH-tagged injections
/// interact with a handful of rules, not the whole table.
pub fn pinned_candidates(table: &Classifier, field: Field, value: u64) -> Vec<(usize, &Rule)> {
    table
        .rules()
        .iter()
        .enumerate()
        .filter(|(_, r)| {
            r.match_
                .get(field)
                .map(|p| p.matches(value))
                .unwrap_or(true)
        })
        .collect()
}

/// Push `flows` through a multi-table pipeline (tables applied in order,
/// every forwarding output of table *i* entering table *i+1*). Drops carry
/// `(table, FlowDrop)` provenance. Rule-candidate pre-filtering uses each
/// flow's *current* value of `pin` when it is known.
pub fn transit_pipeline(
    tables: &[Classifier],
    flows: Vec<Flow>,
    pin: Field,
    limit: usize,
) -> PipelineResult {
    let mut result = PipelineResult::default();
    let mut live = flows;
    for (ti, table) in tables.iter().enumerate() {
        if live.is_empty() {
            break;
        }
        let mut next = Vec::new();
        for flow in live {
            let candidates = match flow.current_value(pin) {
                Some(v) => pinned_candidates(table, pin, v),
                None => all_candidates(table),
            };
            let t = transit_rules(&candidates, table.len(), vec![flow], limit);
            result.saturated |= t.saturated;
            result.drops.extend(t.drops.into_iter().map(|d| (ti, d)));
            next.extend(t.outputs.into_iter().map(|o| (o, ti)));
        }
        if ti + 1 == tables.len() {
            result.outputs = next;
            live = Vec::new();
        } else {
            live = next.into_iter().map(|(o, _)| o.flow).collect();
        }
        if result.saturated {
            break;
        }
    }
    result
}

/// Result of [`transit_pipeline`].
#[derive(Debug, Clone, Default)]
pub struct PipelineResult {
    /// Flows that left the *last* table forwarding, with the rule index.
    pub outputs: Vec<(FlowOut, usize)>,
    /// Drops, tagged with the table index they occurred in.
    pub drops: Vec<(usize, FlowDrop)>,
    /// Any stage hit the region cap (results incomplete).
    pub saturated: bool,
}

impl PipelineResult {
    /// The symbolic outcome of a concrete packet inside the injected region:
    /// the set of final packets the pipeline emits for it. Exactness check
    /// for the property tests — must agree with concrete evaluation.
    pub fn concrete_outcome(&self, pkt: &Packet) -> std::collections::BTreeSet<Packet> {
        self.outputs
            .iter()
            .filter(|(o, _)| o.flow.region.contains(pkt))
            .map(|(o, _)| o.flow.acc.apply(pkt))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_policy::{Action, Match, Pattern, Rule};

    fn fwd(m: Match, port: u32) -> Rule {
        Rule {
            match_: m,
            actions: vec![Action::set(Field::Port, port)],
        }
    }

    #[test]
    fn static_resolution_of_rewritten_fields() {
        // Table 0 rewrites Port to 7; table 1 matches on Port — the match
        // must resolve against the rewritten value, not the original header.
        let t0 = Classifier::new(vec![fwd(Match::any(), 7)]);
        let t1 = Classifier::new(vec![
            fwd(Match::on(Field::Port, Pattern::Exact(7)), 2),
            fwd(Match::on(Field::Port, Pattern::Exact(1)), 99),
        ]);
        let inject = Flow::new(Region::from_match(Match::on(
            Field::Port,
            Pattern::Exact(1),
        )));
        let r = transit_pipeline(&[t0, t1], vec![inject], Field::Port, TRANSIT_REGION_LIMIT);
        assert!(!r.saturated);
        assert_eq!(r.outputs.len(), 1);
        assert_eq!(r.outputs[0].0.flow.acc.get(Field::Port), Some(2));
        assert!(r.drops.is_empty());
    }

    #[test]
    fn first_match_splits_regions() {
        let t = Classifier::new(vec![
            fwd(Match::on(Field::DstPort, Pattern::Exact(80)), 2),
            Rule::drop(Match::on(Field::DstPort, Pattern::Exact(443))),
        ]);
        let inject = Flow::new(Region::from_match(Match::any()));
        let r = transit_rules(
            &all_candidates(&t),
            t.len(),
            vec![inject],
            TRANSIT_REGION_LIMIT,
        );
        assert_eq!(r.outputs.len(), 1);
        // 443-drop is explicit, the rest falls into the catch-all.
        assert_eq!(r.drops.len(), 2);
        assert!(!r.drops[0].catch_all);
        assert!(r.drops[1].catch_all);
        let w = r.drops[0].region.witness().unwrap();
        assert_eq!(w.get(Field::DstPort), Some(443));
    }

    #[test]
    fn pinned_candidates_skip_foreign_tags() {
        let t = Classifier::new(vec![
            fwd(Match::on(Field::DstMac, Pattern::Exact(0xAA)), 1),
            fwd(Match::on(Field::DstMac, Pattern::Exact(0xBB)), 2),
            fwd(Match::any(), 3),
        ]);
        let c = pinned_candidates(&t, Field::DstMac, 0xBB);
        let indices: Vec<usize> = c.iter().map(|(i, _)| *i).collect();
        assert_eq!(indices, vec![1, 2]); // rule 0 excluded, wildcard kept
    }

    #[test]
    fn multicast_rule_emits_one_output_per_action() {
        let t = Classifier::new(vec![Rule {
            match_: Match::any(),
            actions: vec![
                Action::set(Field::Port, 1u32),
                Action::set(Field::Port, 2u32),
            ],
        }]);
        let r = transit_rules(
            &all_candidates(&t),
            t.len(),
            vec![Flow::new(Region::from_match(Match::any()))],
            TRANSIT_REGION_LIMIT,
        );
        assert_eq!(r.outputs.len(), 2);
    }

    #[test]
    fn symbolic_agrees_with_concrete_on_samples() {
        let t0 = Classifier::new(vec![
            fwd(
                Match::on(Field::DstPort, Pattern::Exact(80))
                    .and(Field::Port, Pattern::Exact(1))
                    .unwrap(),
                1_000_002,
            ),
            Rule::drop(Match::on(Field::SrcPort, Pattern::Exact(7))),
            fwd(Match::on(Field::Port, Pattern::Exact(1)), 1_000_003),
        ]);
        let t1 = Classifier::new(vec![
            fwd(Match::on(Field::Port, Pattern::Exact(1_000_002)), 2),
            fwd(Match::on(Field::Port, Pattern::Exact(1_000_003)), 3),
        ]);
        let inject = Flow::new(Region::from_match(Match::on(
            Field::Port,
            Pattern::Exact(1),
        )));
        let tables = [t0, t1];
        let r = transit_pipeline(&tables, vec![inject], Field::Port, TRANSIT_REGION_LIMIT);
        assert!(!r.saturated);
        for (dp, sp) in [(80u64, 9u64), (80, 7), (22, 7), (22, 9)] {
            let pkt = Packet::new()
                .with(Field::Port, 1u32)
                .with(Field::DstPort, dp)
                .with(Field::SrcPort, sp);
            let mut concrete = std::collections::BTreeSet::new();
            for out in tables[0].evaluate(&pkt) {
                concrete.extend(tables[1].evaluate(&out));
            }
            assert_eq!(r.concrete_outcome(&pkt), concrete, "dp={dp} sp={sp}");
        }
    }
}
