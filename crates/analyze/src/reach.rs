//! Whole-fabric symbolic reachability: the `sdx-verify` invariant passes.
//!
//! The verifier consumes a [`VerifyInput`] — the compiled stage tables, the
//! border-router FIB/ARP model that tags traffic before it enters the
//! fabric, the VNH allocation, and the route server's advertisement ground
//! truth — and pushes per-sender header spaces through the pipeline with the
//! engine in [`crate::hs`]. Three invariants are checked here (the fourth,
//! differential equivalence, lives in [`crate::diff`]):
//!
//! 1. **BGP consistency / isolation** (`verify-isolation`): no header space
//!    is delivered to a participant's physical port for a prefix that
//!    participant did not advertise to the sender via the route server.
//! 2. **No cross-stage blackholes** (`verify-blackhole`): every header space
//!    a sender's router can emit is either dropped by an *explicit* policy
//!    rule or reaches a physical port — never swallowed by a completeness
//!    catch-all or delivered to an unresolved virtual port.
//! 3. **VNH integrity** (`verify-vnh`): every FIB entry for a grouped prefix
//!    carries the group's VNH and resolves to its VMAC tag, and every
//!    allocated tag has at least one fabric rule matching it — so no
//!    untagged traffic reaches the FIB-tagged stage and no tag dangles.
//!
//! Violations carry a concrete witness packet (the injected frame as the
//! sender's border router would emit it). Per-sender injections are
//! independent, so the fan-out runs on the crossbeam worker pool.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::time::Instant;

use sdx_ip::{Prefix, PrefixSet};
use sdx_policy::{Classifier, Field, Match, Packet, Pattern, Region};

use crate::hs::{self, Flow, TRANSIT_REGION_LIMIT};
use crate::{Diagnostic, PassKind, Severity};

/// One modelled FIB entry of a participant's border router: the tagging
/// stage the fabric tables rely on (§4.2's multi-stage FIB).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FibEntry {
    /// Destination prefix.
    pub prefix: Prefix,
    /// BGP next hop the router selected (a VNH at an SDX).
    pub next_hop: Ipv4Addr,
    /// The MAC the router's ARP cache resolves the next hop to (the VMAC
    /// tag), when resolved. `None` = the router would have to ARP first;
    /// grouped prefixes with no binding are a tagging hole.
    pub mac: Option<u64>,
}

/// A participant border router's modelled forwarding state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FibModel {
    /// The participant the router belongs to.
    pub participant: u32,
    /// Its FIB, prefix order.
    pub entries: Vec<FibEntry>,
}

/// One allocated forwarding-equivalence-class binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupBinding {
    /// The prefixes of the FEC.
    pub prefixes: PrefixSet,
    /// The advertised virtual next hop.
    pub vnh: Ipv4Addr,
    /// The VMAC tag, as a raw 48-bit value.
    pub vmac: u64,
}

/// Everything the reachability verifier reads.
#[derive(Debug, Clone, Default)]
pub struct VerifyInput {
    /// The fabric pipeline, in traversal order: `[stage1, stage2]` for the
    /// compiled two-stage semantics, or the installed tables.
    pub tables: Vec<Classifier>,
    /// `(participant id, physical ports)` for every physical participant.
    pub participants: Vec<(u32, Vec<u32>)>,
    /// The VNH/VMAC allocation, parallel to the compiler's groups.
    pub groups: Vec<GroupBinding>,
    /// Modelled border-router state, one per physical participant.
    pub fibs: Vec<FibModel>,
    /// Ground truth: `(advertiser, viewer) → prefixes` the advertiser
    /// exports to the viewer via the route server (feasible paths, not just
    /// best routes — an inbound redirect to any advertiser is legitimate).
    pub advertised: BTreeMap<(u32, u32), PrefixSet>,
    /// First port number of the virtual-port namespace.
    pub vport_base: u32,
}

impl VerifyInput {
    /// The owner of a physical port.
    pub fn port_owner(&self, port: u64) -> Option<u32> {
        self.participants
            .iter()
            .find(|(_, ports)| ports.iter().any(|p| *p as u64 == port))
            .map(|(id, _)| *id)
    }

    /// Replace (or add) the FIB model of one participant — lets callers
    /// verify against *actual* router state instead of the synthesized
    /// model (e.g. the post-corruption audit tests).
    pub fn set_fib(&mut self, fib: FibModel) {
        match self
            .fibs
            .iter_mut()
            .find(|f| f.participant == fib.participant)
        {
            Some(slot) => *slot = fib,
            None => self.fibs.push(fib),
        }
    }
}

/// Wall-clock of the reachability passes, microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReachTimes {
    /// Symbolic traversal (shared by isolation and blackhole checking).
    pub transit_us: u64,
    /// Isolation / BGP-consistency checking over the traversal results.
    pub isolation_us: u64,
    /// Blackhole checking over the traversal results.
    pub blackhole_us: u64,
    /// VNH / FIB integrity checking.
    pub vnh_us: u64,
}

/// The reachability verifier's findings plus per-pass timings.
#[derive(Debug, Clone, Default)]
pub struct ReachReport {
    /// Diagnostics, deterministic order (sender, then injection).
    pub diagnostics: Vec<Diagnostic>,
    /// Pass timings.
    pub times: ReachTimes,
}

fn duration_us(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// One sender-side injection: everything the sender's router emits with one
/// destination-MAC tag, from one of its fabric ports.
#[derive(Debug, Clone)]
struct Injection {
    sender: u32,
    port: u32,
    mac: u64,
    /// The prefixes the router tags with `mac` — the producible DstIp space.
    prefixes: Vec<Prefix>,
}

/// The injections of one sender: its FIB entries grouped by resolved tag.
fn injections_for(fib: &FibModel, ports: &[u32]) -> Vec<Injection> {
    let mut by_mac: BTreeMap<u64, Vec<Prefix>> = BTreeMap::new();
    for e in &fib.entries {
        if let Some(mac) = e.mac {
            by_mac.entry(mac).or_default().push(e.prefix);
        }
    }
    let mut out = Vec::new();
    for port in ports {
        for (mac, prefixes) in &by_mac {
            out.push(Injection {
                sender: fib.participant,
                port: *port,
                mac: *mac,
                prefixes: prefixes.clone(),
            });
        }
    }
    out
}

/// The sub-region of `region` whose destinations fall in `prefix`, if any.
fn restrict_to_prefix(region: &Region, prefix: &Prefix) -> Option<Region> {
    region.intersect_match(&Match::on(Field::DstIp, Pattern::Prefix(*prefix)))
}

/// First producible witness: `region` restricted to any of the injection's
/// taggable prefixes. `None` means the region holds no packet the sender's
/// router would actually emit (vacuous — not reported).
fn producible_witness(region: &Region, prefixes: &[Prefix]) -> Option<Packet> {
    prefixes
        .iter()
        .find_map(|p| restrict_to_prefix(region, p).and_then(|r| r.witness()))
}

/// Findings of one injection's traversal.
fn check_injection(
    input: &VerifyInput,
    inj: &Injection,
    times: &mut ReachTimes,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let region = Region::from_match(
        Match::on(Field::Port, Pattern::Exact(inj.port as u64))
            .and(Field::DstMac, Pattern::Exact(inj.mac))
            .expect("distinct fields"),
    );

    let t = Instant::now();
    let result = hs::transit_pipeline(
        &input.tables,
        vec![Flow::new(region)],
        Field::DstMac,
        TRANSIT_REGION_LIMIT,
    );
    times.transit_us += duration_us(t.elapsed());

    if result.saturated {
        out.push(Diagnostic {
            severity: Severity::Warning,
            pass: PassKind::Blackhole,
            code: "verify-undecided",
            message: format!(
                "P{} port {} tag {:#x}: symbolic transit exceeded {} regions; \
                 reachability left unverified for this injection",
                inj.sender, inj.port, inj.mac, TRANSIT_REGION_LIMIT
            ),
            participant: Some(inj.sender),
            clause: None,
            witness: None,
        });
        return out;
    }

    // ---- Invariant 1: BGP consistency / isolation -----------------------
    let t = Instant::now();
    for (o, rule) in &result.outputs {
        let Some(egress) = o.flow.acc.get(Field::Port) else {
            continue; // no port assignment: handled as a blackhole below.
        };
        if egress >= input.vport_base as u64 {
            continue; // unresolved vport: blackhole invariant's business.
        }
        let Some(receiver) = input.port_owner(egress) else {
            continue;
        };
        let entitled = input
            .advertised
            .get(&(receiver, inj.sender))
            .cloned()
            .unwrap_or_default();
        for prefix in &inj.prefixes {
            if entitled.contains(prefix) {
                continue;
            }
            if let Some(r) = restrict_to_prefix(&o.flow.region, prefix) {
                if let Some(witness) = r.witness() {
                    out.push(Diagnostic {
                        severity: Severity::Error,
                        pass: PassKind::Isolation,
                        code: "verify-isolation",
                        message: format!(
                            "traffic from P{} for {} is delivered to P{} (port {}, rule {}), \
                             but P{} never advertised {} to P{} via the route server",
                            inj.sender,
                            prefix,
                            receiver,
                            egress,
                            rule,
                            receiver,
                            prefix,
                            inj.sender
                        ),
                        participant: Some(inj.sender),
                        clause: None,
                        witness: Some(witness),
                    });
                    break; // one witness per (injection, output) is enough.
                }
            }
        }
    }
    times.isolation_us += duration_us(t.elapsed());

    // ---- Invariant 2: no cross-stage blackholes --------------------------
    let t = Instant::now();
    for (table, drop) in &result.drops {
        if !drop.catch_all {
            continue; // explicit policy drop: the policy said so.
        }
        if let Some(witness) = producible_witness(&drop.region, &inj.prefixes) {
            out.push(Diagnostic {
                severity: Severity::Error,
                pass: PassKind::Blackhole,
                code: "verify-blackhole",
                message: format!(
                    "traffic from P{} tagged {:#x} falls through to table {}'s \
                     catch-all: admitted by the fabric but neither policy-dropped \
                     nor delivered to a physical port",
                    inj.sender, inj.mac, table
                ),
                participant: Some(inj.sender),
                clause: None,
                witness: Some(witness),
            });
        }
    }
    for (o, rule) in &result.outputs {
        let vport_exit = match o.flow.acc.get(Field::Port) {
            Some(egress) => egress >= input.vport_base as u64,
            None => true, // never assigned a port at all.
        };
        if !vport_exit {
            continue;
        }
        if let Some(witness) = producible_witness(&o.flow.region, &inj.prefixes) {
            out.push(Diagnostic {
                severity: Severity::Error,
                pass: PassKind::Blackhole,
                code: "verify-vport-exit",
                message: format!(
                    "traffic from P{} tagged {:#x} leaves the pipeline at rule {} \
                     without reaching a physical port (egress {:?})",
                    inj.sender,
                    inj.mac,
                    rule,
                    o.flow.acc.get(Field::Port)
                ),
                participant: Some(inj.sender),
                clause: None,
                witness: Some(witness),
            });
        }
    }
    times.blackhole_us += duration_us(t.elapsed());

    out
}

/// Invariant 3: VNH / FIB integrity. Pure table- and FIB-level checking, no
/// symbolic traversal needed.
fn check_vnh(input: &VerifyInput) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Every allocated tag must have at least one rule matching it in the
    // first table — an unmatchable tag means tagged traffic would fall
    // straight into a catch-all.
    if let Some(first) = input.tables.first() {
        for (gid, group) in input.groups.iter().enumerate() {
            let used = first.rules().iter().any(|r| {
                r.match_
                    .get(Field::DstMac)
                    .map(|p| p.matches(group.vmac))
                    .unwrap_or(false)
            });
            if !used && !group.prefixes.is_empty() {
                out.push(Diagnostic {
                    severity: Severity::Error,
                    pass: PassKind::VnhIntegrity,
                    code: "verify-unmatched-tag",
                    message: format!(
                        "group {gid}: allocated VMAC {:#x} (VNH {}) is matched by no \
                         rule of the first fabric table",
                        group.vmac, group.vnh
                    ),
                    participant: None,
                    clause: None,
                    witness: None,
                });
            }
        }
    }

    // Every FIB entry for a grouped prefix must carry the group's VNH and
    // resolve to its VMAC.
    for fib in &input.fibs {
        let ports: Vec<u32> = input
            .participants
            .iter()
            .find(|(id, _)| *id == fib.participant)
            .map(|(_, p)| p.clone())
            .unwrap_or_default();
        let port = ports.first().copied().unwrap_or(0);
        for e in &fib.entries {
            let Some((gid, group)) = input
                .groups
                .iter()
                .enumerate()
                .find(|(_, g)| g.prefixes.contains(&e.prefix))
            else {
                if e.mac.is_none() {
                    out.push(Diagnostic {
                        severity: Severity::Warning,
                        pass: PassKind::VnhIntegrity,
                        code: "verify-fib-unresolved",
                        message: format!(
                            "P{}: FIB entry {} → {} has no resolved MAC \
                             (ungrouped prefix; router would ARP first)",
                            fib.participant, e.prefix, e.next_hop
                        ),
                        participant: Some(fib.participant),
                        clause: None,
                        witness: None,
                    });
                }
                continue;
            };
            let witness = || {
                Packet::new()
                    .with(Field::Port, port)
                    .with(Field::DstIp, u32::from(e.prefix.addr()))
            };
            if e.next_hop != group.vnh {
                out.push(Diagnostic {
                    severity: Severity::Error,
                    pass: PassKind::VnhIntegrity,
                    code: "verify-fib-wrong-vnh",
                    message: format!(
                        "P{}: FIB routes {} via {} but group {gid} advertises VNH {}",
                        fib.participant, e.prefix, e.next_hop, group.vnh
                    ),
                    participant: Some(fib.participant),
                    clause: None,
                    witness: Some(witness()),
                });
                continue;
            }
            match e.mac {
                None => out.push(Diagnostic {
                    severity: Severity::Error,
                    pass: PassKind::VnhIntegrity,
                    code: "verify-fib-missing-tag",
                    message: format!(
                        "P{}: FIB entry {} → VNH {} resolves to no MAC; traffic \
                         would enter the fabric without the VMAC tag {:#x} \
                         (group {gid})",
                        fib.participant, e.prefix, e.next_hop, group.vmac
                    ),
                    participant: Some(fib.participant),
                    clause: None,
                    witness: Some(witness()),
                }),
                Some(mac) if mac != group.vmac => out.push(Diagnostic {
                    severity: Severity::Error,
                    pass: PassKind::VnhIntegrity,
                    code: "verify-fib-tag-mismatch",
                    message: format!(
                        "P{}: FIB entry {} tags {:#x} but group {gid} allocated \
                         VMAC {:#x}",
                        fib.participant, e.prefix, mac, group.vmac
                    ),
                    participant: Some(fib.participant),
                    clause: None,
                    witness: Some(witness().with(Field::DstMac, mac)),
                }),
                Some(_) => {}
            }
        }
    }
    out
}

/// Run the three reachability invariants over `input`, fanning per-sender
/// injections out over `threads` workers. Deterministic: diagnostics come
/// back in (sender, port, tag) order regardless of the worker count, and
/// the timings are the only thread-count-dependent output.
pub fn run(input: &VerifyInput, threads: usize) -> ReachReport {
    let mut report = ReachReport::default();

    let injections: Vec<Injection> = input
        .fibs
        .iter()
        .flat_map(|fib| {
            let ports = input
                .participants
                .iter()
                .find(|(id, _)| *id == fib.participant)
                .map(|(_, p)| p.clone())
                .unwrap_or_default();
            injections_for(fib, &ports)
        })
        .collect();

    let worker = |inj: Injection| {
        let mut times = ReachTimes::default();
        let diags = check_injection(input, &inj, &mut times);
        (diags, times)
    };
    let results: Vec<(Vec<Diagnostic>, ReachTimes)> = if threads <= 1 || injections.len() < 2 {
        injections.into_iter().map(worker).collect()
    } else {
        crossbeam::pool::parallel_map(threads, injections, worker)
    };
    for (diags, times) in results {
        report.diagnostics.extend(diags);
        report.times.transit_us += times.transit_us;
        report.times.isolation_us += times.isolation_us;
        report.times.blackhole_us += times.blackhole_us;
    }

    let t = Instant::now();
    report.diagnostics.extend(check_vnh(input));
    report.times.vnh_us = duration_us(t.elapsed());
    report
}
