//! Pass 4: VNH / ARP consistency.
//!
//! The VNH optimization (§4.2) only works when three tables agree: the
//! compiler's VNH allocation, the flow rules matching VMAC tags, and the
//! ARP responder that hands senders those tags. This pass cross-checks
//! them:
//!
//! * **`unknown-vmac`** — a sender-stage rule matches a destination MAC
//!   that is neither an allocated VMAC nor a router interface MAC. No ARP
//!   answer can ever produce that tag, so the rule is dead — and if
//!   anything *did* emit it, the composed pipeline's behavior is
//!   unspecified. In a healthy pipeline this never fires; it catches
//!   allocator/compiler state divergence.
//! * **`duplicate-vnh`** — the allocation assigned one VNH IP or one VMAC
//!   to two forwarding equivalence classes; ARP would answer for only one.
//! * **`missing-arp`** — a VNH whose VMAC the flow table matches on has no
//!   ARP binding (checked only when the caller supplies ARP state):
//!   senders can never resolve the next hop, so the class blackholes.
//! * **`orphan-vnh`** — an allocated VNH whose VMAC no sender-stage rule
//!   matches: traffic tagged with it falls through to the fabric's
//!   catch-all drop.

use std::collections::{BTreeMap, BTreeSet};

use sdx_policy::{Field, Pattern};

use crate::{AnalysisInput, Diagnostic, PassKind, Severity};

/// Run the pass.
pub fn run(input: &AnalysisInput, out: &mut Vec<Diagnostic>) {
    let router_macs: BTreeSet<u64> = input
        .participants
        .iter()
        .flat_map(|p| p.router_macs.iter().copied())
        .collect();
    let vmacs: BTreeSet<u64> = input.vnh.iter().map(|(_, vmac)| *vmac).collect();

    // Duplicate allocations.
    let mut seen_ip: BTreeMap<std::net::Ipv4Addr, usize> = BTreeMap::new();
    let mut seen_mac: BTreeMap<u64, usize> = BTreeMap::new();
    for (g, (ip, vmac)) in input.vnh.iter().enumerate() {
        if let Some(first) = seen_ip.insert(*ip, g) {
            out.push(duplicate(format!(
                "VNH {ip} is allocated to groups {first} and {g}"
            )));
        }
        if let Some(first) = seen_mac.insert(*vmac, g) {
            out.push(duplicate(format!(
                "VMAC {vmac:#014x} is allocated to groups {first} and {g}"
            )));
        }
    }

    // Every DstMac the sender stage matches must be a known tag.
    let mut referenced: BTreeSet<u64> = BTreeSet::new();
    for (i, rule) in input.stage1.rules().iter().enumerate() {
        let Some(Pattern::Exact(mac)) = rule.match_.get(Field::DstMac) else {
            continue;
        };
        if vmacs.contains(mac) {
            referenced.insert(*mac);
        } else if !router_macs.contains(mac) {
            out.push(Diagnostic {
                severity: Severity::Error,
                pass: PassKind::Vnh,
                code: "unknown-vmac",
                message: format!(
                    "sender-stage rule {i} matches dstmac {mac:#014x}, which is neither an \
                     allocated VMAC nor a router MAC"
                ),
                participant: None,
                clause: None,
                witness: sdx_policy::witness_outside(&rule.match_, &[]),
            });
        }
    }

    for (g, (ip, vmac)) in input.vnh.iter().enumerate() {
        if referenced.contains(vmac) {
            // A referenced VNH must be resolvable by senders.
            if let Some(bound) = &input.arp_bound {
                if !bound.contains(ip) {
                    out.push(Diagnostic {
                        severity: Severity::Error,
                        pass: PassKind::Vnh,
                        code: "missing-arp",
                        message: format!(
                            "VNH {ip} (group {g}) is matched by the flow table but has no ARP \
                             binding; senders cannot resolve it"
                        ),
                        participant: None,
                        clause: None,
                        witness: None,
                    });
                }
            }
        } else {
            out.push(Diagnostic {
                severity: Severity::Warning,
                pass: PassKind::Vnh,
                code: "orphan-vnh",
                message: format!(
                    "VNH {ip} (group {g}, VMAC {vmac:#014x}) is allocated but no sender-stage \
                     rule matches its tag; tagged traffic falls through to the catch-all"
                ),
                participant: None,
                clause: None,
                witness: None,
            });
        }
    }
}

fn duplicate(message: String) -> Diagnostic {
    Diagnostic {
        severity: Severity::Error,
        pass: PassKind::Vnh,
        code: "duplicate-vnh",
        message,
        participant: None,
        clause: None,
        witness: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParticipantInfo;
    use sdx_policy::{Classifier, Match, Rule};
    use std::net::Ipv4Addr;

    fn stage1_matching(vmacs: &[u64]) -> Classifier {
        Classifier::new(
            vmacs
                .iter()
                .map(|m| Rule::pass(Match::on(Field::DstMac, Pattern::Exact(*m))))
                .collect(),
        )
    }

    fn base_input(vnh: Vec<(Ipv4Addr, u64)>, stage1: Classifier) -> AnalysisInput {
        AnalysisInput {
            participants: vec![ParticipantInfo {
                id: 1,
                vport: 1_000_001,
                ports: vec![1],
                router_macs: vec![0xaa],
                outbound: Vec::new(),
                inbound: Vec::new(),
            }],
            stage1,
            vnh,
            vport_base: 1_000_000,
            ..Default::default()
        }
    }

    #[test]
    fn consistent_tables_are_clean() {
        let input = base_input(
            vec![(Ipv4Addr::new(172, 1, 0, 1), 0xbb)],
            stage1_matching(&[0xbb, 0xaa]),
        );
        let mut out = Vec::new();
        run(&input, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unreferenced_tag_in_flow_table_is_flagged() {
        // The flow table matches VMAC 0xcc, but the allocation only knows
        // 0xbb — e.g. a stale table from a previous allocation epoch.
        let input = base_input(
            vec![(Ipv4Addr::new(172, 1, 0, 1), 0xbb)],
            stage1_matching(&[0xbb, 0xcc]),
        );
        let mut out = Vec::new();
        run(&input, &mut out);
        let hits: Vec<_> = out.iter().filter(|d| d.code == "unknown-vmac").collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].severity, Severity::Error);
    }

    #[test]
    fn missing_arp_binding_is_flagged() {
        let mut input = base_input(
            vec![
                (Ipv4Addr::new(172, 1, 0, 1), 0xbb),
                (Ipv4Addr::new(172, 1, 0, 2), 0xcc),
            ],
            stage1_matching(&[0xbb, 0xcc]),
        );
        // Only the first VNH is ARP-bound.
        input.arp_bound = Some([Ipv4Addr::new(172, 1, 0, 1)].into_iter().collect());
        let mut out = Vec::new();
        run(&input, &mut out);
        let hits: Vec<_> = out.iter().filter(|d| d.code == "missing-arp").collect();
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("172.1.0.2"));
    }

    #[test]
    fn duplicate_allocation_is_flagged() {
        let input = base_input(
            vec![
                (Ipv4Addr::new(172, 1, 0, 1), 0xbb),
                (Ipv4Addr::new(172, 1, 0, 1), 0xcc),
            ],
            stage1_matching(&[0xbb, 0xcc]),
        );
        let mut out = Vec::new();
        run(&input, &mut out);
        assert_eq!(out.iter().filter(|d| d.code == "duplicate-vnh").count(), 1);
    }

    #[test]
    fn orphan_vnh_is_a_warning() {
        let input = base_input(
            vec![(Ipv4Addr::new(172, 1, 0, 1), 0xbb)],
            stage1_matching(&[]),
        );
        let mut out = Vec::new();
        run(&input, &mut out);
        let hits: Vec<_> = out.iter().filter(|d| d.code == "orphan-vnh").collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].severity, Severity::Warning);
    }
}
