//! Pass 1: reachability / shadow analysis.
//!
//! A clause (or compiled rule) is *shadowed* when the union of earlier
//! entries covers its entire traffic region — first-match-wins semantics
//! then make it unreachable. Pairwise subsumption misses the multi-rule
//! case (`0.0.0.0/1` plus `128.0.0.0/1` together shadow everything below
//! them); [`sdx_policy::witness_outside`] decides the union case exactly.
//!
//! Clause-level shadows are **errors**: a participant wrote policy that can
//! never take effect, which almost always means the clause order or the
//! matches are wrong. Rule-level shadows in the compiled stages are
//! **warnings**: the compiler's own output is allowed to carry redundancy
//! (the optimizer already removes the single-rule cases), but the finding
//! is still worth surfacing.

use sdx_policy::{shadowed_rules, witness_outside, Classifier, Match};

use crate::{AnalysisInput, Diagnostic, Direction, PassKind, Severity};

/// Run the pass.
pub fn run(input: &AnalysisInput, out: &mut Vec<Diagnostic>) {
    for p in &input.participants {
        check_clauses(p.id, Direction::Outbound, &p.outbound, out);
        check_clauses(p.id, Direction::Inbound, &p.inbound, out);
    }
    check_table("sender stage", &input.stage1, out);
    check_table("receiver stage", &input.stage2, out);
}

fn check_clauses(
    participant: u32,
    dir: Direction,
    clauses: &[crate::ClauseInfo],
    out: &mut Vec<Diagnostic>,
) {
    let mut earlier: Vec<Match> = Vec::new();
    for (i, clause) in clauses.iter().enumerate() {
        // A clause whose own region is empty (a False predicate) is vacuous
        // regardless of ordering — report it as dead too, but only when
        // something earlier exists is it a *shadow*.
        let covered = !clause.matches.is_empty()
            && clause
                .matches
                .iter()
                .all(|m| witness_outside(m, &earlier).is_none());
        if covered && !earlier.is_empty() {
            out.push(Diagnostic {
                severity: Severity::Error,
                pass: PassKind::Shadow,
                code: "shadowed-clause",
                message: format!(
                    "clause is unreachable: earlier {dir} clauses cover every packet it matches"
                ),
                participant: Some(participant),
                clause: Some((dir, i)),
                witness: None,
            });
        }
        earlier.extend(clause.matches.iter().cloned());
    }
}

fn check_table(name: &str, table: &Classifier, out: &mut Vec<Diagnostic>) {
    for dead in shadowed_rules(table) {
        out.push(Diagnostic {
            severity: Severity::Warning,
            pass: PassKind::Shadow,
            code: "shadowed-rule",
            message: format!(
                "{name} rule {} is unreachable (covered by rules {:?})",
                dead.index, dead.shadowed_by
            ),
            participant: None,
            clause: None,
            witness: None,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClauseDest, ClauseInfo, ParticipantInfo};
    use sdx_policy::{Field, Pattern};

    fn clause(matches: Vec<Match>, dest: ClauseDest) -> ClauseInfo {
        ClauseInfo {
            matches,
            dest,
            rewrites: Vec::new(),
            unfiltered: false,
            exports_match: None,
        }
    }

    fn participant(id: u32, outbound: Vec<ClauseInfo>) -> ParticipantInfo {
        ParticipantInfo {
            id,
            vport: 1_000_000 + id,
            ports: vec![id],
            router_macs: vec![id as u64],
            outbound,
            inbound: Vec::new(),
        }
    }

    #[test]
    fn multi_clause_cover_is_an_error() {
        // Clause 2's dstport=80 region is covered by the union of the two
        // srcip halves — neither alone subsumes it.
        let half = |s: &str| {
            Match::on(Field::SrcIp, Pattern::Prefix(s.parse().unwrap()))
                .and(Field::DstPort, Pattern::Exact(80))
                .unwrap()
        };
        let input = AnalysisInput {
            participants: vec![participant(
                1,
                vec![
                    clause(vec![half("0.0.0.0/1")], ClauseDest::Participant(2)),
                    clause(vec![half("128.0.0.0/1")], ClauseDest::Participant(3)),
                    clause(
                        vec![Match::on(
                            Field::SrcIp,
                            Pattern::Prefix("0.0.0.0/0".parse().unwrap()),
                        )
                        .and(Field::DstPort, Pattern::Exact(80))
                        .unwrap()],
                        ClauseDest::Drop,
                    ),
                ],
            )],
            vport_base: 1_000_000,
            ..Default::default()
        };
        let mut out = Vec::new();
        run(&input, &mut out);
        let shadows: Vec<_> = out.iter().filter(|d| d.code == "shadowed-clause").collect();
        assert_eq!(shadows.len(), 1);
        assert_eq!(shadows[0].severity, Severity::Error);
        assert_eq!(shadows[0].participant, Some(1));
        assert_eq!(shadows[0].clause, Some((Direction::Outbound, 2)));
    }

    #[test]
    fn ordered_disjoint_clauses_are_clean() {
        let m = |port: u64| Match::on(Field::DstPort, Pattern::Exact(port));
        let input = AnalysisInput {
            participants: vec![participant(
                1,
                vec![
                    clause(vec![m(80)], ClauseDest::Participant(2)),
                    clause(vec![m(443)], ClauseDest::Participant(3)),
                ],
            )],
            vport_base: 1_000_000,
            ..Default::default()
        };
        let mut out = Vec::new();
        run(&input, &mut out);
        assert!(out.iter().all(|d| d.code != "shadowed-clause"), "{out:?}");
    }

    #[test]
    fn compiled_rule_shadow_is_a_warning() {
        use sdx_policy::Rule;
        let r = |s: &str| Rule::pass(Match::on(Field::SrcIp, Pattern::Prefix(s.parse().unwrap())));
        let stage1 = Classifier::new(vec![r("0.0.0.0/1"), r("128.0.0.0/1"), r("10.0.0.0/8")]);
        let input = AnalysisInput {
            stage1,
            vport_base: 1_000_000,
            ..Default::default()
        };
        let mut out = Vec::new();
        run(&input, &mut out);
        let dead: Vec<_> = out.iter().filter(|d| d.code == "shadowed-rule").collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].severity, Severity::Warning);
        assert!(dead[0].message.contains("rule 2"));
    }
}
