//! Pass 2: cross-participant conflict and blackhole detection.
//!
//! Each participant's policy is internally consistent at best — the defects
//! this pass hunts live *between* policies:
//!
//! * **`peer-no-route`** — an outbound clause forwards to a participant
//!   that exports no matching prefix to the author. The BGP-consistency
//!   filter (§4.3) compiles the clause away entirely, so the author's
//!   intent is silently unrealizable — the paper's BGP-safety invariant
//!   turned into a diagnostic.
//! * **`unknown-peer`** — an outbound clause forwards to a participant id
//!   nobody registered; the compiled rules tag traffic for a virtual port
//!   with no receiver block behind it.
//! * **`conflicting-drop`** — A forwards a traffic class to B, and B's
//!   inbound policy drops (part of) that class. The witness packet matches
//!   A's clause, survives B's earlier inbound clauses, and dies in the
//!   drop.
//! * **`remote-blackhole`** — A forwards to a *remote* participant (no
//!   physical ports) whose inbound clauses don't cover the traffic; the
//!   receiver stage's fallback for remote virtual ports is drop.
//!
//! A's rewrites are applied to its traffic region before matching it
//! against B's inbound clauses, so `mod(dstip=...) >> fwd(B)` pipelines are
//! analyzed in B's view of the packets.

use sdx_policy::{witness_outside, Field, Match, Pattern};

use crate::{
    AnalysisInput, ClauseDest, ClauseInfo, Diagnostic, Direction, ParticipantInfo, PassKind,
    Severity,
};

/// Run the pass.
pub fn run(input: &AnalysisInput, out: &mut Vec<Diagnostic>) {
    for p in &input.participants {
        for (ci, clause) in p.outbound.iter().enumerate() {
            let ClauseDest::Participant(to) = clause.dest else {
                continue;
            };
            check_outbound(input, p, ci, clause, to, out);
        }
    }
}

fn check_outbound(
    input: &AnalysisInput,
    author: &ParticipantInfo,
    ci: usize,
    clause: &ClauseInfo,
    to: u32,
    out: &mut Vec<Diagnostic>,
) {
    let here = Some((Direction::Outbound, ci));
    let witness0 = clause.matches.first().and_then(|m| m.witness());

    let Some(target) = input.participant(to) else {
        out.push(Diagnostic {
            severity: Severity::Error,
            pass: PassKind::Conflict,
            code: "unknown-peer",
            message: format!("clause forwards to unregistered participant P{to}"),
            participant: Some(author.id),
            clause: here,
            witness: witness0,
        });
        return;
    };

    if clause.exports_match == Some(false) {
        out.push(Diagnostic {
            severity: Severity::Error,
            pass: PassKind::Conflict,
            code: "peer-no-route",
            message: format!(
                "clause forwards to P{to}, but P{to} exports no matching prefix to P{}; \
                 the BGP-consistency filter compiles the clause away",
                author.id
            ),
            participant: Some(author.id),
            clause: here,
            witness: witness0,
        });
        // Without routes no traffic reaches the target; the receiver-side
        // checks below would only repeat the same root cause.
        return;
    }

    // B sees A's packets after A's rewrites.
    let sent: Vec<Match> = clause
        .matches
        .iter()
        .map(|m| apply_rewrites(m, &clause.rewrites))
        .collect();

    // Walk B's inbound chain in first-match order: traffic from A that
    // reaches a drop clause (surviving everything earlier) is a conflict.
    let mut earlier: Vec<Match> = Vec::new();
    for (k, inbound) in target.inbound.iter().enumerate() {
        if inbound.dest == ClauseDest::Drop {
            if let Some(w) = reaching_witness(&sent, &inbound.matches, &earlier) {
                out.push(Diagnostic {
                    severity: Severity::Error,
                    pass: PassKind::Conflict,
                    code: "conflicting-drop",
                    message: format!(
                        "traffic forwarded to P{to} is dropped by P{to}'s inbound clause {k}"
                    ),
                    participant: Some(author.id),
                    clause: here,
                    witness: Some(w),
                });
            }
        }
        earlier.extend(inbound.matches.iter().cloned());
    }

    // A remote participant has no default delivery: traffic its inbound
    // clauses miss hits the receiver stage's drop fallback.
    if !target.is_physical() {
        let caught: Vec<Match> = target
            .inbound
            .iter()
            .flat_map(|c| c.matches.iter().cloned())
            .collect();
        if let Some(w) = sent.iter().find_map(|m| witness_outside(m, &caught)) {
            out.push(Diagnostic {
                severity: Severity::Error,
                pass: PassKind::Conflict,
                code: "remote-blackhole",
                message: format!(
                    "remote participant P{to} has no inbound clause for (all of) this traffic; \
                     the receiver stage drops it"
                ),
                participant: Some(author.id),
                clause: here,
                witness: Some(w),
            });
        }
    }
}

/// A packet in some `sent` region that reaches one of `drop_matches` while
/// escaping every match in `earlier`.
fn reaching_witness(sent: &[Match], drop_matches: &[Match], earlier: &[Match]) -> Option<Packet> {
    for m in sent {
        for d in drop_matches {
            let Some(both) = m.intersect(d) else {
                continue;
            };
            if let Some(w) = witness_outside(&both, earlier) {
                return Some(w);
            }
        }
    }
    None
}

use sdx_policy::Packet;

/// The image of a match region under a clause's field rewrites: rewritten
/// fields are pinned to their written value, other constraints are kept.
fn apply_rewrites(m: &Match, rewrites: &[(Field, u64)]) -> Match {
    if rewrites.is_empty() {
        return m.clone();
    }
    // Later rewrites of the same field overwrite earlier ones.
    let last: std::collections::BTreeMap<Field, u64> = rewrites.iter().copied().collect();
    let mut result = Match::any();
    for (f, p) in m.iter() {
        if last.contains_key(f) {
            continue;
        }
        result = result.and(*f, *p).expect("fields are distinct");
    }
    for (f, v) in &last {
        result = result
            .and(*f, Pattern::Exact(*v))
            .expect("rewritten fields removed above");
    }
    result
}

trait MatchWitness {
    fn witness(&self) -> Option<Packet>;
}

impl MatchWitness for Match {
    fn witness(&self) -> Option<Packet> {
        witness_outside(self, &[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClauseInfo;

    fn m_port(port: u64) -> Match {
        Match::on(Field::DstPort, Pattern::Exact(port))
    }

    fn fwd(matches: Vec<Match>, to: u32) -> ClauseInfo {
        ClauseInfo {
            matches,
            dest: ClauseDest::Participant(to),
            rewrites: Vec::new(),
            unfiltered: false,
            exports_match: Some(true),
        }
    }

    fn drop_clause(matches: Vec<Match>) -> ClauseInfo {
        ClauseInfo {
            matches,
            dest: ClauseDest::Drop,
            rewrites: Vec::new(),
            unfiltered: false,
            exports_match: None,
        }
    }

    fn participant(id: u32, ports: Vec<u32>) -> ParticipantInfo {
        ParticipantInfo {
            id,
            vport: 1_000_000 + id,
            router_macs: ports.iter().map(|p| *p as u64).collect(),
            ports,
            outbound: Vec::new(),
            inbound: Vec::new(),
        }
    }

    fn analyze_two(a: ParticipantInfo, b: ParticipantInfo) -> Vec<Diagnostic> {
        let input = AnalysisInput {
            participants: vec![a, b],
            vport_base: 1_000_000,
            ..Default::default()
        };
        let mut out = Vec::new();
        run(&input, &mut out);
        out
    }

    #[test]
    fn forward_into_inbound_drop_is_flagged() {
        let mut a = participant(1, vec![1]);
        a.outbound.push(fwd(vec![m_port(80)], 2));
        let mut b = participant(2, vec![2]);
        b.inbound.push(drop_clause(vec![m_port(80)]));
        let out = analyze_two(a, b);
        let hits: Vec<_> = out
            .iter()
            .filter(|d| d.code == "conflicting-drop")
            .collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].severity, Severity::Error);
        // The witness is replayable: it matches both sides of the conflict.
        let w = hits[0].witness.as_ref().unwrap();
        assert!(m_port(80).matches(w));
    }

    #[test]
    fn earlier_inbound_clause_rescues_the_traffic() {
        // B accepts port-80 traffic at clause 0; the later catch-all drop
        // never sees it, so there is no conflict.
        let mut a = participant(1, vec![1]);
        a.outbound.push(fwd(vec![m_port(80)], 2));
        let mut b = participant(2, vec![2]);
        b.inbound.push(ClauseInfo {
            matches: vec![m_port(80)],
            dest: ClauseDest::OwnPort(2),
            rewrites: Vec::new(),
            unfiltered: false,
            exports_match: None,
        });
        b.inbound.push(drop_clause(vec![Match::any()]));
        let out = analyze_two(a, b);
        assert!(out.iter().all(|d| d.code != "conflicting-drop"), "{out:?}");
    }

    #[test]
    fn rewrites_are_applied_before_matching() {
        // A rewrites dstport 80→8080 before forwarding; B only drops 80,
        // which the rewritten traffic no longer matches.
        let mut a = participant(1, vec![1]);
        let mut c = fwd(vec![m_port(80)], 2);
        c.rewrites.push((Field::DstPort, 8080));
        a.outbound.push(c);
        let mut b = participant(2, vec![2]);
        b.inbound.push(drop_clause(vec![m_port(80)]));
        let out = analyze_two(a, b);
        assert!(out.iter().all(|d| d.code != "conflicting-drop"), "{out:?}");

        // ...and the other way around: rewriting *into* the dropped class.
        let mut a2 = participant(1, vec![1]);
        let mut c2 = fwd(vec![m_port(8080)], 2);
        c2.rewrites.push((Field::DstPort, 80));
        a2.outbound.push(c2);
        let mut b2 = participant(2, vec![2]);
        b2.inbound.push(drop_clause(vec![m_port(80)]));
        let out2 = analyze_two(a2, b2);
        assert_eq!(
            out2.iter().filter(|d| d.code == "conflicting-drop").count(),
            1
        );
    }

    #[test]
    fn peer_without_matching_route_is_flagged() {
        let mut a = participant(1, vec![1]);
        let mut c = fwd(vec![m_port(80)], 2);
        c.exports_match = Some(false);
        a.outbound.push(c);
        let b = participant(2, vec![2]);
        let out = analyze_two(a, b);
        let hits: Vec<_> = out.iter().filter(|d| d.code == "peer-no-route").collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].severity, Severity::Error);
    }

    #[test]
    fn remote_target_without_covering_inbound_is_a_blackhole() {
        let mut a = participant(1, vec![1]);
        let mut c = fwd(vec![m_port(80)], 2);
        c.unfiltered = true;
        c.exports_match = None;
        a.outbound.push(c);
        // Remote participant: no ports; inbound only catches port 443.
        let mut b = participant(2, Vec::new());
        b.inbound.push(ClauseInfo {
            matches: vec![m_port(443)],
            dest: ClauseDest::BgpDefault,
            rewrites: Vec::new(),
            unfiltered: false,
            exports_match: None,
        });
        let out = analyze_two(a, b);
        assert_eq!(
            out.iter().filter(|d| d.code == "remote-blackhole").count(),
            1
        );
    }

    #[test]
    fn unknown_peer_is_flagged() {
        let mut a = participant(1, vec![1]);
        a.outbound.push(fwd(vec![m_port(80)], 99));
        let input = AnalysisInput {
            participants: vec![a],
            vport_base: 1_000_000,
            ..Default::default()
        };
        let mut out = Vec::new();
        run(&input, &mut out);
        assert_eq!(out.iter().filter(|d| d.code == "unknown-peer").count(), 1);
    }
}
