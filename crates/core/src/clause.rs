//! The participant-facing policy form the SDX controller analyzes.
//!
//! A [`ParticipantPolicy`] is a prioritized list of inbound and outbound
//! [`Clause`]s. A clause reads like the paper's examples — a `match`, an
//! optional destination-prefix scope, optional header rewrites, and a
//! destination:
//!
//! * outbound `match(dstport=80) >> fwd(B)` — application-specific peering;
//! * inbound `match(srcip=0/1) >> fwd(port B1)` — inbound traffic
//!   engineering;
//! * inbound `match(dstip=anycast) >> mod(dstip=replica) >> bgp-default` —
//!   wide-area server load balancing;
//! * outbound unfiltered `match(srcip in YouTubePrefixes) >> fwd(E)` —
//!   middlebox steering.
//!
//! Clauses of one participant are first-match-wins (the SDX optimizes for
//! unicast policies, §4.3.1); multicast requires explicitly overlapping
//! participants, which the clause form deliberately does not express.

use sdx_ip::PrefixSet;
use sdx_policy::{Field, Predicate, Value};
use serde::{Deserialize, Serialize};

use crate::ParticipantId;

/// Where a clause sends matching traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Dest {
    /// To another participant's virtual switch (subject to BGP consistency
    /// unless the clause is unfiltered).
    Participant(ParticipantId),
    /// To one of the participant's own physical ports (inbound engineering).
    OwnPort(u32),
    /// Drop the traffic.
    Drop,
    /// Follow BGP: resolve the (possibly rewritten) destination IP against
    /// the route server's best route at compile time. Used by remote
    /// participants whose rewrites redirect traffic onward.
    BgpDefault,
}

/// One policy clause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Clause {
    /// The non-destination-prefix part of the match (ports, source IPs, …).
    pub match_: Predicate,
    /// Destination-prefix scope, if the clause is scoped (`None` = all
    /// destinations). Kept separate from `match_` so the controller can
    /// intersect it with BGP reachability and group it into FECs.
    pub dst_prefixes: Option<PrefixSet>,
    /// Header rewrites applied to matching packets, in order.
    pub rewrites: Vec<(Field, u64)>,
    /// Where matching traffic goes.
    pub dest: Dest,
    /// Skip the BGP-consistency filter (service steering to a participant,
    /// e.g. a middlebox, that does not announce routes). Use sparingly.
    pub unfiltered: bool,
}

impl Clause {
    /// `match >> fwd(to)` — the workhorse outbound clause.
    pub fn fwd(match_: Predicate, to: ParticipantId) -> Self {
        Clause {
            match_,
            dst_prefixes: None,
            rewrites: Vec::new(),
            dest: Dest::Participant(to),
            unfiltered: false,
        }
    }

    /// `match >> fwd(own port)` — the workhorse inbound clause.
    pub fn to_port(match_: Predicate, port: u32) -> Self {
        Clause {
            match_,
            dst_prefixes: None,
            rewrites: Vec::new(),
            dest: Dest::OwnPort(port),
            unfiltered: false,
        }
    }

    /// `match >> drop`.
    pub fn drop(match_: Predicate) -> Self {
        Clause {
            match_,
            dst_prefixes: None,
            rewrites: Vec::new(),
            dest: Dest::Drop,
            unfiltered: false,
        }
    }

    /// Builder: scope the clause to destination prefixes.
    pub fn for_prefixes(mut self, prefixes: PrefixSet) -> Self {
        self.dst_prefixes = Some(prefixes);
        self
    }

    /// Builder: add a header rewrite.
    pub fn rewrite(mut self, field: Field, value: impl Into<Value>) -> Self {
        self.rewrites.push((field, value.into().0));
        self
    }

    /// Builder: bypass the BGP-consistency filter (service steering).
    pub fn unfiltered(mut self) -> Self {
        self.unfiltered = true;
        self
    }
}

/// A participant's complete SDX policy.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ParticipantPolicy {
    /// Clauses applied to traffic this participant sends into the fabric
    /// (matched at its physical ports).
    pub outbound: Vec<Clause>,
    /// Clauses applied to traffic destined to this participant (matched at
    /// its virtual port).
    pub inbound: Vec<Clause>,
}

impl ParticipantPolicy {
    /// The empty policy: all traffic follows BGP defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: append an outbound clause.
    pub fn outbound(mut self, clause: Clause) -> Self {
        self.outbound.push(clause);
        self
    }

    /// Builder: append an inbound clause.
    pub fn inbound(mut self, clause: Clause) -> Self {
        self.inbound.push(clause);
        self
    }

    /// Is this the empty (pure-default) policy?
    pub fn is_empty(&self) -> bool {
        self.outbound.is_empty() && self.inbound.is_empty()
    }

    /// Total number of clauses.
    pub fn len(&self) -> usize {
        self.outbound.len() + self.inbound.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_policy::match_;

    #[test]
    fn paper_application_specific_peering_shape() {
        let b = ParticipantId(2);
        let c = ParticipantId(3);
        let policy = ParticipantPolicy::new()
            .outbound(Clause::fwd(match_(Field::DstPort, 80u16), b))
            .outbound(Clause::fwd(match_(Field::DstPort, 443u16), c));
        assert_eq!(policy.outbound.len(), 2);
        assert_eq!(policy.outbound[0].dest, Dest::Participant(b));
        assert!(!policy.is_empty());
        assert_eq!(policy.len(), 2);
    }

    #[test]
    fn builders_compose() {
        let prefixes: PrefixSet = ["10.0.0.0/8".parse().unwrap()].into_iter().collect();
        let c = Clause::fwd(Predicate::True, ParticipantId(9))
            .for_prefixes(prefixes.clone())
            .rewrite(Field::DstIp, 42u32)
            .unfiltered();
        assert_eq!(c.dst_prefixes, Some(prefixes));
        assert_eq!(c.rewrites, vec![(Field::DstIp, 42)]);
        assert!(c.unfiltered);
    }

    #[test]
    fn inbound_engineering_shape() {
        let policy = ParticipantPolicy::new()
            .inbound(Clause::to_port(
                Predicate::test_prefix(Field::SrcIp, "0.0.0.0/1".parse().unwrap()),
                11,
            ))
            .inbound(Clause::to_port(
                Predicate::test_prefix(Field::SrcIp, "128.0.0.0/1".parse().unwrap()),
                12,
            ));
        assert_eq!(policy.inbound.len(), 2);
        assert_eq!(policy.inbound[1].dest, Dest::OwnPort(12));
    }

    #[test]
    fn empty_policy_is_default() {
        assert!(ParticipantPolicy::new().is_empty());
    }
}
