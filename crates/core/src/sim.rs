//! End-to-end fabric simulation: the SDX runtime plus one border router per
//! participant port, kept in sync with the route server's advertisements.
//! This is the harness behind the deployment experiments (Figure 5) and the
//! examples: it exercises the *actual* compiled flow rules, the multi-stage
//! FIB, ARP, and VMAC tagging.

use std::collections::BTreeMap;

use sdx_policy::Packet;
use sdx_switch::{encode_frame, BorderRouter, Forward, PcapWriter};

use crate::{ParticipantId, SdxRuntime};

/// A delivered packet: where it left the fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// The participant owning the egress port.
    pub to: ParticipantId,
    /// The egress fabric port.
    pub port: u32,
    /// The packet as it left (rewrites applied).
    pub packet: Packet,
}

/// The simulation: runtime + border routers.
#[derive(Debug)]
pub struct FabricSim {
    runtime: SdxRuntime,
    /// One router per (participant, port), keyed by fabric port number.
    routers: BTreeMap<u32, (ParticipantId, BorderRouter)>,
    /// Participants that re-inject delivered traffic (middleboxes): a
    /// delivery to them is processed and sent onward through their own
    /// router, enabling the service chaining of §8.
    reinjectors: std::collections::BTreeSet<ParticipantId>,
    /// Optional packet capture of every frame entering the fabric.
    capture: Option<PcapWriter>,
    /// Virtual clock for capture timestamps, microseconds.
    clock_us: u64,
    /// Delivered packets per (sender, receiver) pair.
    matrix: BTreeMap<(ParticipantId, ParticipantId), u64>,
}

impl FabricSim {
    /// Wrap a configured runtime, creating a border router for every
    /// registered participant port.
    pub fn new(runtime: SdxRuntime) -> Self {
        let mut routers = BTreeMap::new();
        for participant in runtime.participants() {
            for port in &participant.ports {
                routers.insert(
                    port.port,
                    (
                        participant.id,
                        BorderRouter::new(port.port, port.mac, port.ip),
                    ),
                );
            }
        }
        FabricSim {
            runtime,
            routers,
            reinjectors: std::collections::BTreeSet::new(),
            capture: None,
            clock_us: 0,
            matrix: BTreeMap::new(),
        }
    }

    /// Start capturing every frame that enters the fabric (the deployment
    /// tooling's `--pcap`). Retrieve the capture with
    /// [`take_capture`](Self::take_capture).
    pub fn enable_capture(&mut self) {
        self.capture = Some(PcapWriter::new());
    }

    /// Finish and return the capture, if one was enabled.
    pub fn take_capture(&mut self) -> Option<bytes::Bytes> {
        self.capture.take().map(PcapWriter::finish)
    }

    /// Advance the virtual clock used for capture timestamps.
    pub fn set_time_us(&mut self, us: u64) {
        self.clock_us = us;
    }

    /// Packets delivered per (sender, receiver) pair since construction —
    /// the exchange's traffic matrix.
    pub fn traffic_matrix(&self) -> &BTreeMap<(ParticipantId, ParticipantId), u64> {
        &self.matrix
    }

    /// Mark a participant as a middlebox that re-injects traffic it
    /// receives: deliveries to it are forwarded onward through its own
    /// border router (its outbound SDX clauses apply), chaining services.
    pub fn enable_reinjection(&mut self, id: ParticipantId) {
        self.reinjectors.insert(id);
    }

    /// The wrapped runtime.
    pub fn runtime(&self) -> &SdxRuntime {
        &self.runtime
    }

    /// Mutable access (policy changes, BGP updates). Call
    /// [`sync`](Self::sync) afterwards.
    pub fn runtime_mut(&mut self) -> &mut SdxRuntime {
        &mut self.runtime
    }

    /// A participant's border router (the one at its primary port).
    pub fn router(&self, id: ParticipantId) -> Option<&BorderRouter> {
        self.routers
            .values()
            .find(|(owner, _)| *owner == id)
            .map(|(_, r)| r)
    }

    /// Propagate the SDX's current advertisements into every border router
    /// (routes and resolved next-hop MACs).
    pub fn sync(&mut self) {
        for (owner, router) in self.routers.values_mut() {
            self.runtime.sync_router(*owner, router);
        }
    }

    /// Send an IP packet from a participant's network: its border router
    /// forwards (FIB + ARP → VMAC tag), the fabric switches it, and the
    /// deliveries name the receiving participants.
    ///
    /// The packet needs `DstIp` set; `Port`/MACs are filled in by the
    /// router.
    pub fn send_from(&mut self, from: ParticipantId, packet: Packet) -> Vec<Delivery> {
        self.send_from_traced(from, packet).0
    }

    /// Like [`send_from`](Self::send_from), additionally returning the
    /// sequence of participants the packet visited (middlebox chains).
    pub fn send_from_traced(
        &mut self,
        from: ParticipantId,
        packet: Packet,
    ) -> (Vec<Delivery>, Vec<ParticipantId>) {
        let mut trace = vec![from];
        let out = self.send_inner(from, packet, &mut trace, 4);
        (out, trace)
    }

    fn send_inner(
        &mut self,
        from: ParticipantId,
        packet: Packet,
        trace: &mut Vec<ParticipantId>,
        budget: usize,
    ) -> Vec<Delivery> {
        if budget == 0 {
            return Vec::new();
        }
        let Some((_, router)) = self
            .routers
            .iter_mut()
            .map(|(_, v)| v)
            .find(|(owner, _)| *owner == from)
        else {
            return Vec::new();
        };
        let frame = match router.forward(packet.clone()) {
            Forward::Frame(f) => f,
            // The sim resolves ARP synchronously: ask the SDX responder,
            // learn the binding, and retry once.
            Forward::NeedArp(req) => {
                let Some(reply) = self.runtime.resolve_arp(&req) else {
                    return Vec::new();
                };
                router.learn_arp(&reply);
                match router.forward(packet) {
                    Forward::Frame(f) => f,
                    _ => return Vec::new(),
                }
            }
            Forward::NoRoute => return Vec::new(),
        };
        if let Some(cap) = &mut self.capture {
            if let Ok(bytes) = encode_frame(&frame, &[]) {
                cap.write_frame(
                    (self.clock_us / 1_000_000) as u32,
                    (self.clock_us % 1_000_000) as u32,
                    &bytes,
                );
            }
        }
        let deliveries = self.deliver(frame);
        let mut out = Vec::new();
        for d in deliveries {
            if self.reinjectors.contains(&d.to) && d.to != from {
                trace.push(d.to);
                out.extend(self.send_inner(d.to, d.packet, trace, budget - 1));
            } else {
                *self.matrix.entry((from, d.to)).or_default() += 1;
                out.push(d);
            }
        }
        out
    }

    fn deliver(&mut self, frame: Packet) -> Vec<Delivery> {
        self.runtime
            .process_packet(&frame)
            .into_iter()
            .filter_map(|(port, packet)| {
                let to = self.runtime.port_owner(port)?;
                Some(Delivery { to, port, packet })
            })
            .collect()
    }
}
