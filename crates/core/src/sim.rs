//! End-to-end fabric simulation: the SDX runtime plus one border router per
//! participant port, kept in sync with the route server's advertisements.
//! This is the harness behind the deployment experiments (Figure 5) and the
//! examples: it exercises the *actual* compiled flow rules, the multi-stage
//! FIB, ARP, and VMAC tagging.

use std::collections::BTreeMap;

use sdx_policy::Packet;
use sdx_switch::{encode_frame, BorderRouter, Forward, PcapWriter};

use crate::{ParticipantId, SdxRuntime};

/// A delivered packet: where it left the fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// The participant owning the egress port.
    pub to: ParticipantId,
    /// The egress fabric port.
    pub port: u32,
    /// The packet as it left (rewrites applied).
    pub packet: Packet,
}

/// The simulation: runtime + border routers.
#[derive(Debug)]
pub struct FabricSim {
    runtime: SdxRuntime,
    /// One router per (participant, port), keyed by fabric port number.
    routers: BTreeMap<u32, (ParticipantId, BorderRouter)>,
    /// Participants that re-inject delivered traffic (middleboxes): a
    /// delivery to them is processed and sent onward through their own
    /// router, enabling the service chaining of §8.
    reinjectors: std::collections::BTreeSet<ParticipantId>,
    /// Optional packet capture of every frame entering the fabric.
    capture: Option<PcapWriter>,
    /// Virtual clock for capture timestamps, microseconds.
    clock_us: u64,
    /// Delivered packets per (sender, receiver) pair.
    matrix: BTreeMap<(ParticipantId, ParticipantId), u64>,
}

impl FabricSim {
    /// Wrap a configured runtime, creating a border router for every
    /// registered participant port.
    pub fn new(runtime: SdxRuntime) -> Self {
        let mut routers = BTreeMap::new();
        for participant in runtime.participants() {
            for port in &participant.ports {
                routers.insert(
                    port.port,
                    (
                        participant.id,
                        BorderRouter::new(port.port, port.mac, port.ip),
                    ),
                );
            }
        }
        FabricSim {
            runtime,
            routers,
            reinjectors: std::collections::BTreeSet::new(),
            capture: None,
            clock_us: 0,
            matrix: BTreeMap::new(),
        }
    }

    /// Start capturing every frame that enters the fabric (the deployment
    /// tooling's `--pcap`). Retrieve the capture with
    /// [`take_capture`](Self::take_capture).
    pub fn enable_capture(&mut self) {
        self.capture = Some(PcapWriter::new());
    }

    /// Finish and return the capture, if one was enabled.
    pub fn take_capture(&mut self) -> Option<bytes::Bytes> {
        self.capture.take().map(PcapWriter::finish)
    }

    /// Advance the virtual clock used for capture timestamps.
    pub fn set_time_us(&mut self, us: u64) {
        self.clock_us = us;
    }

    /// Packets delivered per (sender, receiver) pair since construction —
    /// the exchange's traffic matrix.
    pub fn traffic_matrix(&self) -> &BTreeMap<(ParticipantId, ParticipantId), u64> {
        &self.matrix
    }

    /// Mark a participant as a middlebox that re-injects traffic it
    /// receives: deliveries to it are forwarded onward through its own
    /// border router (its outbound SDX clauses apply), chaining services.
    pub fn enable_reinjection(&mut self, id: ParticipantId) {
        self.reinjectors.insert(id);
    }

    /// The wrapped runtime.
    pub fn runtime(&self) -> &SdxRuntime {
        &self.runtime
    }

    /// Mutable access (policy changes, BGP updates). Call
    /// [`sync`](Self::sync) afterwards.
    pub fn runtime_mut(&mut self) -> &mut SdxRuntime {
        &mut self.runtime
    }

    /// A participant's border router (the one at its primary port).
    pub fn router(&self, id: ParticipantId) -> Option<&BorderRouter> {
        self.routers
            .values()
            .find(|(owner, _)| *owner == id)
            .map(|(_, r)| r)
    }

    /// Propagate the SDX's current advertisements into every border router
    /// (routes and resolved next-hop MACs).
    pub fn sync(&mut self) {
        for (owner, router) in self.routers.values_mut() {
            self.runtime.sync_router(*owner, router);
        }
    }

    /// Send an IP packet from a participant's network: its border router
    /// forwards (FIB + ARP → VMAC tag), the fabric switches it, and the
    /// deliveries name the receiving participants.
    ///
    /// The packet needs `DstIp` set; `Port`/MACs are filled in by the
    /// router.
    pub fn send_from(&mut self, from: ParticipantId, packet: Packet) -> Vec<Delivery> {
        self.send_from_traced(from, packet).0
    }

    /// Like [`send_from`](Self::send_from), additionally returning the
    /// sequence of participants the packet visited (middlebox chains).
    pub fn send_from_traced(
        &mut self,
        from: ParticipantId,
        packet: Packet,
    ) -> (Vec<Delivery>, Vec<ParticipantId>) {
        let mut trace = vec![from];
        let out = self.send_inner(from, packet, &mut trace, 4);
        (out, trace)
    }

    /// Send a batch of IP packets from one participant, pushing them through
    /// the fabric switch in one batched pipeline pass (the traffic driver's
    /// path — see [`SdxRuntime::process_batch`]). Deliveries are grouped per
    /// input packet, in input order; middlebox re-injection falls back to
    /// per-packet processing, as in [`send_from`](Self::send_from).
    pub fn send_batch_from(
        &mut self,
        from: ParticipantId,
        packets: &[Packet],
    ) -> Vec<Vec<Delivery>> {
        // Stage 1: every packet through the sender's border router.
        let frames: Vec<Option<Packet>> = packets
            .iter()
            .map(|p| self.forward_frame(from, p.clone()))
            .collect();
        for frame in frames.iter().flatten() {
            self.capture_frame(frame);
        }
        // Stage 2: the routable ones through the fabric, batched.
        let flat: Vec<Packet> = frames.iter().flatten().cloned().collect();
        let mut batched = self.runtime.process_batch(&flat).into_iter();
        // Reassemble per-input results (un-routable packets deliver nothing).
        frames
            .iter()
            .map(|slot| {
                if slot.is_none() {
                    return Vec::new();
                }
                let outs = batched.next().expect("one batch result per frame");
                let deliveries: Vec<Delivery> = outs
                    .into_iter()
                    .filter_map(|(port, packet)| {
                        let to = self.runtime.port_owner(port)?;
                        Some(Delivery { to, port, packet })
                    })
                    .collect();
                let mut trace = vec![from];
                self.finish_deliveries(from, deliveries, &mut trace, 4)
            })
            .collect()
    }

    fn send_inner(
        &mut self,
        from: ParticipantId,
        packet: Packet,
        trace: &mut Vec<ParticipantId>,
        budget: usize,
    ) -> Vec<Delivery> {
        if budget == 0 {
            return Vec::new();
        }
        let Some(frame) = self.forward_frame(from, packet) else {
            return Vec::new();
        };
        self.capture_frame(&frame);
        let deliveries = self.deliver(frame);
        self.finish_deliveries(from, deliveries, trace, budget)
    }

    /// A participant's border router turns an IP packet into a tagged
    /// fabric frame (FIB + ARP). The sim resolves ARP synchronously: ask
    /// the SDX responder, learn the binding, and retry once.
    fn forward_frame(&mut self, from: ParticipantId, packet: Packet) -> Option<Packet> {
        let (_, router) = self
            .routers
            .iter_mut()
            .map(|(_, v)| v)
            .find(|(owner, _)| *owner == from)?;
        match router.forward(packet.clone()) {
            Forward::Frame(f) => Some(f),
            Forward::NeedArp(req) => {
                let reply = self.runtime.resolve_arp(&req)?;
                router.learn_arp(&reply);
                match router.forward(packet) {
                    Forward::Frame(f) => Some(f),
                    _ => None,
                }
            }
            Forward::NoRoute => None,
        }
    }

    fn capture_frame(&mut self, frame: &Packet) {
        if let Some(cap) = &mut self.capture {
            if let Ok(bytes) = encode_frame(frame, &[]) {
                cap.write_frame(
                    (self.clock_us / 1_000_000) as u32,
                    (self.clock_us % 1_000_000) as u32,
                    &bytes,
                );
            }
        }
    }

    /// Attribute deliveries to the traffic matrix, recursing through
    /// middlebox re-injection.
    fn finish_deliveries(
        &mut self,
        from: ParticipantId,
        deliveries: Vec<Delivery>,
        trace: &mut Vec<ParticipantId>,
        budget: usize,
    ) -> Vec<Delivery> {
        let mut out = Vec::new();
        for d in deliveries {
            if self.reinjectors.contains(&d.to) && d.to != from {
                trace.push(d.to);
                out.extend(self.send_inner(d.to, d.packet, trace, budget - 1));
            } else {
                *self.matrix.entry((from, d.to)).or_default() += 1;
                out.push(d);
            }
        }
        out
    }

    fn deliver(&mut self, frame: Packet) -> Vec<Delivery> {
        self.runtime
            .process_packet(&frame)
            .into_iter()
            .filter_map(|(port, packet)| {
                let to = self.runtime.port_owner(port)?;
                Some(Delivery { to, port, packet })
            })
            .collect()
    }
}
