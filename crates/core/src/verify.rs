//! Bridge between the controller and the whole-fabric symbolic verifier
//! (`sdx-analyze`'s `reach`/`diff` passes).
//!
//! The verifier consumes a [`VerifyInput`]: compiled stage tables, the
//! border-router FIB/ARP tagging model, the VNH allocation, and the route
//! server's advertisement ground truth. This module lowers controller state
//! into that form. The FIB model mirrors [`SdxRuntime::sync_router`]: a
//! router never keeps fabric routes for prefixes it announces itself, takes
//! the SDX-advertised (virtual) next hop for everything else, and resolves
//! the next hop's MAC — the VMAC tag — through ARP.
//!
//! [`SdxRuntime::sync_router`]: crate::SdxRuntime::sync_router

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use sdx_analyze::{FibEntry, FibModel, GroupBinding, VerifyInput};
use sdx_ip::{MacAddr, PrefixSet};
use sdx_switch::BorderRouter;

use crate::compile::{Compilation, CompileInput};
use crate::participant::VPORT_BASE;
use crate::ParticipantId;

/// Lower a compile input and its result into the verifier's input form,
/// with FIB models synthesized from the compilation (what every router's
/// state *will* be once it converges on the new advertisements).
pub fn build_verify_input(input: &CompileInput<'_>, compilation: &Compilation) -> VerifyInput {
    let mut vi = VerifyInput {
        tables: vec![compilation.stage1.clone(), compilation.stage2.clone()],
        participants: physical_participants(input),
        groups: group_bindings(compilation),
        fibs: Vec::new(),
        advertised: advertised_ground_truth(input),
        vport_base: VPORT_BASE,
    };
    let macs = interface_macs(input);
    vi.fibs = vi
        .participants
        .iter()
        .map(|(id, _)| model_fib(input, compilation, ParticipantId(*id), &macs))
        .collect();
    vi
}

/// `(participant, physical ports)` for every physical participant.
pub fn physical_participants(input: &CompileInput<'_>) -> Vec<(u32, Vec<u32>)> {
    input
        .participants
        .iter()
        .filter(|(_, p)| p.is_physical())
        .map(|(id, p)| (id.0, p.port_numbers().collect()))
        .collect()
}

/// The compilation's FEC → (VNH, VMAC) allocation as verifier bindings.
pub fn group_bindings(compilation: &Compilation) -> Vec<GroupBinding> {
    compilation
        .groups
        .iter()
        .zip(&compilation.vnh)
        .map(|(g, (vnh, vmac))| GroupBinding {
            prefixes: g.prefixes.clone(),
            vnh: *vnh,
            vmac: vmac.to_u64(),
        })
        .collect()
}

/// Ground truth for the isolation invariant: `(advertiser, viewer)` → the
/// prefixes the advertiser exports to the viewer via the route server. All
/// feasible advertisers count, not just best routes — inbound redirection
/// to any consenting advertiser is legitimate.
pub fn advertised_ground_truth(input: &CompileInput<'_>) -> BTreeMap<(u32, u32), PrefixSet> {
    let mut out: BTreeMap<(u32, u32), PrefixSet> = BTreeMap::new();
    let viewers: Vec<u32> = input
        .participants
        .iter()
        .filter(|(_, p)| p.is_physical())
        .map(|(id, _)| id.0)
        .collect();
    for prefix in input.route_server.all_prefixes() {
        for viewer in &viewers {
            for advertiser in input
                .route_server
                .reachable_via(&prefix, ParticipantId(*viewer).peer())
            {
                out.entry((advertiser.0, *viewer))
                    .or_default()
                    .insert(prefix);
            }
        }
    }
    out
}

/// Router-interface IP → MAC, from every participant's port configuration
/// (what the ARP responder answers for besides the VNHs).
fn interface_macs(input: &CompileInput<'_>) -> BTreeMap<Ipv4Addr, MacAddr> {
    input
        .participants
        .values()
        .flat_map(|p| p.ports.iter().map(|c| (c.ip, c.mac)))
        .collect()
}

/// Synthesize the converged FIB of one participant's border router from a
/// compilation: own-announced prefixes absent, grouped prefixes on their
/// VNH/VMAC, ungrouped prefixes on the original next hop with the MAC
/// resolved against the router interface table.
fn model_fib(
    input: &CompileInput<'_>,
    compilation: &Compilation,
    viewer: ParticipantId,
    interface_macs: &BTreeMap<Ipv4Addr, MacAddr>,
) -> FibModel {
    let rs = input.route_server;
    let own = rs.announced_by(viewer.peer());
    let mut entries = Vec::new();
    for prefix in rs.all_prefixes() {
        if own.contains(&prefix) {
            continue;
        }
        let Some(best) = rs.best_route(&prefix, viewer.peer()) else {
            continue;
        };
        let (next_hop, mac) = match compilation.group_of(&prefix) {
            Some(g) => (compilation.vnh[g].0, Some(compilation.vnh[g].1.to_u64())),
            None => {
                let nh = best.route.attrs.next_hop;
                (nh, interface_macs.get(&nh).map(|m| m.to_u64()))
            }
        };
        entries.push(FibEntry {
            prefix,
            next_hop,
            mac,
        });
    }
    FibModel {
        participant: viewer.0,
        entries,
    }
}

/// The FIB model of an *actual* border router — its trie and ARP cache as
/// they stand, rather than the converged synthesis. Lets audits verify the
/// state a real (possibly stale or corrupted) router would tag with.
pub fn fib_from_router(id: ParticipantId, router: &BorderRouter) -> FibModel {
    FibModel {
        participant: id.0,
        entries: router
            .routes()
            .map(|(prefix, next_hop)| FibEntry {
                prefix,
                next_hop,
                mac: router.arp_lookup(next_hop).map(|m| m.to_u64()),
            })
            .collect(),
    }
}
