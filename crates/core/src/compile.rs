//! The SDX policy compiler (§4 of the paper): lowers every participant's
//! clauses, joined with BGP state, into one fabric classifier.
//!
//! The pipeline applies the paper's four transformations:
//!
//! 1. **Isolation** — outbound clauses are scoped to the author's physical
//!    ports, inbound clauses to its virtual port.
//! 2. **BGP consistency** — an outbound clause towards participant B is
//!    restricted to the prefixes B actually exports to the author; with the
//!    VNH optimization on, the restriction compiles to a handful of
//!    VMAC-tag matches instead of thousands of prefix matches.
//! 3. **Default forwarding** — packets not captured by a custom clause
//!    follow their VMAC (or real router MAC) to the default BGP next hop.
//! 4. **Composition** — the sender stage and the receiver stage are
//!    sequentially composed into a single-table classifier.
//!
//! §4.3.1's optimizations appear as follows: clause rule-lists from
//! different participants are concatenated rather than parallel-composed
//! (sound because isolation makes them port-disjoint); composition is
//! pairwise-pruned structurally (pushing a sender rule through the receiver
//! stage statically resolves its virtual-port assignment, so only the actual
//! target's rules are visited); and receiver-stage blocks are memoized
//! across recompilations.

use std::collections::BTreeMap;
use std::fmt;
use std::net::Ipv4Addr;
use std::time::{Duration, Instant};

use sdx_analyze::AnalysisMode;
use sdx_bgp::RouteServer;
use sdx_ip::{MacAddr, Prefix, PrefixSet};
use sdx_policy::{
    compile_predicate, sequential_compose_traced, Action, Classifier, Field, Match, Pattern,
    Predicate, Rule,
};
use serde::{Deserialize, Serialize};

use crate::fec::{self, DefaultView, PrefixGroup};
use crate::vnh::VnhAllocator;
use crate::{Clause, Dest, Participant, ParticipantId, ParticipantPolicy};

/// Compiler configuration; the defaults are the paper's design, the flags
/// exist for the ablation benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompileOptions {
    /// Group prefixes into FECs and match VMAC tags (§4.2). Off = splice
    /// raw destination-prefix filters into every clause (the "naive
    /// compilation" whose rule explosion §4.2 warns about).
    pub use_vnh: bool,
    /// Reuse receiver-stage rule blocks across recompilations (§4.3.1's
    /// memoization of policy idioms).
    pub memoize: bool,
    /// Target a two-table OpenFlow pipeline instead of composing both
    /// stages into one table: the sender stage goes to table 0 (with
    /// `goto_table 1`) and the receiver stage to table 1. Avoids the
    /// composition cross-product entirely — the direction iSDX later took —
    /// at the cost of requiring multi-table hardware.
    pub multi_table: bool,
    /// Run the static policy-verification pass (`sdx-analyze`) on the
    /// result. `Warn` records diagnostics on the [`Compilation`]; `Deny`
    /// additionally refuses to return (and therefore install) a compilation
    /// with error-severity findings. `Off` (the default) skips analysis so
    /// the compile-time benchmarks measure the compiler alone.
    pub analysis: AnalysisMode,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            use_vnh: true,
            memoize: true,
            multi_table: false,
            analysis: AnalysisMode::Off,
        }
    }
}

/// What the compiler measures, for the evaluation harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompileStats {
    /// Forwarding rules in the final fabric classifier.
    pub rules: usize,
    /// Forwarding equivalence classes (VNH count).
    pub groups: usize,
    /// Pass-1 policy prefix sets collected.
    pub policy_sets: usize,
    /// Sender-stage rules before composition.
    pub stage1_rules: usize,
    /// Receiver-stage rules before composition.
    pub stage2_rules: usize,
    /// Receiver-stage blocks served from the memo cache.
    pub memo_hits: usize,
    /// Receiver-stage blocks compiled fresh.
    pub memo_misses: usize,
    /// Rules of the raw stage-composition product the optimizer removed
    /// (duplicates, single-rule shadows, trailing drops). Zero in
    /// multi-table mode, where no composition product is built.
    pub rules_elided: usize,
    /// Warning-severity findings of the static analyzer (0 when analysis
    /// is off).
    pub analysis_warnings: usize,
    /// Error-severity findings of the static analyzer (0 when analysis is
    /// off; a denied compilation returns an error instead of stats).
    pub analysis_errors: usize,
    /// Wall-clock time of the whole compilation, in microseconds.
    pub duration_us: u64,
}

/// Compiler failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A clause predicate used negation, which the clause layer forbids.
    NegatedPredicate(ParticipantId),
    /// A remote (portless) participant declared outbound clauses.
    OutboundFromRemote(ParticipantId),
    /// An inbound clause referenced a port the participant does not own.
    UnknownOwnPort(ParticipantId, u32),
    /// An outbound clause used a destination only valid inbound.
    BadOutboundDest(ParticipantId),
    /// The VNH pool ran out of addresses.
    VnhExhausted,
    /// The static analyzer found error-severity defects and the options
    /// demand denial ([`AnalysisMode::Deny`]). Carries the rendered
    /// findings; no flow rules are produced.
    AnalysisRejected(Vec<String>),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NegatedPredicate(p) => {
                write!(f, "{p}: clause predicates must be negation-free")
            }
            CompileError::OutboundFromRemote(p) => {
                write!(f, "{p}: remote participants cannot have outbound clauses")
            }
            CompileError::UnknownOwnPort(p, port) => {
                write!(f, "{p}: inbound clause references unknown own port {port}")
            }
            CompileError::BadOutboundDest(p) => {
                write!(f, "{p}: outbound clauses must target a participant or drop")
            }
            CompileError::VnhExhausted => write!(f, "virtual next-hop pool exhausted"),
            CompileError::AnalysisRejected(errors) => {
                write!(
                    f,
                    "static analysis rejected the compilation ({} error",
                    errors.len()
                )?;
                if errors.len() != 1 {
                    write!(f, "s")?;
                }
                write!(f, ")")?;
                for e in errors {
                    write!(f, "\n  {e}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Memo cache for receiver-stage blocks, keyed by participant and a version
/// the runtime bumps whenever that participant's policy or ports change.
#[derive(Debug, Default)]
pub struct MemoCache {
    stage2: BTreeMap<ParticipantId, (u64, Vec<Rule>)>,
}

impl MemoCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop everything (e.g. after wholesale reconfiguration).
    pub fn clear(&mut self) {
        self.stage2.clear();
    }
}

/// Everything the compiler reads.
pub struct CompileInput<'a> {
    /// Participant configurations.
    pub participants: &'a BTreeMap<ParticipantId, Participant>,
    /// Participant policies (participants absent here have empty policies).
    pub policies: &'a BTreeMap<ParticipantId, ParticipantPolicy>,
    /// Per-participant policy versions for memoization (missing = 0).
    pub policy_versions: &'a BTreeMap<ParticipantId, u64>,
    /// The route server's current state.
    pub route_server: &'a RouteServer,
    /// Compiler configuration.
    pub options: CompileOptions,
}

/// The compiler's output.
#[derive(Debug, Clone)]
pub struct Compilation {
    /// The single-table fabric classifier (ingress physical port → egress
    /// physical port).
    pub fabric: Classifier,
    /// The forwarding equivalence classes.
    pub groups: Vec<PrefixGroup>,
    /// Reverse index: prefix → group id.
    pub group_index: BTreeMap<Prefix, usize>,
    /// Per-group (VNH, VMAC) assignment, parallel to `groups`.
    pub vnh: Vec<(Ipv4Addr, MacAddr)>,
    /// The pass-1 effective prefix sets (by id, as referenced from groups).
    pub policy_sets: Vec<PrefixSet>,
    /// The sender stage before composition (kept for the composition
    /// ablation benchmarks).
    pub stage1: Classifier,
    /// The receiver stage before composition; the incremental fast path
    /// composes per-prefix sender fragments against it (§4.3.2).
    pub stage2: Classifier,
    /// The static analyzer's findings (`None` when analysis is off).
    pub analysis: Option<sdx_analyze::Analysis>,
    /// Measurements.
    pub stats: CompileStats,
}

impl Compilation {
    /// The group id for a prefix, if it belongs to one.
    pub fn group_of(&self, prefix: &Prefix) -> Option<usize> {
        self.group_index.get(prefix).copied()
    }

    /// The VNH IP advertised for a prefix, if the prefix is grouped.
    pub fn vnh_of(&self, prefix: &Prefix) -> Option<Ipv4Addr> {
        self.group_of(prefix).map(|g| self.vnh[g].0)
    }

    /// The VMAC tag for a prefix, if the prefix is grouped.
    pub fn vmac_of(&self, prefix: &Prefix) -> Option<MacAddr> {
        self.group_of(prefix).map(|g| self.vnh[g].1)
    }
}

/// Compile everything. See the module docs for the pipeline.
pub fn compile(
    input: &CompileInput<'_>,
    alloc: &mut VnhAllocator,
    memo: &mut MemoCache,
) -> Result<Compilation, CompileError> {
    let start = Instant::now();
    let mut stats = CompileStats::default();

    validate(input)?;

    // ---- Pass 1: effective prefix sets per outbound clause --------------
    let (policy_sets, clause_sets) = collect_policy_sets(input);
    stats.policy_sets = policy_sets.len();

    // ---- Passes 2+3: FEC computation and VNH assignment ------------------
    // In naive mode (the §4.2 ablation) no FECs are formed: clauses match
    // raw destination prefixes and default forwarding uses real router MACs.
    let rs = input.route_server;
    let groups = if input.options.use_vnh {
        fec::compute_groups(&policy_sets, |prefix| default_view(rs, prefix))
    } else {
        Vec::new()
    };
    let group_index = fec::index_groups(&groups);
    alloc.reset();
    let mut vnh = Vec::with_capacity(groups.len());
    for _ in &groups {
        vnh.push(alloc.allocate().ok_or(CompileError::VnhExhausted)?);
    }
    stats.groups = groups.len();

    // ---- Sender stage -----------------------------------------------------
    let stage1 = build_stage1(input, &policy_sets, &clause_sets, &groups, &vnh)?;
    stats.stage1_rules = stage1.len();

    // ---- Receiver stage ---------------------------------------------------
    let stage2 = build_stage2(input, memo, &mut stats)?;
    stats.stage2_rules = stage2.len();

    // ---- Composition ------------------------------------------------------
    // In multi-table mode the stages stay separate (installed as a two-table
    // pipeline); the composed single-table classifier is not built.
    let fabric = if input.options.multi_table {
        Classifier::drop_all()
    } else {
        let (fabric, elided) = sequential_compose_traced(&stage1, &stage2);
        stats.rules_elided = elided.len();
        fabric
    };
    stats.rules = if input.options.multi_table {
        stage1.len() + stage2.len()
    } else {
        fabric.len()
    };

    let mut compilation = Compilation {
        fabric,
        groups,
        group_index,
        vnh,
        policy_sets,
        stage1,
        stage2,
        analysis: None,
        stats,
    };

    // ---- Static verification gate ----------------------------------------
    if input.options.analysis != AnalysisMode::Off {
        let analysis = sdx_analyze::analyze(&crate::analysis::build_input(input, &compilation));
        compilation.stats.analysis_warnings = analysis.warnings();
        compilation.stats.analysis_errors = analysis.errors();
        if let Err(errors) = sdx_analyze::gate(input.options.analysis, &analysis) {
            return Err(CompileError::AnalysisRejected(errors));
        }
        compilation.analysis = Some(analysis);
    }

    compilation.stats.duration_us = duration_us(start.elapsed());
    Ok(compilation)
}

/// The §4.3.2 fast path's sender-stage fragment for a single prefix that
/// just changed: every rule that would mention the prefix's *fresh* VMAC —
/// custom outbound clauses whose effective set contains the prefix, plus its
/// default-forwarding rules. Bypasses VNH optimality entirely, exactly as
/// the paper describes ("it restricts compilation to the parts of the policy
/// related to p").
pub fn stage1_rules_for_prefix(
    input: &CompileInput<'_>,
    prefix: &Prefix,
    vmac: MacAddr,
) -> Vec<Rule> {
    let rs = input.route_server;
    let vmac_pred = Predicate::test(Field::DstMac, vmac);
    let mut rules = Vec::new();

    for (id, policy) in input.policies {
        let Some(participant) = input.participants.get(id) else {
            continue;
        };
        if policy.outbound.is_empty() {
            continue;
        }
        let ports_pred =
            Predicate::in_set(Field::Port, participant.port_numbers().map(|p| p as u64));
        for clause in &policy.outbound {
            let Dest::Participant(to) = clause.dest else {
                continue;
            };
            if clause.unfiltered {
                continue; // not destination-dependent
            }
            let in_scope = clause
                .dst_prefixes
                .as_ref()
                .map(|s| s.contains(prefix))
                .unwrap_or(true);
            if !in_scope || !rs.exports_to(to.peer(), prefix, id.peer()) {
                continue;
            }
            let pred = clause
                .match_
                .clone()
                .and(ports_pred.clone())
                .and(vmac_pred.clone());
            let action = vec![rewrites_action(&clause.rewrites).with(Field::Port, to.vport())];
            rules.extend(clause_rules(&pred, action));
        }
    }

    // Default forwarding for the fresh VMAC.
    let view = default_view(rs, prefix);
    for (viewer, peer) in &view.exceptions {
        let viewer_id = ParticipantId::from(*viewer);
        let Some(viewer_cfg) = input.participants.get(&viewer_id) else {
            continue;
        };
        for port in viewer_cfg.port_numbers() {
            let m = Match::on(Field::Port, Pattern::Exact(port as u64))
                .and(Field::DstMac, Pattern::Exact(vmac.to_u64()))
                .expect("distinct fields");
            let actions = match peer {
                Some(p) => vec![Action::set(Field::Port, ParticipantId::from(*p).vport())],
                None => Vec::new(),
            };
            rules.push(Rule { match_: m, actions });
        }
    }
    if let Some(peer) = view.global {
        rules.push(Rule {
            match_: Match::on(Field::DstMac, Pattern::Exact(vmac.to_u64())),
            actions: vec![Action::set(Field::Port, ParticipantId::from(peer).vport())],
        });
    }
    rules
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

fn validate(input: &CompileInput<'_>) -> Result<(), CompileError> {
    for (id, policy) in input.policies {
        let Some(participant) = input.participants.get(id) else {
            continue;
        };
        if !participant.is_physical() && !policy.outbound.is_empty() {
            return Err(CompileError::OutboundFromRemote(*id));
        }
        for clause in policy.outbound.iter().chain(policy.inbound.iter()) {
            if !clause.match_.is_positive() {
                return Err(CompileError::NegatedPredicate(*id));
            }
        }
        for clause in &policy.outbound {
            if !matches!(clause.dest, Dest::Participant(_) | Dest::Drop) {
                return Err(CompileError::BadOutboundDest(*id));
            }
        }
        for clause in &policy.inbound {
            if let Dest::OwnPort(port) = clause.dest {
                if !participant.port_numbers().any(|p| p == port) {
                    return Err(CompileError::UnknownOwnPort(*id, port));
                }
            }
        }
    }
    Ok(())
}

/// Maps each (participant, outbound clause index) to the id of its
/// effective prefix set (None for unfiltered/drop clauses).
pub type ClauseSetIndex = BTreeMap<(ParticipantId, usize), Option<usize>>;

/// Pass 1: for every outbound clause towards a participant, the effective
/// prefix set = (clause destination scope ∩ prefixes the target exports to
/// the author). Also adds, per remote participant with inbound clauses, the
/// set of prefixes it announces, so that traffic towards it is tagged and
/// default-forwarded to its virtual switch.
fn collect_policy_sets(input: &CompileInput<'_>) -> (Vec<PrefixSet>, ClauseSetIndex) {
    let mut sets: Vec<PrefixSet> = Vec::new();
    let mut clause_sets = BTreeMap::new();
    for (id, policy) in input.policies {
        for (ci, clause) in policy.outbound.iter().enumerate() {
            let set_id = match clause.dest {
                Dest::Participant(to) if !clause.unfiltered => {
                    let via = input.route_server.prefixes_via(to.peer(), id.peer());
                    let eff = match &clause.dst_prefixes {
                        Some(scope) => scope.intersection(&via),
                        None => via,
                    };
                    let sid = sets.len();
                    sets.push(eff);
                    Some(sid)
                }
                _ => None,
            };
            clause_sets.insert((*id, ci), set_id);
        }
    }
    // Remote participants with inbound policies: group their announced
    // prefixes so default forwarding can deliver to their virtual switch.
    for (id, policy) in input.policies {
        let Some(participant) = input.participants.get(id) else {
            continue;
        };
        if participant.is_physical() || policy.inbound.is_empty() {
            continue;
        }
        let announced = input.route_server.announced_by(id.peer());
        if !announced.is_empty() {
            sets.push(announced);
        }
    }
    (sets, clause_sets)
}

/// The pass-2 default-forwarding view of one prefix.
fn default_view(rs: &RouteServer, prefix: &Prefix) -> DefaultView {
    let global = rs.best_route_global(prefix);
    let mut exceptions = BTreeMap::new();
    for viewer in rs.export_exceptions(prefix) {
        exceptions.insert(viewer, rs.best_route(prefix, viewer).map(|c| c.peer));
    }
    DefaultView {
        global: global.map(|c| c.peer),
        exceptions,
    }
}

/// Compile one clause into its rule list: the pass rules of its (positive)
/// predicate with the clause's action substituted.
fn clause_rules(pred: &Predicate, action: Vec<Action>) -> Vec<Rule> {
    compile_predicate(pred)
        .rules()
        .iter()
        .filter(|r| !r.is_drop())
        .map(|r| Rule {
            match_: r.match_.clone(),
            actions: action.clone(),
        })
        .collect()
}

fn rewrites_action(rewrites: &[(Field, u64)]) -> Action {
    let mut a = Action::identity();
    for (f, v) in rewrites {
        a = a.with(*f, *v);
    }
    a
}

/// Sender stage: custom outbound clause rules (port-isolated,
/// BGP-consistency-filtered) above the shared default-forwarding rules.
fn build_stage1(
    input: &CompileInput<'_>,
    policy_sets: &[PrefixSet],
    clause_sets: &BTreeMap<(ParticipantId, usize), Option<usize>>,
    groups: &[PrefixGroup],
    vnh: &[(Ipv4Addr, MacAddr)],
) -> Result<Classifier, CompileError> {
    let mut rules: Vec<Rule> = Vec::new();

    // Custom outbound clauses, isolated to the author's physical ports.
    for (id, policy) in input.policies {
        let Some(participant) = input.participants.get(id) else {
            continue;
        };
        if policy.outbound.is_empty() {
            continue;
        }
        let ports_pred =
            Predicate::in_set(Field::Port, participant.port_numbers().map(|p| p as u64));
        for (ci, clause) in policy.outbound.iter().enumerate() {
            let mut pred = clause.match_.clone().and(ports_pred.clone());
            // Transformation 2: BGP consistency.
            let filtered = matches!(clause.dest, Dest::Participant(_)) && !clause.unfiltered;
            if filtered {
                let set_id = clause_sets
                    .get(&(*id, ci))
                    .copied()
                    .flatten()
                    .expect("filtered participant clause has a policy set");
                pred = pred.and(reachability_filter(
                    input.options.use_vnh,
                    set_id,
                    policy_sets,
                    groups,
                    vnh,
                ));
            } else if let Some(scope) = &clause.dst_prefixes {
                pred = pred.and(Predicate::in_prefixes(Field::DstIp, scope.clone()));
            }
            let action = match clause.dest {
                Dest::Participant(to) => {
                    vec![rewrites_action(&clause.rewrites).with(Field::Port, to.vport())]
                }
                Dest::Drop => Vec::new(),
                _ => unreachable!("validated"),
            };
            rules.extend(clause_rules(&pred, action));
        }
    }

    // Transformation 3: default forwarding, shared across senders.
    // Exception overrides first (port-scoped), then the global VMAC rules,
    // then real-router-MAC forwarding.
    for (gid, group) in groups.iter().enumerate() {
        let vmac = vnh[gid].1;
        for (viewer, peer) in &group.exceptions {
            let viewer_id = ParticipantId::from(*viewer);
            let Some(viewer_cfg) = input.participants.get(&viewer_id) else {
                continue;
            };
            for port in viewer_cfg.port_numbers() {
                let m = Match::on(Field::Port, Pattern::Exact(port as u64))
                    .and(Field::DstMac, Pattern::Exact(vmac.to_u64()))
                    .expect("distinct fields");
                let actions = match peer {
                    Some(p) => vec![Action::set(Field::Port, ParticipantId::from(*p).vport())],
                    None => Vec::new(),
                };
                rules.push(Rule { match_: m, actions });
            }
        }
    }
    for (gid, group) in groups.iter().enumerate() {
        let vmac = vnh[gid].1;
        let m = Match::on(Field::DstMac, Pattern::Exact(vmac.to_u64()));
        let actions = match group.default_peer {
            Some(p) => vec![Action::set(Field::Port, ParticipantId::from(p).vport())],
            None => Vec::new(),
        };
        rules.push(Rule { match_: m, actions });
    }
    for (id, participant) in input.participants {
        for port in &participant.ports {
            rules.push(Rule {
                match_: Match::on(Field::DstMac, Pattern::Exact(port.mac.to_u64())),
                actions: vec![Action::set(Field::Port, id.vport())],
            });
        }
    }

    Ok(Classifier::new(rules))
}

/// The BGP-consistency filter for a clause whose effective prefix set is
/// `policy_sets[set_id]`: either VMAC-tag membership (VNH mode) or a raw
/// destination-prefix filter (naive mode).
fn reachability_filter(
    use_vnh: bool,
    set_id: usize,
    policy_sets: &[PrefixSet],
    groups: &[PrefixGroup],
    vnh: &[(Ipv4Addr, MacAddr)],
) -> Predicate {
    if use_vnh {
        let vmacs = groups
            .iter()
            .enumerate()
            .filter(|(_, g)| g.policy_sets.binary_search(&set_id).is_ok())
            .map(|(gid, _)| vnh[gid].1.to_u64());
        Predicate::in_set(Field::DstMac, vmacs)
    } else {
        Predicate::in_prefixes(Field::DstIp, policy_sets[set_id].clone())
    }
}

/// Receiver stage: per-participant blocks (inbound clauses above receiver
/// defaults), memoized across recompilations.
fn build_stage2(
    input: &CompileInput<'_>,
    memo: &mut MemoCache,
    stats: &mut CompileStats,
) -> Result<Classifier, CompileError> {
    let mut rules: Vec<Rule> = Vec::new();
    for (id, participant) in input.participants {
        let version = input.policy_versions.get(id).copied().unwrap_or(0);
        if input.options.memoize {
            if let Some((cached_version, cached)) = memo.stage2.get(id) {
                if *cached_version == version {
                    stats.memo_hits += 1;
                    rules.extend(cached.iter().cloned());
                    continue;
                }
            }
        }
        stats.memo_misses += 1;
        let block = stage2_block(input, *id, participant)?;
        if input.options.memoize {
            memo.stage2.insert(*id, (version, block.clone()));
        }
        rules.extend(block);
    }
    Ok(Classifier::new(rules))
}

/// One participant's receiver block: inbound clauses (isolated to its
/// virtual port), then MAC-directed port selection, then the default
/// deliver-to-primary-port rule.
fn stage2_block(
    input: &CompileInput<'_>,
    id: ParticipantId,
    participant: &Participant,
) -> Result<Vec<Rule>, CompileError> {
    let mut rules = Vec::new();
    let vport_pred = Predicate::test(Field::Port, id.vport());
    let empty = ParticipantPolicy::default();
    let policy = input.policies.get(&id).unwrap_or(&empty);

    for clause in &policy.inbound {
        let mut pred = clause.match_.clone().and(vport_pred.clone());
        if let Some(scope) = &clause.dst_prefixes {
            pred = pred.and(Predicate::in_prefixes(Field::DstIp, scope.clone()));
        }
        let base = rewrites_action(&clause.rewrites);
        let action = match clause.dest {
            Dest::OwnPort(port) => {
                let cfg = participant
                    .ports
                    .iter()
                    .find(|p| p.port == port)
                    .expect("validated own port");
                vec![deliver(base, cfg.port, cfg.mac)]
            }
            Dest::Drop => Vec::new(),
            Dest::Participant(to) => deliver_to_participant(input, to, base),
            Dest::BgpDefault => resolve_bgp_default(input, id, clause, base),
        };
        rules.extend(clause_rules(&pred, action));
    }

    // Receiver defaults: honor an explicit router-MAC destination, else
    // rewrite to the primary router's MAC and deliver there (the paper's
    // "modify(dstmac=MAC_A1) >> fwd(A1)").
    if participant.is_physical() {
        for port in &participant.ports {
            let m = Match::on(Field::Port, Pattern::Exact(id.vport() as u64))
                .and(Field::DstMac, Pattern::Exact(port.mac.to_u64()))
                .expect("distinct fields");
            rules.push(Rule {
                match_: m,
                actions: vec![Action::set(Field::Port, port.port)],
            });
        }
        let primary = participant.primary_port().expect("physical has ports");
        rules.push(Rule {
            match_: Match::on(Field::Port, Pattern::Exact(id.vport() as u64)),
            actions: vec![deliver(Action::identity(), primary.port, primary.mac)],
        });
    } else {
        // Remote participant: traffic not captured by an inbound clause has
        // nowhere to go.
        rules.push(Rule::drop(Match::on(
            Field::Port,
            Pattern::Exact(id.vport() as u64),
        )));
    }
    Ok(rules)
}

/// Deliver to a physical port, rewriting the destination MAC so the border
/// router accepts the frame.
fn deliver(base: Action, port: u32, mac: MacAddr) -> Action {
    base.with(Field::DstMac, mac).with(Field::Port, port)
}

/// Collapse forwarding to another participant into direct delivery at its
/// primary port (the composed pipeline is two stages deep, so a third hop is
/// resolved at compile time).
fn deliver_to_participant(
    input: &CompileInput<'_>,
    to: ParticipantId,
    base: Action,
) -> Vec<Action> {
    match input
        .participants
        .get(&to)
        .and_then(|p| p.primary_port().copied())
    {
        Some(cfg) => vec![deliver(base, cfg.port, cfg.mac)],
        None => Vec::new(),
    }
}

/// Resolve a `BgpDefault` inbound clause: look up the (rewritten)
/// destination address's best route as seen by the clause's author and
/// deliver to that peer's primary port.
fn resolve_bgp_default(
    input: &CompileInput<'_>,
    author: ParticipantId,
    clause: &Clause,
    base: Action,
) -> Vec<Action> {
    let Some(dst) = base
        .get(Field::DstIp)
        .map(|v| Ipv4Addr::from(v as u32))
        .or_else(|| clause_single_dst(clause))
    else {
        return Vec::new();
    };
    let Some((_, best)) = input.route_server.lpm_best(dst, author.peer()) else {
        return Vec::new();
    };
    deliver_to_participant(input, ParticipantId::from(best.peer), base)
}

/// If the clause is scoped to a single host prefix, its address (used to
/// resolve `BgpDefault` when there is no destination rewrite).
fn clause_single_dst(clause: &Clause) -> Option<Ipv4Addr> {
    let scope = clause.dst_prefixes.as_ref()?;
    let mut it = scope.iter();
    let first = it.next()?;
    if it.next().is_some() || first.len() != 32 {
        return None;
    }
    Some(first.addr())
}
