//! The SDX policy compiler (§4 of the paper): lowers every participant's
//! clauses, joined with BGP state, into one fabric classifier.
//!
//! The pipeline applies the paper's four transformations:
//!
//! 1. **Isolation** — outbound clauses are scoped to the author's physical
//!    ports, inbound clauses to its virtual port.
//! 2. **BGP consistency** — an outbound clause towards participant B is
//!    restricted to the prefixes B actually exports to the author; with the
//!    VNH optimization on, the restriction compiles to a handful of
//!    VMAC-tag matches instead of thousands of prefix matches.
//! 3. **Default forwarding** — packets not captured by a custom clause
//!    follow their VMAC (or real router MAC) to the default BGP next hop.
//! 4. **Composition** — the sender stage and the receiver stage are
//!    sequentially composed into a single-table classifier.
//!
//! §4.3.1's optimizations appear as follows: clause rule-lists from
//! different participants are concatenated rather than parallel-composed
//! (sound because isolation makes them port-disjoint); composition is
//! pairwise-pruned structurally (pushing a sender rule through the receiver
//! stage statically resolves its virtual-port assignment, so only the actual
//! target's rules are visited); and receiver-stage blocks are memoized
//! across recompilations.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::net::Ipv4Addr;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use sdx_analyze::AnalysisMode;
use sdx_bgp::RouteServer;
use sdx_ip::{MacAddr, Prefix, PrefixSet};
use sdx_policy::{
    sequential_compose_traced_par, Action, Classifier, Field, Match, Pattern, Predicate, Rule,
    SharedPredicatePool,
};
use serde::{Deserialize, Serialize};

use crate::fec::{self, DefaultView, PrefixGroup};
use crate::vnh::VnhAllocator;
use crate::{Clause, Dest, Participant, ParticipantId, ParticipantPolicy};

/// Compiler configuration; the defaults are the paper's design, the flags
/// exist for the ablation benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompileOptions {
    /// Group prefixes into FECs and match VMAC tags (§4.2). Off = splice
    /// raw destination-prefix filters into every clause (the "naive
    /// compilation" whose rule explosion §4.2 warns about).
    pub use_vnh: bool,
    /// Reuse receiver-stage rule blocks across recompilations (§4.3.1's
    /// memoization of policy idioms).
    pub memoize: bool,
    /// Target a two-table OpenFlow pipeline instead of composing both
    /// stages into one table: the sender stage goes to table 0 (with
    /// `goto_table 1`) and the receiver stage to table 1. Avoids the
    /// composition cross-product entirely — the direction iSDX later took —
    /// at the cost of requiring multi-table hardware.
    pub multi_table: bool,
    /// Run the static policy-verification pass (`sdx-analyze`) on the
    /// result. `Warn` records diagnostics on the [`Compilation`]; `Deny`
    /// additionally refuses to return (and therefore install) a compilation
    /// with error-severity findings. `Off` (the default) skips analysis so
    /// the compile-time benchmarks measure the compiler alone.
    pub analysis: AnalysisMode,
    /// Run the whole-fabric symbolic reachability verifier (`sdx-verify`) on
    /// the result: isolation/BGP-consistency, cross-stage blackhole, and
    /// VNH/FIB integrity, each with concrete witness packets. `Warn` records
    /// diagnostics on the [`Compilation`]; `Deny` additionally refuses to
    /// return a compilation with error-severity findings. Independent of
    /// `analysis` — the two gates compose.
    pub verify: AnalysisMode,
    /// Run the static update-plan safety analyzer (`sdx-plan`) when a
    /// recompile replaces already-installed tables: compute the rule-level
    /// delta, synthesize a safe install ordering (two-phase fallback), and
    /// judge the naive install-stream order. `Warn` records diagnostics and
    /// installs via the synthesized plan; `Deny` additionally refuses to
    /// install when **no** safe plan exists (naive-order violations alone
    /// never block — they are the evidence the planner exists to route
    /// around). No effect on a first compile (nothing installed to update).
    pub plan: AnalysisMode,
    /// Run the *incremental* header-space safety verifier on every streamed
    /// fast-path delta before it is installed
    /// (`sdx_plan::IncrementalChecker`): certify the make-before-break
    /// schedule, reorder it when an intermediate state is unsafe, or flag
    /// it when no per-packet-consistent schedule exists. `Warn` installs
    /// regardless (verdicts are recorded); `Deny` skips installing an
    /// unsafe delta — the stale overlay keeps forwarding — and schedules a
    /// full reoptimize instead (counted in
    /// [`IncrementalStats::delta_denied`]). No effect on full compiles;
    /// composes with the `plan` gate, which covers those.
    ///
    /// [`IncrementalStats::delta_denied`]: crate::IncrementalStats::delta_denied
    pub delta_check: AnalysisMode,
    /// Worker threads for the fork-join compile pipeline: `1` (the default)
    /// compiles sequentially, `0` resolves to one worker per available core,
    /// any other value is taken literally. The compiled output is
    /// bit-identical for every thread count — parallelism only changes the
    /// wall clock (see `CompileStats::stages`).
    pub threads: usize,
    /// Shards for the RSS-style sharded data plane: `1` (the default) runs
    /// the single-threaded switch; `N > 1` hashes each packet's flow key to
    /// one of N shards processed over the work-stealing pool. Forwarding
    /// output and counters are bit-identical for every shard count (see
    /// `sdx_switch::ShardedSwitch`); the `SDX_DP_THREADS` environment knob
    /// sets this in the benches.
    pub dataplane_threads: usize,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            use_vnh: true,
            memoize: true,
            multi_table: false,
            analysis: AnalysisMode::Off,
            verify: AnalysisMode::Off,
            plan: AnalysisMode::Off,
            delta_check: AnalysisMode::Off,
            threads: 1,
            dataplane_threads: 1,
        }
    }
}

impl CompileOptions {
    /// The default options with a specific worker count (see
    /// [`CompileOptions::threads`]).
    pub fn with_threads(threads: usize) -> Self {
        CompileOptions {
            threads,
            ..Default::default()
        }
    }
}

/// Per-stage wall-clock breakdown of one compilation, in microseconds, plus
/// the resolved worker count. Purely observational: every other
/// [`CompileStats`] field is identical across thread counts, these are not —
/// [`CompileStats::counters`] masks them for output-equivalence checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTimes {
    /// Workers the `threads` option resolved to.
    pub threads: usize,
    /// Input validation.
    pub validate_us: u64,
    /// Pass 1: effective policy prefix-set collection.
    pub policy_sets_us: u64,
    /// Passes 2+3: FEC computation and VNH assignment.
    pub fec_us: u64,
    /// Sender-stage construction.
    pub stage1_us: u64,
    /// Receiver-stage construction.
    pub stage2_us: u64,
    /// Stage composition (zero in multi-table mode).
    pub compose_us: u64,
    /// Static analysis (zero when analysis is off).
    pub analysis_us: u64,
    /// Symbolic transit of the reachability verifier (zero when verification
    /// is off), shared by the isolation and blackhole passes.
    pub verify_transit_us: u64,
    /// Isolation / BGP-consistency checking over the transit results.
    pub verify_isolation_us: u64,
    /// Blackhole checking over the transit results.
    pub verify_blackhole_us: u64,
    /// VNH / FIB integrity checking.
    pub verify_vnh_us: u64,
    /// Differential recompile equivalence checking (zero unless the runtime
    /// ran [`SdxRuntime::verify_differential`] after this compile).
    ///
    /// [`SdxRuntime::verify_differential`]: crate::SdxRuntime::verify_differential
    pub verify_diff_us: u64,
    /// Rule-level delta computation of the update planner (zero unless the
    /// plan gate ran).
    pub plan_delta_us: u64,
    /// Safe-ordering synthesis of the update planner, including its
    /// intermediate-state checking (zero unless the plan gate ran).
    pub plan_search_us: u64,
    /// The intermediate-state checking portion of the synthesis alone
    /// (subset of `plan_search_us`).
    pub plan_check_us: u64,
}

/// What the compiler measures, for the evaluation harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompileStats {
    /// Forwarding rules in the final fabric classifier.
    pub rules: usize,
    /// Forwarding equivalence classes (VNH count).
    pub groups: usize,
    /// Pass-1 policy prefix sets collected.
    pub policy_sets: usize,
    /// Sender-stage rules before composition.
    pub stage1_rules: usize,
    /// Receiver-stage rules before composition.
    pub stage2_rules: usize,
    /// Receiver-stage blocks served from the memo cache.
    pub memo_hits: usize,
    /// Receiver-stage blocks compiled fresh.
    pub memo_misses: usize,
    /// Rules of the raw stage-composition product the optimizer removed
    /// (duplicates, single-rule shadows, trailing drops). Zero in
    /// multi-table mode, where no composition product is built.
    pub rules_elided: usize,
    /// Warning-severity findings of the static analyzer (0 when analysis
    /// is off).
    pub analysis_warnings: usize,
    /// Error-severity findings of the static analyzer (0 when analysis is
    /// off; a denied compilation returns an error instead of stats).
    pub analysis_errors: usize,
    /// Warning-severity findings of the reachability verifier (0 when
    /// verification is off).
    pub verify_warnings: usize,
    /// Error-severity findings of the reachability verifier (0 when
    /// verification is off; a denied compilation returns an error instead).
    pub verify_errors: usize,
    /// Distinct hash-consed predicate nodes interned during this compile.
    pub pred_nodes: usize,
    /// Clause-predicate classifier requests served from the intern pool's
    /// memo table (a hit means a structurally identical predicate was
    /// already compiled this run).
    pub pred_cache_hits: usize,
    /// Clause-predicate classifier requests compiled fresh.
    pub pred_cache_misses: usize,
    /// Update-plan steps (rule installs + removals) of the last plan-gated
    /// recompile (0 when the plan gate did not run).
    pub plan_steps: usize,
    /// Intermediate states the ordering search checked (0 when the plan
    /// gate did not run).
    pub plan_explored: usize,
    /// Did the planner fall back to the two-phase schedule?
    pub plan_two_phase: bool,
    /// Warning-severity findings of the update planner (0 when the plan
    /// gate did not run).
    pub plan_warnings: usize,
    /// Error-severity findings of the update planner — naive-ordering
    /// violations count here (0 when the plan gate did not run).
    pub plan_errors: usize,
    /// Did the install go through the synthesized plan (rule-level delta
    /// applied step-by-step) rather than a wholesale table rebuild?
    pub plan_applied: bool,
    /// Streamed deltas the incremental checker denied since the previous
    /// compile — each one degraded to the full reoptimize this compile
    /// performs (0 when `delta_check` is not `Deny`). Saturating.
    pub delta_deny_fallbacks: u64,
    /// Wall-clock time of the whole compilation, in microseconds.
    pub duration_us: u64,
    /// Per-stage wall-clock breakdown and worker count.
    pub stages: StageTimes,
}

impl CompileStats {
    /// The deterministic counters only: this copy zeroes every wall-clock
    /// field (and the worker count), so two compilations of the same input
    /// at different thread counts compare equal. The output-equivalence
    /// property tests and the CI smoke compare these.
    pub fn counters(&self) -> CompileStats {
        CompileStats {
            duration_us: 0,
            stages: StageTimes::default(),
            ..*self
        }
    }
}

/// Compiler failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A clause predicate used negation, which the clause layer forbids.
    NegatedPredicate(ParticipantId),
    /// A remote (portless) participant declared outbound clauses.
    OutboundFromRemote(ParticipantId),
    /// An inbound clause referenced a port the participant does not own.
    UnknownOwnPort(ParticipantId, u32),
    /// An outbound clause used a destination only valid inbound.
    BadOutboundDest(ParticipantId),
    /// The VNH pool ran out of addresses.
    VnhExhausted,
    /// The static analyzer found error-severity defects and the options
    /// demand denial ([`AnalysisMode::Deny`]). Carries the rendered
    /// findings; no flow rules are produced.
    AnalysisRejected(Vec<String>),
    /// The whole-fabric reachability verifier found error-severity
    /// violations and the options demand denial. Carries the rendered
    /// findings (with witness packets); no flow rules are produced.
    VerifyRejected(Vec<String>),
    /// The update planner found **no** safe install schedule — neither a
    /// single-phase ordering nor the two-phase fallback passes the
    /// intermediate-state checks — and the options demand denial. Carries
    /// the rendered findings (violating step + witness packet); the
    /// previously installed tables stay in place.
    PlanRejected(Vec<String>),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NegatedPredicate(p) => {
                write!(f, "{p}: clause predicates must be negation-free")
            }
            CompileError::OutboundFromRemote(p) => {
                write!(f, "{p}: remote participants cannot have outbound clauses")
            }
            CompileError::UnknownOwnPort(p, port) => {
                write!(f, "{p}: inbound clause references unknown own port {port}")
            }
            CompileError::BadOutboundDest(p) => {
                write!(f, "{p}: outbound clauses must target a participant or drop")
            }
            CompileError::VnhExhausted => write!(f, "virtual next-hop pool exhausted"),
            CompileError::AnalysisRejected(errors) => {
                write!(
                    f,
                    "static analysis rejected the compilation ({} error",
                    errors.len()
                )?;
                if errors.len() != 1 {
                    write!(f, "s")?;
                }
                write!(f, ")")?;
                for e in errors {
                    write!(f, "\n  {e}")?;
                }
                Ok(())
            }
            CompileError::VerifyRejected(errors) => {
                write!(
                    f,
                    "reachability verification rejected the compilation ({} error",
                    errors.len()
                )?;
                if errors.len() != 1 {
                    write!(f, "s")?;
                }
                write!(f, ")")?;
                for e in errors {
                    write!(f, "\n  {e}")?;
                }
                Ok(())
            }
            CompileError::PlanRejected(errors) => {
                write!(
                    f,
                    "update planning rejected the installation: no safe schedule exists ({} error",
                    errors.len()
                )?;
                if errors.len() != 1 {
                    write!(f, "s")?;
                }
                write!(f, ")")?;
                for e in errors {
                    write!(f, "\n  {e}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Memo cache for receiver-stage blocks, keyed by participant and a version
/// the runtime bumps whenever that participant's policy or ports change.
///
/// The cache is sharded: entries live behind per-shard mutexes (participants
/// map to shards by id), so the parallel receiver-stage builders read and
/// write it concurrently without a global lock. All methods take `&self`.
///
/// It is also *bounded*: every [`compile`] ends by evicting entries whose
/// participant is no longer registered, so a long-lived runtime that churns
/// through participants cannot grow the cache without limit.
#[derive(Debug)]
pub struct MemoCache {
    shards: Vec<Mutex<MemoShard>>,
}

/// One shard's contents: participant → (policy version, cached block).
type MemoShard = HashMap<ParticipantId, (u64, Vec<Rule>)>;

/// Shard count: enough to make contention unlikely at realistic parallelism
/// without wasting memory on tiny deployments.
const MEMO_SHARDS: usize = 16;

impl Default for MemoCache {
    fn default() -> Self {
        MemoCache {
            shards: (0..MEMO_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }
}

impl MemoCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn shard(&self, id: ParticipantId) -> &Mutex<MemoShard> {
        &self.shards[id.0 as usize % MEMO_SHARDS]
    }

    /// The cached block for `id`, if its version is current.
    fn lookup(&self, id: ParticipantId, version: u64) -> Option<Vec<Rule>> {
        let shard = self.shard(id).lock().unwrap();
        match shard.get(&id) {
            Some((cached_version, rules)) if *cached_version == version => Some(rules.clone()),
            _ => None,
        }
    }

    /// Insert (replace) the block for `id`.
    fn store(&self, id: ParticipantId, version: u64, rules: Vec<Rule>) {
        self.shard(id).lock().unwrap().insert(id, (version, rules));
    }

    /// Evict entries for participants no longer present (the runtime calls
    /// this via [`compile`] so removed participants release their blocks).
    pub fn retain_participants(&self, participants: &BTreeMap<ParticipantId, Participant>) {
        for shard in &self.shards {
            shard
                .lock()
                .unwrap()
                .retain(|id, _| participants.contains_key(id));
        }
    }

    /// Cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop everything (e.g. after wholesale reconfiguration).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap().clear();
        }
    }
}

/// Everything the compiler reads.
pub struct CompileInput<'a> {
    /// Participant configurations.
    pub participants: &'a BTreeMap<ParticipantId, Participant>,
    /// Participant policies (participants absent here have empty policies).
    pub policies: &'a BTreeMap<ParticipantId, ParticipantPolicy>,
    /// Per-participant policy versions for memoization (missing = 0).
    pub policy_versions: &'a BTreeMap<ParticipantId, u64>,
    /// The route server's current state.
    pub route_server: &'a RouteServer,
    /// Compiler configuration.
    pub options: CompileOptions,
}

/// The compiler's output.
#[derive(Debug, Clone)]
pub struct Compilation {
    /// The single-table fabric classifier (ingress physical port → egress
    /// physical port).
    pub fabric: Classifier,
    /// The forwarding equivalence classes.
    pub groups: Vec<PrefixGroup>,
    /// Reverse index: prefix → group id.
    pub group_index: BTreeMap<Prefix, usize>,
    /// Per-group (VNH, VMAC) assignment, parallel to `groups`.
    pub vnh: Vec<(Ipv4Addr, MacAddr)>,
    /// The pass-1 effective prefix sets (by id, as referenced from groups).
    pub policy_sets: Vec<PrefixSet>,
    /// The sender stage before composition (kept for the composition
    /// ablation benchmarks).
    pub stage1: Classifier,
    /// The receiver stage before composition; the incremental fast path
    /// composes per-prefix sender fragments against it (§4.3.2).
    pub stage2: Classifier,
    /// The static analyzer's findings (`None` when analysis is off).
    pub analysis: Option<sdx_analyze::Analysis>,
    /// Measurements.
    pub stats: CompileStats,
}

impl Compilation {
    /// The group id for a prefix, if it belongs to one.
    pub fn group_of(&self, prefix: &Prefix) -> Option<usize> {
        self.group_index.get(prefix).copied()
    }

    /// The VNH IP advertised for a prefix, if the prefix is grouped.
    pub fn vnh_of(&self, prefix: &Prefix) -> Option<Ipv4Addr> {
        self.group_of(prefix).map(|g| self.vnh[g].0)
    }

    /// The VMAC tag for a prefix, if the prefix is grouped.
    pub fn vmac_of(&self, prefix: &Prefix) -> Option<MacAddr> {
        self.group_of(prefix).map(|g| self.vnh[g].1)
    }
}

/// Compile everything. See the module docs for the pipeline.
///
/// `options.threads` controls the fork-join worker count; the output and
/// every [`CompileStats::counters`] field are identical for every thread
/// count. The memo cache is read and written through shared references so
/// the parallel receiver-stage builders can touch it concurrently.
pub fn compile(
    input: &CompileInput<'_>,
    alloc: &mut VnhAllocator,
    memo: &MemoCache,
) -> Result<Compilation, CompileError> {
    let start = Instant::now();
    let mut stats = CompileStats::default();
    let threads = crossbeam::pool::num_threads(input.options.threads);
    stats.stages.threads = threads;

    // One hash-consing pool per compile: structurally identical clause
    // predicates (policy idioms repeated across participants) compile once.
    let pool = SharedPredicatePool::new();

    let t = Instant::now();
    validate(input)?;
    stats.stages.validate_us = duration_us(t.elapsed());

    // ---- Pass 1: effective prefix sets per outbound clause --------------
    let t = Instant::now();
    let (policy_sets, clause_sets) = collect_policy_sets(input);
    stats.policy_sets = policy_sets.len();
    stats.stages.policy_sets_us = duration_us(t.elapsed());

    // ---- Passes 2+3: FEC computation and VNH assignment ------------------
    // In naive mode (the §4.2 ablation) no FECs are formed: clauses match
    // raw destination prefixes and default forwarding uses real router MACs.
    let t = Instant::now();
    let rs = input.route_server;
    let groups = if input.options.use_vnh {
        fec::compute_groups(&policy_sets, |prefix| default_view(rs, prefix), threads)
    } else {
        Vec::new()
    };
    let group_index = fec::index_groups(&groups);
    // With the update-plan gate active the pool is NOT recycled: each
    // recompile allocates a fresh VNH/VMAC *generation*, so a tag never
    // changes meaning across a plan. Tag reuse would make per-packet
    // consistency unachievable at rule granularity — a reused tag's
    // pre-flip traffic needs the old behavior while its post-flip traffic
    // needs the new one, through rules that cannot tell them apart. The
    // /12 pool sustains ~1M allocations before `VnhExhausted` forces an
    // operator reset.
    if input.options.plan == AnalysisMode::Off {
        alloc.reset();
    }
    let mut vnh = Vec::with_capacity(groups.len());
    for _ in &groups {
        vnh.push(alloc.allocate().ok_or(CompileError::VnhExhausted)?);
    }
    stats.groups = groups.len();
    stats.stages.fec_us = duration_us(t.elapsed());

    // ---- Sender stage -----------------------------------------------------
    let t = Instant::now();
    let stage1 = build_stage1(
        input,
        &pool,
        threads,
        &policy_sets,
        &clause_sets,
        &groups,
        &vnh,
    )?;
    stats.stage1_rules = stage1.len();
    stats.stages.stage1_us = duration_us(t.elapsed());

    // ---- Receiver stage ---------------------------------------------------
    let t = Instant::now();
    let stage2 = build_stage2(input, &pool, memo, threads, &mut stats)?;
    stats.stage2_rules = stage2.len();
    stats.stages.stage2_us = duration_us(t.elapsed());

    // ---- Composition ------------------------------------------------------
    // In multi-table mode the stages stay separate (installed as a two-table
    // pipeline); the composed single-table classifier is not built.
    let t = Instant::now();
    let fabric = if input.options.multi_table {
        Classifier::drop_all()
    } else {
        let (fabric, elided) = sequential_compose_traced_par(&stage1, &stage2, threads);
        stats.rules_elided = elided.len();
        fabric
    };
    stats.rules = if input.options.multi_table {
        stage1.len() + stage2.len()
    } else {
        fabric.len()
    };
    stats.stages.compose_us = duration_us(t.elapsed());

    let pool_stats = pool.stats();
    stats.pred_nodes = pool_stats.nodes;
    stats.pred_cache_hits = pool_stats.compile_hits;
    stats.pred_cache_misses = pool_stats.compile_misses;

    // Keep the memo cache bounded: entries for participants that left the
    // fabric are dead weight and can never hit again.
    memo.retain_participants(input.participants);

    let mut compilation = Compilation {
        fabric,
        groups,
        group_index,
        vnh,
        policy_sets,
        stage1,
        stage2,
        analysis: None,
        stats,
    };

    // ---- Static verification gate ----------------------------------------
    if input.options.analysis != AnalysisMode::Off {
        let t = Instant::now();
        let analysis = sdx_analyze::analyze(&crate::analysis::build_input(input, &compilation));
        compilation.stats.analysis_warnings = analysis.warnings();
        compilation.stats.analysis_errors = analysis.errors();
        if let Err(errors) = sdx_analyze::gate(input.options.analysis, &analysis) {
            return Err(CompileError::AnalysisRejected(errors));
        }
        compilation.analysis = Some(analysis);
        compilation.stats.stages.analysis_us = duration_us(t.elapsed());
    }

    // ---- Whole-fabric reachability verification gate ----------------------
    if input.options.verify != AnalysisMode::Off {
        let vi = crate::verify::build_verify_input(input, &compilation);
        let report = sdx_analyze::reach::run(&vi, threads);
        compilation.stats.stages.verify_transit_us = report.times.transit_us;
        compilation.stats.stages.verify_isolation_us = report.times.isolation_us;
        compilation.stats.stages.verify_blackhole_us = report.times.blackhole_us;
        compilation.stats.stages.verify_vnh_us = report.times.vnh_us;
        let verdict = sdx_analyze::Analysis {
            diagnostics: report.diagnostics,
        };
        compilation.stats.verify_warnings = verdict.warnings();
        compilation.stats.verify_errors = verdict.errors();
        if let Err(errors) = sdx_analyze::gate(input.options.verify, &verdict) {
            return Err(CompileError::VerifyRejected(errors));
        }
        compilation
            .analysis
            .get_or_insert_with(Default::default)
            .diagnostics
            .extend(verdict.diagnostics);
    }

    compilation.stats.duration_us = duration_us(start.elapsed());
    Ok(compilation)
}

/// The §4.3.2 fast path's sender-stage fragment for a single prefix that
/// just changed: every rule that would mention the prefix's *fresh* VMAC —
/// custom outbound clauses whose effective set contains the prefix, plus its
/// default-forwarding rules. Bypasses VNH optimality entirely, exactly as
/// the paper describes ("it restricts compilation to the parts of the policy
/// related to p").
pub fn stage1_rules_for_prefix(
    input: &CompileInput<'_>,
    prefix: &Prefix,
    vmac: MacAddr,
) -> Vec<Rule> {
    let rs = input.route_server;
    let vmac_pred = Predicate::test(Field::DstMac, vmac);
    let pool = SharedPredicatePool::new();
    let mut rules = Vec::new();

    for (id, policy) in input.policies {
        let Some(participant) = input.participants.get(id) else {
            continue;
        };
        if policy.outbound.is_empty() {
            continue;
        }
        let ports_pred =
            Predicate::in_set(Field::Port, participant.port_numbers().map(|p| p as u64));
        for clause in &policy.outbound {
            let Dest::Participant(to) = clause.dest else {
                continue;
            };
            if clause.unfiltered {
                continue; // not destination-dependent
            }
            let in_scope = clause
                .dst_prefixes
                .as_ref()
                .map(|s| s.contains(prefix))
                .unwrap_or(true);
            if !in_scope || !rs.exports_to(to.peer(), prefix, id.peer()) {
                continue;
            }
            let pred = clause
                .match_
                .clone()
                .and(ports_pred.clone())
                .and(vmac_pred.clone());
            let action = vec![rewrites_action(&clause.rewrites).with(Field::Port, to.vport())];
            rules.extend(clause_rules(&pool, &pred, action));
        }
    }

    // Default forwarding for the fresh VMAC.
    let view = default_view(rs, prefix);
    for (viewer, peer) in &view.exceptions {
        let viewer_id = ParticipantId::from(*viewer);
        let Some(viewer_cfg) = input.participants.get(&viewer_id) else {
            continue;
        };
        for port in viewer_cfg.port_numbers() {
            let m = Match::on(Field::Port, Pattern::Exact(port as u64))
                .and(Field::DstMac, Pattern::Exact(vmac.to_u64()))
                .expect("distinct fields");
            let actions = match peer {
                Some(p) => vec![Action::set(Field::Port, ParticipantId::from(*p).vport())],
                None => Vec::new(),
            };
            rules.push(Rule { match_: m, actions });
        }
    }
    if let Some(peer) = view.global {
        rules.push(Rule {
            match_: Match::on(Field::DstMac, Pattern::Exact(vmac.to_u64())),
            actions: vec![Action::set(Field::Port, ParticipantId::from(peer).vport())],
        });
    }
    rules
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

fn validate(input: &CompileInput<'_>) -> Result<(), CompileError> {
    for (id, policy) in input.policies {
        let Some(participant) = input.participants.get(id) else {
            continue;
        };
        if !participant.is_physical() && !policy.outbound.is_empty() {
            return Err(CompileError::OutboundFromRemote(*id));
        }
        for clause in policy.outbound.iter().chain(policy.inbound.iter()) {
            if !clause.match_.is_positive() {
                return Err(CompileError::NegatedPredicate(*id));
            }
        }
        for clause in &policy.outbound {
            if !matches!(clause.dest, Dest::Participant(_) | Dest::Drop) {
                return Err(CompileError::BadOutboundDest(*id));
            }
        }
        for clause in &policy.inbound {
            if let Dest::OwnPort(port) = clause.dest {
                if !participant.port_numbers().any(|p| p == port) {
                    return Err(CompileError::UnknownOwnPort(*id, port));
                }
            }
        }
    }
    Ok(())
}

/// Maps each (participant, outbound clause index) to the id of its
/// effective prefix set (None for unfiltered/drop clauses).
pub type ClauseSetIndex = BTreeMap<(ParticipantId, usize), Option<usize>>;

/// Pass 1: for every outbound clause towards a participant, the effective
/// prefix set = (clause destination scope ∩ prefixes the target exports to
/// the author). Also adds, per remote participant with inbound clauses, the
/// set of prefixes it announces, so that traffic towards it is tagged and
/// default-forwarded to its virtual switch.
fn collect_policy_sets(input: &CompileInput<'_>) -> (Vec<PrefixSet>, ClauseSetIndex) {
    let mut sets: Vec<PrefixSet> = Vec::new();
    let mut clause_sets = BTreeMap::new();
    for (id, policy) in input.policies {
        for (ci, clause) in policy.outbound.iter().enumerate() {
            let set_id = match clause.dest {
                Dest::Participant(to) if !clause.unfiltered => {
                    let via = input.route_server.prefixes_via(to.peer(), id.peer());
                    let eff = match &clause.dst_prefixes {
                        Some(scope) => scope.intersection(&via),
                        None => via,
                    };
                    let sid = sets.len();
                    sets.push(eff);
                    Some(sid)
                }
                _ => None,
            };
            clause_sets.insert((*id, ci), set_id);
        }
    }
    // Remote participants with inbound policies: group their announced
    // prefixes so default forwarding can deliver to their virtual switch.
    for (id, policy) in input.policies {
        let Some(participant) = input.participants.get(id) else {
            continue;
        };
        if participant.is_physical() || policy.inbound.is_empty() {
            continue;
        }
        let announced = input.route_server.announced_by(id.peer());
        if !announced.is_empty() {
            sets.push(announced);
        }
    }
    (sets, clause_sets)
}

/// The pass-2 default-forwarding view of one prefix.
fn default_view(rs: &RouteServer, prefix: &Prefix) -> DefaultView {
    let global = rs.best_route_global(prefix);
    let mut exceptions = BTreeMap::new();
    for viewer in rs.export_exceptions(prefix) {
        exceptions.insert(viewer, rs.best_route(prefix, viewer).map(|c| c.peer));
    }
    DefaultView {
        global: global.map(|c| c.peer),
        exceptions,
    }
}

/// Compile one clause into its rule list: the pass rules of its (positive)
/// predicate with the clause's action substituted. The classifier comes from
/// the hash-consing pool, so structurally identical predicates (shared
/// policy idioms) are compiled once per [`compile`] run.
fn clause_rules(pool: &SharedPredicatePool, pred: &Predicate, action: Vec<Action>) -> Vec<Rule> {
    pool.compile(pred)
        .rules()
        .iter()
        .filter(|r| !r.is_drop())
        .map(|r| Rule {
            match_: r.match_.clone(),
            actions: action.clone(),
        })
        .collect()
}

fn rewrites_action(rewrites: &[(Field, u64)]) -> Action {
    let mut a = Action::identity();
    for (f, v) in rewrites {
        a = a.with(*f, *v);
    }
    a
}

/// Sender stage: custom outbound clause rules (port-isolated,
/// BGP-consistency-filtered) above the shared default-forwarding rules.
///
/// The per-participant clause blocks are independent (isolation makes them
/// port-disjoint), so they build on the fork-join pool; blocks are then
/// concatenated in participant order, which keeps the output identical to a
/// sequential build. The default-forwarding tail is cheap and stays serial.
fn build_stage1(
    input: &CompileInput<'_>,
    pool: &SharedPredicatePool,
    threads: usize,
    policy_sets: &[PrefixSet],
    clause_sets: &BTreeMap<(ParticipantId, usize), Option<usize>>,
    groups: &[PrefixGroup],
    vnh: &[(Ipv4Addr, MacAddr)],
) -> Result<Classifier, CompileError> {
    // Custom outbound clauses, isolated to the author's physical ports.
    let authors: Vec<(ParticipantId, &ParticipantPolicy, &Participant)> = input
        .policies
        .iter()
        .filter_map(|(id, policy)| {
            let participant = input.participants.get(id)?;
            (!policy.outbound.is_empty()).then_some((*id, policy, participant))
        })
        .collect();
    let block = |(id, policy, participant): (ParticipantId, &ParticipantPolicy, &Participant)| {
        stage1_block(
            input,
            pool,
            id,
            policy,
            participant,
            policy_sets,
            clause_sets,
            groups,
            vnh,
        )
    };
    let blocks: Vec<Vec<Rule>> = if threads <= 1 || authors.len() < 2 {
        authors.into_iter().map(block).collect()
    } else {
        crossbeam::pool::parallel_map(threads, authors, block)
    };
    let mut rules: Vec<Rule> = blocks.into_iter().flatten().collect();

    // Transformation 3: default forwarding, shared across senders.
    // Exception overrides first (port-scoped), then the global VMAC rules,
    // then real-router-MAC forwarding.
    for (gid, group) in groups.iter().enumerate() {
        let vmac = vnh[gid].1;
        for (viewer, peer) in &group.exceptions {
            let viewer_id = ParticipantId::from(*viewer);
            let Some(viewer_cfg) = input.participants.get(&viewer_id) else {
                continue;
            };
            for port in viewer_cfg.port_numbers() {
                let m = Match::on(Field::Port, Pattern::Exact(port as u64))
                    .and(Field::DstMac, Pattern::Exact(vmac.to_u64()))
                    .expect("distinct fields");
                let actions = match peer {
                    Some(p) => vec![Action::set(Field::Port, ParticipantId::from(*p).vport())],
                    None => Vec::new(),
                };
                rules.push(Rule { match_: m, actions });
            }
        }
    }
    for (gid, group) in groups.iter().enumerate() {
        let vmac = vnh[gid].1;
        let m = Match::on(Field::DstMac, Pattern::Exact(vmac.to_u64()));
        let actions = match group.default_peer {
            Some(p) => vec![Action::set(Field::Port, ParticipantId::from(p).vport())],
            None => Vec::new(),
        };
        rules.push(Rule { match_: m, actions });
    }
    for (id, participant) in input.participants {
        for port in &participant.ports {
            rules.push(Rule {
                match_: Match::on(Field::DstMac, Pattern::Exact(port.mac.to_u64())),
                actions: vec![Action::set(Field::Port, id.vport())],
            });
        }
    }

    Ok(Classifier::new(rules))
}

/// One participant's sender-stage clause block (transformations 1 and 2
/// applied to each of its outbound clauses, in clause order).
#[allow(clippy::too_many_arguments)]
fn stage1_block(
    input: &CompileInput<'_>,
    pool: &SharedPredicatePool,
    id: ParticipantId,
    policy: &ParticipantPolicy,
    participant: &Participant,
    policy_sets: &[PrefixSet],
    clause_sets: &BTreeMap<(ParticipantId, usize), Option<usize>>,
    groups: &[PrefixGroup],
    vnh: &[(Ipv4Addr, MacAddr)],
) -> Vec<Rule> {
    let mut rules = Vec::new();
    let ports_pred = Predicate::in_set(Field::Port, participant.port_numbers().map(|p| p as u64));
    for (ci, clause) in policy.outbound.iter().enumerate() {
        let mut pred = clause.match_.clone().and(ports_pred.clone());
        // Transformation 2: BGP consistency.
        let filtered = matches!(clause.dest, Dest::Participant(_)) && !clause.unfiltered;
        if filtered {
            let set_id = clause_sets
                .get(&(id, ci))
                .copied()
                .flatten()
                .expect("filtered participant clause has a policy set");
            pred = pred.and(reachability_filter(
                input.options.use_vnh,
                set_id,
                policy_sets,
                groups,
                vnh,
            ));
        } else if let Some(scope) = &clause.dst_prefixes {
            pred = pred.and(Predicate::in_prefixes(Field::DstIp, scope.clone()));
        }
        let action = match clause.dest {
            Dest::Participant(to) => {
                vec![rewrites_action(&clause.rewrites).with(Field::Port, to.vport())]
            }
            Dest::Drop => Vec::new(),
            _ => unreachable!("validated"),
        };
        rules.extend(clause_rules(pool, &pred, action));
    }
    rules
}

/// The BGP-consistency filter for a clause whose effective prefix set is
/// `policy_sets[set_id]`: either VMAC-tag membership (VNH mode) or a raw
/// destination-prefix filter (naive mode).
fn reachability_filter(
    use_vnh: bool,
    set_id: usize,
    policy_sets: &[PrefixSet],
    groups: &[PrefixGroup],
    vnh: &[(Ipv4Addr, MacAddr)],
) -> Predicate {
    if use_vnh {
        let vmacs = groups
            .iter()
            .enumerate()
            .filter(|(_, g)| g.policy_sets.binary_search(&set_id).is_ok())
            .map(|(gid, _)| vnh[gid].1.to_u64());
        Predicate::in_set(Field::DstMac, vmacs)
    } else {
        Predicate::in_prefixes(Field::DstIp, policy_sets[set_id].clone())
    }
}

/// Receiver stage: per-participant blocks (inbound clauses above receiver
/// defaults), memoized across recompilations.
///
/// Blocks build on the fork-join pool — each worker consults and fills the
/// sharded memo cache independently — and are concatenated in participant
/// order, identical to a sequential build. Memo hit/miss totals are summed
/// from the ordered results, so they too are thread-count-independent.
fn build_stage2(
    input: &CompileInput<'_>,
    pool: &SharedPredicatePool,
    memo: &MemoCache,
    threads: usize,
    stats: &mut CompileStats,
) -> Result<Classifier, CompileError> {
    let participants: Vec<(ParticipantId, &Participant)> =
        input.participants.iter().map(|(id, p)| (*id, p)).collect();
    let entry = |(id, participant): (ParticipantId, &Participant)| {
        stage2_entry(input, pool, memo, id, participant)
    };
    let blocks: Vec<Result<(Vec<Rule>, bool), CompileError>> =
        if threads <= 1 || participants.len() < 2 {
            participants.into_iter().map(entry).collect()
        } else {
            crossbeam::pool::parallel_map(threads, participants, entry)
        };
    let mut rules: Vec<Rule> = Vec::new();
    for block in blocks {
        let (block, hit) = block?;
        if hit {
            stats.memo_hits += 1;
        } else {
            stats.memo_misses += 1;
        }
        rules.extend(block);
    }
    Ok(Classifier::new(rules))
}

/// One participant's receiver-stage entry: serve the block from the memo
/// cache when its version is current, else build and (when memoizing) store
/// it. The boolean reports a cache hit.
fn stage2_entry(
    input: &CompileInput<'_>,
    pool: &SharedPredicatePool,
    memo: &MemoCache,
    id: ParticipantId,
    participant: &Participant,
) -> Result<(Vec<Rule>, bool), CompileError> {
    let version = input.policy_versions.get(&id).copied().unwrap_or(0);
    if input.options.memoize {
        if let Some(cached) = memo.lookup(id, version) {
            return Ok((cached, true));
        }
    }
    let block = stage2_block(input, pool, id, participant)?;
    if input.options.memoize {
        memo.store(id, version, block.clone());
    }
    Ok((block, false))
}

/// One participant's receiver block: inbound clauses (isolated to its
/// virtual port), then MAC-directed port selection, then the default
/// deliver-to-primary-port rule.
fn stage2_block(
    input: &CompileInput<'_>,
    pool: &SharedPredicatePool,
    id: ParticipantId,
    participant: &Participant,
) -> Result<Vec<Rule>, CompileError> {
    let mut rules = Vec::new();
    let vport_pred = Predicate::test(Field::Port, id.vport());
    let empty = ParticipantPolicy::default();
    let policy = input.policies.get(&id).unwrap_or(&empty);

    for clause in &policy.inbound {
        let mut pred = clause.match_.clone().and(vport_pred.clone());
        if let Some(scope) = &clause.dst_prefixes {
            pred = pred.and(Predicate::in_prefixes(Field::DstIp, scope.clone()));
        }
        let base = rewrites_action(&clause.rewrites);
        let action = match clause.dest {
            Dest::OwnPort(port) => {
                let cfg = participant
                    .ports
                    .iter()
                    .find(|p| p.port == port)
                    .expect("validated own port");
                vec![deliver(base, cfg.port, cfg.mac)]
            }
            Dest::Drop => Vec::new(),
            Dest::Participant(to) => deliver_to_participant(input, to, base),
            Dest::BgpDefault => resolve_bgp_default(input, id, clause, base),
        };
        rules.extend(clause_rules(pool, &pred, action));
    }

    // Receiver defaults: honor an explicit router-MAC destination, else
    // rewrite to the primary router's MAC and deliver there (the paper's
    // "modify(dstmac=MAC_A1) >> fwd(A1)").
    if participant.is_physical() {
        for port in &participant.ports {
            let m = Match::on(Field::Port, Pattern::Exact(id.vport() as u64))
                .and(Field::DstMac, Pattern::Exact(port.mac.to_u64()))
                .expect("distinct fields");
            rules.push(Rule {
                match_: m,
                actions: vec![Action::set(Field::Port, port.port)],
            });
        }
        let primary = participant.primary_port().expect("physical has ports");
        rules.push(Rule {
            match_: Match::on(Field::Port, Pattern::Exact(id.vport() as u64)),
            actions: vec![deliver(Action::identity(), primary.port, primary.mac)],
        });
    } else {
        // Remote participant: traffic not captured by an inbound clause has
        // nowhere to go.
        rules.push(Rule::drop(Match::on(
            Field::Port,
            Pattern::Exact(id.vport() as u64),
        )));
    }
    Ok(rules)
}

/// Deliver to a physical port, rewriting the destination MAC so the border
/// router accepts the frame.
fn deliver(base: Action, port: u32, mac: MacAddr) -> Action {
    base.with(Field::DstMac, mac).with(Field::Port, port)
}

/// Collapse forwarding to another participant into direct delivery at its
/// primary port (the composed pipeline is two stages deep, so a third hop is
/// resolved at compile time).
fn deliver_to_participant(
    input: &CompileInput<'_>,
    to: ParticipantId,
    base: Action,
) -> Vec<Action> {
    match input
        .participants
        .get(&to)
        .and_then(|p| p.primary_port().copied())
    {
        Some(cfg) => vec![deliver(base, cfg.port, cfg.mac)],
        None => Vec::new(),
    }
}

/// Resolve a `BgpDefault` inbound clause: look up the (rewritten)
/// destination address's best route as seen by the clause's author and
/// deliver to that peer's primary port.
fn resolve_bgp_default(
    input: &CompileInput<'_>,
    author: ParticipantId,
    clause: &Clause,
    base: Action,
) -> Vec<Action> {
    let Some(dst) = base
        .get(Field::DstIp)
        .map(|v| Ipv4Addr::from(v as u32))
        .or_else(|| clause_single_dst(clause))
    else {
        return Vec::new();
    };
    let Some((_, best)) = input.route_server.lpm_best(dst, author.peer()) else {
        return Vec::new();
    };
    deliver_to_participant(input, ParticipantId::from(best.peer), base)
}

/// If the clause is scoped to a single host prefix, its address (used to
/// resolve `BgpDefault` when there is no destination rewrite).
fn clause_single_dst(clause: &Clause) -> Option<Ipv4Addr> {
    let scope = clause.dst_prefixes.as_ref()?;
    let mut it = scope.iter();
    let first = it.next()?;
    if it.next().is_some() || first.len() != 32 {
        return None;
    }
    Some(first.addr())
}
