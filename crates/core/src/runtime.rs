//! The SDX runtime: owns the route server, participant registry, policies,
//! compiler state, ARP responder, and the fabric switch, and keeps them
//! consistent as policies and BGP routes change.
//!
//! Two update paths exist, per §4.3.2:
//!
//! * [`SdxRuntime::compile`] — the full pipeline: recompute FECs and VNHs,
//!   rebuild the fabric table, re-bind ARP, refresh advertisements.
//! * the **fast path**, invoked automatically from
//!   [`SdxRuntime::apply_update`]: allocate a *fresh* VNH for each touched
//!   prefix, compile only the rules mentioning its VMAC, and push them as
//!   higher-priority overlay rules. Optimality is recovered later by
//!   [`SdxRuntime::reoptimize`], the "background" stage.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::time::Instant;

use sdx_analyze::AnalysisMode;
use sdx_bgp::{ExportPolicy, PathAttributes, RouteServer, RpkiStatus, RpkiValidator, Update};
use sdx_ip::{MacAddr, Prefix};
use sdx_plan::{DeltaOp, PlanReport, TableState};
use sdx_policy::{Classifier, Packet};
use sdx_switch::{
    ArpReply, ArpRequest, ArpResponder, BatchOutput, BorderRouter, FlowTable, ShardedSwitch,
    SoftSwitch,
};

use crate::compile::{
    compile, stage1_rules_for_prefix, Compilation, CompileError, CompileInput, CompileOptions,
    CompileStats, MemoCache,
};
use crate::vnh::VnhAllocator;
use crate::{Participant, ParticipantId, ParticipantPolicy};

/// One [`RouteServer::advert_map`] snapshot: viewer → feasible advertisers.
type AdvertMap = BTreeMap<sdx_bgp::PeerId, std::collections::BTreeSet<sdx_bgp::PeerId>>;

/// One fast-path overlay: a prefix re-homed onto a fresh VNH after a BGP
/// update, with its rules installed above the base table.
#[derive(Debug, Clone)]
pub struct Overlay {
    /// The prefix the overlay covers.
    pub prefix: Prefix,
    /// Its fresh virtual next hop.
    pub vnh: Ipv4Addr,
    /// Its fresh VMAC tag.
    pub vmac: MacAddr,
    /// The flow-table cookie identifying the overlay's rules.
    pub cookie: u64,
    /// How many rules the overlay installed (Figure 9's "additional rules").
    pub rules: usize,
}

/// Counters for the incremental path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// BGP updates processed through the fast path.
    pub updates: u64,
    /// Total overlay rules currently installed.
    pub overlay_rules: usize,
    /// Microseconds spent in the most recent fast-path update.
    pub last_update_us: u64,
    /// Fast-path overlay installs refused by the flow table (priority space
    /// exhausted); the background recompilation recovers these.
    pub install_errors: u64,
    /// Fast-path updates that found the VNH pool exhausted. The previous
    /// overlay (or base table) keeps serving the prefix — stale but
    /// forwarding — and [`SdxRuntime::needs_reoptimize`] is raised so the
    /// background stage recovers promptly.
    pub overlay_exhausted: u64,
    /// Updates processed through the rule-level delta path
    /// ([`SdxRuntime::apply_update_delta`]).
    pub delta_events: u64,
    /// Individual rules installed by the delta path.
    pub delta_installed: u64,
    /// Individual rules removed by the delta path.
    pub delta_removed: u64,
    /// Streamed deltas checked by the incremental verifier (0 when
    /// [`CompileOptions::delta_check`] is `Off`).
    pub delta_checked: u64,
    /// Checked deltas certified safe (structurally or symbolically).
    pub delta_certified: u64,
    /// Certified deltas decided by the structural region-disjointness gate
    /// alone (subset of `delta_certified`; zero symbolic work).
    pub delta_structural: u64,
    /// Checked deltas whose proposed schedule was unsafe but a safe
    /// reordering was synthesized and installed.
    pub delta_reordered: u64,
    /// Checked deltas for which no per-packet-consistent schedule exists.
    pub delta_rejected: u64,
    /// Rejected deltas whose install was skipped under
    /// `delta_check = Deny` (the stale overlay keeps forwarding and a full
    /// reoptimize is scheduled instead).
    pub delta_denied: u64,
    /// Total microseconds spent in incremental delta checking.
    pub delta_check_us: u64,
    /// Microseconds of incremental checking within the most recent
    /// [`SdxRuntime::apply_update_delta`] call (summed over its touched
    /// prefixes).
    pub last_check_us: u64,
}

/// The SDX controller runtime.
#[derive(Debug)]
pub struct SdxRuntime {
    participants: BTreeMap<ParticipantId, Participant>,
    policies: BTreeMap<ParticipantId, ParticipantPolicy>,
    policy_versions: BTreeMap<ParticipantId, u64>,
    route_server: RouteServer,
    options: CompileOptions,
    alloc: VnhAllocator,
    memo: MemoCache,
    compilation: Option<Compilation>,
    arp: ArpResponder,
    switch: ShardedSwitch,
    overlays: Vec<Overlay>,
    next_cookie: u64,
    incremental: IncrementalStats,
    rpki: Option<RpkiValidator>,
    rpki_rejected: u64,
    last_plan: Option<PlanReport>,
    needs_reoptimize: bool,
    delta_base: u32,
    /// The persistent incremental delta verifier; `Some` once a compile ran
    /// with [`CompileOptions::delta_check`] active (reseeded every compile).
    delta_checker: Option<sdx_plan::IncrementalChecker>,
    delta_judge_naive: bool,
    /// Run the from-scratch oracle on every nth checked delta (0 = never).
    delta_sample: u64,
    delta_events_checked: u64,
    /// `(incremental µs, from-scratch µs)` per sampled event, capped.
    delta_samples: Vec<(u64, u64)>,
    delta_log: Vec<DeltaRecord>,
    delta_log_limit: usize,
    /// Deny-skipped deltas since the last compile (stamped into
    /// [`CompileStats::delta_deny_fallbacks`] by the recovering compile).
    pending_deny_fallbacks: u64,
    /// Fault injection: treat the next N checked deltas as unsafe
    /// (see [`inject_delta_deny`](Self::inject_delta_deny)).
    delta_deny_next: u64,
}

/// What one rule-level delta install did to the live tables (see
/// [`SdxRuntime::apply_update_delta`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaInstall {
    /// Rules installed into the live table.
    pub installed: usize,
    /// Rules removed from the live table.
    pub removed: usize,
}

/// One streamed delta's verdict record (kept when
/// [`SdxRuntime::set_delta_log_limit`] enables logging — the `sdx-lint
/// --delta` replay and the equivalence proptest read these).
#[derive(Debug, Clone)]
pub struct DeltaRecord {
    /// The prefix the delta migrated.
    pub prefix: Prefix,
    /// The incremental checker's verdict and evidence.
    pub report: sdx_plan::DeltaReport,
    /// The from-scratch oracle's report, when this event was sampled.
    pub from_scratch: Option<sdx_plan::DeltaReport>,
    /// Microseconds the from-scratch check took (0 when not sampled).
    pub from_scratch_us: u64,
    /// Did the incremental and from-scratch reports agree (verdict,
    /// schedule, and witness content)? `None` when not sampled.
    pub agreed: Option<bool>,
}

/// Cookie tagging the base (fully compiled) table.
const BASE_COOKIE: u64 = 1;

/// Cap on retained `(incremental, from-scratch)` timing sample pairs.
const DELTA_SAMPLE_CAP: usize = 65_536;

/// Saturating µs cast for the stage-timing fields.
fn clamp_us(us: u128) -> u64 {
    u64::try_from(us).unwrap_or(u64::MAX)
}

impl Default for SdxRuntime {
    fn default() -> Self {
        Self::new(CompileOptions::default())
    }
}

impl SdxRuntime {
    /// A runtime with the given compiler options.
    pub fn new(options: CompileOptions) -> Self {
        SdxRuntime {
            participants: BTreeMap::new(),
            policies: BTreeMap::new(),
            policy_versions: BTreeMap::new(),
            route_server: RouteServer::new(),
            options,
            alloc: VnhAllocator::default_pool(),
            memo: MemoCache::new(),
            compilation: None,
            arp: ArpResponder::new(),
            switch: ShardedSwitch::new(SoftSwitch::new([]), options.dataplane_threads),
            overlays: Vec::new(),
            next_cookie: BASE_COOKIE + 1,
            incremental: IncrementalStats::default(),
            rpki: None,
            rpki_rejected: 0,
            last_plan: None,
            needs_reoptimize: false,
            delta_base: 0,
            delta_checker: None,
            delta_judge_naive: false,
            delta_sample: 0,
            delta_events_checked: 0,
            delta_samples: Vec::new(),
            delta_log: Vec::new(),
            delta_log_limit: 0,
            pending_deny_fallbacks: 0,
            delta_deny_next: 0,
        }
    }

    /// Replace the VNH allocation pool (test/operational knob; a tiny pool
    /// makes exhaustion reachable). Releases all current allocations.
    pub fn set_vnh_pool(&mut self, pool: Prefix) {
        self.alloc = VnhAllocator::new(pool);
    }

    /// True when the fast path has degraded (VNH pool exhausted or an
    /// overlay install refused) and a background
    /// [`reoptimize`](Self::reoptimize) is required to restore optimal —
    /// and in the exhaustion case, *fresh* — forwarding state. Cleared by
    /// the next successful [`compile`](Self::compile).
    pub fn needs_reoptimize(&self) -> bool {
        self.needs_reoptimize
    }

    /// Enable RPKI route-origin validation: announcements whose origin AS
    /// is *Invalid* against the ROA database are rejected (the paper's
    /// ownership check for SDX-originated prefixes, §3.2). `NotFound`
    /// announcements are accepted, per common route-server practice.
    pub fn set_rpki(&mut self, validator: RpkiValidator) {
        self.rpki = Some(validator);
    }

    /// Announcements rejected by RPKI validation so far.
    pub fn rpki_rejected(&self) -> u64 {
        self.rpki_rejected
    }

    /// Register a participant: a route-server peer, fabric ports, and ARP
    /// bindings for its router interfaces.
    pub fn add_participant(&mut self, participant: Participant) {
        self.route_server.add_peer(
            participant.id.peer(),
            participant.asn,
            participant.router_id,
        );
        for port in &participant.ports {
            self.switch.master_mut().add_port(port.port);
            self.arp.bind(port.ip, port.mac);
        }
        self.policy_versions.insert(participant.id, 0);
        self.participants.insert(participant.id, participant);
    }

    /// Set a participant's export policy on the route server.
    pub fn set_export_policy(&mut self, id: ParticipantId, export: ExportPolicy) {
        self.route_server.set_export_policy(id.peer(), export);
    }

    /// Install (replace) a participant's SDX policy. Takes effect at the
    /// next [`compile`](Self::compile).
    pub fn set_policy(&mut self, id: ParticipantId, policy: ParticipantPolicy) {
        *self.policy_versions.entry(id).or_insert(0) += 1;
        self.policies.insert(id, policy);
    }

    /// The registered participants.
    pub fn participants(&self) -> impl Iterator<Item = &Participant> {
        self.participants.values()
    }

    /// Read access to the route server.
    pub fn route_server(&self) -> &RouteServer {
        &self.route_server
    }

    /// Read access to the fabric switch.
    pub fn switch(&self) -> &SoftSwitch {
        self.switch.master()
    }

    /// The last full compilation, if any.
    pub fn compilation(&self) -> Option<&Compilation> {
        self.compilation.as_ref()
    }

    /// The compiler options in force.
    pub fn options(&self) -> CompileOptions {
        self.options
    }

    /// Fast-path counters.
    pub fn incremental_stats(&self) -> IncrementalStats {
        self.incremental
    }

    /// The incremental delta verifier's internal counters (`None` until a
    /// compile ran with [`CompileOptions::delta_check`] active).
    pub fn delta_checker_stats(&self) -> Option<sdx_plan::IncStats> {
        self.delta_checker.as_ref().map(|c| c.stats())
    }

    /// Keep up to `limit` per-delta verdict records (see
    /// [`delta_log`](Self::delta_log)); 0 (the default) disables logging.
    pub fn set_delta_log_limit(&mut self, limit: usize) {
        self.delta_log_limit = limit;
    }

    /// The retained per-delta verdict records, oldest first.
    pub fn delta_log(&self) -> &[DeltaRecord] {
        &self.delta_log
    }

    /// Run the from-scratch checking oracle on every `n`th checked delta
    /// (0 = never), recording timing pairs and verdict agreement. The
    /// equivalence proptest uses 1; the bench a sparse sample.
    pub fn set_delta_check_sample(&mut self, n: u64) {
        self.delta_sample = n;
    }

    /// `(incremental µs, from-scratch µs)` timing pairs of the sampled
    /// events so far.
    pub fn delta_samples(&self) -> &[(u64, u64)] {
        &self.delta_samples
    }

    /// Fault injection: force the next `n` checked deltas through the
    /// deny path as if the verifier had found them unsafe. MBB fast-path
    /// schedules are structurally safe by construction, so the Deny
    /// recovery machinery (skip install, schedule a reoptimize, stamp
    /// [`CompileStats::delta_deny_fallbacks`]) is unreachable from real
    /// traffic — this hook keeps it testable end to end.
    pub fn inject_delta_deny(&mut self, n: u64) {
        self.delta_deny_next = n;
    }

    /// Also judge the *naive* differ ordering of every checked delta
    /// (evidence for `sdx-lint --delta`; forces symbolic work per event).
    /// Takes effect at the next [`compile`](Self::compile) reseed, or
    /// immediately when the checker is already live.
    pub fn set_delta_judge_naive(&mut self, on: bool) {
        self.delta_judge_naive = on;
        if let Some(c) = self.delta_checker.as_mut() {
            c.set_judge_naive(on);
        }
    }

    /// Current overlays (fast-path state awaiting background optimization).
    pub fn overlays(&self) -> &[Overlay] {
        &self.overlays
    }

    fn input(&self) -> CompileInput<'_> {
        CompileInput {
            participants: &self.participants,
            policies: &self.policies,
            policy_versions: &self.policy_versions,
            route_server: &self.route_server,
            options: self.options,
        }
    }

    /// Run the full compilation pipeline and install the result: fabric
    /// rules, ARP bindings for every VNH, and (conceptually) refreshed
    /// advertisements. Clears any fast-path overlays.
    ///
    /// With [`CompileOptions::plan`] active and tables already installed,
    /// the install happens as a *verified update plan*: the rule-level
    /// delta against the live tables is computed, a safe ordering is
    /// synthesized (`sdx-plan`), and the steps are applied one by one —
    /// instead of a wholesale table replacement. `Deny` refuses to install
    /// when no safe schedule exists ([`CompileError::PlanRejected`]); the
    /// old tables stay in place.
    pub fn compile(&mut self) -> Result<CompileStats, CompileError> {
        // Capture the pre-update view before anything moves: the installed
        // tables (overlays included) and the live verifier input.
        let plan_old = if self.options.plan != AnalysisMode::Off {
            self.verify_input().map(|vi| (vi, self.installed_state()))
        } else {
            None
        };

        let mut compilation = {
            let input = CompileInput {
                participants: &self.participants,
                policies: &self.policies,
                policy_versions: &self.policy_versions,
                route_server: &self.route_server,
                options: self.options,
            };
            compile(&input, &mut self.alloc, &self.memo)?
        };

        // ---- Update-plan safety gate (§ consistent updates) --------------
        let mut schedule = None;
        if let Some((old_vi, old_state)) = plan_old {
            let new_vi = {
                let input = self.input();
                crate::verify::build_verify_input(&input, &compilation)
            };
            let new_state = self.target_state(&compilation);
            let report = sdx_plan::plan(&sdx_plan::PlanInput {
                old_state,
                new_state,
                old_verify: &old_vi,
                new_verify: &new_vi,
                budget: sdx_plan::DEFAULT_SEARCH_BUDGET,
            });

            compilation.stats.plan_steps = report.steps.len();
            compilation.stats.plan_explored = report.explored;
            compilation.stats.plan_two_phase = report.two_phase();
            compilation.stats.stages.plan_delta_us = clamp_us(report.times.delta_us);
            compilation.stats.stages.plan_search_us = clamp_us(report.times.search_us);
            compilation.stats.stages.plan_check_us = clamp_us(report.check_us);
            let verdict = sdx_analyze::Analysis {
                diagnostics: report.diagnostics(),
            };
            compilation.stats.plan_warnings = verdict.warnings();
            compilation.stats.plan_errors = verdict.errors();

            // The gate blocks only when *no* safe schedule exists:
            // naive-ordering violations are the evidence the planner routes
            // around, not a defect of the new state.
            if self.options.plan == AnalysisMode::Deny && !report.safe() {
                return Err(CompileError::PlanRejected(verdict.error_messages()));
            }
            compilation
                .analysis
                .get_or_insert_with(Default::default)
                .diagnostics
                .extend(verdict.diagnostics);
            schedule = report.schedule.clone();
            self.last_plan = Some(report);
        }

        // ---- Install ------------------------------------------------------
        let planned = schedule
            .map(|s| self.install_planned(&compilation, &s))
            .unwrap_or(false);
        compilation.stats.plan_applied = planned;
        if !planned {
            self.install_wholesale(&compilation);
        }
        // VNH → VMAC bindings for the ARP responder. Router-interface
        // bindings are kept; stale VNH bindings are harmless (the pool
        // restarts, so indices are reused consistently).
        for (vnh, vmac) in &compilation.vnh {
            self.arp.bind(*vnh, *vmac);
        }
        // A full install retires every overlay. Reconcile — don't subtract —
        // the overlay accounting: `remove_by_cookie` during churn may have
        // already dropped rules this counter never saw.
        self.overlays.clear();
        self.incremental.overlay_rules = 0;
        self.needs_reoptimize = false;
        // The fixed priority band for subsequent delta installs starts just
        // above the freshly installed base table.
        self.delta_base = self
            .switch
            .master()
            .table_at(0)
            .and_then(|t| t.max_priority())
            .unwrap_or(0);
        // Deny-skipped deltas degraded to this full reoptimize; hand the
        // count to the stats and reset the window.
        compilation.stats.delta_deny_fallbacks = self.pending_deny_fallbacks;
        self.pending_deny_fallbacks = 0;
        let stats = compilation.stats;
        self.compilation = Some(compilation);
        // Reseed the incremental delta verifier from the freshly installed
        // state: the tables changed wholesale, so every cached partition and
        // the whole emissions model start over.
        if self.options.delta_check != AnalysisMode::Off {
            if let Some(vi) = self.verify_input() {
                let state = self.installed_state();
                let judge = self.delta_judge_naive;
                let checker = self
                    .delta_checker
                    .get_or_insert_with(sdx_plan::IncrementalChecker::new);
                checker.seed(&vi, &state);
                checker.set_judge_naive(judge);
            }
        }
        Ok(stats)
    }

    /// Wholesale install: reset the pipeline and load the compiled tables.
    fn install_wholesale(&mut self, compilation: &Compilation) {
        if self.options.multi_table {
            // Two-table pipeline: sender stage in table 0 (goto 1),
            // receiver stage in table 1. No composition needed.
            let master = self.switch.master_mut();
            master.reset_pipeline(2);
            master
                .table_at_mut(0)
                .expect("table 0")
                .append_classifier_goto(&compilation.stage1, BASE_COOKIE, 0, Some(1));
            master.table_at_mut(1).expect("table 1").append_classifier(
                &compilation.stage2,
                BASE_COOKIE,
                0,
            );
        } else {
            let master = self.switch.master_mut();
            master.reset_pipeline(1);
            master.install_classifier(&compilation.fabric, BASE_COOKIE);
        }
    }

    /// Apply a synthesized update plan step-by-step to the *live* tables
    /// (the delta path: touched rules only, no wholesale rebuild), then
    /// cross-check the result against a fresh install by content
    /// fingerprint. Returns `false` — caller falls back to the wholesale
    /// path — when the pipeline shape changed or the fingerprints disagree.
    fn install_planned(
        &mut self,
        compilation: &Compilation,
        schedule: &sdx_plan::Schedule,
    ) -> bool {
        let want_tables = if self.options.multi_table { 2 } else { 1 };
        if self.switch.master().table_count() != want_tables {
            return false;
        }
        for step in &schedule.order {
            let Some(table) = self.switch.master_mut().table_at_mut(step.table) else {
                return false;
            };
            match step.op {
                DeltaOp::Install => table.install(step.rule.to_flow_rule(BASE_COOKIE)),
                DeltaOp::Remove => {
                    table.remove_matching(&step.rule.to_flow_rule(BASE_COOKIE));
                }
            }
        }
        // Paranoia cross-check: the planned result must be content-identical
        // to what a wholesale install would have produced.
        let fresh = self.reference_tables(compilation);
        let matches = (0..want_tables).all(|i| {
            self.switch
                .master()
                .table_at(i)
                .map(|t| t.fingerprint() == fresh[i].fingerprint())
                .unwrap_or(false)
        });
        if !matches {
            return false; // wholesale reinstall repairs the divergence
        }
        true
    }

    /// The tables a wholesale install of `compilation` would produce.
    fn reference_tables(&self, compilation: &Compilation) -> Vec<FlowTable> {
        if self.options.multi_table {
            let mut t0 = FlowTable::new();
            t0.append_classifier_goto(&compilation.stage1, BASE_COOKIE, 0, Some(1));
            let mut t1 = FlowTable::new();
            t1.append_classifier(&compilation.stage2, BASE_COOKIE, 0);
            vec![t0, t1]
        } else {
            let mut t = FlowTable::new();
            t.install_classifier(&compilation.fabric, BASE_COOKIE);
            vec![t]
        }
    }

    /// The rule content of the currently installed pipeline, per table.
    fn installed_state(&self) -> Vec<TableState> {
        (0..self.switch.master().table_count())
            .map(|i| {
                sdx_plan::state_of_table(
                    self.switch
                        .master()
                        .table_at(i)
                        .expect("table index in range"),
                )
            })
            .collect()
    }

    /// The rule content a wholesale install of `compilation` would produce.
    fn target_state(&self, compilation: &Compilation) -> Vec<TableState> {
        if self.options.multi_table {
            vec![
                sdx_plan::state_of_classifier(&compilation.stage1, Some(1)),
                sdx_plan::state_of_classifier(&compilation.stage2, None),
            ]
        } else {
            vec![sdx_plan::state_of_classifier(&compilation.fabric, None)]
        }
    }

    /// The update planner's report for the most recent plan-gated
    /// [`compile`](Self::compile): the delta, the synthesized schedule, the
    /// naive-ordering violations, and the search counters. `None` until a
    /// recompile runs with [`CompileOptions::plan`] active and tables
    /// already installed.
    pub fn last_plan(&self) -> Option<&PlanReport> {
        self.last_plan.as_ref()
    }

    /// The paper's "background" stage: rerun the optimal compilation,
    /// coalescing fast-path overlays back into minimal tables.
    pub fn reoptimize(&mut self) -> Result<CompileStats, CompileError> {
        self.compile()
    }

    /// RPKI-filter one update and feed it to the route server, returning
    /// the prefixes whose best route changed.
    fn ingest_update(&mut self, from: ParticipantId, update: &Update) -> Vec<Prefix> {
        // RPKI origin validation: strip Invalid announcements.
        let mut update = update.clone();
        if let (Some(rpki), Some(attrs)) = (&self.rpki, &update.attrs) {
            let origin = attrs.as_path.origin_as().unwrap_or(sdx_bgp::Asn(0));
            let before = update.announce.len();
            update
                .announce
                .retain(|p| rpki.validate(p, origin) != RpkiStatus::Invalid);
            self.rpki_rejected += (before - update.announce.len()) as u64;
            if update.announce.is_empty() {
                update.attrs = None;
            }
        }
        let events = self.route_server.apply_update(from.peer(), &update);
        events
            .into_iter()
            .filter_map(|e| match e {
                sdx_bgp::RsEvent::PrefixTouched(p) => Some(p),
                _ => None,
            })
            .collect()
    }

    /// Ingest a BGP update from a participant. If a compilation is active,
    /// every touched prefix goes through the fast path (fresh VNH + overlay
    /// rules). Returns the touched prefixes.
    pub fn apply_update(&mut self, from: ParticipantId, update: &Update) -> Vec<Prefix> {
        let touched = self.ingest_update(from, update);
        if self.compilation.is_some() {
            let start = Instant::now();
            for prefix in &touched {
                self.fast_path(*prefix);
            }
            self.incremental.updates = self
                .incremental
                .updates
                .saturating_add(touched.len() as u64);
            self.incremental.last_update_us =
                u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        }
        touched
    }

    /// The streaming-churn variant of [`apply_update`](Self::apply_update):
    /// every touched prefix is migrated by **rule-level deltas** computed
    /// via `sdx_plan::diff` against the live table and applied in
    /// make-before-break order at a fixed priority band just above the base
    /// table — no overlay stacking, no classifier rebuild. Returns the
    /// touched prefixes and the aggregate rule delta.
    pub fn apply_update_delta(
        &mut self,
        from: ParticipantId,
        update: &Update,
    ) -> (Vec<Prefix>, DeltaInstall) {
        let touched = self.ingest_update(from, update);
        let mut total = DeltaInstall::default();
        if self.compilation.is_some() {
            let start = Instant::now();
            self.incremental.last_check_us = 0;
            for prefix in &touched {
                let d = self.fast_path_delta(*prefix);
                total.installed += d.installed;
                total.removed += d.removed;
            }
            self.incremental.updates = self
                .incremental
                .updates
                .saturating_add(touched.len() as u64);
            self.incremental.delta_events = self
                .incremental
                .delta_events
                .saturating_add(touched.len() as u64);
            self.incremental.last_update_us =
                u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        }
        (touched, total)
    }

    /// Convenience announce (see [`apply_update`](Self::apply_update)).
    pub fn announce(
        &mut self,
        from: ParticipantId,
        prefixes: impl IntoIterator<Item = Prefix>,
        attrs: PathAttributes,
    ) -> Vec<Prefix> {
        self.apply_update(from, &Update::announce(prefixes, attrs))
    }

    /// Convenience withdraw (see [`apply_update`](Self::apply_update)).
    pub fn withdraw(
        &mut self,
        from: ParticipantId,
        prefixes: impl IntoIterator<Item = Prefix>,
    ) -> Vec<Prefix> {
        self.apply_update(from, &Update::withdraw(prefixes))
    }

    /// Retire the overlay covering `prefix` (rules, ARP binding,
    /// bookkeeping), if one exists. Returns how many rules were removed.
    fn retire_overlay(&mut self, prefix: Prefix) -> usize {
        let Some(pos) = self.overlays.iter().position(|o| o.prefix == prefix) else {
            return 0;
        };
        let old = self.overlays.remove(pos);
        let removed = self
            .switch
            .master_mut()
            .table_mut()
            .remove_by_cookie(old.cookie);
        // Saturating on purpose: `remove_by_cookie` reports what the *table*
        // held, which can exceed what this counter ever saw if a recompile
        // reconciled the accounting in between.
        self.incremental.overlay_rules = self.incremental.overlay_rules.saturating_sub(removed);
        self.arp.unbind(&old.vnh);
        removed
    }

    /// Compile the stage-1 fragment for `prefix` tagged with `vmac`,
    /// composed down to single-table form unless the pipeline runs
    /// multi-table mode.
    fn fragment_for(&self, prefix: &Prefix, vmac: MacAddr) -> Vec<sdx_policy::Rule> {
        let multi_table = self.options.multi_table;
        let stage2 = match &self.compilation {
            Some(c) => c.stage2.clone(),
            None => return Vec::new(),
        };
        let input = self.input();
        let fragment_rules = stage1_rules_for_prefix(&input, prefix, vmac);
        if multi_table {
            // Pipeline mode: the sender-stage fragment goes straight into
            // table 0 (goto 1); no composition needed.
            fragment_rules
        } else {
            let fragment = Classifier::new(fragment_rules);
            let composed = sdx_policy::sequential_compose(&fragment, &stage2);
            // Only the rules constrained to the fresh VMAC are meaningful
            // (the fragment's catch-all drop must not shadow the base table).
            let vmac_pattern = sdx_policy::Pattern::Exact(vmac.to_u64());
            composed
                .rules()
                .iter()
                .filter(|r| r.match_.get(sdx_policy::Field::DstMac) == Some(&vmac_pattern))
                .cloned()
                .collect()
        }
    }

    /// §4.3.2's fast stage for one prefix: assume a new VNH is needed,
    /// compile only the rules mentioning the fresh VMAC, and push them with
    /// priority above the base table.
    fn fast_path(&mut self, prefix: Prefix) {
        // A prefix with no remaining candidates needs no rules: the
        // withdrawal propagates via BGP and routers stop tagging it.
        if self.route_server.best_route_global(&prefix).is_none() {
            self.retire_overlay(prefix);
            return;
        }

        // Allocate *before* retiring the previous overlay: when the pool is
        // exhausted the stale overlay keeps forwarding the prefix (its VNH
        // is still advertised and its rules still present) instead of
        // leaving it ruleless until someone happens to recompile. The
        // condition is counted and flags the background stage.
        let Some((vnh, vmac)) = self.alloc.allocate() else {
            self.incremental.overlay_exhausted =
                self.incremental.overlay_exhausted.saturating_add(1);
            self.needs_reoptimize = true;
            return;
        };
        let overlay_rules = self.fragment_for(&prefix, vmac);
        self.retire_overlay(prefix);

        let cookie = self.next_cookie;
        self.next_cookie += 1;
        let n = overlay_rules.len();
        // The table computes the priority boost from its own ceiling, so
        // repeated overlays stack strictly above the base table and each
        // other — no collision with base priorities is possible. The append
        // can still exhaust the priority space after enough stacked
        // overlays; that is an operational condition, not a bug: leave the
        // base table serving the prefix and let the background
        // recompilation reset the ceiling.
        let goto = self.options.multi_table.then_some(1);
        if self
            .switch
            .master_mut()
            .table_mut()
            .append_rules_above(&overlay_rules, cookie, goto)
            .is_err()
        {
            self.incremental.install_errors = self.incremental.install_errors.saturating_add(1);
            self.needs_reoptimize = true;
            return;
        }
        self.arp.bind(vnh, vmac);
        self.incremental.overlay_rules = self.incremental.overlay_rules.saturating_add(n);
        self.overlays.push(Overlay {
            prefix,
            vnh,
            vmac,
            cookie,
            rules: n,
        });
    }

    /// The steady-path variant of [`fast_path`](Self::fast_path): migrate
    /// `prefix` by a rule-level delta instead of an overlay append. The old
    /// fragment's live rules (identified by the retiring overlay's cookie)
    /// and the freshly compiled fragment are diffed with `sdx_plan::diff`,
    /// and the steps are applied in make-before-break order: installs
    /// first, removals after. Because every fragment rule is pinned to an
    /// exact, never-reused VMAC tag, the two sides match disjoint packets
    /// and every intermediate state is per-packet consistent. New rules
    /// occupy the *fixed* priority band immediately above the base table
    /// (`delta_base`), so sustained churn does not ratchet the priority
    /// ceiling the way stacked overlays do.
    fn fast_path_delta(&mut self, prefix: Prefix) -> DeltaInstall {
        if self.route_server.best_route_global(&prefix).is_none() {
            // Withdrawal: the only rules to go are the retiring overlay's,
            // and the routers stop tagging the prefix — the removals are
            // post-barrier drains.
            let checked = if self.delta_check_active() {
                let old_state = self.overlay_state(&prefix);
                let steps = sdx_plan::diff(&[old_state], &[TableState::new()]);
                let schedule = sdx_plan::Schedule {
                    order: steps.clone(),
                    barrier: 0,
                    two_phase: true,
                };
                let advert_now = self.delta_advert_now(&self.route_server.advert_map(&prefix));
                self.check_streamed_delta(prefix, Vec::new(), advert_now, schedule, steps)
            } else {
                None
            };
            if matches!(checked, Some((_, true))) {
                return DeltaInstall::default(); // denied; stale rules stay
            }
            let removed = self.retire_overlay(prefix);
            self.incremental.delta_removed = self
                .incremental
                .delta_removed
                .saturating_add(removed as u64);
            if let Some((ev, _)) = checked {
                if let Some(c) = self.delta_checker.as_mut() {
                    c.commit(&ev, &ev.schedule.order);
                }
            }
            return DeltaInstall {
                installed: 0,
                removed,
            };
        }

        let Some((vnh, vmac)) = self.alloc.allocate() else {
            self.incremental.overlay_exhausted =
                self.incremental.overlay_exhausted.saturating_add(1);
            self.needs_reoptimize = true;
            return DeltaInstall::default();
        };
        let fragment = self.fragment_for(&prefix, vmac);
        let n = fragment.len() as u32;
        if self.delta_base.checked_add(n).is_none() {
            self.incremental.install_errors = self.incremental.install_errors.saturating_add(1);
            self.needs_reoptimize = true;
            return DeltaInstall::default();
        }

        let goto = self.options.multi_table.then_some(1);
        let new_state: TableState = fragment
            .iter()
            .enumerate()
            .map(|(i, r)| sdx_plan::PlanRule {
                priority: self.delta_base + n - i as u32,
                match_: r.match_.clone(),
                actions: r.actions.clone(),
                goto_table: match (goto, r.actions.is_empty()) {
                    (Some(t), false) => Some(t),
                    _ => None,
                },
            })
            .collect();

        let old_state = self.overlay_state(&prefix);
        let steps = sdx_plan::diff(&[old_state], &[new_state]);
        let schedule = sdx_plan::make_before_break(&steps);

        // ---- Incremental safety gate --------------------------------------
        // Statically certify (or reorder, or reject) the schedule before a
        // single rule moves. A denied delta installs nothing: the stale
        // overlay keeps forwarding and the scheduled full reoptimize
        // recovers. (The VNH allocated above stays consumed until that
        // reoptimize resets the pool — bounded by the deny window.)
        let checked = if self.delta_check_active() {
            let adverts = self.route_server.advert_map(&prefix);
            let adds = self.delta_adds(&prefix, vmac, &adverts);
            let advert_now = self.delta_advert_now(&adverts);
            self.check_streamed_delta(prefix, adds, advert_now, schedule.clone(), steps)
        } else {
            None
        };
        if matches!(checked, Some((_, true))) {
            return DeltaInstall::default();
        }

        // Installs, then the barrier, then removals. Old and new fragments
        // never share rule content (distinct VMAC tags), so the diff never
        // cancels across them: the removal side is exactly the old cookie's
        // rules, which lets one `remove_by_cookie` retire them with a
        // single index rebuild.
        let cookie = self.next_cookie;
        self.next_cookie += 1;
        let installed = schedule.barrier;
        {
            let table = self.switch.master_mut().table_mut();
            for step in &schedule.order[..schedule.barrier] {
                table.install(step.rule.to_flow_rule(cookie));
            }
        }
        let removed = self.retire_overlay(prefix);
        debug_assert_eq!(
            removed,
            schedule.order.len() - schedule.barrier,
            "delta removal side diverged from the retiring cookie's rules"
        );
        self.arp.bind(vnh, vmac);
        self.incremental.overlay_rules = self.incremental.overlay_rules.saturating_add(installed);
        self.incremental.delta_installed = self
            .incremental
            .delta_installed
            .saturating_add(installed as u64);
        self.incremental.delta_removed = self
            .incremental
            .delta_removed
            .saturating_add(removed as u64);
        self.overlays.push(Overlay {
            prefix,
            vnh,
            vmac,
            cookie,
            rules: installed,
        });
        if let Some((ev, _)) = checked {
            if let Some(c) = self.delta_checker.as_mut() {
                c.commit(&ev, &ev.schedule.order);
            }
        }
        DeltaInstall { installed, removed }
    }

    /// Is the streamed-delta safety gate on and seeded?
    fn delta_check_active(&self) -> bool {
        self.options.delta_check != AnalysisMode::Off && self.delta_checker.is_some()
    }

    /// The live rule content of the overlay covering `prefix` (empty when
    /// none is installed).
    fn overlay_state(&self, prefix: &Prefix) -> TableState {
        match self.overlays.iter().find(|o| o.prefix == *prefix) {
            Some(o) => sdx_plan::state_of_cookie(
                self.switch.master().table_at(0).expect("table 0"),
                o.cookie,
            ),
            None => TableState::new(),
        }
    }

    /// The emission keys that will carry `prefix` after it re-homes onto
    /// `vmac`: every physical participant with a best route to it (and not
    /// announcing it itself) emits it from each of its ports under the
    /// fresh tag — mirroring what [`live_fib`](Self::live_fib) will resolve
    /// once the overlay's ARP binding lands.
    fn delta_adds(
        &self,
        prefix: &Prefix,
        vmac: MacAddr,
        adverts: &AdvertMap,
    ) -> Vec<sdx_plan::EmissionKey> {
        let tag = vmac.to_u64();
        let mut adds = Vec::new();
        for p in self.participants.values().filter(|p| p.is_physical()) {
            // Point lookup, not `announced_by(..).contains(..)`: building a
            // peer's full announced set per participant per event dominates
            // the streamed check's cost at churn rate.
            if self.route_server.route_from(p.id.peer(), prefix).is_some() {
                continue;
            }
            // A viewer has a best route iff it has any feasible candidate.
            if !adverts.contains_key(&p.id.peer()) {
                continue;
            }
            for port in p.port_numbers() {
                adds.push((p.id.0, port, tag));
            }
        }
        adds
    }

    /// The post-event advertisement ground truth for `prefix`:
    /// `(advertiser, viewer)` pairs per the route server's *current* (the
    /// update is already ingested) reachability — the same relation
    /// `sdx-verify`'s ground truth uses. `adverts` is one
    /// [`RouteServer::advert_map`] snapshot, computed once per event and
    /// shared with [`delta_adds`](Self::delta_adds) — per-viewer
    /// reachability queries are too slow at churn rate.
    fn delta_advert_now(&self, adverts: &AdvertMap) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for p in self.participants.values().filter(|p| p.is_physical()) {
            if let Some(advertisers) = adverts.get(&p.id.peer()) {
                for advertiser in advertisers {
                    out.push((advertiser.0, p.id.0));
                }
            }
        }
        out
    }

    /// Build, check, record, and (on `Deny` + unsafe) veto one streamed
    /// delta. Returns `(event, denied)`; the caller must install and
    /// [`commit`](sdx_plan::IncrementalChecker::commit) the event unless
    /// `denied`.
    fn check_streamed_delta(
        &mut self,
        prefix: Prefix,
        adds: Vec<sdx_plan::EmissionKey>,
        advert_now: Vec<(u32, u32)>,
        schedule: sdx_plan::Schedule,
        naive: Vec<sdx_plan::PlanStep>,
    ) -> Option<(sdx_plan::DeltaEvent, bool)> {
        let mut ev = sdx_plan::DeltaEvent {
            prefix,
            adds,
            advert_now,
            schedule,
            naive,
        };
        ev.normalize();
        self.delta_events_checked = self.delta_events_checked.saturating_add(1);
        let sample_due =
            self.delta_sample > 0 && self.delta_events_checked.is_multiple_of(self.delta_sample);

        let start = Instant::now();
        let need = self
            .delta_checker
            .as_ref()
            .map(|c| c.needs_tables(&ev))
            .unwrap_or(false);
        let tables = (need || sample_due || self.delta_judge_naive).then(|| self.installed_state());
        let mut report = self
            .delta_checker
            .as_mut()
            .expect("delta_check_active checked by caller")
            .check_delta(&ev, tables.as_deref());
        report.check_us = clamp_us(start.elapsed().as_micros());

        let s = &mut self.incremental;
        s.delta_checked = s.delta_checked.saturating_add(1);
        match report.verdict {
            sdx_plan::DeltaVerdict::Certified => {
                s.delta_certified = s.delta_certified.saturating_add(1);
                if report.structural {
                    s.delta_structural = s.delta_structural.saturating_add(1);
                }
            }
            sdx_plan::DeltaVerdict::Reordered => {
                s.delta_reordered = s.delta_reordered.saturating_add(1);
            }
            sdx_plan::DeltaVerdict::Rejected => {
                s.delta_rejected = s.delta_rejected.saturating_add(1);
            }
        }
        s.delta_check_us = s.delta_check_us.saturating_add(report.check_us);
        s.last_check_us = s.last_check_us.saturating_add(report.check_us);

        // From-scratch oracle on sampled events: same verdict pipeline, no
        // cache, no gate, full universe — the soundness cross-check.
        let mut from_scratch = None;
        let mut from_scratch_us = 0;
        let mut agreed = None;
        if sample_due {
            let t = tables.as_deref().expect("sampled events carry tables");
            let c = self.delta_checker.as_ref().expect("checker present");
            let t0 = Instant::now();
            let fs = c.check_from_scratch(&ev, t);
            from_scratch_us = clamp_us(t0.elapsed().as_micros());
            agreed = Some(report.agrees_with(&fs));
            from_scratch = Some(fs);
            if self.delta_samples.len() < DELTA_SAMPLE_CAP {
                self.delta_samples.push((report.check_us, from_scratch_us));
            }
        }

        let forced = self.delta_deny_next > 0;
        if forced {
            self.delta_deny_next -= 1;
        }
        let denied = self.options.delta_check == AnalysisMode::Deny && (!report.safe() || forced);
        if denied {
            self.incremental.delta_denied = self.incremental.delta_denied.saturating_add(1);
            self.pending_deny_fallbacks = self.pending_deny_fallbacks.saturating_add(1);
            self.needs_reoptimize = true;
            if let Some(c) = self.delta_checker.as_mut() {
                c.abort();
            }
        }
        if self.delta_log.len() < self.delta_log_limit {
            self.delta_log.push(DeltaRecord {
                prefix,
                report,
                from_scratch,
                from_scratch_us,
                agreed,
            });
        }
        Some((ev, denied))
    }

    /// The next hop the route server advertises to `viewer` for `prefix`:
    /// a fast-path VNH if an overlay covers it, the compiled group VNH if it
    /// belongs to an FEC, otherwise the original next hop of the viewer's
    /// best route ("the SDX behaves like a normal route server").
    pub fn advertised_next_hop(&self, prefix: &Prefix, viewer: ParticipantId) -> Option<Ipv4Addr> {
        if let Some(o) = self.overlays.iter().find(|o| o.prefix == *prefix) {
            return Some(o.vnh);
        }
        if let Some(c) = &self.compilation {
            if let Some(vnh) = c.vnh_of(prefix) {
                return Some(vnh);
            }
        }
        self.route_server
            .best_route(prefix, viewer.peer())
            .map(|c| c.route.attrs.next_hop)
    }

    /// The full re-advertisement of `prefix` to `viewer`, with the SDX's
    /// next-hop substitution applied.
    pub fn advertisement(&self, prefix: &Prefix, viewer: ParticipantId) -> Option<Update> {
        let nh = self.advertised_next_hop(prefix, viewer);
        self.route_server.advertisement(prefix, viewer.peer(), nh)
    }

    /// Answer an ARP request (VNHs and router interfaces).
    pub fn resolve_arp(&self, req: &ArpRequest) -> Option<ArpReply> {
        self.arp.respond(req)
    }

    /// Resolve an IP to a MAC directly (simulation convenience).
    pub fn resolve_ip(&self, ip: Ipv4Addr) -> Option<MacAddr> {
        self.arp.resolve(&ip)
    }

    /// Push one packet through the fabric.
    pub fn process_packet(&mut self, pkt: &Packet) -> Vec<(u32, Packet)> {
        self.switch.process(pkt)
    }

    /// Push a batch of packets through the fabric, amortizing the pipeline's
    /// scratch allocation across the batch. Results are grouped per input
    /// packet, in input order.
    pub fn process_batch(&mut self, pkts: &[Packet]) -> Vec<Vec<(u32, Packet)>> {
        self.switch.process_batch(pkts)
    }

    /// The zero-alloc batch entry point: emissions land in the reusable
    /// `out` arena (grouped per input packet, in input order), sharded
    /// across [`dataplane_threads`](Self::dataplane_threads) shards when
    /// more than one is configured.
    pub fn process_batch_into(&mut self, pkts: &[Packet], out: &mut BatchOutput) {
        self.switch.process_batch_into(pkts, out);
    }

    /// Like [`process_batch_into`](Self::process_batch_into) but runs the
    /// shards sequentially on the calling thread, timing each shard's busy
    /// span — the measurement mode for per-shard (dedicated-core) cost; see
    /// [`sdx_switch::ShardedSwitch::process_batch_serial_into`].
    pub fn process_batch_serial_into(&mut self, pkts: &[Packet], out: &mut BatchOutput) {
        self.switch.process_batch_serial_into(pkts, out);
    }

    /// Current data-plane shard count.
    pub fn dataplane_threads(&self) -> usize {
        self.switch.threads()
    }

    /// Change the data-plane shard count (0 is clamped to 1); takes effect
    /// on the next batch. Forwarding output and counters are identical for
    /// every shard count.
    pub fn set_dataplane_threads(&mut self, threads: usize) {
        self.options.dataplane_threads = threads.max(1);
        self.switch.set_threads(threads);
    }

    /// Per-shard cumulative busy time (see
    /// [`sdx_switch::ShardedSwitch::shard_busy`]).
    pub fn shard_busy(&self) -> Vec<std::time::Duration> {
        self.switch.shard_busy()
    }

    /// Zero the per-shard busy clocks.
    pub fn reset_shard_busy(&mut self) {
        self.switch.reset_shard_busy();
    }

    /// Force (or lift) linear-scan flow-table lookups — the indexed fast
    /// path's semantic oracle and the dataplane bench's baseline.
    pub fn set_linear_scan(&mut self, linear: bool) {
        self.switch.master_mut().set_linear_scan(linear);
    }

    /// Bring a participant's border router in sync with the SDX's current
    /// advertisements: install every best route (with VNH substitution) into
    /// its FIB and resolve the next hops' MACs.
    pub fn sync_router(&self, viewer: ParticipantId, router: &mut BorderRouter) {
        let own = self.route_server.announced_by(viewer.peer());
        for prefix in self.route_server.all_prefixes() {
            // A router announcing a prefix has its own internal route to it
            // and never forwards such traffic back to the fabric (the
            // paper's second loop-prevention invariant).
            if own.contains(&prefix) {
                router.remove_route(&prefix);
                continue;
            }
            match self.route_server.best_route(&prefix, viewer.peer()) {
                Some(_) => {
                    let nh = self
                        .advertised_next_hop(&prefix, viewer)
                        .expect("best route implies next hop");
                    router.install_route(prefix, nh);
                    if let Some(mac) = self.arp.resolve(&nh) {
                        router.learn_arp(&ArpReply {
                            sender_mac: mac,
                            sender_ip: nh,
                            target_mac: router.mac(),
                            target_ip: router.ip(),
                        });
                    }
                }
                None => {
                    router.remove_route(&prefix);
                }
            }
        }
    }

    /// Serialize the installed flow tables as OpenFlow 1.0 `FLOW_MOD`
    /// messages, one `Vec` per pipeline table — what the controller would
    /// push to a hardware switch ("a straightforward mapping to low-level
    /// rules on OpenFlow switches"). Multi-table pipelines are rejected by
    /// the 1.0 codec if rules reference virtual ports; use the composed
    /// single-table mode for hardware export.
    pub fn export_flow_mods(
        &self,
    ) -> Result<Vec<Vec<bytes::Bytes>>, sdx_switch::openflow::FlowModError> {
        (0..self.switch.master().table_count())
            .map(|i| {
                sdx_switch::openflow::flow_mods_for_table(
                    self.switch
                        .master()
                        .table_at(i)
                        .expect("table index in range"),
                )
            })
            .collect()
    }

    /// Re-run the static analyzer against the *installed* state: same
    /// checks as the compile-time gate, plus ARP-binding verification for
    /// every allocated VNH (the responder exists only at runtime, so the
    /// pure compiler cannot check this). `None` before the first
    /// successful [`compile`](Self::compile).
    pub fn audit_installed(&self) -> Option<sdx_analyze::Analysis> {
        let compilation = self.compilation.as_ref()?;
        let input = CompileInput {
            participants: &self.participants,
            policies: &self.policies,
            policy_versions: &self.policy_versions,
            route_server: &self.route_server,
            options: self.options,
        };
        let mut analysis_input = crate::analysis::build_input(&input, compilation);
        analysis_input.arp_bound = Some(
            compilation
                .vnh
                .iter()
                .map(|(ip, _)| *ip)
                .filter(|ip| self.arp.resolve(ip).is_some())
                .collect(),
        );
        Some(sdx_analyze::analyze(&analysis_input))
    }

    /// The installed pipeline tables, as classifiers in traversal order
    /// (overlay rules included at their boosted priorities).
    fn installed_tables(&self) -> Vec<Classifier> {
        (0..self.switch.master().table_count())
            .map(|i| {
                let table = self
                    .switch
                    .master()
                    .table_at(i)
                    .expect("table index in range");
                Classifier::new(
                    table
                        .rules()
                        .iter()
                        .map(|r| sdx_policy::Rule {
                            match_: r.match_.clone(),
                            actions: r.actions.clone(),
                        })
                        .collect(),
                )
            })
            .collect()
    }

    /// The FIB model of one participant as the *live* control plane would
    /// converge it: fast-path overlay VNHs take precedence over compiled
    /// group VNHs, and MACs resolve through the real ARP responder.
    fn live_fib(&self, viewer: ParticipantId) -> sdx_analyze::FibModel {
        let own = self.route_server.announced_by(viewer.peer());
        let mut entries = Vec::new();
        for prefix in self.route_server.all_prefixes() {
            if own.contains(&prefix) {
                continue;
            }
            if self
                .route_server
                .best_route(&prefix, viewer.peer())
                .is_none()
            {
                continue;
            }
            let nh = self
                .advertised_next_hop(&prefix, viewer)
                .expect("best route implies next hop");
            entries.push(sdx_analyze::FibEntry {
                prefix,
                next_hop: nh,
                mac: self.arp.resolve(&nh).map(|m| m.to_u64()),
            });
        }
        sdx_analyze::FibModel {
            participant: viewer.0,
            entries,
        }
    }

    /// The reachability verifier's input for the *installed* state: the
    /// switch's live tables (fast-path overlays included) fronted by FIB
    /// models derived from the live advertisements and ARP responder.
    /// Exposed so audits can substitute *actual* border-router state via
    /// [`sdx_analyze::VerifyInput::set_fib`] (see
    /// [`crate::verify::fib_from_router`]) before running
    /// [`sdx_analyze::reach::run`] themselves. `None` before the first
    /// successful [`compile`](Self::compile).
    pub fn verify_input(&self) -> Option<sdx_analyze::VerifyInput> {
        let compilation = self.compilation.as_ref()?;
        let input = self.input();
        let mut vi = crate::verify::build_verify_input(&input, compilation);
        vi.tables = self.installed_tables();
        // Fast-path overlays re-home prefixes onto fresh VNH/VMAC bindings:
        // pull them out of their base groups so the integrity pass checks
        // the binding the routers actually converge to.
        for o in &self.overlays {
            for g in &mut vi.groups {
                g.prefixes.remove(&o.prefix);
            }
            let mut prefixes = sdx_ip::PrefixSet::new();
            prefixes.insert(o.prefix);
            vi.groups.push(sdx_analyze::GroupBinding {
                prefixes,
                vnh: o.vnh,
                vmac: o.vmac.to_u64(),
            });
        }
        vi.fibs = vi
            .participants
            .iter()
            .map(|(id, _)| self.live_fib(ParticipantId(*id)))
            .collect();
        Some(vi)
    }

    /// Run the whole-fabric reachability verifier against the *installed*
    /// state (see [`verify_input`](Self::verify_input)). `None` before the
    /// first successful [`compile`](Self::compile).
    pub fn verify_fabric(&self) -> Option<sdx_analyze::ReachReport> {
        let vi = self.verify_input()?;
        Some(sdx_analyze::reach::run(&vi, self.options.threads))
    }

    /// Differential recompile equivalence (`sdx-verify`'s fourth invariant):
    /// check that the running fabric — incremental fast-path overlays and
    /// all — is packet-equivalent, modulo VNH tags, to a from-scratch
    /// compile of the current inputs. Confirmed differences come back as
    /// `verify-diff` diagnostics with witness packets; an empty report means
    /// the incremental path converged to the same forwarding behavior. The
    /// pass's wall clock is recorded in the active compilation's
    /// `stages.verify_diff_us`. `None` before the first successful
    /// [`compile`](Self::compile) or if the reference compile itself fails.
    pub fn verify_differential(&mut self) -> Option<sdx_analyze::DiffReport> {
        self.compilation.as_ref()?;
        let old = sdx_analyze::DiffSide {
            tables: self.installed_tables(),
            fibs: self
                .participants
                .values()
                .filter(|p| p.is_physical())
                .map(|p| self.live_fib(p.id))
                .collect(),
        };
        // The reference side: a gate-free from-scratch compile of the same
        // inputs with its own VNH pool (tag allocations are expected to
        // differ — the comparison is modulo tag).
        let mut options = self.options;
        options.analysis = sdx_analyze::AnalysisMode::Off;
        options.verify = sdx_analyze::AnalysisMode::Off;
        let (new, participants) = {
            let input = CompileInput {
                participants: &self.participants,
                policies: &self.policies,
                policy_versions: &self.policy_versions,
                route_server: &self.route_server,
                options,
            };
            let mut alloc = VnhAllocator::default_pool();
            let memo = MemoCache::new();
            let fresh = compile(&input, &mut alloc, &memo).ok()?;
            let tables = if options.multi_table {
                vec![fresh.stage1.clone(), fresh.stage2.clone()]
            } else {
                vec![fresh.fabric.clone()]
            };
            let fibs = crate::verify::build_verify_input(&input, &fresh).fibs;
            (
                sdx_analyze::DiffSide { tables, fibs },
                crate::verify::physical_participants(&input),
            )
        };
        let report = sdx_analyze::diff::run(&old, &new, &participants, self.options.threads);
        if let Some(c) = &mut self.compilation {
            c.stats.stages.verify_diff_us = report.duration_us;
        }
        Some(report)
    }

    /// Which participant owns a fabric port.
    pub fn port_owner(&self, port: u32) -> Option<ParticipantId> {
        self.participants
            .values()
            .find(|p| p.port_numbers().any(|n| n == port))
            .map(|p| p.id)
    }
}
