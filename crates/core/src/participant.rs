use std::fmt;
use std::net::Ipv4Addr;

use sdx_bgp::{Asn, PeerId, RouterId};
use sdx_ip::MacAddr;
use serde::{Deserialize, Serialize};

/// Identifies an SDX participant (an AS with a session to the route server,
/// whether or not it has a physical presence at the exchange).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ParticipantId(pub u32);

impl ParticipantId {
    /// The route-server peer identity of this participant (1:1 mapping).
    pub fn peer(&self) -> PeerId {
        PeerId(self.0)
    }

    /// The participant's virtual switch ingress port in the fabric's port
    /// namespace. Virtual ports live far above any physical port number.
    pub fn vport(&self) -> u32 {
        VPORT_BASE + self.0
    }
}

/// The base of the virtual-port number space.
pub const VPORT_BASE: u32 = 1_000_000;

/// Is this fabric port a virtual (per-participant) port?
pub fn is_vport(port: u32) -> bool {
    port >= VPORT_BASE
}

impl From<PeerId> for ParticipantId {
    fn from(p: PeerId) -> Self {
        ParticipantId(p.0)
    }
}

impl fmt::Display for ParticipantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// One physical port of a participant: where its border router attaches to
/// the SDX fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortConfig {
    /// Fabric port number (must be below [`VPORT_BASE`]).
    pub port: u32,
    /// The border router's interface MAC on this port.
    pub mac: MacAddr,
    /// The border router's IP on the IXP peering LAN.
    pub ip: Ipv4Addr,
}

/// A participant's static configuration.
///
/// A *remote* participant (the paper's wide-area load-balancer tenant) has an
/// empty `ports` list: it peers with the route server and installs inbound
/// policies, but no traffic ever enters or exits the fabric at a port of its
/// own.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Participant {
    /// The participant's identity.
    pub id: ParticipantId,
    /// Its AS number.
    pub asn: Asn,
    /// Its BGP identifier on the route-server session.
    pub router_id: RouterId,
    /// Its physical ports (empty for remote participants).
    pub ports: Vec<PortConfig>,
}

impl Participant {
    /// A participant with the given ports.
    pub fn new(id: ParticipantId, asn: Asn, ports: Vec<PortConfig>) -> Self {
        Participant {
            id,
            asn,
            router_id: RouterId(id.0),
            ports,
        }
    }

    /// A remote participant (no physical presence).
    pub fn remote(id: ParticipantId, asn: Asn) -> Self {
        Self::new(id, asn, Vec::new())
    }

    /// Does the participant have a physical presence at the exchange?
    pub fn is_physical(&self) -> bool {
        !self.ports.is_empty()
    }

    /// The primary port (first configured), used for default forwarding.
    pub fn primary_port(&self) -> Option<&PortConfig> {
        self.ports.first()
    }

    /// Physical port numbers.
    pub fn port_numbers(&self) -> impl Iterator<Item = u32> + '_ {
        self.ports.iter().map(|p| p.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn port(n: u32) -> PortConfig {
        PortConfig {
            port: n,
            mac: MacAddr::from_u64(0xa0 + n as u64),
            ip: Ipv4Addr::new(172, 0, 0, n as u8),
        }
    }

    #[test]
    fn vport_is_disjoint_from_physical_space() {
        let p = ParticipantId(3);
        assert!(is_vport(p.vport()));
        assert!(!is_vport(42));
        assert_eq!(p.vport(), VPORT_BASE + 3);
    }

    #[test]
    fn peer_mapping_is_identity_on_numbers() {
        assert_eq!(ParticipantId(7).peer(), PeerId(7));
        assert_eq!(ParticipantId::from(PeerId(7)), ParticipantId(7));
    }

    #[test]
    fn physical_vs_remote() {
        let a = Participant::new(ParticipantId(1), Asn(65001), vec![port(1), port(2)]);
        assert!(a.is_physical());
        assert_eq!(a.primary_port().unwrap().port, 1);
        assert_eq!(a.port_numbers().collect::<Vec<_>>(), vec![1, 2]);

        let d = Participant::remote(ParticipantId(4), Asn(65004));
        assert!(!d.is_physical());
        assert!(d.primary_port().is_none());
    }
}
