//! Bridge between the controller and the static analyzer (`sdx-analyze`).
//!
//! The analyzer deliberately knows nothing about the controller's types; it
//! consumes an [`AnalysisInput`]. This module lowers a [`CompileInput`] and
//! the resulting [`Compilation`] into that form: clause predicates are
//! compiled to their match regions, destinations are mirrored, and the
//! BGP-safety question ("does the target export anything in scope to the
//! author?") is answered against the route server up front so the analyzer
//! stays BGP-agnostic.

use sdx_analyze::{AnalysisInput, ClauseDest, ClauseInfo, ParticipantInfo};
use sdx_policy::{compile_predicate, Match, Predicate};

use crate::compile::{Compilation, CompileInput};
use crate::participant::VPORT_BASE;
use crate::{Clause, Dest, ParticipantId};

/// Lower controller state into the analyzer's input form.
pub fn build_input(input: &CompileInput<'_>, compilation: &Compilation) -> AnalysisInput {
    let participants = input
        .participants
        .iter()
        .map(|(id, p)| {
            let policy = input.policies.get(id);
            ParticipantInfo {
                id: id.0,
                vport: id.vport(),
                ports: p.port_numbers().collect(),
                router_macs: p.ports.iter().map(|c| c.mac.to_u64()).collect(),
                outbound: policy
                    .map(|pol| {
                        pol.outbound
                            .iter()
                            .map(|c| clause_info(input, *id, c))
                            .collect()
                    })
                    .unwrap_or_default(),
                inbound: policy
                    .map(|pol| {
                        pol.inbound
                            .iter()
                            .map(|c| clause_info(input, *id, c))
                            .collect()
                    })
                    .unwrap_or_default(),
            }
        })
        .collect();

    AnalysisInput {
        participants,
        fabric: compilation.fabric.clone(),
        stage1: compilation.stage1.clone(),
        stage2: compilation.stage2.clone(),
        vnh: compilation
            .vnh
            .iter()
            .map(|(ip, mac)| (*ip, mac.to_u64()))
            .collect(),
        arp_bound: None,
        vport_base: VPORT_BASE,
        multi_table: input.options.multi_table,
    }
}

fn clause_info(input: &CompileInput<'_>, author: ParticipantId, clause: &Clause) -> ClauseInfo {
    let dest = match clause.dest {
        Dest::Participant(to) => ClauseDest::Participant(to.0),
        Dest::OwnPort(port) => ClauseDest::OwnPort(port),
        Dest::Drop => ClauseDest::Drop,
        Dest::BgpDefault => ClauseDest::BgpDefault,
    };
    // The BGP-safety precomputation, mirroring pass 1 of the compiler: a
    // filtered clause towards a participant is effective only on prefixes
    // the target exports to the author, intersected with the clause scope.
    let exports_match = match clause.dest {
        Dest::Participant(to) if !clause.unfiltered => {
            let via = input.route_server.prefixes_via(to.peer(), author.peer());
            let effective = match &clause.dst_prefixes {
                Some(scope) => scope.intersection(&via),
                None => via,
            };
            Some(!effective.is_empty())
        }
        _ => None,
    };
    ClauseInfo {
        matches: clause_matches(&clause.match_),
        dest,
        rewrites: clause.rewrites.clone(),
        unfiltered: clause.unfiltered,
        exports_match,
    }
}

/// The traffic region of a clause predicate, as the pass-matches of its
/// compiled classifier.
fn clause_matches(pred: &Predicate) -> Vec<Match> {
    compile_predicate(pred)
        .rules()
        .iter()
        .filter(|r| !r.is_drop())
        .map(|r| r.match_.clone())
        .collect()
}
