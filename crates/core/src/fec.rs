//! Forwarding-equivalence-class computation (§4.2 of the paper).
//!
//! The controller collects, for every outbound policy clause, the *effective
//! prefix set* the clause can apply to (its destination scope intersected
//! with the prefixes the target participant exports to the author). Prefixes
//! that share the same membership across all those sets — and the same
//! default BGP next hop — share forwarding behavior throughout the fabric
//! and form one FEC, which receives a single (VNH, VMAC) pair.
//!
//! The core algorithm is the paper's Minimum Disjoint Subsets: partition the
//! union of a collection of prefix sets by membership signature, giving the
//! coarsest partition in which every input set is a union of parts. It runs
//! in `O(total membership)` time using a signature map.

use std::collections::BTreeMap;

use sdx_bgp::PeerId;
use sdx_ip::{Prefix, PrefixSet};
use serde::{Deserialize, Serialize};

/// One forwarding equivalence class.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixGroup {
    /// The member prefixes (not necessarily contiguous).
    pub prefixes: PrefixSet,
    /// Indices (into the controller's policy-set list) of the effective
    /// prefix sets every member belongs to.
    pub policy_sets: Vec<usize>,
    /// The default BGP next-hop participant shared by every member, as seen
    /// by participants without export-policy exceptions.
    pub default_peer: Option<PeerId>,
    /// Participants whose visible best route differs (sparse: only arises
    /// from selective export), with their own default next hop.
    pub exceptions: BTreeMap<PeerId, Option<PeerId>>,
}

/// The per-prefix default-forwarding view used in pass 2.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DefaultView {
    /// Best next-hop peer for (almost) everyone.
    pub global: Option<PeerId>,
    /// Participants with a divergent best (selective export), mapped to
    /// their own best.
    pub exceptions: BTreeMap<PeerId, Option<PeerId>>,
}

/// Pass-1 membership signatures: prefix → ascending indices of the sets that
/// contain it. With `threads > 1` the sets are scanned in contiguous chunks
/// on the fork-join pool and the partial maps merged *in chunk order*, so a
/// prefix's signature lists set indices in exactly the order the sequential
/// scan would produce — the parallel schedule never reaches the result.
fn membership_map(sets: &[PrefixSet], threads: usize) -> BTreeMap<Prefix, Vec<usize>> {
    let workers = crossbeam::pool::num_threads(threads.max(1));
    if workers <= 1 || sets.len() < 2 * workers {
        let mut membership: BTreeMap<Prefix, Vec<usize>> = BTreeMap::new();
        for (i, set) in sets.iter().enumerate() {
            for p in set {
                membership.entry(*p).or_default().push(i);
            }
        }
        return membership;
    }
    let chunk_size = sets.len().div_ceil(workers * 4);
    let chunks: Vec<(usize, &[PrefixSet])> = sets
        .chunks(chunk_size)
        .enumerate()
        .map(|(c, chunk)| (c * chunk_size, chunk))
        .collect();
    let partials = crossbeam::pool::parallel_map(threads, chunks, |(base, chunk)| {
        let mut partial: BTreeMap<Prefix, Vec<usize>> = BTreeMap::new();
        for (off, set) in chunk.iter().enumerate() {
            for p in set {
                partial.entry(*p).or_default().push(base + off);
            }
        }
        partial
    });
    // Ascending-chunk merge keeps every signature's index list sorted.
    let mut membership: BTreeMap<Prefix, Vec<usize>> = BTreeMap::new();
    for partial in partials {
        for (prefix, indices) in partial {
            membership.entry(prefix).or_default().extend(indices);
        }
    }
    membership
}

/// The paper's Minimum Disjoint Subsets: the coarsest partition of the union
/// of `sets` such that any two prefixes appearing in exactly the same sets
/// land in the same part.
pub fn minimum_disjoint_subsets(sets: &[PrefixSet]) -> Vec<PrefixSet> {
    minimum_disjoint_subsets_par(sets, 1)
}

/// [`minimum_disjoint_subsets`] with the membership scan fanned out over
/// `threads` workers. Output is identical for any thread count.
pub fn minimum_disjoint_subsets_par(sets: &[PrefixSet], threads: usize) -> Vec<PrefixSet> {
    let membership = membership_map(sets, threads);
    let mut parts: BTreeMap<Vec<usize>, PrefixSet> = BTreeMap::new();
    for (prefix, signature) in membership {
        parts.entry(signature).or_default().insert(prefix);
    }
    parts.into_values().collect()
}

/// Full FEC computation: pass 1 (policy-set membership) + pass 2 (default
/// next hop) + pass 3 (signature partition), per §4.2.
///
/// `defaults` supplies the pass-2 view for each prefix (who the route
/// server's decision process picks by default). With `threads > 1` both the
/// membership scan and the per-prefix default-view lookups run on the
/// fork-join pool; the final signature partition is a sequential fold over
/// prefix-ordered entries, so the grouping is deterministic.
pub fn compute_groups(
    sets: &[PrefixSet],
    defaults: impl Fn(&Prefix) -> DefaultView + Sync,
    threads: usize,
) -> Vec<PrefixGroup> {
    let membership = membership_map(sets, threads);

    // Pass 2, the dominant cost at scale: one route-server view per prefix,
    // embarrassingly parallel. Entries stay in prefix order.
    let entries: Vec<(Prefix, Vec<usize>)> = membership.into_iter().collect();
    let viewed = crossbeam::pool::parallel_map(threads, entries, |(prefix, signature)| {
        let view = defaults(&prefix);
        (prefix, signature, view)
    });

    #[allow(clippy::type_complexity)]
    let mut parts: BTreeMap<
        (Vec<usize>, Option<PeerId>, Vec<(PeerId, Option<PeerId>)>),
        (PrefixSet, DefaultView),
    > = BTreeMap::new();

    for (prefix, signature, view) in viewed {
        let key = (
            signature,
            view.global,
            view.exceptions
                .iter()
                .map(|(k, v)| (*k, *v))
                .collect::<Vec<_>>(),
        );
        let entry = parts.entry(key).or_insert_with(|| (PrefixSet::new(), view));
        entry.0.insert(prefix);
    }

    parts
        .into_iter()
        .map(
            |((policy_sets, default_peer, _), (prefixes, view))| PrefixGroup {
                prefixes,
                policy_sets,
                default_peer,
                exceptions: view.exceptions,
            },
        )
        .collect()
}

/// A reverse index from prefix to its group id.
pub fn index_groups(groups: &[PrefixGroup]) -> BTreeMap<Prefix, usize> {
    let mut idx = BTreeMap::new();
    for (i, g) in groups.iter().enumerate() {
        for p in &g.prefixes {
            idx.insert(*p, i);
        }
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ps: &[&str]) -> PrefixSet {
        ps.iter().map(|s| s.parse().unwrap()).collect()
    }

    #[test]
    fn paper_section_4_2_example() {
        // C = {{p1,p2,p3}, {p1,p2,p3,p4}, {p1,p2,p4}, {p3}}
        // C' = {{p1,p2}, {p3}, {p4}}
        let p1 = "11.0.0.0/8";
        let p2 = "12.0.0.0/8";
        let p3 = "13.0.0.0/8";
        let p4 = "14.0.0.0/8";
        let sets = vec![
            set(&[p1, p2, p3]),
            set(&[p1, p2, p3, p4]),
            set(&[p1, p2, p4]),
            set(&[p3]),
        ];
        let mut parts = minimum_disjoint_subsets(&sets);
        parts.sort_by_key(|s| s.iter().next().copied());
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], set(&[p1, p2]));
        assert_eq!(parts[1], set(&[p3]));
        assert_eq!(parts[2], set(&[p4]));
    }

    #[test]
    fn disjoint_inputs_stay_disjoint() {
        let sets = vec![set(&["10.0.0.0/8"]), set(&["20.0.0.0/8"])];
        let parts = minimum_disjoint_subsets(&sets);
        assert_eq!(parts.len(), 2);
    }

    #[test]
    fn identical_sets_collapse() {
        let sets = vec![set(&["10.0.0.0/8", "20.0.0.0/8"]); 5];
        let parts = minimum_disjoint_subsets(&sets);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].len(), 2);
    }

    #[test]
    fn empty_collection_has_no_parts() {
        assert!(minimum_disjoint_subsets(&[]).is_empty());
        assert!(minimum_disjoint_subsets(&[PrefixSet::new()]).is_empty());
    }

    #[test]
    fn mds_parts_partition_the_union_and_respect_sets() {
        let sets = vec![
            set(&["10.0.0.0/8", "20.0.0.0/8", "30.0.0.0/8"]),
            set(&["20.0.0.0/8", "30.0.0.0/8", "40.0.0.0/8"]),
            set(&["30.0.0.0/8"]),
        ];
        let parts = minimum_disjoint_subsets(&sets);
        // Partition: parts are pairwise disjoint, union = union of inputs.
        let mut union = PrefixSet::new();
        for (i, a) in parts.iter().enumerate() {
            for b in parts.iter().skip(i + 1) {
                assert!(a.intersection(b).is_empty());
            }
            union = union.union(a);
        }
        let want = sets.iter().fold(PrefixSet::new(), |acc, s| acc.union(s));
        assert_eq!(union, want);
        // Every input set is a union of whole parts.
        for s in &sets {
            for part in &parts {
                let i = part.intersection(s);
                assert!(i.is_empty() || i == *part, "part straddles a set");
            }
        }
    }

    #[test]
    fn pass_two_splits_by_default_peer() {
        // One policy set covering both prefixes, but different default
        // next hops: must yield two groups.
        let sets = vec![set(&["10.0.0.0/8", "20.0.0.0/8"])];
        let groups = compute_groups(
            &sets,
            |p| DefaultView {
                global: if p.to_string().starts_with("10") {
                    Some(PeerId(1))
                } else {
                    Some(PeerId(2))
                },
                exceptions: BTreeMap::new(),
            },
            1,
        );
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn exceptions_split_groups() {
        let sets = vec![set(&["10.0.0.0/8", "20.0.0.0/8"])];
        let groups = compute_groups(
            &sets,
            |p| {
                let mut exceptions = BTreeMap::new();
                if p.to_string().starts_with("10") {
                    exceptions.insert(PeerId(7), Some(PeerId(3)));
                }
                DefaultView {
                    global: Some(PeerId(1)),
                    exceptions,
                }
            },
            1,
        );
        assert_eq!(groups.len(), 2);
        let with_exc = groups.iter().find(|g| !g.exceptions.is_empty()).unwrap();
        assert_eq!(with_exc.exceptions.get(&PeerId(7)), Some(&Some(PeerId(3))));
    }

    #[test]
    fn parallel_mds_matches_sequential() {
        // Enough sets to clear the parallel path's chunking threshold, with
        // heavy overlap so signatures are multi-element.
        let mut sets = Vec::new();
        for i in 0u32..64 {
            let mut s = PrefixSet::new();
            for j in 0u32..8 {
                let octet = (i + j * 3) % 200 + 1;
                s.insert(format!("{octet}.0.0.0/8").parse().unwrap());
            }
            sets.push(s);
        }
        let sequential = minimum_disjoint_subsets_par(&sets, 1);
        for threads in [2, 4, 8] {
            assert_eq!(
                minimum_disjoint_subsets_par(&sets, threads),
                sequential,
                "threads={threads}"
            );
        }
        // compute_groups is deterministic across thread counts too.
        let view = |p: &Prefix| DefaultView {
            global: Some(PeerId(u32::from(p.addr()) % 5)),
            exceptions: BTreeMap::new(),
        };
        let base = compute_groups(&sets, view, 1);
        for threads in [2, 8] {
            assert_eq!(compute_groups(&sets, view, threads), base);
        }
    }

    #[test]
    fn index_covers_every_member() {
        let sets = vec![set(&["10.0.0.0/8", "20.0.0.0/8"]), set(&["20.0.0.0/8"])];
        let groups = compute_groups(&sets, |_| DefaultView::default(), 1);
        let idx = index_groups(&groups);
        assert_eq!(idx.len(), 2);
        for (p, gid) in &idx {
            assert!(groups[*gid].prefixes.contains(p));
        }
    }
}
