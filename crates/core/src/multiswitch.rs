//! Topology abstraction: distributing the one-big-switch policy across
//! multiple physical switches (§4.1: "the SDX may consist of multiple
//! physical switches, each connected to a subset of the participants …
//! combine a policy written for a single SDX switch with another policy for
//! routing across multiple physical switches").
//!
//! The compiled fabric classifier is written against a single logical
//! switch whose ports are the participants' edge ports. [`distribute`]
//! splits it:
//!
//! * a rule whose match pins the ingress port is installed only on that
//!   port's home switch;
//! * a rule with no port constraint (default forwarding by destination MAC
//!   or VMAC) is installed on *every* switch;
//! * in either case, an action whose egress port lives on another switch is
//!   rewritten to forward out the trunk toward that switch; because
//!   policy-applying rules rewrite the destination MAC before trunking,
//!   the frame matches only plain MAC-delivery rules downstream and exits
//!   at the right edge port.
//!
//! The result is loop-free by construction (trunk forwarding follows
//! shortest paths of a connected inter-switch graph), and
//! [`MultiSwitchFabric::process`] additionally enforces a hop budget.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use sdx_policy::{Action, Classifier, Field, Packet, Pattern};
use sdx_switch::{FlowRule, SoftSwitch};

/// Identifies one physical switch of the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SwitchId(pub u32);

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sw{}", self.0)
    }
}

/// Base of the trunk-port number space (distinct from edge and virtual
/// ports).
pub const TRUNK_PORT_BASE: u32 = 900_000;

/// The physical layout: which switch hosts which edge ports, and the
/// inter-switch links.
#[derive(Debug, Clone, Default)]
pub struct FabricLayout {
    switches: BTreeMap<SwitchId, BTreeSet<u32>>,
    links: Vec<(SwitchId, SwitchId)>,
}

/// Layout construction or distribution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// An edge port was assigned to two switches.
    DuplicatePort(u32),
    /// A link referenced an unknown switch.
    UnknownSwitch(SwitchId),
    /// The inter-switch graph is not connected.
    Disconnected(SwitchId, SwitchId),
    /// A rule referenced an edge port no switch hosts.
    UnhomedPort(u32),
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::DuplicatePort(p) => write!(f, "edge port {p} assigned twice"),
            LayoutError::UnknownSwitch(s) => write!(f, "link references unknown switch {s}"),
            LayoutError::Disconnected(a, b) => write!(f, "no path between {a} and {b}"),
            LayoutError::UnhomedPort(p) => write!(f, "edge port {p} not hosted by any switch"),
        }
    }
}

impl std::error::Error for LayoutError {}

impl FabricLayout {
    /// An empty layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a switch hosting the given participant-facing edge ports.
    pub fn add_switch(
        mut self,
        id: SwitchId,
        edge_ports: impl IntoIterator<Item = u32>,
    ) -> Result<Self, LayoutError> {
        let ports: BTreeSet<u32> = edge_ports.into_iter().collect();
        for p in &ports {
            if self.switches.values().any(|s| s.contains(p)) {
                return Err(LayoutError::DuplicatePort(*p));
            }
        }
        self.switches.entry(id).or_default().extend(ports);
        Ok(self)
    }

    /// Add a bidirectional inter-switch link.
    pub fn link(mut self, a: SwitchId, b: SwitchId) -> Result<Self, LayoutError> {
        for s in [a, b] {
            if !self.switches.contains_key(&s) {
                return Err(LayoutError::UnknownSwitch(s));
            }
        }
        self.links.push((a, b));
        Ok(self)
    }

    /// The home switch of an edge port.
    pub fn home(&self, port: u32) -> Option<SwitchId> {
        self.switches
            .iter()
            .find(|(_, ports)| ports.contains(&port))
            .map(|(id, _)| *id)
    }

    /// The switches in the layout.
    pub fn switch_ids(&self) -> impl Iterator<Item = SwitchId> + '_ {
        self.switches.keys().copied()
    }

    /// BFS next-hop table: for each (from, to) pair, the neighbor to take.
    fn next_hops(&self) -> Result<BTreeMap<(SwitchId, SwitchId), SwitchId>, LayoutError> {
        let mut adj: BTreeMap<SwitchId, Vec<SwitchId>> = BTreeMap::new();
        for (a, b) in &self.links {
            adj.entry(*a).or_default().push(*b);
            adj.entry(*b).or_default().push(*a);
        }
        let mut table = BTreeMap::new();
        for &src in self.switches.keys() {
            // BFS from src, recording each node's parent.
            let mut parent: BTreeMap<SwitchId, SwitchId> = BTreeMap::new();
            let mut queue = VecDeque::from([src]);
            let mut seen = BTreeSet::from([src]);
            while let Some(u) = queue.pop_front() {
                for &v in adj.get(&u).map(|v| v.as_slice()).unwrap_or(&[]) {
                    if seen.insert(v) {
                        parent.insert(v, u);
                        queue.push_back(v);
                    }
                }
            }
            for &dst in self.switches.keys() {
                if dst == src {
                    continue;
                }
                if !seen.contains(&dst) {
                    return Err(LayoutError::Disconnected(src, dst));
                }
                // Walk back from dst to find the first hop out of src.
                let mut hop = dst;
                while parent[&hop] != src {
                    hop = parent[&hop];
                }
                table.insert((src, dst), hop);
            }
        }
        Ok(table)
    }
}

/// A fabric of interconnected physical switches running the distributed
/// policy.
#[derive(Debug)]
pub struct MultiSwitchFabric {
    switches: BTreeMap<SwitchId, SoftSwitch>,
    layout: FabricLayout,
    /// Trunk egress port on `from` leading towards neighbor `to`.
    trunk_port: BTreeMap<(SwitchId, SwitchId), u32>,
    /// Which (switch, neighbor) a trunk *ingress* port belongs to.
    trunk_ingress: BTreeMap<u32, SwitchId>,
    /// Per-rule statistics: rules installed per switch.
    rules_per_switch: BTreeMap<SwitchId, usize>,
}

/// Distribute a compiled single-switch classifier over a physical layout.
///
/// Every edge port referenced by a rule's match or actions must be homed by
/// some switch.
pub fn distribute(
    fabric: &Classifier,
    layout: &FabricLayout,
) -> Result<MultiSwitchFabric, LayoutError> {
    let next_hops = layout.next_hops()?;

    // Allocate trunk ports: one per directed link actually used (adjacent
    // pairs from the next-hop table).
    let mut trunk_port: BTreeMap<(SwitchId, SwitchId), u32> = BTreeMap::new();
    let mut trunk_ingress: BTreeMap<u32, SwitchId> = BTreeMap::new();
    let mut next_trunk = TRUNK_PORT_BASE;
    let mut directed: BTreeSet<(SwitchId, SwitchId)> = BTreeSet::new();
    for (a, b) in &layout.links {
        directed.insert((*a, *b));
        directed.insert((*b, *a));
    }
    for (from, to) in directed {
        trunk_port.insert((from, to), next_trunk);
        // The same port number is the ingress on `to`.
        trunk_ingress.insert(next_trunk, to);
        next_trunk += 1;
    }

    let mut switches: BTreeMap<SwitchId, SoftSwitch> = layout
        .switch_ids()
        .map(|id| {
            let mut ports: BTreeSet<u32> = layout.switches[&id].clone();
            for ((from, to), port) in &trunk_port {
                if *from == id || *to == id {
                    ports.insert(*port);
                }
            }
            (id, SoftSwitch::new(ports))
        })
        .collect();

    let n = fabric.len() as u32;
    let mut rules_per_switch: BTreeMap<SwitchId, usize> = BTreeMap::new();
    let mut install =
        |switches: &mut BTreeMap<SwitchId, SoftSwitch>, sw: SwitchId, rule: FlowRule| {
            switches
                .get_mut(&sw)
                .expect("switch exists")
                .install_rule(rule);
            *rules_per_switch.entry(sw).or_default() += 1;
        };

    for (i, rule) in fabric.rules().iter().enumerate() {
        let priority = n - i as u32;
        // Which switches does this rule live on?
        let (homes, unconstrained): (Vec<SwitchId>, bool) = match rule.match_.get(Field::Port) {
            Some(Pattern::Exact(p)) => {
                let port = *p as u32;
                (
                    vec![layout.home(port).ok_or(LayoutError::UnhomedPort(port))?],
                    false,
                )
            }
            _ => (layout.switch_ids().collect(), true),
        };
        // Does the transformed frame still match this rule after its action
        // runs? If so (and the rule is replicated everywhere), trunked
        // frames re-match downstream and no continuation rules are needed.
        let self_continuing = |action: &Action| {
            rule.match_.iter().all(|(f, pat)| {
                *f == Field::Port || action.get(*f).map(|v| pat.matches(v)).unwrap_or(true)
            })
        };
        for &sw in &homes {
            // Rewrite remote egresses to the trunk toward the owner.
            let mut actions: Vec<Action> = Vec::with_capacity(rule.actions.len());
            for action in &rule.actions {
                let Some(egress) = action.get(Field::Port) else {
                    actions.push(action.clone());
                    continue;
                };
                let egress = egress as u32;
                let owner = layout
                    .home(egress)
                    .ok_or(LayoutError::UnhomedPort(egress))?;
                if owner == sw {
                    actions.push(action.clone());
                    continue;
                }
                let hop = next_hops[&(sw, owner)];
                actions.push(action.clone().with(Field::Port, trunk_port[&(sw, hop)]));

                // Continuation rules along the path: a frame this action
                // trunked away must keep progressing at each hop, matched by
                // the action's field assignments (the flow's post-rewrite
                // identity) on the incoming trunk port.
                if unconstrained && self_continuing(action) {
                    continue; // the replicated rule itself carries the frame
                }
                let mut here = sw;
                loop {
                    let next = next_hops[&(here, owner)];
                    let in_port = trunk_port[&(here, next)];
                    // Build the continuation match: post-action field
                    // values, plus untouched match constraints, pinned to
                    // the trunk ingress.
                    let mut m = sdx_policy::Match::on(Field::Port, Pattern::Exact(in_port as u64));
                    for (f, v) in action.iter() {
                        if *f == Field::Port {
                            continue;
                        }
                        m = m.and(*f, Pattern::Exact(*v)).expect("exact constraints");
                    }
                    for (f, pat) in rule.match_.iter() {
                        if *f == Field::Port || action.get(*f).is_some() {
                            continue;
                        }
                        // Exact action/match constraints never contradict
                        // (the action's assignment satisfied the pattern or
                        // the field was untouched), so this always narrows.
                        m = m
                            .and(*f, *pat)
                            .expect("consistent continuation constraints");
                    }
                    let continued = if next == owner {
                        action.clone() // final hop: deliver at the edge port
                    } else {
                        let hop2 = next_hops[&(next, owner)];
                        action.clone().with(Field::Port, trunk_port[&(next, hop2)])
                    };
                    install(
                        &mut switches,
                        next,
                        FlowRule::new(priority, m, vec![continued]).with_cookie(2),
                    );
                    if next == owner {
                        break;
                    }
                    here = next;
                }
            }
            install(
                &mut switches,
                sw,
                FlowRule::new(priority, rule.match_.clone(), actions).with_cookie(1),
            );
        }
    }

    Ok(MultiSwitchFabric {
        switches,
        layout: layout.clone(),
        trunk_port,
        trunk_ingress,
        rules_per_switch,
    })
}

impl MultiSwitchFabric {
    /// Rules installed on each switch (the paper's per-switch table-size
    /// concern).
    pub fn rules_per_switch(&self) -> &BTreeMap<SwitchId, usize> {
        &self.rules_per_switch
    }

    /// Process a frame entering the fabric at an edge port. Returns the
    /// edge-port deliveries after traversing however many switches the
    /// distributed rules require. Hops are bounded by the switch count.
    pub fn process(&mut self, frame: &Packet) -> Vec<(u32, Packet)> {
        let Some(ingress) = frame.port() else {
            return Vec::new();
        };
        let Some(start) = self.layout.home(ingress) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let budget = self.switches.len() + 1;
        let mut queue: VecDeque<(SwitchId, Packet, usize)> =
            VecDeque::from([(start, frame.clone(), budget)]);
        while let Some((sw, pkt, hops)) = queue.pop_front() {
            if hops == 0 {
                continue; // hop budget exhausted (defensive; unreachable for shortest-path trunks)
            }
            let emitted = self
                .switches
                .get_mut(&sw)
                .expect("switch exists")
                .process(&pkt);
            for (port, emitted_pkt) in emitted {
                match self.trunk_ingress.get(&port) {
                    // The frame crossed a trunk: continue on the far switch,
                    // arriving on the same (shared) trunk port number.
                    Some(far) => queue.push_back((*far, emitted_pkt, hops - 1)),
                    None => out.push((port, emitted_pkt)),
                }
            }
        }
        out
    }

    /// The trunk port leading from `from` towards neighbor `to`, if linked.
    pub fn trunk(&self, from: SwitchId, to: SwitchId) -> Option<u32> {
        self.trunk_port.get(&(from, to)).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_policy::{fwd, match_, Field};

    fn layout_line() -> FabricLayout {
        FabricLayout::new()
            .add_switch(SwitchId(1), [1, 2])
            .unwrap()
            .add_switch(SwitchId(2), [3])
            .unwrap()
            .add_switch(SwitchId(3), [4])
            .unwrap()
            .link(SwitchId(1), SwitchId(2))
            .unwrap()
            .link(SwitchId(2), SwitchId(3))
            .unwrap()
    }

    #[test]
    fn layout_validation() {
        assert_eq!(
            FabricLayout::new()
                .add_switch(SwitchId(1), [1])
                .unwrap()
                .add_switch(SwitchId(2), [1])
                .unwrap_err(),
            LayoutError::DuplicatePort(1)
        );
        assert_eq!(
            FabricLayout::new()
                .add_switch(SwitchId(1), [1])
                .unwrap()
                .link(SwitchId(1), SwitchId(9))
                .unwrap_err(),
            LayoutError::UnknownSwitch(SwitchId(9))
        );
        // Disconnected layouts are rejected at distribution time.
        let disconnected = FabricLayout::new()
            .add_switch(SwitchId(1), [1])
            .unwrap()
            .add_switch(SwitchId(2), [2])
            .unwrap();
        let classifier = (match_(Field::Port, 1u32) >> fwd(2)).compile();
        assert!(matches!(
            distribute(&classifier, &disconnected),
            Err(LayoutError::Disconnected(..))
        ));
    }

    #[test]
    fn local_rule_stays_on_one_switch() {
        let classifier = (match_(Field::Port, 1u32) >> fwd(2)).compile();
        let fabric = distribute(&classifier, &layout_line()).unwrap();
        // The port-constrained rule lives only on sw1; the catch-all drop is
        // unconstrained and goes everywhere.
        assert_eq!(fabric.rules_per_switch()[&SwitchId(1)], 2);
        assert_eq!(fabric.rules_per_switch()[&SwitchId(2)], 1);
    }

    #[test]
    fn cross_switch_delivery_traverses_trunks() {
        // Port 1 (sw1) forwards to port 4 (sw3), two hops away.
        let classifier = (match_(Field::Port, 1u32) >> fwd(4)).compile();
        let mut fabric = distribute(&classifier, &layout_line()).unwrap();
        let pkt = Packet::new()
            .with(Field::Port, 1u32)
            .with(Field::DstPort, 80u16);
        let out = fabric.process(&pkt);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].0, 4);
    }

    #[test]
    fn unconstrained_rule_replicates_and_converges() {
        // A MAC-style rule with no port constraint: any ingress delivers to
        // port 4 on sw3.
        let classifier = (match_(Field::DstMac, 0xbeefu64) >> fwd(4)).compile();
        let mut fabric = distribute(&classifier, &layout_line()).unwrap();
        for ingress in [1u32, 2, 3] {
            let pkt = Packet::new()
                .with(Field::Port, ingress)
                .with(Field::DstMac, 0xbeefu64);
            let out = fabric.process(&pkt);
            assert_eq!(out.len(), 1, "from {ingress}");
            assert_eq!(out[0].0, 4, "from {ingress}");
        }
        // Rule present on every switch.
        for sw in [1u32, 2, 3] {
            assert!(fabric.rules_per_switch()[&SwitchId(sw)] >= 1);
        }
    }

    #[test]
    fn drops_are_dropped_everywhere() {
        let classifier = (match_(Field::Port, 1u32) >> fwd(2)).compile();
        let mut fabric = distribute(&classifier, &layout_line()).unwrap();
        // Port 3 traffic matches only the catch-all drop.
        let pkt = Packet::new().with(Field::Port, 3u32);
        assert!(fabric.process(&pkt).is_empty());
    }

    #[test]
    fn unknown_edge_port_rejected() {
        let classifier = (match_(Field::Port, 77u32) >> fwd(2)).compile();
        assert_eq!(
            distribute(&classifier, &layout_line()).unwrap_err(),
            LayoutError::UnhomedPort(77)
        );
    }

    #[test]
    fn multicast_spans_switches() {
        let classifier = (match_(Field::Port, 1u32) >> (fwd(2) + fwd(4))).compile();
        let mut fabric = distribute(&classifier, &layout_line()).unwrap();
        let pkt = Packet::new().with(Field::Port, 1u32);
        let mut egress: Vec<u32> = fabric.process(&pkt).into_iter().map(|(p, _)| p).collect();
        egress.sort_unstable();
        assert_eq!(egress, vec![2, 4]);
    }
}
