//! The wire-facing control plane: BGP sessions between participant border
//! routers and the SDX route server, carried over the in-memory transport.
//!
//! This is the deployment glue of §5.1 — participants "interact with the
//! SDX route server in the same way that they do with a conventional route
//! server": they open an ordinary BGP session, send UPDATEs, and receive
//! re-advertisements whose next hops the SDX has substituted with virtual
//! next hops.

use std::collections::BTreeMap;

use sdx_bgp::session::{pipe, Endpoint, Session, SessionAction, SessionConfig, SessionEvent};
use sdx_bgp::wire::Message;
use sdx_bgp::{Asn, RouterId, Update};
use sdx_ip::Prefix;

use crate::{ParticipantId, SdxRuntime};

/// The route server's AS number on its sessions.
pub const ROUTE_SERVER_ASN: Asn = Asn(64_512);

/// The SDX control plane: the runtime plus one BGP session per connected
/// participant.
#[derive(Debug)]
pub struct ControlPlane {
    runtime: SdxRuntime,
    sessions: BTreeMap<ParticipantId, PeerSession>,
}

#[derive(Debug)]
struct PeerSession {
    session: Session,
    endpoint: Endpoint,
    established: bool,
}

impl ControlPlane {
    /// Wrap a configured runtime.
    pub fn new(runtime: SdxRuntime) -> Self {
        ControlPlane {
            runtime,
            sessions: BTreeMap::new(),
        }
    }

    /// The wrapped runtime.
    pub fn runtime(&self) -> &SdxRuntime {
        &self.runtime
    }

    /// Mutable access to the runtime (policy changes etc.).
    pub fn runtime_mut(&mut self) -> &mut SdxRuntime {
        &mut self.runtime
    }

    /// Open a BGP session for a registered participant. Returns the
    /// router-side transport endpoint; the caller drives its own
    /// [`Session`] over it. The server side starts immediately.
    pub fn connect(&mut self, id: ParticipantId) -> Endpoint {
        let (server_end, router_end) = pipe();
        let mut session = Session::new(SessionConfig {
            asn: ROUTE_SERVER_ASN,
            router_id: RouterId(0),
            hold_time: 90,
        });
        // Bring the server side up to OpenSent.
        let mut actions = session.handle(SessionEvent::ManualStart);
        actions.extend(session.handle(SessionEvent::TransportUp));
        for action in actions {
            if let SessionAction::Send(msg) = action {
                server_end.send(&msg);
            }
        }
        self.sessions.insert(
            id,
            PeerSession {
                session,
                endpoint: server_end,
                established: false,
            },
        );
        router_end
    }

    /// Is a participant's session established?
    pub fn is_established(&self, id: ParticipantId) -> bool {
        self.sessions
            .get(&id)
            .map(|p| p.established)
            .unwrap_or(false)
    }

    /// Drain every session: advance FSMs, feed delivered UPDATEs into the
    /// runtime (which runs the fast path), and re-advertise touched prefixes
    /// to every other established peer. Returns the number of UPDATEs
    /// applied. Call repeatedly until it returns 0 to reach quiescence.
    pub fn pump(&mut self) -> usize {
        let mut applied = 0;
        let ids: Vec<ParticipantId> = self.sessions.keys().copied().collect();
        for id in ids {
            // Collect this peer's deliverable updates first.
            let mut delivered: Vec<Update> = Vec::new();
            let mut came_up = false;
            {
                let peer = self.sessions.get_mut(&id).expect("session exists");
                while let Ok(Some(msg)) = peer.endpoint.recv() {
                    for action in peer.session.handle(SessionEvent::Message(msg)) {
                        match action {
                            SessionAction::Send(out) => {
                                peer.endpoint.send(&out);
                            }
                            SessionAction::Established => {
                                peer.established = true;
                                came_up = true;
                            }
                            SessionAction::Deliver(update) => delivered.push(update),
                            SessionAction::Closed(_) => {
                                peer.established = false;
                            }
                        }
                    }
                }
            }
            // A freshly established peer gets the full table (the initial
            // RIB dump a conventional route server performs).
            if came_up {
                self.dump_table_to(id);
            }
            for update in delivered {
                applied += 1;
                let touched = self.runtime.apply_update(id, &update);
                self.readvertise(&touched, Some(id));
            }
        }
        applied
    }

    /// Send the current best-route table (with VNH substitution) to one
    /// peer.
    fn dump_table_to(&mut self, id: ParticipantId) {
        let prefixes = self.runtime.route_server().all_prefixes();
        self.send_advertisements(id, &prefixes);
    }

    /// Re-advertise the given prefixes to every established peer (except
    /// `skip`, the sender).
    fn readvertise(&mut self, prefixes: &[Prefix], skip: Option<ParticipantId>) {
        let ids: Vec<ParticipantId> = self
            .sessions
            .iter()
            .filter(|(id, p)| p.established && Some(**id) != skip)
            .map(|(id, _)| *id)
            .collect();
        for id in ids {
            self.send_advertisements(id, prefixes);
        }
    }

    /// Send advertisements (or withdrawals) for `prefixes` to one peer.
    fn send_advertisements(&mut self, id: ParticipantId, prefixes: &[Prefix]) {
        let mut messages = Vec::new();
        for prefix in prefixes {
            match self.runtime.advertisement(prefix, id) {
                Some(update) => messages.push(Message::Update(update)),
                // No visible route: withdraw.
                None => messages.push(Message::Update(Update::withdraw([*prefix]))),
            }
        }
        if let Some(peer) = self.sessions.get_mut(&id) {
            if peer.established {
                for msg in &messages {
                    peer.endpoint.send(msg);
                }
            }
        }
    }

    /// Compile the runtime and push refreshed advertisements for every
    /// prefix to every established peer (VNH assignments may have changed).
    pub fn compile_and_advertise(&mut self) -> Result<crate::CompileStats, crate::CompileError> {
        let stats = self.runtime.compile()?;
        let prefixes = self.runtime.route_server().all_prefixes();
        self.readvertise(&prefixes, None);
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Participant, PortConfig};
    use sdx_bgp::{AsPath, PathAttributes, SessionState};
    use std::net::Ipv4Addr;

    struct Router {
        session: Session,
        endpoint: Endpoint,
        received: Vec<Update>,
    }

    impl Router {
        fn new(asn: u32, endpoint: Endpoint) -> Self {
            Router {
                session: Session::new(SessionConfig {
                    asn: Asn(asn),
                    router_id: RouterId(asn),
                    hold_time: 90,
                }),
                endpoint,
                received: Vec::new(),
            }
        }

        fn start(&mut self) {
            let mut actions = self.session.handle(SessionEvent::ManualStart);
            actions.extend(self.session.handle(SessionEvent::TransportUp));
            self.run_actions(actions);
        }

        fn run_actions(&mut self, actions: Vec<SessionAction>) {
            for action in actions {
                match action {
                    SessionAction::Send(msg) => {
                        self.endpoint.send(&msg);
                    }
                    SessionAction::Deliver(update) => self.received.push(update),
                    _ => {}
                }
            }
        }

        fn pump(&mut self) {
            while let Ok(Some(msg)) = self.endpoint.recv() {
                let actions = self.session.handle(SessionEvent::Message(msg));
                self.run_actions(actions);
            }
        }

        fn announce(&mut self, update: Update) {
            self.endpoint.send(&Message::Update(update));
        }
    }

    fn participant(i: u32) -> Participant {
        Participant::new(
            ParticipantId(i),
            Asn(65_000 + i),
            vec![PortConfig {
                port: i,
                mac: sdx_ip::MacAddr::from_u64(i as u64),
                ip: Ipv4Addr::from(0x0afe_0000 + i),
            }],
        )
    }

    fn converge(cp: &mut ControlPlane, routers: &mut [&mut Router]) {
        // Handshake messages don't surface as deliveries, so run a fixed
        // number of pump rounds (each round is a full message exchange).
        for _ in 0..10 {
            cp.pump();
            for r in routers.iter_mut() {
                r.pump();
            }
        }
    }

    #[test]
    fn sessions_establish_and_updates_flow() {
        let mut runtime = SdxRuntime::default();
        runtime.add_participant(participant(1));
        runtime.add_participant(participant(2));
        let mut cp = ControlPlane::new(runtime);

        let mut r1 = Router::new(65_001, cp.connect(ParticipantId(1)));
        let mut r2 = Router::new(65_002, cp.connect(ParticipantId(2)));
        r1.start();
        r2.start();
        converge(&mut cp, &mut [&mut r1, &mut r2]);

        assert_eq!(r1.session.state(), SessionState::Established);
        assert!(cp.is_established(ParticipantId(1)));
        assert!(cp.is_established(ParticipantId(2)));

        // Router 2 announces a prefix over the wire.
        r2.announce(Update::announce(
            ["20.0.0.0/8".parse().unwrap()],
            PathAttributes::new(AsPath::sequence([65_002]), Ipv4Addr::from(0x0afe_0002)),
        ));
        converge(&mut cp, &mut [&mut r1, &mut r2]);

        // The route server learned it…
        assert_eq!(cp.runtime().route_server().prefix_count(), 1);
        // …and re-advertised it to router 1 (not back to router 2).
        assert_eq!(r1.received.len(), 1);
        assert_eq!(r1.received[0].announce, vec!["20.0.0.0/8".parse().unwrap()]);
        assert!(r2.received.is_empty());
    }

    #[test]
    fn compiled_vnh_appears_on_the_wire() {
        let mut runtime = SdxRuntime::default();
        runtime.add_participant(participant(1));
        runtime.add_participant(participant(2));
        let mut cp = ControlPlane::new(runtime);
        let mut r1 = Router::new(65_001, cp.connect(ParticipantId(1)));
        let mut r2 = Router::new(65_002, cp.connect(ParticipantId(2)));
        r1.start();
        r2.start();
        converge(&mut cp, &mut [&mut r1, &mut r2]);

        r2.announce(Update::announce(
            ["20.0.0.0/8".parse().unwrap()],
            PathAttributes::new(AsPath::sequence([65_002]), Ipv4Addr::from(0x0afe_0002)),
        ));
        converge(&mut cp, &mut [&mut r1, &mut r2]);
        // Participant 1 installs a policy towards 2, putting 20/8 in a FEC.
        cp.runtime_mut().set_policy(
            ParticipantId(1),
            crate::ParticipantPolicy::new().outbound(crate::Clause::fwd(
                sdx_policy::Predicate::test(sdx_policy::Field::DstPort, 80u16),
                ParticipantId(2),
            )),
        );
        r1.received.clear();
        cp.compile_and_advertise().unwrap();
        converge(&mut cp, &mut [&mut r1, &mut r2]);

        // The refreshed advertisement to router 1 carries a VNH next hop.
        let nh = r1.received.last().unwrap().attrs.as_ref().unwrap().next_hop;
        assert!(
            "172.16.0.0/12"
                .parse::<sdx_ip::Prefix>()
                .unwrap()
                .contains_addr(nh),
            "next hop {nh} is not a VNH"
        );
    }

    #[test]
    fn withdrawal_propagates_as_withdrawal() {
        let mut runtime = SdxRuntime::default();
        runtime.add_participant(participant(1));
        runtime.add_participant(participant(2));
        let mut cp = ControlPlane::new(runtime);
        let mut r1 = Router::new(65_001, cp.connect(ParticipantId(1)));
        let mut r2 = Router::new(65_002, cp.connect(ParticipantId(2)));
        r1.start();
        r2.start();
        converge(&mut cp, &mut [&mut r1, &mut r2]);

        r2.announce(Update::announce(
            ["20.0.0.0/8".parse().unwrap()],
            PathAttributes::new(AsPath::sequence([65_002]), Ipv4Addr::from(0x0afe_0002)),
        ));
        converge(&mut cp, &mut [&mut r1, &mut r2]);
        r1.received.clear();

        r2.announce(Update::withdraw(["20.0.0.0/8".parse().unwrap()]));
        converge(&mut cp, &mut [&mut r1, &mut r2]);
        assert_eq!(r1.received.len(), 1);
        assert_eq!(r1.received[0].withdraw, vec!["20.0.0.0/8".parse().unwrap()]);
        assert!(r1.received[0].announce.is_empty());
    }

    #[test]
    fn late_joiner_gets_full_table_dump() {
        let mut runtime = SdxRuntime::default();
        runtime.add_participant(participant(1));
        runtime.add_participant(participant(2));
        let mut cp = ControlPlane::new(runtime);
        let mut r2 = Router::new(65_002, cp.connect(ParticipantId(2)));
        r2.start();
        converge(&mut cp, &mut [&mut r2]);
        r2.announce(Update::announce(
            ["20.0.0.0/8".parse().unwrap()],
            PathAttributes::new(AsPath::sequence([65_002]), Ipv4Addr::from(0x0afe_0002)),
        ));
        converge(&mut cp, &mut [&mut r2]);

        // Router 1 connects afterwards and receives the existing table.
        let mut r1 = Router::new(65_001, cp.connect(ParticipantId(1)));
        r1.start();
        converge(&mut cp, &mut [&mut r1, &mut r2]);
        assert_eq!(r1.received.len(), 1);
        assert_eq!(r1.received[0].announce, vec!["20.0.0.0/8".parse().unwrap()]);
    }
}
