//! The SDX controller — a software defined Internet exchange point, after
//! Gupta et al., *SDX: A Software Defined Internet Exchange* (SIGCOMM 2014).
//!
//! Participants write [`ParticipantPolicy`] clauses against their own
//! *virtual switch*; the controller joins them with BGP state from the
//! integrated route server, groups prefixes into forwarding equivalence
//! classes, assigns virtual next hops, and compiles everything into one
//! fabric flow table — with a sub-second incremental fast path for BGP
//! updates.
//!
//! ```
//! use sdx_core::{Clause, Participant, ParticipantId, ParticipantPolicy, PortConfig, SdxRuntime};
//! use sdx_bgp::{AsPath, Asn, PathAttributes};
//! use sdx_policy::{match_, Field};
//! use std::net::Ipv4Addr;
//!
//! let mut sdx = SdxRuntime::default();
//! let a = ParticipantId(1);
//! let b = ParticipantId(2);
//! sdx.add_participant(Participant::new(a, Asn(65001), vec![PortConfig {
//!     port: 1, mac: "02:0a:00:00:00:01".parse().unwrap(), ip: Ipv4Addr::new(172, 0, 0, 1),
//! }]));
//! sdx.add_participant(Participant::new(b, Asn(65002), vec![PortConfig {
//!     port: 2, mac: "02:0b:00:00:00:01".parse().unwrap(), ip: Ipv4Addr::new(172, 0, 0, 2),
//! }]));
//! sdx.announce(b, ["20.0.0.0/8".parse().unwrap()],
//!     PathAttributes::new(AsPath::sequence([65002]), Ipv4Addr::new(172, 0, 0, 2)));
//! // Application-specific peering: A sends web traffic via B.
//! sdx.set_policy(a, ParticipantPolicy::new()
//!     .outbound(Clause::fwd(match_(Field::DstPort, 80u16), b)));
//! let stats = sdx.compile().unwrap();
//! assert!(stats.rules > 0);
//! ```

pub mod analysis;
mod clause;
pub mod compile;
pub mod control;
pub mod fec;
pub mod multiswitch;
mod participant;
mod runtime;
mod sim;
pub mod verify;
mod vnh;

pub use clause::{Clause, Dest, ParticipantPolicy};
pub use compile::{
    Compilation, CompileError, CompileInput, CompileOptions, CompileStats, MemoCache, StageTimes,
};
pub use control::{ControlPlane, ROUTE_SERVER_ASN};
pub use fec::{minimum_disjoint_subsets, minimum_disjoint_subsets_par, DefaultView, PrefixGroup};
pub use multiswitch::{distribute, FabricLayout, LayoutError, MultiSwitchFabric, SwitchId};
pub use participant::{is_vport, Participant, ParticipantId, PortConfig, VPORT_BASE};
pub use runtime::{DeltaInstall, DeltaRecord, IncrementalStats, Overlay, SdxRuntime};
pub use sdx_analyze::{
    diff, hs, reach, Analysis, AnalysisMode, Diagnostic, DiffReport, DiffSide, FibEntry, FibModel,
    GroupBinding, ReachReport, Severity, VerifyInput,
};
pub use sdx_plan::{
    DeltaReport, DeltaVerdict, IncStats, PlanReport, PlanStep, Schedule, Violation, ViolationKind,
};
pub use sim::{Delivery, FabricSim};
pub use vnh::VnhAllocator;
