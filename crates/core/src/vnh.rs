//! Virtual next-hop (VNH) and virtual MAC (VMAC) allocation (§4.2).
//!
//! Each forwarding equivalence class receives one VNH — an IP address on the
//! IXP peering LAN that no router actually owns — and one VMAC. The route
//! server advertises the VNH as the BGP next hop; border routers ARP for it;
//! the SDX ARP responder answers with the VMAC; and packets consequently
//! enter the fabric tagged with their FEC.

use std::net::Ipv4Addr;

use sdx_ip::{MacAddr, Prefix};

/// Allocates (VNH, VMAC) pairs from a dedicated subnet of the peering LAN.
#[derive(Debug, Clone)]
pub struct VnhAllocator {
    pool: Prefix,
    next: u32,
}

impl VnhAllocator {
    /// Allocate out of `pool` (e.g. `172.16.0.0/12`). The network address
    /// itself is never handed out.
    pub fn new(pool: Prefix) -> Self {
        VnhAllocator { pool, next: 1 }
    }

    /// The conventional SDX VNH pool.
    pub fn default_pool() -> Self {
        Self::new("172.16.0.0/12".parse().expect("valid pool"))
    }

    /// Number of pairs handed out so far.
    pub fn allocated(&self) -> u32 {
        self.next - 1
    }

    /// Remaining capacity.
    pub fn remaining(&self) -> u64 {
        self.pool.size().saturating_sub(self.next as u64)
    }

    /// Allocate the next (VNH, VMAC) pair. Returns `None` when the pool is
    /// exhausted.
    pub fn allocate(&mut self) -> Option<(Ipv4Addr, MacAddr)> {
        if (self.next as u64) >= self.pool.size() {
            return None;
        }
        let ip = Ipv4Addr::from(self.pool.bits() | self.next);
        let mac = MacAddr::vmac(self.next as u64);
        self.next += 1;
        Some((ip, mac))
    }

    /// Reset, releasing every allocation (used by full recompilation, which
    /// reassigns VNHs from scratch).
    pub fn reset(&mut self) {
        self.next = 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_distinct_and_in_pool() {
        let mut a = VnhAllocator::default_pool();
        let mut seen_ip = std::collections::BTreeSet::new();
        let mut seen_mac = std::collections::BTreeSet::new();
        for _ in 0..100 {
            let (ip, mac) = a.allocate().unwrap();
            assert!(a.pool.contains_addr(ip), "{ip} outside pool");
            assert!(seen_ip.insert(ip));
            assert!(seen_mac.insert(mac));
        }
        assert_eq!(a.allocated(), 100);
    }

    #[test]
    fn pool_exhaustion() {
        let mut a = VnhAllocator::new("10.0.0.0/30".parse().unwrap());
        assert!(a.allocate().is_some()); // .1
        assert!(a.allocate().is_some()); // .2
        assert!(a.allocate().is_some()); // .3
        assert!(a.allocate().is_none()); // exhausted
        assert_eq!(a.remaining(), 0);
    }

    #[test]
    fn reset_releases() {
        let mut a = VnhAllocator::default_pool();
        let first = a.allocate().unwrap();
        a.reset();
        assert_eq!(a.allocate().unwrap(), first);
    }

    #[test]
    fn vmacs_are_locally_administered() {
        let mut a = VnhAllocator::default_pool();
        let (_, mac) = a.allocate().unwrap();
        assert!(mac.is_local());
    }
}
