//! End-to-end tests of the SDX controller against the paper's running
//! example (Figures 1a/1b): application-specific peering at AS A, inbound
//! traffic engineering at AS B, selective export of p4, default forwarding
//! via VMAC tags, and the incremental fast path.

use std::net::Ipv4Addr;

use sdx_bgp::{AsPath, Asn, ExportPolicy, PathAttributes};
use sdx_core::{
    Clause, CompileOptions, FabricSim, Participant, ParticipantId, ParticipantPolicy, PortConfig,
    SdxRuntime,
};
use sdx_ip::Prefix;
use sdx_policy::{match_, Field, Packet};

const A: ParticipantId = ParticipantId(1);
const B: ParticipantId = ParticipantId(2);
const C: ParticipantId = ParticipantId(3);

const A1: u32 = 1;
const B1: u32 = 2;
const B2: u32 = 3;
const C1: u32 = 4;

fn p(s: &str) -> Prefix {
    s.parse().unwrap()
}

fn port(n: u32, last: u8) -> PortConfig {
    PortConfig {
        port: n,
        mac: sdx_ip::MacAddr::from_u64(0x0a00_0000_0000 + n as u64),
        ip: Ipv4Addr::new(172, 0, 0, last),
    }
}

fn attrs(path: &[u32], nh: Ipv4Addr) -> PathAttributes {
    PathAttributes::new(AsPath::sequence(path.iter().copied()), nh)
}

/// Build the Figure 1 exchange: A (one port), B (two ports), C (one port).
/// B announces p1..p4 but does not export p4 to A; C announces everything,
/// with shorter paths for p1/p2/p4 (so C is their default next hop) and a
/// longer path for p3 (so B is p3's default).
fn figure1(options: CompileOptions) -> SdxRuntime {
    let mut sdx = SdxRuntime::new(options);
    sdx.add_participant(Participant::new(A, Asn(100), vec![port(A1, 11)]));
    sdx.add_participant(Participant::new(
        B,
        Asn(200),
        vec![port(B1, 21), port(B2, 22)],
    ));
    sdx.add_participant(Participant::new(C, Asn(300), vec![port(C1, 31)]));

    let b_nh = Ipv4Addr::new(172, 0, 0, 21);
    let c_nh = Ipv4Addr::new(172, 0, 0, 31);

    sdx.announce(
        B,
        [p("11.0.0.0/8"), p("12.0.0.0/8"), p("14.0.0.0/8")],
        attrs(&[200, 65001], b_nh),
    );
    sdx.announce(B, [p("13.0.0.0/8")], attrs(&[200], b_nh));
    sdx.set_export_policy(
        B,
        ExportPolicy::export_all().deny_prefix_to(p("14.0.0.0/8"), A.peer()),
    );

    sdx.announce(
        C,
        [p("11.0.0.0/8"), p("12.0.0.0/8"), p("14.0.0.0/8")],
        attrs(&[300], c_nh),
    );
    sdx.announce(C, [p("13.0.0.0/8")], attrs(&[300, 500, 65001], c_nh));

    // A's outbound policy (Figure 1a): web via B, HTTPS via C.
    sdx.set_policy(
        A,
        ParticipantPolicy::new()
            .outbound(Clause::fwd(match_(Field::DstPort, 80u16), B))
            .outbound(Clause::fwd(match_(Field::DstPort, 443u16), C)),
    );
    // B's inbound traffic engineering: low source halves to B1, high to B2.
    sdx.set_policy(
        B,
        ParticipantPolicy::new()
            .inbound(Clause::to_port(
                sdx_policy::match_prefix(Field::SrcIp, p("0.0.0.0/1")),
                B1,
            ))
            .inbound(Clause::to_port(
                sdx_policy::match_prefix(Field::SrcIp, p("128.0.0.0/1")),
                B2,
            )),
    );
    sdx
}

fn sim(options: CompileOptions) -> FabricSim {
    let mut sdx = figure1(options);
    sdx.compile().unwrap();
    let mut sim = FabricSim::new(sdx);
    sim.sync();
    sim
}

fn pkt(src: &str, dst: &str, dport: u16) -> Packet {
    Packet::new()
        .with(Field::EthType, 0x0800u16)
        .with(Field::IpProto, 6u8)
        .with(Field::SrcIp, src.parse::<Ipv4Addr>().unwrap())
        .with(Field::DstIp, dst.parse::<Ipv4Addr>().unwrap())
        .with(Field::SrcPort, 50_000u16)
        .with(Field::DstPort, dport)
}

#[test]
fn fec_groups_match_paper_section_4_2() {
    let mut sdx = figure1(CompileOptions::default());
    sdx.compile().unwrap();
    let c = sdx.compilation().unwrap();
    // C' = {{p1, p2}, {p3}, {p4}}
    assert_eq!(c.groups.len(), 3, "groups: {:?}", c.groups);
    let of = |s: &str| c.group_of(&p(s)).unwrap();
    assert_eq!(of("11.0.0.0/8"), of("12.0.0.0/8"));
    assert_ne!(of("11.0.0.0/8"), of("13.0.0.0/8"));
    assert_ne!(of("13.0.0.0/8"), of("14.0.0.0/8"));
}

#[test]
fn vnh_advertisements_are_pool_addresses() {
    let mut sdx = figure1(CompileOptions::default());
    sdx.compile().unwrap();
    for s in ["11.0.0.0/8", "13.0.0.0/8", "14.0.0.0/8"] {
        let nh = sdx.advertised_next_hop(&p(s), A).unwrap();
        assert!(
            p("172.16.0.0/12").contains_addr(nh),
            "{s} advertised with non-VNH next hop {nh}"
        );
        // The ARP responder resolves the VNH to the group's VMAC.
        let mac = sdx.resolve_ip(nh).unwrap();
        assert_eq!(Some(mac), sdx.compilation().unwrap().vmac_of(&p(s)));
    }
}

#[test]
fn web_traffic_diverts_via_b_with_inbound_te() {
    let mut sim = sim(CompileOptions::default());
    // Low source address → B's top port (B1).
    let out = sim.send_from(A, pkt("55.0.0.1", "11.0.0.1", 80));
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].to, B);
    assert_eq!(out[0].port, B1);
    // High source address → B2.
    let out = sim.send_from(A, pkt("200.0.0.1", "11.0.0.1", 80));
    assert_eq!(out[0].port, B2);
    // The frame is re-addressed to the receiving router's MAC.
    let mac = out[0].packet.dst_mac().unwrap();
    assert_eq!(mac, sdx_ip::MacAddr::from_u64(0x0a00_0000_0000 + B2 as u64));
}

#[test]
fn https_traffic_diverts_via_c() {
    let mut sim = sim(CompileOptions::default());
    let out = sim.send_from(A, pkt("55.0.0.1", "11.0.0.1", 443));
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].to, C);
    assert_eq!(out[0].port, C1);
}

#[test]
fn default_traffic_follows_bgp_best_route() {
    let mut sim = sim(CompileOptions::default());
    // Non-web traffic to p1 follows the default (C).
    let out = sim.send_from(A, pkt("55.0.0.1", "11.0.0.1", 22));
    assert_eq!(out[0].to, C);
    // Non-web traffic to p3 defaults to B (shorter path), where B's inbound
    // engineering still applies.
    let out = sim.send_from(A, pkt("55.0.0.1", "13.0.0.1", 22));
    assert_eq!(out[0].to, B);
    assert_eq!(out[0].port, B1);
    let out = sim.send_from(A, pkt("222.0.0.1", "13.0.0.1", 22));
    assert_eq!(out[0].port, B2);
}

#[test]
fn web_traffic_for_unexported_prefix_never_crosses_b() {
    // B does not export p4 to A, so even A's web traffic for p4 must follow
    // the default route via C ("forwarding only along BGP-advertised paths").
    let mut sim = sim(CompileOptions::default());
    let out = sim.send_from(A, pkt("55.0.0.1", "14.0.0.1", 80));
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].to, C);
}

#[test]
fn feasible_but_non_best_routes_are_usable() {
    // C is the best route for p1, yet A's policy forwards its web traffic
    // through B because B exports p1 to A.
    let mut sim = sim(CompileOptions::default());
    let out = sim.send_from(A, pkt("1.2.3.4", "12.0.0.1", 80));
    assert_eq!(out[0].to, B);
}

#[test]
fn other_participants_traffic_is_isolated_from_a_policy() {
    // Another participant's web traffic to p3 must NOT be captured by A's
    // outbound policy: it follows that participant's own default (B).
    let d = ParticipantId(6);
    let mut sdx = figure1(CompileOptions::default());
    sdx.add_participant(Participant::new(d, Asn(600), vec![port(7, 61)]));
    sdx.compile().unwrap();
    let mut sim = FabricSim::new(sdx);
    sim.sync();

    let out = sim.send_from(d, pkt("55.0.0.1", "13.0.0.1", 80));
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].to, B);

    // C announces p3 itself, so its border router keeps p3 traffic off the
    // fabric entirely (the paper's second loop-prevention invariant).
    let out = sim.send_from(C, pkt("55.0.0.1", "13.0.0.1", 80));
    assert!(out.is_empty());
}

#[test]
fn naive_mode_forwards_identically_but_with_more_rules() {
    let vnh = sim(CompileOptions::default());
    let mut naive = sim(CompileOptions {
        use_vnh: false,
        ..Default::default()
    });
    let vnh_rules = vnh.runtime().compilation().unwrap().stats.rules;
    let naive_rules = naive.runtime().compilation().unwrap().stats.rules;
    assert!(
        naive_rules >= vnh_rules,
        "naive {naive_rules} < vnh {vnh_rules}"
    );

    let cases = [
        ("55.0.0.1", "11.0.0.1", 80, B),
        ("200.0.0.1", "11.0.0.1", 80, B),
        ("55.0.0.1", "11.0.0.1", 443, C),
        ("55.0.0.1", "14.0.0.1", 80, C),
        ("55.0.0.1", "13.0.0.1", 22, B),
    ];
    for (src, dst, dport, want) in cases {
        let out = naive.send_from(A, pkt(src, dst, dport));
        assert_eq!(out.len(), 1, "{src}->{dst}:{dport}");
        assert_eq!(out[0].to, want, "{src}->{dst}:{dport}");
    }
}

#[test]
fn withdrawal_shifts_traffic_through_fast_path() {
    let mut sim = sim(CompileOptions::default());
    // Sanity: p3 default goes via B.
    assert_eq!(sim.send_from(A, pkt("55.0.0.1", "13.0.0.1", 22))[0].to, B);

    // B withdraws p3 (the Figure 5a event). The fast path installs overlay
    // rules and re-advertises a fresh VNH.
    sim.runtime_mut().withdraw(B, [p("13.0.0.0/8")]);
    assert!(!sim.runtime().overlays().is_empty());
    assert!(sim.runtime().incremental_stats().overlay_rules > 0);
    sim.sync();

    // All p3 traffic (web included — B no longer exports it) shifts to C.
    assert_eq!(sim.send_from(A, pkt("55.0.0.1", "13.0.0.1", 22))[0].to, C);
    assert_eq!(sim.send_from(A, pkt("55.0.0.1", "13.0.0.1", 80))[0].to, C);

    // Background reoptimization coalesces the overlay; behavior unchanged.
    sim.runtime_mut().reoptimize().unwrap();
    sim.sync();
    assert!(sim.runtime().overlays().is_empty());
    assert_eq!(sim.send_from(A, pkt("55.0.0.1", "13.0.0.1", 80))[0].to, C);
}

#[test]
fn announcement_shifts_traffic_back() {
    let mut sim = sim(CompileOptions::default());
    sim.runtime_mut().withdraw(B, [p("13.0.0.0/8")]);
    sim.sync();
    assert_eq!(sim.send_from(A, pkt("55.0.0.1", "13.0.0.1", 22))[0].to, C);

    // B re-announces; fast path again; default shifts back to B.
    sim.runtime_mut().announce(
        B,
        [p("13.0.0.0/8")],
        attrs(&[200], Ipv4Addr::new(172, 0, 0, 21)),
    );
    sim.sync();
    let out = sim.send_from(A, pkt("55.0.0.1", "13.0.0.1", 22));
    assert_eq!(out[0].to, B);
    // Inbound engineering applies to overlay-forwarded traffic as well.
    assert_eq!(out[0].port, B1);
}

#[test]
fn remote_participant_wide_area_load_balancer() {
    // The Figure 4b/5b scenario: a remote participant D announces an anycast
    // prefix via the SDX and rewrites request destinations by client source.
    let mut sdx = figure1(CompileOptions::default());
    let d = ParticipantId(4);
    sdx.add_participant(Participant::remote(d, Asn(400)));
    sdx.announce(
        d,
        [p("74.125.1.0/24")],
        attrs(&[400], Ipv4Addr::new(172, 0, 0, 99)),
    );
    // Instance 1 lives in p1 (via C by default), instance 2 in p3 (via B).
    sdx.set_policy(
        d,
        ParticipantPolicy::new()
            .inbound(Clause {
                match_: sdx_policy::match_prefix(Field::SrcIp, p("0.0.0.0/1")),
                dst_prefixes: Some([p("74.125.1.0/24")].into_iter().collect()),
                rewrites: vec![(
                    Field::DstIp,
                    u32::from("11.0.0.77".parse::<Ipv4Addr>().unwrap()) as u64,
                )],
                dest: sdx_core::Dest::BgpDefault,
                unfiltered: false,
            })
            .inbound(Clause {
                match_: sdx_policy::match_prefix(Field::SrcIp, p("128.0.0.0/1")),
                dst_prefixes: Some([p("74.125.1.0/24")].into_iter().collect()),
                rewrites: vec![(
                    Field::DstIp,
                    u32::from("13.0.0.88".parse::<Ipv4Addr>().unwrap()) as u64,
                )],
                dest: sdx_core::Dest::BgpDefault,
                unfiltered: false,
            }),
    );
    sdx.compile().unwrap();
    let mut sim = FabricSim::new(sdx);
    sim.sync();

    // Low-source client request → rewritten to instance 1, delivered via C.
    let out = sim.send_from(A, pkt("55.0.0.1", "74.125.1.1", 80));
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].to, C);
    assert_eq!(out[0].packet.dst_ip().unwrap().to_string(), "11.0.0.77");

    // High-source client request → instance 2 via B.
    let out = sim.send_from(A, pkt("222.0.0.1", "74.125.1.1", 80));
    assert_eq!(out[0].to, B);
    assert_eq!(out[0].packet.dst_ip().unwrap().to_string(), "13.0.0.88");
}

#[test]
fn middlebox_steering_with_unfiltered_clause() {
    // §3.2's "grouping traffic based on BGP attributes": steer traffic from
    // YouTube-originated prefixes through a middlebox port.
    let mut sdx = figure1(CompileOptions::default());
    let mb = ParticipantId(5);
    let mb_port = 9;
    sdx.add_participant(Participant::new(mb, Asn(64512), vec![port(mb_port, 90)]));

    // Find the YouTube prefixes by AS-path pattern (C's p3 route ends in
    // 65001 here; pretend 65001 is the video AS).
    let pattern: sdx_bgp::AsPathPattern = ".*65001$".parse().unwrap();
    let video_prefixes = sdx.route_server().filter_as_path(&pattern);
    assert!(!video_prefixes.is_empty());

    let mut policy = ParticipantPolicy::new();
    policy = policy.outbound(
        Clause::fwd(
            sdx_policy::Predicate::in_prefixes(Field::DstIp, video_prefixes),
            mb,
        )
        .unfiltered(),
    );
    sdx.set_policy(A, policy);
    sdx.compile().unwrap();
    let mut sim = FabricSim::new(sdx);
    sim.sync();

    // p1 was announced with a path ending in 65001 → steered to the box.
    let out = sim.send_from(A, pkt("55.0.0.1", "11.0.0.1", 80));
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].to, mb);
    assert_eq!(out[0].port, mb_port);
    // p3's best path ends in 200/… wait — 13/8 from B has path [200]; from C
    // path ends 65001, so it is video too. Use a non-video destination:
    // traffic to the middlebox participant's own announcements doesn't
    // exist, so check an address outside every announced prefix is dropped.
    let out = sim.send_from(A, pkt("55.0.0.1", "99.0.0.1", 80));
    assert!(out.is_empty());
}

#[test]
fn fabric_never_misdirects() {
    let mut sim = sim(CompileOptions::default());
    for (src, dst, dport) in [
        ("55.0.0.1", "11.0.0.1", 80),
        ("200.0.0.1", "12.0.0.1", 443),
        ("55.0.0.1", "13.0.0.1", 22),
        ("1.1.1.1", "14.0.0.1", 80),
    ] {
        sim.send_from(A, pkt(src, dst, dport));
        sim.send_from(C, pkt(src, dst, dport));
    }
    assert_eq!(sim.runtime().switch().stats().misdirected, 0);
    assert_eq!(sim.runtime().switch().stats().bad_ingress, 0);
}

#[test]
fn policy_updates_recompile_cleanly() {
    let mut sdx = figure1(CompileOptions::default());
    sdx.compile().unwrap();
    let before = sdx.compilation().unwrap().stats.rules;
    // A drops its outbound policy entirely.
    sdx.set_policy(A, ParticipantPolicy::new());
    sdx.compile().unwrap();
    let after = sdx.compilation().unwrap().stats.rules;
    assert!(after < before, "dropping policies should shrink the table");

    let mut sim = FabricSim::new(sdx);
    sim.sync();
    // Web traffic now follows the default like everything else.
    let out = sim.send_from(A, pkt("55.0.0.1", "11.0.0.1", 80));
    assert_eq!(out[0].to, C);
}

#[test]
fn memoization_hits_on_recompilation() {
    let mut sdx = figure1(CompileOptions::default());
    let first = sdx.compile().unwrap();
    assert_eq!(first.memo_hits, 0);
    let second = sdx.reoptimize().unwrap();
    // Nothing changed: every receiver block should come from the cache.
    assert_eq!(second.memo_misses, 0, "{second:?}");
    assert!(second.memo_hits > 0);
}

#[test]
fn compile_errors_are_reported() {
    let mut sdx = figure1(CompileOptions::default());
    // Negated predicate.
    sdx.set_policy(
        C,
        ParticipantPolicy::new().outbound(Clause::fwd(!match_(Field::DstPort, 80u16), B)),
    );
    assert!(matches!(
        sdx.compile(),
        Err(sdx_core::CompileError::NegatedPredicate(_))
    ));

    // Outbound from a remote participant.
    let mut sdx = figure1(CompileOptions::default());
    let d = ParticipantId(4);
    sdx.add_participant(Participant::remote(d, Asn(400)));
    sdx.set_policy(
        d,
        ParticipantPolicy::new().outbound(Clause::fwd(match_(Field::DstPort, 80u16), B)),
    );
    assert!(matches!(
        sdx.compile(),
        Err(sdx_core::CompileError::OutboundFromRemote(_))
    ));

    // Unknown own port.
    let mut sdx = figure1(CompileOptions::default());
    sdx.set_policy(
        B,
        ParticipantPolicy::new().inbound(Clause::to_port(match_(Field::DstPort, 80u16), 77)),
    );
    assert!(matches!(
        sdx.compile(),
        Err(sdx_core::CompileError::UnknownOwnPort(_, 77))
    ));
}

#[test]
fn multiswitch_distribution_preserves_forwarding() {
    use sdx_core::{distribute, FabricLayout, SwitchId};

    let mut sdx = figure1(CompileOptions::default());
    sdx.compile().unwrap();

    // Split the exchange across two physical switches: A and B's first port
    // on sw1; B's second port and C on sw2.
    let layout = FabricLayout::new()
        .add_switch(SwitchId(1), [A1, B1])
        .unwrap()
        .add_switch(SwitchId(2), [B2, C1])
        .unwrap()
        .link(SwitchId(1), SwitchId(2))
        .unwrap();
    let fabric = sdx.compilation().unwrap().fabric.clone();
    let mut multi = distribute(&fabric, &layout).unwrap();

    // Frames as A's border router would emit them: VMAC-tagged per prefix.
    let vmac_of = |s: &str| sdx.compilation().unwrap().vmac_of(&p(s)).unwrap();
    let mut frames = Vec::new();
    for (dst, prefix) in [
        ("11.0.0.1", "11.0.0.0/8"),
        ("13.0.0.1", "13.0.0.0/8"),
        ("14.0.0.1", "14.0.0.0/8"),
    ] {
        for dport in [80u16, 443, 22] {
            for src in ["55.0.0.1", "200.0.0.1"] {
                frames.push(
                    pkt(src, dst, dport)
                        .with(Field::Port, A1)
                        .with(Field::DstMac, vmac_of(prefix))
                        .with(Field::SrcMac, sdx_ip::MacAddr::from_u64(0xa)),
                );
            }
        }
    }

    for frame in frames {
        let mut single: Vec<(u32, sdx_policy::Packet)> = sdx.process_packet(&frame);
        let mut multi_out = multi.process(&frame);
        single.sort_by_key(|(p, _)| *p);
        multi_out.sort_by_key(|(p, _)| *p);
        assert_eq!(single, multi_out, "frame {frame}");
    }

    // Both switches carry fewer rules than the logical table would need in
    // one device, and transit continuations exist.
    let per = multi.rules_per_switch();
    assert!(per[&SwitchId(1)] > 0 && per[&SwitchId(2)] > 0);
    assert!(multi.trunk(SwitchId(1), SwitchId(2)).is_some());
}

#[test]
fn rpki_invalid_announcements_are_rejected() {
    use sdx_bgp::{Roa, RpkiValidator};

    let mut sdx = figure1(CompileOptions::default());
    // The anycast block belongs to AS 15169; a remote participant with a
    // different ASN tries to originate it through the SDX.
    let mut rpki = RpkiValidator::new();
    rpki.add_roa(Roa {
        prefix: p("74.125.0.0/16"),
        max_length: 24,
        asn: Asn(15169),
    });
    sdx.set_rpki(rpki);

    let d = ParticipantId(4);
    sdx.add_participant(Participant::remote(d, Asn(666)));
    sdx.announce(
        d,
        [p("74.125.1.0/24")],
        attrs(&[666], Ipv4Addr::new(172, 0, 0, 99)),
    );
    assert_eq!(sdx.rpki_rejected(), 1);
    assert!(sdx
        .route_server()
        .best_route(&p("74.125.1.0/24"), A.peer())
        .is_none());

    // The rightful origin's announcement is accepted.
    let g = ParticipantId(5);
    sdx.add_participant(Participant::remote(g, Asn(15169)));
    sdx.announce(
        g,
        [p("74.125.1.0/24")],
        attrs(&[15169], Ipv4Addr::new(172, 0, 0, 98)),
    );
    assert_eq!(sdx.rpki_rejected(), 1);
    assert!(sdx
        .route_server()
        .best_route(&p("74.125.1.0/24"), A.peer())
        .is_some());

    // NotFound prefixes (no covering ROA) pass, per route-server practice.
    sdx.announce(
        d,
        [p("198.51.100.0/24")],
        attrs(&[666], Ipv4Addr::new(172, 0, 0, 99)),
    );
    assert_eq!(sdx.rpki_rejected(), 1);
}

#[test]
fn service_chaining_through_two_middleboxes() {
    // §8's envisioned "service chaining": A's video traffic traverses a
    // scrubber and then a transcoder before exiting via BGP defaults.
    let mb1 = ParticipantId(7);
    let mb2 = ParticipantId(8);
    let mut sdx = figure1(CompileOptions::default());
    sdx.add_participant(Participant::new(mb1, Asn(64513), vec![port(8, 71)]));
    sdx.add_participant(Participant::new(mb2, Asn(64514), vec![port(9, 72)]));

    // A steers marked traffic (srcport 7777) into the first box.
    sdx.set_policy(
        A,
        ParticipantPolicy::new()
            .outbound(Clause::fwd(match_(Field::SrcPort, 7777u16), mb1).unfiltered()),
    );
    // Box 1 hands it to box 2; box 2 has no policy, so the traffic then
    // follows BGP to its real destination.
    sdx.set_policy(
        mb1,
        ParticipantPolicy::new()
            .outbound(Clause::fwd(match_(Field::SrcPort, 7777u16), mb2).unfiltered()),
    );
    sdx.compile().unwrap();
    let mut sim = FabricSim::new(sdx);
    sim.enable_reinjection(mb1);
    sim.enable_reinjection(mb2);
    sim.sync();

    let marked = pkt("55.0.0.1", "11.0.0.1", 80).with(Field::SrcPort, 7777u16);
    let (out, trace) = sim.send_from_traced(A, marked);
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].to, C, "exits via the BGP default for p1");
    assert_eq!(trace, vec![A, mb1, mb2]);

    // Unmarked traffic skips the chain entirely.
    let plain = pkt("55.0.0.1", "11.0.0.1", 80).with(Field::SrcPort, 5u16);
    let (out, trace) = sim.send_from_traced(A, plain);
    assert_eq!(out[0].to, C);
    assert_eq!(trace, vec![A]);
}

#[test]
fn pcap_capture_and_traffic_matrix() {
    let mut sim = sim(CompileOptions::default());
    sim.enable_capture();
    sim.set_time_us(42_000_000);
    sim.send_from(A, pkt("55.0.0.1", "11.0.0.1", 80));
    sim.send_from(A, pkt("55.0.0.1", "11.0.0.1", 443));
    sim.send_from(A, pkt("55.0.0.1", "12.0.0.1", 80));

    // Traffic matrix reflects the three deliveries.
    let m = sim.traffic_matrix();
    assert_eq!(m.get(&(A, B)), Some(&2));
    assert_eq!(m.get(&(A, C)), Some(&1));

    // The capture holds three Ethernet frames, wire-decodable, stamped with
    // the virtual clock.
    let capture = sim.take_capture().unwrap();
    let frames = sdx_switch::read_pcap(&capture).unwrap();
    assert_eq!(frames.len(), 3);
    assert_eq!(frames[0].ts_sec, 42);
    let (decoded, _) = sdx_switch::decode_frame(&frames[0].data).unwrap();
    assert_eq!(decoded.get(Field::DstPort), Some(80));
    // The frame carries the VMAC tag A's router applied.
    assert!(decoded.dst_mac().unwrap().is_vmac());
}

#[test]
fn multi_table_pipeline_forwards_identically() {
    // Two-table pipeline mode (sender stage → goto → receiver stage) must
    // forward exactly like the composed single table, with fewer rules.
    let composed = sim(CompileOptions::default());
    let mut pipeline = sim(CompileOptions {
        multi_table: true,
        ..Default::default()
    });
    assert_eq!(pipeline.runtime().switch().table_count(), 2);

    let composed_rules = composed.runtime().compilation().unwrap().stats.rules;
    let pipeline_rules = pipeline.runtime().compilation().unwrap().stats.rules;
    assert!(pipeline_rules > 0);

    let cases = [
        ("55.0.0.1", "11.0.0.1", 80, B, B1),
        ("200.0.0.1", "11.0.0.1", 80, B, B2),
        ("55.0.0.1", "11.0.0.1", 443, C, C1),
        ("55.0.0.1", "14.0.0.1", 80, C, C1),
        ("55.0.0.1", "13.0.0.1", 22, B, B1),
        ("222.0.0.1", "13.0.0.1", 22, B, B2),
    ];
    for (src, dst, dport, want_to, want_port) in cases {
        let out = pipeline.send_from(A, pkt(src, dst, dport));
        assert_eq!(out.len(), 1, "{src}->{dst}:{dport}");
        assert_eq!(out[0].to, want_to, "{src}->{dst}:{dport}");
        assert_eq!(out[0].port, want_port, "{src}->{dst}:{dport}");
    }
    assert_eq!(pipeline.runtime().switch().stats().misdirected, 0);

    // At Figure 1 scale the two modes are comparable; the pipeline's
    // advantage appears at workload scale (see the ablation bench) — here we
    // only require both to be reasonable.
    assert!(
        pipeline_rules <= composed_rules * 2,
        "{pipeline_rules} vs {composed_rules}"
    );
}

#[test]
fn multi_table_fast_path_overlays_work() {
    let mut sim = sim(CompileOptions {
        multi_table: true,
        ..Default::default()
    });
    assert_eq!(sim.send_from(A, pkt("55.0.0.1", "13.0.0.1", 22))[0].to, B);
    sim.runtime_mut().withdraw(B, [p("13.0.0.0/8")]);
    assert!(sim.runtime().incremental_stats().overlay_rules > 0);
    sim.sync();
    assert_eq!(sim.send_from(A, pkt("55.0.0.1", "13.0.0.1", 22))[0].to, C);
    sim.runtime_mut().reoptimize().unwrap();
    sim.sync();
    assert_eq!(sim.send_from(A, pkt("55.0.0.1", "13.0.0.1", 80))[0].to, C);
}

#[test]
fn vnh_pool_exhaustion_is_reported() {
    use sdx_core::compile::{compile, CompileInput, MemoCache};
    use sdx_core::VnhAllocator;
    use std::collections::BTreeMap;

    let mut sdx = figure1(CompileOptions::default());
    sdx.compile().unwrap(); // populate state
    let participants: BTreeMap<_, _> = sdx.participants().map(|p| (p.id, p.clone())).collect();
    let policies: BTreeMap<_, _> = BTreeMap::from([(
        A,
        ParticipantPolicy::new().outbound(Clause::fwd(match_(Field::DstPort, 80u16), B)),
    )]);
    let versions = BTreeMap::new();
    let input = CompileInput {
        participants: &participants,
        policies: &policies,
        policy_versions: &versions,
        route_server: sdx.route_server(),
        options: CompileOptions::default(),
    };
    // A /31 pool holds one VNH; Figure 1 needs several groups.
    let mut tiny = VnhAllocator::new("10.0.0.0/31".parse().unwrap());
    let memo = MemoCache::new();
    assert!(matches!(
        compile(&input, &mut tiny, &memo),
        Err(sdx_core::CompileError::VnhExhausted)
    ));
}

/// Workload-scale soak: a 300-participant exchange compiles, replays a
/// trace through the fast path, and reoptimizes — run with
/// `cargo test -- --ignored` for the deep check.
#[test]
#[ignore = "multi-second stress test"]
fn stress_full_scale_exchange() {
    // Workload generators live in sdx-workload, which depends on this
    // crate, so the stress test builds its exchange by hand.
    let mut sdx = SdxRuntime::default();
    let mut announced = Vec::new();
    for i in 1..=300u32 {
        let id = ParticipantId(i);
        sdx.add_participant(Participant::new(
            id,
            Asn(65_000 + i),
            vec![port(i * 10, (i % 200) as u8)],
        ));
        let prefix = Prefix::from_bits(0x0a00_0000 + (i << 12), 20);
        sdx.announce(
            id,
            [prefix],
            attrs(&[65_000 + i], Ipv4Addr::from(0x0afe_0000 + i)),
        );
        announced.push((id, prefix));
    }
    for i in 1..=30u32 {
        let author = ParticipantId(i);
        let target = ParticipantId(((i + 7) % 300) + 1);
        sdx.set_policy(
            author,
            ParticipantPolicy::new().outbound(Clause::fwd(
                match_(Field::DstPort, (i % 1024) as u16),
                target,
            )),
        );
    }
    let stats = sdx.compile().unwrap();
    assert!(stats.rules > 300);
    for (id, prefix) in announced.iter().take(200) {
        let mut a = attrs(&[65_000 + id.0, 7], Ipv4Addr::from(0x0afe_0000 + id.0));
        a.local_pref = Some(50);
        sdx.announce(*id, [*prefix], a);
    }
    assert!(sdx.incremental_stats().updates >= 200);
    sdx.reoptimize().unwrap();
    assert!(sdx.overlays().is_empty());
}

#[test]
fn compiled_table_exports_as_openflow() {
    let mut sdx = figure1(CompileOptions::default());
    sdx.compile().unwrap();
    let mods = sdx
        .export_flow_mods()
        .expect("composed table is OpenFlow 1.0 expressible");
    assert_eq!(mods.len(), 1, "single-table pipeline");
    assert_eq!(mods[0].len(), sdx.switch().table().len());
    // Every message round-trips to a rule semantically matching the
    // installed one.
    for (wire, installed) in mods[0].iter().zip(sdx.switch().table().rules()) {
        let decoded = sdx_switch::openflow::decode_flow_mod(wire).unwrap();
        assert_eq!(decoded.match_, installed.match_);
        assert_eq!(decoded.actions, installed.actions);
        assert_eq!(decoded.priority, installed.priority);
    }
}
