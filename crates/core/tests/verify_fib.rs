//! VNH/FIB integrity against *actual* border-router state: a router whose
//! ARP cache lost the VNH binding would emit untagged traffic, and the
//! reachability verifier's witness must name the missing tag.

use std::net::Ipv4Addr;

use sdx_bgp::{AsPath, Asn, PathAttributes};
use sdx_core::{
    reach, verify, Clause, Participant, ParticipantId, ParticipantPolicy, PortConfig, SdxRuntime,
};
use sdx_ip::Prefix;
use sdx_policy::{match_, Field};
use sdx_switch::BorderRouter;

const A: ParticipantId = ParticipantId(1);
const B: ParticipantId = ParticipantId(2);

fn port(n: u32) -> PortConfig {
    PortConfig {
        port: n,
        mac: format!("02:00:00:00:00:{n:02x}").parse().unwrap(),
        ip: Ipv4Addr::new(172, 0, 0, n as u8),
    }
}

fn fabric() -> SdxRuntime {
    let mut sdx = SdxRuntime::default();
    sdx.add_participant(Participant::new(A, Asn(65001), vec![port(1)]));
    sdx.add_participant(Participant::new(B, Asn(65002), vec![port(2)]));
    sdx.announce(
        B,
        ["20.0.0.0/8".parse::<Prefix>().unwrap()],
        PathAttributes::new(AsPath::sequence([65002]), Ipv4Addr::new(172, 0, 0, 2)),
    );
    // A filtered clause towards B puts 20.0.0.0/8 into a policy set, so the
    // compiler groups it into an FEC with a VNH/VMAC binding.
    sdx.set_policy(
        A,
        ParticipantPolicy::new().outbound(Clause::fwd(match_(Field::DstPort, 80u16), B)),
    );
    sdx.compile().unwrap();
    sdx
}

#[test]
fn corrupted_fib_entry_is_caught_with_the_missing_tag_named() {
    let sdx = fabric();
    let prefix: Prefix = "20.0.0.0/8".parse().unwrap();
    let compilation = sdx.compilation().unwrap();
    let vnh = compilation.vnh_of(&prefix).expect("20/8 is grouped");
    let vmac = compilation.vmac_of(&prefix).expect("20/8 is grouped");

    // A's real border router, synced against the SDX's advertisements: its
    // BGP machinery installs the VNH route and ARP resolves the VMAC.
    let a_cfg = port(1);
    let mut router = BorderRouter::new(1, a_cfg.mac, a_cfg.ip);
    sdx.sync_router(A, &mut router);

    // Baseline: the actual router state passes all reachability invariants.
    let mut vi = sdx.verify_input().unwrap();
    vi.set_fib(verify::fib_from_router(A, &router));
    let clean = reach::run(&vi, 1);
    assert!(
        clean.diagnostics.is_empty(),
        "clean fabric must verify: {:?}",
        clean.diagnostics
    );

    // Corrupt one FIB entry post-compile: the ARP binding for the VNH
    // expires, so the router would forward 20/8 without the VMAC tag.
    router.expire_arp(&vnh);
    vi.set_fib(verify::fib_from_router(A, &router));
    let report = reach::run(&vi, 1);

    let diag = report
        .diagnostics
        .iter()
        .find(|d| d.code == "verify-fib-missing-tag")
        .unwrap_or_else(|| panic!("expected verify-fib-missing-tag: {:?}", report.diagnostics));
    assert_eq!(diag.participant, Some(A.0));
    assert!(
        diag.message.contains(&format!("{:#x}", vmac.to_u64())),
        "witness must name the missing tag {:#x}: {}",
        vmac.to_u64(),
        diag.message
    );
    assert!(diag.message.contains("20.0.0.0/8"), "{}", diag.message);
    let witness = diag.witness.as_ref().expect("finding carries a witness");
    assert_eq!(
        witness.get(Field::DstIp),
        Some(u64::from(u32::from(prefix.addr())))
    );
}

#[test]
fn wrong_next_hop_is_caught() {
    let sdx = fabric();
    let prefix: Prefix = "20.0.0.0/8".parse().unwrap();

    let a_cfg = port(1);
    let mut router = BorderRouter::new(1, a_cfg.mac, a_cfg.ip);
    sdx.sync_router(A, &mut router);
    // The router somehow kept a stale route to B's interface instead of the
    // advertised VNH: grouped prefix on the wrong next hop.
    router.install_route(prefix, Ipv4Addr::new(172, 0, 0, 2));

    let mut vi = sdx.verify_input().unwrap();
    vi.set_fib(verify::fib_from_router(A, &router));
    let report = reach::run(&vi, 1);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == "verify-fib-wrong-vnh"),
        "{:?}",
        report.diagnostics
    );
}
