//! Property-based tests for the SDX controller's core machinery: the
//! Minimum Disjoint Subsets computation and the compiled fabric's semantics.

use std::collections::BTreeMap;

use proptest::prelude::*;
use sdx_bgp::{AsPath, Asn, ExportPolicy, PathAttributes};
use sdx_core::{
    minimum_disjoint_subsets, Clause, CompileOptions, Participant, ParticipantId,
    ParticipantPolicy, PortConfig, SdxRuntime,
};
use sdx_ip::{MacAddr, Prefix, PrefixSet};
use sdx_policy::{Field, Packet, Predicate};
use std::net::Ipv4Addr;

fn arb_prefix_pool() -> Vec<Prefix> {
    (0..24u32)
        .map(|i| Prefix::from_bits(0x0a00_0000 + (i << 8), 24))
        .collect()
}

fn arb_collection() -> impl Strategy<Value = Vec<PrefixSet>> {
    let pool = arb_prefix_pool();
    prop::collection::vec(
        prop::collection::btree_set(prop::sample::select(pool), 0..12)
            .prop_map(|s| s.into_iter().collect::<PrefixSet>()),
        0..8,
    )
}

proptest! {
    /// MDS output is a partition of the union of the inputs…
    #[test]
    fn mds_partitions_the_union(sets in arb_collection()) {
        let parts = minimum_disjoint_subsets(&sets);
        let union = sets.iter().fold(PrefixSet::new(), |acc, s| acc.union(s));
        let mut rebuilt = PrefixSet::new();
        for (i, a) in parts.iter().enumerate() {
            prop_assert!(!a.is_empty());
            for b in parts.iter().skip(i + 1) {
                prop_assert!(a.intersection(b).is_empty(), "parts overlap");
            }
            rebuilt = rebuilt.union(a);
        }
        prop_assert_eq!(rebuilt, union);
    }

    /// …in which every input set is a union of whole parts (no part
    /// straddles a set boundary), and the partition is the coarsest such.
    #[test]
    fn mds_respects_sets_and_is_coarsest(sets in arb_collection()) {
        let parts = minimum_disjoint_subsets(&sets);
        for s in &sets {
            for part in &parts {
                let i = part.intersection(s);
                prop_assert!(i.is_empty() || &i == part, "part straddles an input set");
            }
        }
        // Coarsest: two prefixes with identical membership share a part.
        let union = sets.iter().fold(PrefixSet::new(), |acc, s| acc.union(s));
        let signature = |p: &Prefix| -> Vec<usize> {
            sets.iter().enumerate().filter(|(_, s)| s.contains(p)).map(|(i, _)| i).collect()
        };
        for a in &union {
            for b in &union {
                if signature(a) == signature(b) {
                    let part_of = |x: &Prefix| parts.iter().position(|p| p.contains(x));
                    prop_assert_eq!(part_of(a), part_of(b));
                }
            }
        }
    }
}

/// A tiny randomized exchange: 3 physical participants, a few prefixes with
/// random announcers and random clause policies.
#[derive(Debug, Clone)]
struct Scenario {
    announcements: Vec<(u32, Vec<Prefix>, u32)>, // (participant, prefixes, extra path len)
    web_clause_author: u32,
    web_clause_target: u32,
    deny: Option<(u32, Prefix, u32)>, // (announcer, prefix, denied viewer)
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    let pool = arb_prefix_pool();
    let pool2 = pool.clone();
    (
        prop::collection::vec(
            (
                1u32..=3,
                prop::collection::btree_set(prop::sample::select(pool), 1..5),
                0u32..3,
            ),
            1..5,
        ),
        1u32..=3,
        1u32..=3,
        prop::option::of((1u32..=3, prop::sample::select(pool2), 1u32..=3)),
    )
        .prop_map(|(raw, author, target, deny)| Scenario {
            announcements: raw
                .into_iter()
                .map(|(p, set, extra)| (p, set.into_iter().collect(), extra))
                .collect(),
            web_clause_author: author,
            web_clause_target: target,
            deny,
        })
}

fn build(s: &Scenario) -> SdxRuntime {
    let mut sdx = SdxRuntime::new(CompileOptions::default());
    for i in 1..=3u32 {
        sdx.add_participant(Participant::new(
            ParticipantId(i),
            Asn(65_000 + i),
            vec![PortConfig {
                port: i,
                mac: MacAddr::from_u64(0x0a00 + i as u64),
                ip: Ipv4Addr::from(0x0afe_0000 + i),
            }],
        ));
    }
    for (p, prefixes, extra) in &s.announcements {
        let mut path = vec![65_000 + *p];
        for k in 0..*extra {
            path.push(50_000 + k);
        }
        sdx.announce(
            ParticipantId(*p),
            prefixes.iter().copied(),
            PathAttributes::new(AsPath::sequence(path), Ipv4Addr::from(0x0afe_0000 + *p)),
        );
    }
    if let Some((announcer, prefix, viewer)) = &s.deny {
        sdx.set_export_policy(
            ParticipantId(*announcer),
            ExportPolicy::export_all().deny_prefix_to(*prefix, ParticipantId(*viewer).peer()),
        );
    }
    if s.web_clause_author != s.web_clause_target {
        sdx.set_policy(
            ParticipantId(s.web_clause_author),
            ParticipantPolicy::new().outbound(Clause::fwd(
                Predicate::test(Field::DstPort, 80u16),
                ParticipantId(s.web_clause_target),
            )),
        );
    }
    sdx
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On every random exchange: the fabric compiles; each grouped prefix's
    /// VNH resolves (via ARP) to its group VMAC; a frame tagged with a
    /// group's VMAC and sent from a non-announcing port is either delivered
    /// out a physical port or legitimately dropped — never misdirected.
    #[test]
    fn compiled_fabric_is_consistent(s in arb_scenario()) {
        let mut sdx = build(&s);
        prop_assert!(sdx.compile().is_ok());
        let groups: Vec<(Prefix, Ipv4Addr, MacAddr)> = {
            let c = sdx.compilation().unwrap();
            c.group_index
                .keys()
                .map(|p| (*p, c.vnh_of(p).unwrap(), c.vmac_of(p).unwrap()))
                .collect()
        };
        for (prefix, vnh, vmac) in &groups {
            // ARP consistency.
            prop_assert_eq!(sdx.resolve_ip(*vnh), Some(*vmac), "{}", prefix);
        }

        // Per-viewer advertisement: grouped prefixes get the VNH.
        let c = sdx.compilation().unwrap();
        for (prefix, vnh, _) in &groups {
            for viewer in 1..=3u32 {
                if let Some(nh) = sdx.advertised_next_hop(prefix, ParticipantId(viewer)) {
                    prop_assert_eq!(nh, *vnh);
                }
            }
        }

        // Fabric behavior: tagged frames never land on a virtual port.
        let mut frames = Vec::new();
        for (prefix, _, vmac) in &groups {
            for port in 1..=3u32 {
                frames.push(
                    Packet::new()
                        .with(Field::Port, port)
                        .with(Field::EthType, 0x0800u16)
                        .with(Field::IpProto, 6u8)
                        .with(Field::SrcIp, Ipv4Addr::new(198, 51, 100, 1))
                        .with(Field::DstIp, prefix.first_addr())
                        .with(Field::SrcPort, 999u16)
                        .with(Field::DstPort, 80u16)
                        .with(Field::DstMac, *vmac),
                );
            }
        }
        let _ = c;
        for frame in &frames {
            let _out = sdx.process_packet(frame);
        }
        prop_assert_eq!(sdx.switch().stats().misdirected, 0);
        prop_assert_eq!(sdx.switch().stats().bad_ingress, 0);
    }

    /// Recompiling an unchanged exchange is a fixed point: same rules, same
    /// groups, same VNH assignment.
    #[test]
    fn recompilation_is_deterministic(s in arb_scenario()) {
        let mut sdx = build(&s);
        sdx.compile().unwrap();
        let first: BTreeMap<Prefix, usize> = sdx.compilation().unwrap().group_index.clone();
        let rules1 = sdx.compilation().unwrap().stats.rules;
        sdx.reoptimize().unwrap();
        let second: BTreeMap<Prefix, usize> = sdx.compilation().unwrap().group_index.clone();
        let rules2 = sdx.compilation().unwrap().stats.rules;
        prop_assert_eq!(first, second);
        prop_assert_eq!(rules1, rules2);
    }

    /// The fast path agrees with full recompilation: after a random
    /// announcement, forwarding through overlays matches what a fresh
    /// compile produces.
    #[test]
    fn fast_path_agrees_with_recompilation(s in arb_scenario(), dport in prop::sample::select(vec![80u16, 443, 22])) {
        let mut sdx = build(&s);
        sdx.compile().unwrap();
        // Random perturbation: participant 1 re-announces its first batch
        // with a longer path (a best-path change for those prefixes).
        let Some((p, prefixes, _)) = s.announcements.first() else { return Ok(()); };
        let attrs = PathAttributes::new(
            AsPath::sequence([65_000 + *p, 1, 2, 3]),
            Ipv4Addr::from(0x0afe_0000 + *p),
        );
        sdx.announce(ParticipantId(*p), prefixes.iter().copied(), attrs);

        // Capture forwarding decisions through the overlays.
        let mut sim = sdx_core::FabricSim::new(sdx);
        sim.sync();
        let senders: Vec<ParticipantId> = (1..=3).map(ParticipantId).collect();
        let probe = |sim: &mut sdx_core::FabricSim| -> Vec<Option<(ParticipantId, u32)>> {
            let mut out = Vec::new();
            for &from in &senders {
                for (_, prefixes, _) in &s.announcements {
                    for prefix in prefixes {
                        if sim.runtime().route_server().announced_by(from.peer()).contains(prefix) {
                            out.push(None);
                            continue;
                        }
                        let pkt = Packet::new()
                            .with(Field::EthType, 0x0800u16)
                            .with(Field::IpProto, 6u8)
                            .with(Field::SrcIp, Ipv4Addr::new(198, 51, 100, 7))
                            .with(Field::DstIp, prefix.first_addr())
                            .with(Field::SrcPort, 1234u16)
                            .with(Field::DstPort, dport);
                        out.push(sim.send_from(from, pkt).first().map(|d| (d.to, d.port)));
                    }
                }
            }
            out
        };
        let with_overlays = probe(&mut sim);
        sim.runtime_mut().reoptimize().unwrap();
        sim.sync();
        let after_reopt = probe(&mut sim);
        prop_assert_eq!(with_overlays, after_reopt);
    }
}
