//! End-to-end tests for the static-verification gate: scenarios seeded with
//! each defect class must be detected in `Warn` mode and refused in `Deny`
//! mode, while a clean paper-style scenario sails through.

use std::net::Ipv4Addr;

use sdx_bgp::{AsPath, Asn, PathAttributes};
use sdx_core::{
    AnalysisMode, Clause, CompileError, CompileOptions, Participant, ParticipantId,
    ParticipantPolicy, PortConfig, SdxRuntime, Severity,
};
use sdx_ip::MacAddr;
use sdx_policy::{match_, Field};

const A: ParticipantId = ParticipantId(1);
const B: ParticipantId = ParticipantId(2);
const C: ParticipantId = ParticipantId(3);

fn port(n: u32) -> PortConfig {
    PortConfig {
        port: n,
        mac: MacAddr::from_u64(0x02_00_00_00_00_00 + n as u64),
        ip: Ipv4Addr::new(172, 0, 0, n as u8),
    }
}

/// Three physical participants; B and C announce a prefix each.
fn runtime(mode: AnalysisMode) -> SdxRuntime {
    let mut sdx = SdxRuntime::new(CompileOptions {
        analysis: mode,
        ..Default::default()
    });
    sdx.add_participant(Participant::new(A, Asn(65001), vec![port(1)]));
    sdx.add_participant(Participant::new(B, Asn(65002), vec![port(2)]));
    sdx.add_participant(Participant::new(C, Asn(65003), vec![port(3)]));
    sdx.announce(
        B,
        ["20.0.0.0/8".parse().unwrap()],
        PathAttributes::new(AsPath::sequence([65002]), Ipv4Addr::new(172, 0, 0, 2)),
    );
    sdx.announce(
        C,
        ["30.0.0.0/8".parse().unwrap()],
        PathAttributes::new(AsPath::sequence([65003]), Ipv4Addr::new(172, 0, 0, 3)),
    );
    sdx
}

fn assert_denied_with(mut sdx: SdxRuntime, code: &str) {
    match sdx.compile() {
        Err(CompileError::AnalysisRejected(errors)) => {
            assert!(
                errors.iter().any(|e| e.contains(code)),
                "expected a {code:?} finding, got: {errors:?}"
            );
        }
        other => panic!("expected AnalysisRejected, got {other:?}"),
    }
    // Denial means nothing was installed.
    assert!(sdx.compilation().is_none());
    assert!(sdx.switch().table().rules().is_empty());
}

#[test]
fn clean_scenario_passes_both_modes() {
    let mut warn = runtime(AnalysisMode::Warn);
    warn.set_policy(
        A,
        ParticipantPolicy::new()
            .outbound(Clause::fwd(match_(Field::DstPort, 80u16), B))
            .outbound(Clause::fwd(match_(Field::DstPort, 443u16), C)),
    );
    let stats = warn.compile().expect("clean policy compiles");
    assert_eq!(stats.analysis_errors, 0);
    let analysis = warn.compilation().unwrap().analysis.as_ref().unwrap();
    assert!(!analysis.has_errors(), "{:?}", analysis.diagnostics);

    let mut deny = runtime(AnalysisMode::Deny);
    deny.set_policy(
        A,
        ParticipantPolicy::new()
            .outbound(Clause::fwd(match_(Field::DstPort, 80u16), B))
            .outbound(Clause::fwd(match_(Field::DstPort, 443u16), C)),
    );
    deny.compile().expect("clean policy must not be denied");
    assert!(!deny.switch().table().rules().is_empty());
}

#[test]
fn analysis_off_records_nothing() {
    let mut sdx = runtime(AnalysisMode::Off);
    sdx.set_policy(
        A,
        ParticipantPolicy::new().outbound(Clause::fwd(match_(Field::DstPort, 80u16), B)),
    );
    sdx.compile().unwrap();
    assert!(sdx.compilation().unwrap().analysis.is_none());
}

// -------- defect class 1: shadowed clause --------------------------------

#[test]
fn shadowed_clause_detected_and_denied() {
    let seed = |mode| {
        let mut sdx = runtime(mode);
        // Clause 1 repeats clause 0's match: first-match-wins makes it dead.
        sdx.set_policy(
            A,
            ParticipantPolicy::new()
                .outbound(Clause::fwd(match_(Field::DstPort, 80u16), B))
                .outbound(Clause::fwd(match_(Field::DstPort, 80u16), C)),
        );
        sdx
    };

    let mut warn = seed(AnalysisMode::Warn);
    warn.compile().unwrap();
    let analysis = warn.compilation().unwrap().analysis.clone().unwrap();
    let hit = analysis
        .with_code("shadowed-clause")
        .next()
        .expect("finding");
    assert_eq!(hit.severity, Severity::Error);
    assert_eq!(hit.participant, Some(1));

    assert_denied_with(seed(AnalysisMode::Deny), "shadowed-clause");
}

#[test]
fn multi_clause_union_shadow_detected() {
    // Neither half alone covers clause 2 — only their union does; this is
    // the case pairwise subsumption cannot see.
    let mut sdx = runtime(AnalysisMode::Warn);
    let towards = |cidr: &str| sdx_policy::match_prefix(Field::DstIp, cidr.parse().unwrap());
    sdx.set_policy(
        A,
        ParticipantPolicy::new()
            .outbound(Clause::fwd(towards("20.0.0.0/9"), B))
            .outbound(Clause::fwd(towards("20.128.0.0/9"), B))
            .outbound(Clause::fwd(towards("20.0.0.0/8"), C)),
    );
    sdx.compile().unwrap();
    let analysis = sdx.compilation().unwrap().analysis.clone().unwrap();
    let hit = analysis
        .with_code("shadowed-clause")
        .next()
        .expect("finding");
    assert_eq!(hit.clause.map(|(_, i)| i), Some(2));
}

// -------- defect class 2: cross-participant conflict / blackhole ---------

#[test]
fn conflicting_drop_detected_and_denied() {
    let seed = |mode| {
        let mut sdx = runtime(mode);
        sdx.set_policy(
            A,
            ParticipantPolicy::new().outbound(Clause::fwd(match_(Field::DstPort, 80u16), B)),
        );
        sdx.set_policy(
            B,
            ParticipantPolicy::new().inbound(Clause::drop(match_(Field::DstPort, 80u16))),
        );
        sdx
    };

    let mut warn = seed(AnalysisMode::Warn);
    warn.compile().unwrap();
    let analysis = warn.compilation().unwrap().analysis.clone().unwrap();
    let hit = analysis
        .with_code("conflicting-drop")
        .next()
        .expect("finding");
    // The witness is a concrete packet on the doomed path.
    let witness = hit.witness.as_ref().expect("witness packet");
    assert_eq!(witness.get(Field::DstPort), Some(80));

    assert_denied_with(seed(AnalysisMode::Deny), "conflicting-drop");
}

#[test]
fn forward_to_non_announcing_peer_denied() {
    // C announced 30.0.0.0/8 but B's clause targets a peer that exports
    // nothing to it: A only wants traffic towards C via B — but B never
    // advertised anything A's clause could use... Simplest seeding: a
    // fourth participant that announces nothing.
    let seed = |mode| {
        let mut sdx = runtime(mode);
        let d = ParticipantId(4);
        sdx.add_participant(Participant::new(d, Asn(65004), vec![port(4)]));
        sdx.set_policy(
            A,
            ParticipantPolicy::new().outbound(Clause::fwd(match_(Field::DstPort, 80u16), d)),
        );
        sdx
    };

    let mut warn = seed(AnalysisMode::Warn);
    warn.compile().unwrap();
    let analysis = warn.compilation().unwrap().analysis.clone().unwrap();
    assert!(analysis.with_code("peer-no-route").next().is_some());

    assert_denied_with(seed(AnalysisMode::Deny), "peer-no-route");
}

// -------- defect class 3: forwarding loop --------------------------------

#[test]
fn forwarding_loop_detected_and_denied() {
    let seed = |mode| {
        let mut sdx = runtime(mode);
        sdx.set_policy(
            A,
            ParticipantPolicy::new().inbound(Clause::fwd(match_(Field::DstPort, 80u16), B)),
        );
        sdx.set_policy(
            B,
            ParticipantPolicy::new().inbound(Clause::fwd(match_(Field::DstPort, 80u16), A)),
        );
        sdx
    };

    let mut warn = seed(AnalysisMode::Warn);
    warn.compile().unwrap();
    let analysis = warn.compilation().unwrap().analysis.clone().unwrap();
    let hit = analysis
        .with_code("forwarding-loop")
        .next()
        .expect("finding");
    assert!(hit.message.contains("P1") && hit.message.contains("P2"));

    assert_denied_with(seed(AnalysisMode::Deny), "forwarding-loop");
}

// -------- defect class 4: VNH/ARP inconsistency --------------------------

#[test]
fn vnh_inconsistency_detected_and_gated() {
    // The healthy pipeline keeps allocation and flow table consistent by
    // construction, so this class is seeded by corrupting the compilation
    // artifact — exactly what the analyzer exists to catch if the invariant
    // ever breaks.
    use sdx_core::compile::{compile, CompileInput, MemoCache};
    use sdx_core::VnhAllocator;

    let mut sdx = runtime(AnalysisMode::Off);
    sdx.set_policy(
        A,
        ParticipantPolicy::new().outbound(Clause::fwd(match_(Field::DstPort, 80u16), B)),
    );
    sdx.compile().unwrap();

    let policies: std::collections::BTreeMap<_, _> = [(
        A,
        ParticipantPolicy::new().outbound(Clause::fwd(match_(Field::DstPort, 80u16), B)),
    )]
    .into_iter()
    .collect();
    let participants: std::collections::BTreeMap<_, _> =
        sdx.participants().map(|p| (p.id, p.clone())).collect();
    let versions = std::collections::BTreeMap::new();
    let input = CompileInput {
        participants: &participants,
        policies: &policies,
        policy_versions: &versions,
        route_server: sdx.route_server(),
        options: CompileOptions::default(),
    };
    let mut alloc = VnhAllocator::default_pool();
    let memo = MemoCache::new();
    let mut compilation = compile(&input, &mut alloc, &memo).unwrap();
    assert!(!compilation.vnh.is_empty(), "scenario allocates VNHs");

    // Corrupt: drop one allocated VNH while its VMAC rules stay installed.
    compilation.vnh.pop();
    let analysis_input = sdx_core::analysis::build_input(&input, &compilation);
    let analysis = sdx_analyze::analyze(&analysis_input);
    assert!(
        analysis.with_code("unknown-vmac").next().is_some(),
        "{:?}",
        analysis.diagnostics
    );
    assert!(analysis.has_errors());
    // The deny gate refuses exactly this.
    assert!(sdx_analyze::gate(AnalysisMode::Deny, &analysis).is_err());
    assert!(sdx_analyze::gate(AnalysisMode::Warn, &analysis).is_ok());
}

#[test]
fn installed_state_audit_checks_arp() {
    let mut sdx = runtime(AnalysisMode::Warn);
    sdx.set_policy(
        A,
        ParticipantPolicy::new().outbound(Clause::fwd(match_(Field::DstPort, 80u16), B)),
    );
    sdx.compile().unwrap();
    // After install, every allocated VNH is ARP-bound: the audit is clean.
    let audit = sdx.audit_installed().expect("compiled");
    assert!(
        audit.with_code("missing-arp").next().is_none(),
        "{:?}",
        audit.diagnostics
    );
}
