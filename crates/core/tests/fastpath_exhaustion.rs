//! Fast-path degradation regressions: VNH-pool exhaustion must *degrade*
//! (keep the stale overlay forwarding, raise `needs_reoptimize`) instead of
//! silently dropping the update, and overlay-rule accounting must survive
//! churn → recompile → churn interleavings without underflow.

use std::net::Ipv4Addr;

use sdx_bgp::{AsPath, Asn, PathAttributes, Update};
use sdx_core::{
    Clause, CompileOptions, FabricSim, Participant, ParticipantId, ParticipantPolicy, PortConfig,
    SdxRuntime,
};
use sdx_ip::Prefix;
use sdx_policy::{match_, Field, Packet};

const A: ParticipantId = ParticipantId(1);
const B: ParticipantId = ParticipantId(2);
const C: ParticipantId = ParticipantId(3);

fn p(s: &str) -> Prefix {
    s.parse().unwrap()
}

fn port(n: u32, last: u8) -> PortConfig {
    PortConfig {
        port: n,
        mac: sdx_ip::MacAddr::from_u64(0x0a00_0000_0000 + n as u64),
        ip: Ipv4Addr::new(172, 0, 0, last),
    }
}

fn attrs(path: &[u32], nh: Ipv4Addr) -> PathAttributes {
    PathAttributes::new(AsPath::sequence(path.iter().copied()), nh)
}

const B_NH: Ipv4Addr = Ipv4Addr::new(172, 0, 0, 21);
const C_NH: Ipv4Addr = Ipv4Addr::new(172, 0, 0, 31);

/// Figure-1-shaped exchange: B and C both announce 11/8 and 12/8, C with
/// the shorter path; A carries an outbound policy so churn touches both
/// policy fragments and default forwarding.
fn exchange() -> SdxRuntime {
    let mut sdx = SdxRuntime::new(CompileOptions::default());
    sdx.add_participant(Participant::new(A, Asn(100), vec![port(1, 11)]));
    sdx.add_participant(Participant::new(B, Asn(200), vec![port(2, 21)]));
    sdx.add_participant(Participant::new(C, Asn(300), vec![port(3, 31)]));
    sdx.announce(
        B,
        [p("11.0.0.0/8"), p("12.0.0.0/8")],
        attrs(&[200, 65001], B_NH),
    );
    sdx.announce(C, [p("11.0.0.0/8"), p("12.0.0.0/8")], attrs(&[300], C_NH));
    sdx.set_policy(
        A,
        ParticipantPolicy::new()
            .outbound(Clause::fwd(match_(Field::DstPort, 80u16), B))
            .outbound(Clause::fwd(match_(Field::DstPort, 443u16), C)),
    );
    sdx
}

/// A policy-neutral probe (no clause matches dport 9999): lands on default
/// forwarding, so the receiver is exactly the best route's announcer.
fn probe(dst: &str) -> Packet {
    Packet::new()
        .with(Field::EthType, 0x0800u16)
        .with(Field::IpProto, 6u8)
        .with(Field::SrcIp, Ipv4Addr::new(99, 0, 0, 1))
        .with(Field::DstIp, dst.parse::<Ipv4Addr>().unwrap())
        .with(Field::SrcPort, 50_000u16)
        .with(Field::DstPort, 9_999u16)
}

/// Flip 11/8's best route between C (short path) and B (C prepends) — each
/// call is one best-path-change event through the incremental fast path.
fn flip(sdx: &mut SdxRuntime, i: u32) -> ParticipantId {
    if i.is_multiple_of(2) {
        sdx.announce(C, [p("11.0.0.0/8")], attrs(&[300, 300, 300 + i], C_NH));
        B // C's path is now longest; B takes over
    } else {
        sdx.announce(C, [p("11.0.0.0/8")], attrs(&[300], C_NH));
        C
    }
}

#[test]
fn exhaustion_degrades_to_stale_overlay_and_recovers() {
    let mut sdx = exchange();
    // Tight pool: enough for the full compile's groups, little slack for
    // fast-path overlays.
    sdx.set_vnh_pool(p("10.0.0.0/28"));
    sdx.compile().unwrap();
    let mut sim = FabricSim::new(sdx);
    sim.sync();

    // Churn until the pool runs dry. Track the receiver of the last update
    // that *did* land: when an allocation fails the stale overlay must keep
    // forwarding to that receiver, not drop traffic.
    let mut stale_receiver = C;
    let mut i = 0u32;
    while sim.runtime().incremental_stats().overlay_exhausted == 0 {
        assert!(i < 32, "pool never exhausted — widen the loop or shrink it");
        let expected = flip(sim.runtime_mut(), i);
        if sim.runtime().incremental_stats().overlay_exhausted == 0 {
            stale_receiver = expected;
        }
        i += 1;
    }
    assert!(
        sim.runtime().needs_reoptimize(),
        "exhaustion must raise the reoptimize flag"
    );

    // The update that exhausted the pool was NOT silently dropped into a
    // black hole: the previous overlay still forwards.
    sim.sync();
    let out = sim.send_from(A, probe("11.0.0.1"));
    assert_eq!(out.len(), 1, "stale overlay must keep forwarding");
    assert_eq!(out[0].to, stale_receiver);

    // Background reoptimization recovers: pool reset, flag cleared, and
    // forwarding now reflects the route server's actual best route.
    let exhausted_before = sim.runtime().incremental_stats().overlay_exhausted;
    sim.runtime_mut().reoptimize().unwrap();
    assert!(!sim.runtime().needs_reoptimize());
    assert_eq!(
        sim.runtime().incremental_stats().overlay_exhausted,
        exhausted_before,
        "cumulative counter must survive reoptimize"
    );
    sim.sync();
    let best = ParticipantId::from(
        sim.runtime()
            .route_server()
            .best_route(&p("11.0.0.0/8"), A.peer())
            .expect("still announced")
            .peer,
    );
    let out = sim.send_from(A, probe("11.0.0.1"));
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].to, best);

    // And the fast path works again on the refilled pool.
    let expected = flip(sim.runtime_mut(), i);
    assert_eq!(
        sim.runtime().incremental_stats().overlay_exhausted,
        exhausted_before,
        "refilled pool must not exhaust on the next update"
    );
    sim.sync();
    let out = sim.send_from(A, probe("11.0.0.1"));
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].to, expected);
}

/// Overlay-rule accounting stays an exact invariant across churn →
/// recompile → churn, including withdrawals of prefixes whose overlays a
/// recompile already coalesced (the historical underflow: `overlay_rules -=
/// removed` on a counter the recompile had reset). In debug builds an
/// underflow would panic; the invariant checks catch it in release too.
#[test]
fn overlay_accounting_survives_recompile_interleaving() {
    let mut sdx = exchange();
    sdx.compile().unwrap();

    let live = |sdx: &SdxRuntime| -> usize { sdx.overlays().iter().map(|o| o.rules).sum() };

    // Churn both prefixes through the legacy and the delta fast paths.
    for i in 0..4u32 {
        flip(&mut sdx, i);
        let (_, delta) = sdx.apply_update_delta(
            B,
            &Update::announce([p("12.0.0.0/8")], attrs(&[200, 900 + i], B_NH)),
        );
        assert!(delta.installed > 0 || delta.removed > 0);
        assert_eq!(sdx.incremental_stats().overlay_rules, live(&sdx));
    }
    assert!(sdx.incremental_stats().overlay_rules > 0);

    // Recompile coalesces every overlay; the counter must reconcile to zero
    // rather than keep a stale value the next retire would underflow.
    sdx.compile().unwrap();
    assert_eq!(sdx.overlays().len(), 0);
    assert_eq!(sdx.incremental_stats().overlay_rules, 0);

    // Withdrawing a prefix whose overlay the recompile absorbed retires
    // nothing — and must not wrap the counter.
    sdx.apply_update(C, &Update::withdraw([p("11.0.0.0/8")]));
    assert_eq!(sdx.incremental_stats().overlay_rules, live(&sdx));

    // Fresh churn after the recompile accounts from zero again, on both
    // paths, and withdrawing everything returns the counter to zero.
    for i in 0..3u32 {
        sdx.apply_update_delta(
            B,
            &Update::announce([p("12.0.0.0/8")], attrs(&[200, 500 + i], B_NH)),
        );
        assert_eq!(sdx.incremental_stats().overlay_rules, live(&sdx));
    }
    sdx.apply_update_delta(B, &Update::withdraw([p("12.0.0.0/8")]));
    sdx.apply_update(C, &Update::withdraw([p("12.0.0.0/8")]));
    // 11/8 lost C above, which re-overlaid it onto B's route; drop it too.
    sdx.apply_update(B, &Update::withdraw([p("11.0.0.0/8")]));
    assert_eq!(sdx.incremental_stats().overlay_rules, live(&sdx));
    assert_eq!(sdx.overlays().len(), 0);
    assert_eq!(sdx.incremental_stats().overlay_rules, 0);
}
