//! Synthetic IXP topologies with the participant/prefix skew of the large
//! European exchanges the paper measured (§6.1): roughly 1% of member ASes
//! originate more than half of all prefixes, while the bottom 90% together
//! announce around 1%.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdx_bgp::{AsPath, Asn, PathAttributes};
use sdx_core::{Participant, ParticipantId, PortConfig, SdxRuntime};
use sdx_ip::{MacAddr, Prefix, PrefixSet};
use serde::{Deserialize, Serialize};

/// Profile of an exchange to synthesize.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IxpProfile {
    /// Display name.
    pub name: String,
    /// Number of member ASes.
    pub participants: usize,
    /// Total distinct prefixes announced across all members.
    pub prefixes: usize,
    /// Fraction of members attached with two ports instead of one.
    pub multi_port_fraction: f64,
    /// Fraction of prefixes also announced by a second member (a customer
    /// prefix carried by another transit at the exchange). Multi-homing is
    /// what makes forwarding-equivalence classes outnumber participants,
    /// as in Figure 6.
    pub multi_home_fraction: f64,
    /// Skew exponent of the rank-weighted prefix-count distribution
    /// (2.0 reproduces the published AMS-IX skew closely).
    pub skew: f64,
}

impl IxpProfile {
    /// A profile shaped like AMS-IX (scaled by the caller's prefix budget).
    pub fn ams_ix(participants: usize, prefixes: usize) -> Self {
        IxpProfile {
            name: "AMS-IX".into(),
            participants,
            prefixes,
            multi_port_fraction: 0.2,
            multi_home_fraction: 0.3,
            skew: 2.0,
        }
    }

    /// A profile shaped like DE-CIX.
    pub fn de_cix(participants: usize, prefixes: usize) -> Self {
        IxpProfile {
            name: "DE-CIX".into(),
            ..Self::ams_ix(participants, prefixes)
        }
    }

    /// A profile shaped like LINX.
    pub fn linx(participants: usize, prefixes: usize) -> Self {
        IxpProfile {
            name: "LINX".into(),
            ..Self::ams_ix(participants, prefixes)
        }
    }
}

/// One member's announcement batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Announcement {
    /// The announcing participant.
    pub from: ParticipantId,
    /// The prefixes it originates/carries.
    pub prefixes: Vec<Prefix>,
    /// The attributes it announces them with.
    pub attrs: PathAttributes,
}

/// A synthesized exchange.
#[derive(Debug, Clone)]
pub struct IxpTopology {
    /// The generating profile.
    pub profile: IxpProfile,
    /// Member configurations.
    pub participants: Vec<Participant>,
    /// Announcements, one batch per member (members may have several).
    pub announcements: Vec<Announcement>,
}

impl IxpTopology {
    /// Generate deterministically from a seed.
    pub fn generate(profile: IxpProfile, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = profile.participants;

        // Rank-weighted prefix counts: weight(rank) = rank^-skew.
        let weights: Vec<f64> = (1..=n).map(|r| (r as f64).powf(-profile.skew)).collect();
        let total_weight: f64 = weights.iter().sum();
        let mut counts: Vec<usize> = weights
            .iter()
            .map(|w| ((w / total_weight) * profile.prefixes as f64).round() as usize)
            .map(|c| c.max(1))
            .collect();
        // Trim/pad to the exact total.
        let mut total: usize = counts.iter().sum();
        let mut i = 0;
        while total > profile.prefixes && i < counts.len() {
            if counts[i] > 1 {
                counts[i] -= 1;
                total -= 1;
            } else {
                i += 1;
            }
        }
        while total < profile.prefixes {
            counts[0] += 1;
            total += 1;
        }

        let mut participants = Vec::with_capacity(n);
        let mut announcements = Vec::with_capacity(n);
        let mut next_prefix: u32 = 0x0400_0000; // 4.0.0.0, /24 blocks upward

        for (idx, count) in counts.iter().copied().enumerate() {
            let id = ParticipantId(idx as u32 + 1);
            let asn = Asn(65_000 + idx as u32 + 1);
            let nports = if rng.gen_bool(profile.multi_port_fraction) {
                2
            } else {
                1
            };
            let ports: Vec<PortConfig> = (0..nports)
                .map(|k| {
                    let port = (idx as u32 + 1) * 10 + k;
                    PortConfig {
                        port,
                        mac: MacAddr::from_u64(0x0a00_0000_0000 + port as u64),
                        ip: Ipv4Addr::from(0x0afe_0000 + port),
                    }
                })
                .collect();
            let router_ip = ports[0].ip;
            participants.push(Participant::new(id, asn, ports));

            let mut prefixes = Vec::with_capacity(count);
            for _ in 0..count {
                prefixes.push(Prefix::from_bits(next_prefix, 24));
                next_prefix += 256;
            }
            // AS path: the member, a few random transit hops, the origin.
            let hops = rng.gen_range(0..3);
            let mut path = vec![asn.0];
            for _ in 0..hops {
                path.push(rng.gen_range(1_000..60_000));
            }
            path.push(rng.gen_range(60_000..64_999));
            announcements.push(Announcement {
                from: id,
                prefixes,
                attrs: PathAttributes::new(AsPath::sequence(path), router_ip),
            });
        }

        // Multi-homing: a fraction of prefixes is additionally announced by
        // a second member (skew-sampled, so popular transits carry most of
        // them) with a longer AS path through the primary.
        let mut secondary: BTreeMap<usize, Vec<Prefix>> = BTreeMap::new();
        let primary: Vec<(usize, Prefix, u32)> = announcements
            .iter()
            .enumerate()
            .flat_map(|(i, a)| {
                let first_as = a.attrs.as_path.first_as().map(|x| x.0).unwrap_or(0);
                a.prefixes.iter().map(move |p| (i, *p, first_as))
            })
            .collect();
        for (primary_idx, prefix, _) in &primary {
            if !rng.gen_bool(profile.multi_home_fraction) {
                continue;
            }
            // Skewed secondary choice: rank^-1.5 over members.
            let r: f64 = rng.gen::<f64>();
            let rank = ((r.powf(2.0) * n as f64) as usize).min(n - 1);
            if rank == *primary_idx {
                continue;
            }
            secondary.entry(rank).or_default().push(*prefix);
        }
        for (idx, prefixes) in secondary {
            let asn = participants[idx].asn;
            let router_ip = participants[idx].ports[0].ip;
            // Carry the primary's path behind the secondary member.
            let base = &announcements[idx].attrs.as_path;
            let mut path: Vec<u32> = vec![asn.0];
            path.extend(base.asns().iter().skip(1).map(|a| a.0));
            path.push(rng.gen_range(60_000..64_999));
            announcements.push(Announcement {
                from: participants[idx].id,
                prefixes,
                attrs: PathAttributes::new(AsPath::sequence(path), router_ip),
            });
        }

        IxpTopology {
            profile,
            participants,
            announcements,
        }
    }

    /// Register every participant and announcement on an SDX runtime.
    pub fn install(&self, sdx: &mut SdxRuntime) {
        for p in &self.participants {
            sdx.add_participant(p.clone());
        }
        for a in &self.announcements {
            sdx.announce(a.from, a.prefixes.iter().copied(), a.attrs.clone());
        }
    }

    /// The prefixes a participant announces.
    pub fn announced_by(&self, id: ParticipantId) -> PrefixSet {
        self.announcements
            .iter()
            .filter(|a| a.from == id)
            .flat_map(|a| a.prefixes.iter().copied())
            .collect()
    }

    /// Every announced prefix (distinct).
    pub fn all_prefixes(&self) -> Vec<Prefix> {
        let set: PrefixSet = self
            .announcements
            .iter()
            .flat_map(|a| a.prefixes.iter().copied())
            .collect();
        set.into_iter().collect()
    }

    /// Participants sorted by announced-prefix count, descending (the
    /// "top" ASes of §6.1).
    pub fn by_prefix_count(&self) -> Vec<ParticipantId> {
        let mut counts: BTreeMap<ParticipantId, usize> = BTreeMap::new();
        for a in &self.announcements {
            *counts.entry(a.from).or_default() += a.prefixes.len();
        }
        let mut ids: Vec<ParticipantId> = self.participants.iter().map(|p| p.id).collect();
        ids.sort_by_key(|id| std::cmp::Reverse(counts.get(id).copied().unwrap_or(0)));
        ids
    }

    /// The share of prefixes announced by the top `fraction` of members.
    pub fn top_share(&self, fraction: f64) -> f64 {
        let order = self.by_prefix_count();
        let k = ((order.len() as f64 * fraction).ceil() as usize).max(1);
        let top: usize = order[..k]
            .iter()
            .map(|id| self.announced_by(*id).len())
            .sum();
        top as f64 / self.all_prefixes().len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> IxpTopology {
        IxpTopology::generate(IxpProfile::ams_ix(100, 5_000), 7)
    }

    #[test]
    fn deterministic_for_seed() {
        let a = IxpTopology::generate(IxpProfile::ams_ix(50, 1_000), 42);
        let b = IxpTopology::generate(IxpProfile::ams_ix(50, 1_000), 42);
        assert_eq!(a.participants, b.participants);
        assert_eq!(a.announcements, b.announcements);
        let c = IxpTopology::generate(IxpProfile::ams_ix(50, 1_000), 43);
        assert_ne!(a.announcements, c.announcements);
    }

    #[test]
    fn exact_totals() {
        let t = topo();
        assert_eq!(t.participants.len(), 100);
        assert_eq!(t.all_prefixes().len(), 5_000);
        // Prefixes are globally unique.
        let set: PrefixSet = t.all_prefixes().into_iter().collect();
        assert_eq!(set.len(), 5_000);
    }

    #[test]
    fn skew_matches_published_shape() {
        let t = IxpTopology::generate(IxpProfile::ams_ix(300, 30_000), 1);
        // ~1% of ASes announce more than 50%.
        assert!(
            t.top_share(0.01) > 0.5,
            "top 1% share = {}",
            t.top_share(0.01)
        );
        // The bottom 90% announce only a few percent.
        let bottom_90 = 1.0 - t.top_share(0.10);
        assert!(bottom_90 < 0.05, "bottom 90% share = {bottom_90}");
        // Everyone announces at least one prefix.
        for p in &t.participants {
            assert!(!t.announced_by(p.id).is_empty());
        }
    }

    #[test]
    fn install_populates_runtime() {
        let t = IxpTopology::generate(IxpProfile::ams_ix(20, 500), 3);
        let mut sdx = SdxRuntime::default();
        t.install(&mut sdx);
        assert_eq!(sdx.participants().count(), 20);
        assert_eq!(sdx.route_server().prefix_count(), 500);
    }

    #[test]
    fn ordering_is_by_prefix_count() {
        let t = topo();
        let order = t.by_prefix_count();
        let counts: Vec<usize> = order.iter().map(|id| t.announced_by(*id).len()).collect();
        assert!(counts.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn ports_are_unique_and_physical() {
        let t = topo();
        let mut seen = std::collections::BTreeSet::new();
        for p in &t.participants {
            for port in &p.ports {
                assert!(port.port < sdx_core::VPORT_BASE);
                assert!(seen.insert(port.port), "duplicate port {}", port.port);
            }
        }
    }
}
