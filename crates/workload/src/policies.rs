//! Participant policy generation following §6.1 of the paper:
//!
//! * ASes are classified as *eyeball*, *transit*, or *content* and sorted by
//!   announced-prefix count.
//! * The top 15% of eyeballs, the top 5% of transits, and a random 5% of
//!   content providers install custom policies.
//! * Content providers install outbound (application-specific peering)
//!   policies towards three random top eyeballs, plus one inbound policy
//!   matching one header field.
//! * Eyeball networks install inbound policies for half of the content
//!   providers, matching one randomly selected header field.
//! * Transit networks install outbound policies for one prefix group of half
//!   of the top eyeballs (destination prefixes plus one extra header field)
//!   and inbound policies proportional to the number of top content
//!   providers.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sdx_core::{Clause, ParticipantId, ParticipantPolicy};
use sdx_ip::PrefixSet;
use sdx_policy::{Field, Predicate};
use serde::{Deserialize, Serialize};

use crate::IxpTopology;

/// The §6.1 AS taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AsCategory {
    /// Access networks (destinations of most flows).
    Eyeball,
    /// Transit providers.
    Transit,
    /// Content providers (sources of most flows).
    Content,
}

/// Deterministically classify members: by index modulo — 50% eyeball,
/// 30% transit, 20% content, a plausible IXP mix.
pub fn classify(topology: &IxpTopology) -> BTreeMap<ParticipantId, AsCategory> {
    topology
        .participants
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let cat = match i % 10 {
                0..=4 => AsCategory::Eyeball,
                5..=7 => AsCategory::Transit,
                _ => AsCategory::Content,
            };
            (p.id, cat)
        })
        .collect()
}

/// The generated policy mix plus bookkeeping the benches report.
#[derive(Debug, Clone)]
pub struct PolicyMix {
    /// The policies, per participant (participants absent = default-only).
    pub policies: BTreeMap<ParticipantId, ParticipantPolicy>,
    /// Category assignment used.
    pub categories: BTreeMap<ParticipantId, AsCategory>,
    /// Total clause count.
    pub clauses: usize,
}

/// One random single-header-field predicate, per §6.1's "match on one
/// randomly selected header field".
fn random_field_match(rng: &mut StdRng, src_prefixes: Option<&PrefixSet>) -> Predicate {
    match rng.gen_range(0..4u8) {
        0 => Predicate::test(Field::DstPort, rng.gen_range(1u16..1024)),
        1 => Predicate::test(Field::SrcPort, rng.gen_range(1u16..1024)),
        2 => Predicate::test(Field::IpProto, if rng.gen_bool(0.5) { 6u8 } else { 17u8 }),
        _ => match src_prefixes {
            Some(set) if !set.is_empty() => {
                Predicate::in_prefixes(Field::SrcIp, sample_prefixes(rng, set, 4))
            }
            _ => Predicate::test(Field::DstPort, rng.gen_range(1u16..1024)),
        },
    }
}

fn sample_prefixes(rng: &mut StdRng, set: &PrefixSet, k: usize) -> PrefixSet {
    let all: Vec<_> = set.iter().copied().collect();
    all.choose_multiple(rng, k.min(all.len()))
        .copied()
        .collect()
}

/// Generate the §6.1 policy mix for a topology.
pub fn generate_policies(topology: &IxpTopology, seed: u64) -> PolicyMix {
    let mut rng = StdRng::seed_from_u64(seed);
    let categories = classify(topology);
    let order = topology.by_prefix_count();

    let ranked = |cat: AsCategory| -> Vec<ParticipantId> {
        order
            .iter()
            .copied()
            .filter(|id| categories.get(id) == Some(&cat))
            .collect()
    };
    let eyeballs = ranked(AsCategory::Eyeball);
    let transits = ranked(AsCategory::Transit);
    let contents = ranked(AsCategory::Content);

    let take_frac = |v: &[ParticipantId], f: f64| -> Vec<ParticipantId> {
        // At least one when the category is populated; empty categories
        // (tiny topologies) stay empty instead of indexing out of range.
        let k = ((v.len() as f64 * f).ceil() as usize).max(1).min(v.len());
        v[..k].to_vec()
    };
    let top_eyeballs = take_frac(&eyeballs, 0.15);
    let top_transits = take_frac(&transits, 0.05);
    let mut content_shuffled = contents.clone();
    content_shuffled.shuffle(&mut rng);
    let active_contents = take_frac(&content_shuffled, 0.05);

    let mut policies: BTreeMap<ParticipantId, ParticipantPolicy> = BTreeMap::new();

    // Content providers: outbound app-specific peering to 3 random top
    // eyeballs, one inbound redirection policy.
    for &cp in &active_contents {
        let mut policy = ParticipantPolicy::new();
        let mut targets = top_eyeballs.clone();
        targets.retain(|t| *t != cp);
        targets.shuffle(&mut rng);
        for &target in targets.iter().take(3) {
            let port = [80u16, 443, 8080, 1935][rng.gen_range(0..4)];
            policy = policy.outbound(Clause::fwd(Predicate::test(Field::DstPort, port), target));
        }
        let own_port = port_of(topology, cp);
        policy = policy.inbound(Clause::to_port(
            random_field_match(&mut rng, None),
            own_port,
        ));
        policies.insert(cp, policy);
    }

    // Eyeballs: inbound policies for half of the (policy-active) content
    // providers, one random header field each — typically steering by the
    // content provider's source prefixes.
    for &eb in &top_eyeballs {
        let mut policy = policies.remove(&eb).unwrap_or_default();
        let half = (active_contents.len() / 2).max(1);
        let own_port = port_of(topology, eb);
        for &cp in active_contents.iter().take(half) {
            let src = topology.announced_by(cp);
            policy = policy.inbound(Clause::to_port(
                random_field_match(&mut rng, Some(&src)),
                own_port,
            ));
        }
        policies.insert(eb, policy);
    }

    // Transit providers: outbound policies for one prefix group of half of
    // the top eyeballs (destination prefixes + one header field), plus
    // inbound policies proportional to the top content providers.
    for &tr in &top_transits {
        let mut policy = policies.remove(&tr).unwrap_or_default();
        let half = (top_eyeballs.len() / 2).max(1);
        for &eb in top_eyeballs.iter().take(half) {
            if eb == tr {
                continue;
            }
            let dst = topology.announced_by(eb);
            if dst.is_empty() {
                continue;
            }
            let scoped = sample_prefixes(&mut rng, &dst, 8);
            policy = policy
                .outbound(Clause::fwd(random_field_match(&mut rng, None), eb).for_prefixes(scoped));
        }
        let own_port = port_of(topology, tr);
        for _ in 0..(active_contents.len().max(1)) {
            policy = policy.inbound(Clause::to_port(
                random_field_match(&mut rng, None),
                own_port,
            ));
        }
        policies.insert(tr, policy);
    }

    let clauses = policies.values().map(|p| p.len()).sum();
    PolicyMix {
        policies,
        categories,
        clauses,
    }
}

/// Generate a policy mix sized to produce approximately `target_groups`
/// forwarding equivalence classes, the controlled variable of Figures 7–9.
///
/// The paper selects the number of prefix groups directly ("we select the
/// number of prefix groups based on our analysis ... Figure 6") and then
/// installs the §6.1 policy mix over them. We reproduce that by
/// partitioning the top eyeballs' announcements into `target_groups`
/// disjoint chunks and scoping each transit/content outbound clause to one
/// chunk; every chunk with at least one clause becomes (at least) one FEC.
/// More participants reuse the same chunks, so rules grow with participant
/// count at fixed group count, as in Figure 7.
pub fn generate_policies_with_groups(
    topology: &IxpTopology,
    target_groups: usize,
    seed: u64,
) -> PolicyMix {
    let mut rng = StdRng::seed_from_u64(seed);
    let categories = classify(topology);
    let order = topology.by_prefix_count();

    let eyeballs: Vec<ParticipantId> = order
        .iter()
        .copied()
        .filter(|id| categories.get(id) == Some(&AsCategory::Eyeball))
        .collect();
    let authors: Vec<ParticipantId> = order
        .iter()
        .copied()
        .filter(|id| {
            matches!(
                categories.get(id),
                Some(AsCategory::Transit) | Some(AsCategory::Content)
            )
        })
        .collect();
    let top_eyeballs: Vec<ParticipantId> = eyeballs
        .iter()
        .copied()
        .take((eyeballs.len() / 4).max(3))
        .collect();

    // Partition the top eyeballs' announcements into `target_groups` chunks.
    let mut chunks: Vec<(ParticipantId, PrefixSet)> = Vec::new();
    let per_eyeball = (target_groups / top_eyeballs.len().max(1)).max(1);
    for &eb in &top_eyeballs {
        let prefixes: Vec<_> = topology.announced_by(eb).into_iter().collect();
        if prefixes.is_empty() {
            continue;
        }
        let chunk_len = (prefixes.len() / per_eyeball).max(1);
        for chunk in prefixes.chunks(chunk_len).take(per_eyeball) {
            chunks.push((eb, chunk.iter().copied().collect()));
        }
    }
    chunks.truncate(target_groups);

    // Every policy-active author installs clauses over a sample of chunks;
    // authors (and hence total clauses) grow with the participant count, so
    // rule counts at a fixed group count grow with participants (Figure 7).
    let active = authors.len().min((authors.len() / 2).max(2));
    let clauses_per_author = (target_groups / 10).clamp(1, chunks.len().max(1));
    let mut policies: BTreeMap<ParticipantId, ParticipantPolicy> = BTreeMap::new();
    let mut next_chunk = 0usize;
    for &author in authors.iter().take(active) {
        let mut policy = ParticipantPolicy::new();
        for _ in 0..clauses_per_author {
            let (eb, scope) = &chunks[next_chunk % chunks.len()];
            next_chunk += 1;
            if *eb == author {
                continue;
            }
            policy = policy.outbound(
                Clause::fwd(random_field_match(&mut rng, None), *eb).for_prefixes(scope.clone()),
            );
        }
        if !policy.is_empty() {
            policies.insert(author, policy);
        }
    }

    let clauses = policies.values().map(|p| p.len()).sum();
    PolicyMix {
        policies,
        categories,
        clauses,
    }
}

fn port_of(topology: &IxpTopology, id: ParticipantId) -> u32 {
    topology
        .participants
        .iter()
        .find(|p| p.id == id)
        .and_then(|p| p.primary_port())
        .map(|p| p.port)
        .expect("generated participants have ports")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IxpProfile;

    fn topo() -> IxpTopology {
        IxpTopology::generate(IxpProfile::ams_ix(100, 3_000), 11)
    }

    #[test]
    fn deterministic() {
        let t = topo();
        let a = generate_policies(&t, 5);
        let b = generate_policies(&t, 5);
        assert_eq!(a.policies, b.policies);
        assert_eq!(a.clauses, b.clauses);
    }

    #[test]
    fn categories_cover_everyone() {
        let t = topo();
        let cats = classify(&t);
        assert_eq!(cats.len(), t.participants.len());
        let eyeballs = cats.values().filter(|c| **c == AsCategory::Eyeball).count();
        assert!(eyeballs >= t.participants.len() / 3);
    }

    #[test]
    fn only_a_subset_has_policies() {
        let t = topo();
        let mix = generate_policies(&t, 5);
        assert!(!mix.policies.is_empty());
        assert!(mix.policies.len() < t.participants.len() / 2);
        assert!(mix.clauses > 0);
    }

    #[test]
    fn content_outbound_targets_eyeballs() {
        let t = topo();
        let mix = generate_policies(&t, 5);
        for (id, policy) in &mix.policies {
            if mix.categories.get(id) == Some(&AsCategory::Content) {
                for clause in &policy.outbound {
                    if let sdx_core::Dest::Participant(to) = clause.dest {
                        assert_eq!(mix.categories.get(&to), Some(&AsCategory::Eyeball));
                    }
                }
            }
        }
    }

    #[test]
    fn transit_outbound_is_prefix_scoped() {
        let t = topo();
        let mix = generate_policies(&t, 5);
        let mut saw_scoped = false;
        for (id, policy) in &mix.policies {
            if mix.categories.get(id) == Some(&AsCategory::Transit) {
                for clause in &policy.outbound {
                    assert!(clause.dst_prefixes.is_some());
                    saw_scoped = true;
                }
            }
        }
        assert!(saw_scoped);
    }

    #[test]
    fn generated_mix_compiles_end_to_end() {
        let t = IxpTopology::generate(IxpProfile::ams_ix(40, 800), 2);
        let mix = generate_policies(&t, 2);
        let mut sdx = sdx_core::SdxRuntime::default();
        t.install(&mut sdx);
        for (id, policy) in mix.policies {
            sdx.set_policy(id, policy);
        }
        let stats = sdx.compile().expect("compiles");
        assert!(stats.rules > 0);
        assert!(stats.groups > 0);
    }
}
