//! BGP feed analysis following the paper's Table 1 methodology: count
//! updates and updated prefixes, *after discarding updates caused by BGP
//! session resets* (the paper's ref. [23], Zhang et al., "Identifying BGP
//! routing table transfer").
//!
//! A session reset shows up in a feed as a peer re-announcing (almost) its
//! whole table in a short window. The detector slides a window over each
//! peer's announcements and discards windows whose distinct-prefix count
//! reaches a configurable fraction of the peer's table size.

use std::collections::{BTreeMap, BTreeSet};

use sdx_core::ParticipantId;
use sdx_ip::Prefix;
use serde::{Deserialize, Serialize};

use crate::{IxpTopology, TraceEvent};

/// Detector configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResetDetector {
    /// Window length in seconds.
    pub window_s: u64,
    /// Fraction of a peer's table re-announced within one window that
    /// classifies the window as a table transfer.
    pub table_fraction: f64,
}

impl Default for ResetDetector {
    fn default() -> Self {
        ResetDetector {
            window_s: 60,
            table_fraction: 0.8,
        }
    }
}

/// The analysis result: a Table 1 row's inputs plus discard accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedAnalysis {
    /// Updates in the raw feed.
    pub total_updates: usize,
    /// Updates discarded as session-reset table transfers.
    pub discarded_updates: usize,
    /// Updates retained for the statistics.
    pub retained_updates: usize,
    /// Distinct prefixes seeing a retained update.
    pub prefixes_updated: usize,
    /// Peers with at least one detected reset.
    pub peers_with_resets: usize,
}

/// Analyze a time-ordered feed against the announcing peers' table sizes.
pub fn analyze_feed(
    events: &[TraceEvent],
    table_sizes: &BTreeMap<ParticipantId, usize>,
    detector: ResetDetector,
) -> FeedAnalysis {
    // Bucket announcements per peer per window and find reset windows.
    let mut per_window: BTreeMap<(ParticipantId, u64), BTreeSet<Prefix>> = BTreeMap::new();
    for e in events {
        let window = e.at_s / detector.window_s.max(1);
        let entry = per_window.entry((e.from, window)).or_default();
        for p in e.update.touched_prefixes() {
            entry.insert(*p);
        }
    }
    let mut reset_windows: BTreeSet<(ParticipantId, u64)> = BTreeSet::new();
    let mut peers_with_resets: BTreeSet<ParticipantId> = BTreeSet::new();
    for ((peer, window), prefixes) in &per_window {
        let table = table_sizes.get(peer).copied().unwrap_or(0);
        if table > 0 && prefixes.len() as f64 >= detector.table_fraction * table as f64 {
            reset_windows.insert((*peer, *window));
            peers_with_resets.insert(*peer);
        }
    }

    let mut discarded = 0usize;
    let mut retained = 0usize;
    let mut touched: BTreeSet<Prefix> = BTreeSet::new();
    for e in events {
        let window = e.at_s / detector.window_s.max(1);
        let n = e.update.touched_prefixes().count();
        if reset_windows.contains(&(e.from, window)) {
            discarded += n;
        } else {
            retained += n;
            touched.extend(e.update.touched_prefixes().copied());
        }
    }

    FeedAnalysis {
        total_updates: discarded + retained,
        discarded_updates: discarded,
        retained_updates: retained,
        prefixes_updated: touched.len(),
        peers_with_resets: peers_with_resets.len(),
    }
}

/// Per-peer table sizes of a topology (the denominator of the detector).
pub fn table_sizes(topology: &IxpTopology) -> BTreeMap<ParticipantId, usize> {
    topology
        .participants
        .iter()
        .map(|p| (p.id, topology.announced_by(p.id).len()))
        .collect()
}

/// Synthesize a session reset: the peer re-announces its entire table at
/// `at_s` (what a BGP session re-establishment looks like in a feed).
pub fn inject_session_reset(
    topology: &IxpTopology,
    peer: ParticipantId,
    at_s: u64,
) -> Vec<TraceEvent> {
    topology
        .announcements
        .iter()
        .filter(|a| a.from == peer)
        .map(|a| TraceEvent {
            at_s,
            from: peer,
            update: sdx_bgp::Update::announce(a.prefixes.iter().copied(), a.attrs.clone()),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_trace, IxpProfile, TraceConfig};

    fn topo() -> IxpTopology {
        IxpTopology::generate(IxpProfile::ams_ix(20, 500), 8)
    }

    fn short_trace(t: &IxpTopology) -> Vec<TraceEvent> {
        generate_trace(
            t,
            TraceConfig {
                duration_s: 3_600,
                ..Default::default()
            },
            9,
        )
        .events
    }

    #[test]
    fn clean_feed_retains_everything() {
        let t = topo();
        let events = short_trace(&t);
        let analysis = analyze_feed(&events, &table_sizes(&t), ResetDetector::default());
        assert_eq!(analysis.discarded_updates, 0);
        assert_eq!(analysis.retained_updates, analysis.total_updates);
        assert_eq!(analysis.peers_with_resets, 0);
        assert!(analysis.prefixes_updated > 0);
    }

    #[test]
    fn injected_reset_is_discarded() {
        let t = topo();
        let mut events = short_trace(&t);
        let victim = t.participants[0].id; // the biggest table
        let reset = inject_session_reset(&t, victim, 1_800);
        assert!(!reset.is_empty());
        events.extend(reset);
        events.sort_by_key(|e| e.at_s);

        let clean = analyze_feed(&short_trace(&t), &table_sizes(&t), ResetDetector::default());
        let analysis = analyze_feed(&events, &table_sizes(&t), ResetDetector::default());
        assert_eq!(analysis.peers_with_resets, 1);
        assert!(analysis.discarded_updates >= t.announced_by(victim).len());
        // The retained statistics stay close to the clean feed's (organic
        // updates in the reset window are collateral, which is the
        // methodology's accepted cost).
        assert!(analysis.retained_updates <= clean.total_updates);
        assert!(analysis.retained_updates as f64 >= 0.9 * clean.total_updates as f64);
    }

    #[test]
    fn small_reannouncements_are_not_resets() {
        let t = topo();
        // A peer re-announcing a handful of prefixes is churn, not a reset.
        let victim = t.participants[0].id;
        let full = inject_session_reset(&t, victim, 100);
        let partial: Vec<TraceEvent> = full
            .into_iter()
            .map(|mut e| {
                e.update.announce.truncate(2);
                e
            })
            .collect();
        let analysis = analyze_feed(&partial, &table_sizes(&t), ResetDetector::default());
        assert_eq!(analysis.discarded_updates, 0);
    }

    #[test]
    fn detector_fraction_is_respected() {
        let t = topo();
        let victim = t.participants[0].id;
        let events = inject_session_reset(&t, victim, 100);
        // With an impossible threshold nothing is discarded.
        let lax = ResetDetector {
            table_fraction: 1.1,
            ..Default::default()
        };
        assert_eq!(
            analyze_feed(&events, &table_sizes(&t), lax).discarded_updates,
            0
        );
    }
}
