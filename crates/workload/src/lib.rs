//! Synthetic workloads reproducing the SDX paper's evaluation setup (§6.1,
//! Table 1): IXP topologies with realistic participant/prefix skew, the
//! eyeball/transit/content policy mix, BGP update traces with the published
//! burst statistics, and virtual-time traffic generation for the deployment
//! experiments.
//!
//! All generators are deterministic given a seed.

mod analysis;
mod policies;
mod topology;
mod traffic;
mod updates;

pub use analysis::{analyze_feed, inject_session_reset, table_sizes, FeedAnalysis, ResetDetector};
pub use policies::{
    classify, generate_policies, generate_policies_with_groups, AsCategory, PolicyMix,
};
pub use topology::{Announcement, IxpProfile, IxpTopology};
pub use traffic::{render_series, run_timeline, FlowSpec, TimelineEvent, TrafficBin};
pub use updates::{
    burst_stats, generate_trace, generate_trace_with, stream_trace, table1_row, trace_stats,
    BurstStats, Table1Row, TraceConfig, TraceEvent, TraceStream, UpdateTrace,
};
