//! BGP update traces with the burst statistics of Table 1 / §4.3.2:
//!
//! * only 10–14% of prefixes see any update over a week;
//! * updates arrive in bursts, 75% of which touch at most three prefixes;
//! * inter-burst gaps are ≥ 10 s 75% of the time and ≥ 60 s half the time.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sdx_bgp::{PathAttributes, Update};
use sdx_core::ParticipantId;
use sdx_ip::Prefix;
use serde::{Deserialize, Serialize};

use crate::IxpTopology;

/// Trace generation knobs; the defaults reproduce the published statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Trace duration in (virtual) seconds. A week is 604 800.
    pub duration_s: u64,
    /// Fraction of prefixes eligible to flap (the "unstable" set).
    pub unstable_fraction: f64,
    /// Probability an update is a withdrawal (vs a re-announcement with a
    /// different path).
    pub withdraw_probability: f64,
    /// Mean number of raw feed updates per best-path-change event (BGP path
    /// exploration and duplicate announcements). Table 1 counts raw updates;
    /// the SDX only reacts to the change events.
    pub raw_multiplicity_mean: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            duration_s: 604_800,
            unstable_fraction: 0.12,
            withdraw_probability: 0.25,
            raw_multiplicity_mean: 420.0,
        }
    }
}

/// One timestamped update from a participant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Virtual time, seconds from trace start.
    pub at_s: u64,
    /// The announcing/withdrawing participant.
    pub from: ParticipantId,
    /// The update.
    pub update: Update,
}

/// A generated trace plus its summary statistics.
#[derive(Debug, Clone)]
pub struct UpdateTrace {
    /// The events, time-ordered.
    pub events: Vec<TraceEvent>,
    /// Number of bursts generated.
    pub bursts: usize,
    /// Distinct prefixes that saw at least one update.
    pub prefixes_updated: usize,
    /// Total best-path-change events (announcements + withdrawals).
    pub updates: usize,
    /// Modeled raw feed updates (change events times path-exploration
    /// multiplicity) — the quantity Table 1 reports.
    pub raw_updates: usize,
    /// Size of the unstable prefix set; over a full-length trace the
    /// background churn touches all of it, so Table 1's "prefixes seeing
    /// updates" equals this.
    pub unstable_prefixes: usize,
}

/// Draw an inter-burst gap matching the published distribution.
fn gap_seconds(rng: &mut StdRng) -> u64 {
    let r: f64 = rng.gen();
    if r < 0.25 {
        rng.gen_range(1..10) // the impatient quartile
    } else if r < 0.50 {
        rng.gen_range(10..60)
    } else {
        rng.gen_range(60..600) // half the gaps exceed a minute
    }
}

/// Draw a burst size: 75% ≤ 3 prefixes, a tail up to ~100, and (rarely)
/// a four-digit burst like the single >1000-prefix event the paper saw.
fn burst_size(rng: &mut StdRng) -> usize {
    let r: f64 = rng.gen();
    if r < 0.75 {
        rng.gen_range(1..=3)
    } else if r < 0.95 {
        rng.gen_range(4..=20)
    } else if r < 0.9995 {
        rng.gen_range(21..=100)
    } else {
        rng.gen_range(1_000..=2_000)
    }
}

/// Generate a trace over the topology's announced prefixes.
pub fn generate_trace(topology: &IxpTopology, config: TraceConfig, seed: u64) -> UpdateTrace {
    let mut events = Vec::new();
    let summary = generate_trace_with(topology, config, seed, |e| events.push(e));
    UpdateTrace { events, ..summary }
}

/// Streaming trace statistics: runs the same generator without storing the
/// events (full-scale Table 1 traces have tens of millions of updates).
pub fn trace_stats(topology: &IxpTopology, config: TraceConfig, seed: u64) -> UpdateTrace {
    generate_trace_with(topology, config, seed, |_| {})
}

/// The generator core: emits every event to `sink` and returns the summary
/// (with an empty `events` vector). Implemented on top of [`TraceStream`],
/// so the pulled and pushed forms produce identical event sequences.
pub fn generate_trace_with(
    topology: &IxpTopology,
    config: TraceConfig,
    seed: u64,
    mut sink: impl FnMut(TraceEvent),
) -> UpdateTrace {
    let mut stream = stream_trace(topology, config, seed);
    for e in stream.by_ref() {
        sink(e);
    }
    stream.summary()
}

/// A lazily generated update trace: the [`Iterator`] form of
/// [`generate_trace_with`], pulling one [`TraceEvent`] at a time so an
/// event loop can interleave trace consumption with other (virtual-time)
/// work without materializing millions of events. The random draw order is
/// identical to the batch generator's, so a given `(topology, config,
/// seed)` yields the same events either way.
#[derive(Debug, Clone)]
pub struct TraceStream {
    rng: StdRng,
    config: TraceConfig,
    /// The shuffled unstable subset; bursts touch contiguous runs of it.
    unstable: Vec<(Prefix, ParticipantId, PathAttributes)>,
    now: u64,
    burst_start: usize,
    burst_size: usize,
    burst_pos: usize,
    touched: std::collections::BTreeSet<Prefix>,
    bursts: usize,
    updates: usize,
    raw_updates: usize,
    done: bool,
}

/// Open a lazy trace over the topology's announced prefixes.
pub fn stream_trace(topology: &IxpTopology, config: TraceConfig, seed: u64) -> TraceStream {
    let mut rng = StdRng::seed_from_u64(seed);

    // The unstable subset: flaps are confined to it, so the fraction of
    // prefixes ever updated lands near `unstable_fraction`.
    // One instance per distinct prefix (multi-homed prefixes flap at their
    // primary announcer).
    let mut seen = std::collections::BTreeSet::new();
    let mut owners: Vec<(Prefix, ParticipantId, PathAttributes)> = topology
        .announcements
        .iter()
        .flat_map(|a| {
            a.prefixes
                .iter()
                .map(move |p| (*p, a.from, a.attrs.clone()))
        })
        .filter(|(p, _, _)| seen.insert(*p))
        .collect();
    owners.shuffle(&mut rng);
    let unstable_count = ((owners.len() as f64) * config.unstable_fraction)
        .round()
        .max(1.0) as usize;
    owners.truncate(unstable_count.min(owners.len()));

    TraceStream {
        rng,
        config,
        unstable: owners,
        now: 0,
        burst_start: 0,
        burst_size: 0,
        burst_pos: 0,
        touched: std::collections::BTreeSet::new(),
        bursts: 0,
        updates: 0,
        raw_updates: 0,
        done: false,
    }
}

impl TraceStream {
    /// The summary so far (with an empty `events` vector); the full-trace
    /// statistics once the stream is exhausted.
    pub fn summary(&self) -> UpdateTrace {
        UpdateTrace {
            events: Vec::new(),
            bursts: self.bursts,
            prefixes_updated: self.touched.len(),
            updates: self.updates,
            raw_updates: self.raw_updates,
            unstable_prefixes: self.unstable.len(),
        }
    }

    /// Virtual time of the most recently emitted burst, seconds.
    pub fn now(&self) -> u64 {
        self.now
    }
}

impl Iterator for TraceStream {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        loop {
            if self.done {
                return None;
            }
            if self.burst_pos < self.burst_size {
                let k = self.burst_pos;
                self.burst_pos += 1;
                let idx = (self.burst_start + k) % self.unstable.len();
                let (prefix, owner) = (self.unstable[idx].0, self.unstable[idx].1);
                self.touched.insert(prefix);
                self.updates += 1;
                // Raw-feed multiplicity: geometric-ish with the mean.
                let mean = self.config.raw_multiplicity_mean.max(1.0);
                self.raw_updates +=
                    1 + (-(1.0 - self.rng.gen::<f64>()).ln() * (mean - 1.0)) as usize;
                let update = if self.rng.gen_bool(self.config.withdraw_probability) {
                    Update::withdraw([prefix])
                } else {
                    // Re-announce with a perturbed path (a best-path change).
                    let mut attrs = self.unstable[idx].2.clone();
                    attrs.as_path = attrs
                        .as_path
                        .prepend(sdx_bgp::Asn(self.rng.gen_range(1_000..60_000)));
                    Update::announce([prefix], attrs)
                };
                return Some(TraceEvent {
                    at_s: self.now,
                    from: owner,
                    update,
                });
            }
            self.now += gap_seconds(&mut self.rng);
            if self.now >= self.config.duration_s {
                self.done = true;
                return None;
            }
            self.bursts += 1;
            self.burst_size = burst_size(&mut self.rng).min(self.unstable.len());
            // A burst touches a contiguous run of the (shuffled) unstable
            // set, approximating the correlated-prefix structure of real
            // bursts.
            self.burst_start = self.rng.gen_range(0..self.unstable.len());
            self.burst_pos = 0;
        }
    }
}

/// A Table 1 row: the summary statistics the paper reports per IXP dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Exchange name.
    pub ixp: String,
    /// Members in the synthetic dataset.
    pub peers: usize,
    /// Announced prefixes.
    pub prefixes: usize,
    /// Total BGP updates in the trace.
    pub bgp_updates: usize,
    /// Percentage of prefixes seeing at least one update.
    pub pct_prefixes_updated: f64,
}

/// Summarize a topology + trace as a Table 1 row. Reports raw feed updates
/// and the unstable-set size (the prefixes a week of churn touches).
pub fn table1_row(topology: &IxpTopology, trace: &UpdateTrace) -> Table1Row {
    let prefixes = topology.all_prefixes().len();
    Table1Row {
        ixp: topology.profile.name.clone(),
        peers: topology.profile.participants,
        prefixes,
        bgp_updates: trace.raw_updates,
        pct_prefixes_updated: 100.0 * trace.unstable_prefixes as f64 / prefixes as f64,
    }
}

/// Burst-level summary used to validate the trace against §4.3.2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstStats {
    /// Fraction of bursts touching ≤ 3 prefixes.
    pub small_burst_fraction: f64,
    /// Fraction of inter-burst gaps ≥ 10 s.
    pub gap_ge_10s_fraction: f64,
    /// Fraction of inter-burst gaps ≥ 60 s.
    pub gap_ge_60s_fraction: f64,
}

/// Compute burst statistics from a trace.
pub fn burst_stats(trace: &UpdateTrace) -> BurstStats {
    let mut sizes: Vec<usize> = Vec::new();
    let mut times: Vec<u64> = Vec::new();
    let mut last_t = None;
    for e in &trace.events {
        if last_t == Some(e.at_s) {
            *sizes.last_mut().unwrap() += 1;
        } else {
            sizes.push(1);
            times.push(e.at_s);
            last_t = Some(e.at_s);
        }
    }
    let gaps: Vec<u64> = times.windows(2).map(|w| w[1] - w[0]).collect();
    let frac = |pred: &dyn Fn(&u64) -> bool| {
        if gaps.is_empty() {
            return 0.0;
        }
        gaps.iter().filter(|g| pred(g)).count() as f64 / gaps.len() as f64
    };
    BurstStats {
        small_burst_fraction: if sizes.is_empty() {
            0.0
        } else {
            sizes.iter().filter(|s| **s <= 3).count() as f64 / sizes.len() as f64
        },
        gap_ge_10s_fraction: frac(&|g| *g >= 10),
        gap_ge_60s_fraction: frac(&|g| *g >= 60),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IxpProfile;

    fn topo() -> IxpTopology {
        IxpTopology::generate(IxpProfile::ams_ix(60, 4_000), 3)
    }

    #[test]
    fn deterministic() {
        let t = topo();
        let a = generate_trace(&t, TraceConfig::default(), 9);
        let b = generate_trace(&t, TraceConfig::default(), 9);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn stream_matches_batch_generator() {
        let t = topo();
        let config = TraceConfig {
            duration_s: 20_000,
            ..Default::default()
        };
        let batch = generate_trace(&t, config, 9);
        let mut stream = stream_trace(&t, config, 9);
        let pulled: Vec<TraceEvent> = stream.by_ref().collect();
        assert_eq!(pulled, batch.events);
        let summary = stream.summary();
        assert_eq!(summary.bursts, batch.bursts);
        assert_eq!(summary.updates, batch.updates);
        assert_eq!(summary.raw_updates, batch.raw_updates);
        assert_eq!(summary.prefixes_updated, batch.prefixes_updated);
        assert_eq!(summary.unstable_prefixes, batch.unstable_prefixes);
    }

    #[test]
    fn respects_unstable_fraction() {
        let t = topo();
        let trace = generate_trace(&t, TraceConfig::default(), 9);
        let frac = trace.prefixes_updated as f64 / t.all_prefixes().len() as f64;
        assert!(frac > 0.02 && frac <= 0.15, "updated fraction {frac}");
    }

    #[test]
    fn burst_statistics_match_paper() {
        let t = topo();
        let trace = generate_trace(&t, TraceConfig::default(), 9);
        let stats = burst_stats(&trace);
        assert!(stats.small_burst_fraction > 0.65, "{stats:?}");
        assert!(stats.gap_ge_10s_fraction > 0.65, "{stats:?}");
        assert!(stats.gap_ge_60s_fraction > 0.40, "{stats:?}");
        assert!(stats.gap_ge_60s_fraction < 0.62, "{stats:?}");
    }

    #[test]
    fn events_are_time_ordered_and_typed() {
        let t = topo();
        let trace = generate_trace(&t, TraceConfig::default(), 9);
        assert!(trace.events.windows(2).all(|w| w[0].at_s <= w[1].at_s));
        let withdrawals = trace
            .events
            .iter()
            .filter(|e| !e.update.withdraw.is_empty())
            .count();
        assert!(withdrawals > 0);
        assert!(withdrawals < trace.events.len());
    }

    #[test]
    fn table1_row_reports_percentages() {
        let t = topo();
        let trace = generate_trace(&t, TraceConfig::default(), 9);
        let row = table1_row(&t, &trace);
        assert_eq!(row.peers, 60);
        assert_eq!(row.prefixes, 4_000);
        assert!(row.pct_prefixes_updated > 5.0 && row.pct_prefixes_updated < 20.0);
        assert_eq!(row.bgp_updates, trace.raw_updates);
        // Raw updates are far more numerous than change events.
        assert!(trace.raw_updates > trace.updates * 50);
    }

    #[test]
    fn updates_apply_cleanly_to_a_runtime() {
        let t = IxpTopology::generate(IxpProfile::ams_ix(20, 300), 3);
        let mut sdx = sdx_core::SdxRuntime::default();
        t.install(&mut sdx);
        sdx.compile().unwrap();
        let trace = generate_trace(
            &t,
            TraceConfig {
                duration_s: 3_600,
                ..Default::default()
            },
            4,
        );
        for e in trace.events.iter().take(50) {
            sdx.apply_update(e.from, &e.update);
        }
        // The fast path processed them all.
        assert!(sdx.incremental_stats().updates > 0);
    }
}
