//! Virtual-time traffic generation for the deployment experiments
//! (Figure 5): constant-rate UDP flows pushed through the *actual* compiled
//! fabric, with per-bin egress accounting and scheduled control-plane
//! events.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use sdx_core::{FabricSim, ParticipantId};
use sdx_policy::{Field, Packet};
use serde::{Deserialize, Serialize};

/// One constant-bit-rate flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Sending participant (whose border router forwards the packets).
    pub from: ParticipantId,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Transport source port.
    pub src_port: u16,
    /// Transport destination port.
    pub dst_port: u16,
    /// Rate in Mbps (accounted, not byte-simulated).
    pub rate_mbps: f64,
}

impl FlowSpec {
    fn packet(&self) -> Packet {
        Packet::new()
            .with(Field::EthType, 0x0800u16)
            .with(Field::IpProto, 17u8)
            .with(Field::SrcIp, self.src)
            .with(Field::DstIp, self.dst)
            .with(Field::SrcPort, self.src_port)
            .with(Field::DstPort, self.dst_port)
    }
}

/// A scheduled control-plane event.
pub struct TimelineEvent {
    /// When it fires (virtual seconds).
    pub at_s: u64,
    /// What it does (policy install, BGP withdrawal, …). The callback gets
    /// the simulation so it can mutate the runtime; `FabricSim::sync` runs
    /// automatically afterwards.
    pub action: Box<dyn FnMut(&mut FabricSim)>,
}

impl TimelineEvent {
    /// Build an event.
    pub fn at(at_s: u64, action: impl FnMut(&mut FabricSim) + 'static) -> Self {
        TimelineEvent {
            at_s,
            action: Box::new(action),
        }
    }
}

/// Per-bin traffic accounting: Mbps delivered to each participant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficBin {
    /// Bin start, virtual seconds.
    pub t_s: u64,
    /// Mbps by receiving participant.
    pub mbps_by_participant: BTreeMap<ParticipantId, f64>,
    /// Mbps by (receiving participant, rewritten destination IP) — lets the
    /// wide-area load-balance experiment distinguish server instances.
    pub mbps_by_destination: BTreeMap<Ipv4Addr, f64>,
}

/// Run flows over a timeline. Each bin sends one probe packet per flow
/// through the real data plane and attributes the flow's rate to wherever
/// the probe was delivered (exactly what a constant-rate UDP flow does
/// between control-plane changes).
pub fn run_timeline(
    sim: &mut FabricSim,
    flows: &[FlowSpec],
    mut events: Vec<TimelineEvent>,
    duration_s: u64,
    bin_s: u64,
) -> Vec<TrafficBin> {
    events.sort_by_key(|e| e.at_s);
    let mut next_event = 0usize;
    let mut bins = Vec::new();
    sim.sync();

    let mut t = 0u64;
    while t < duration_s {
        while next_event < events.len() && events[next_event].at_s <= t {
            (events[next_event].action)(sim);
            sim.sync();
            next_event += 1;
        }
        sim.set_time_us(t * 1_000_000);
        let mut bin = TrafficBin {
            t_s: t,
            mbps_by_participant: BTreeMap::new(),
            mbps_by_destination: BTreeMap::new(),
        };
        // Group the bin's probes by sender so each group rides one batched
        // pipeline pass through the fabric (deliveries come back grouped
        // per probe, so per-flow attribution is unchanged).
        let mut by_sender: BTreeMap<ParticipantId, Vec<usize>> = BTreeMap::new();
        for (i, flow) in flows.iter().enumerate() {
            by_sender.entry(flow.from).or_default().push(i);
        }
        for (sender, idxs) in &by_sender {
            let probes: Vec<Packet> = idxs.iter().map(|&i| flows[i].packet()).collect();
            for (&i, deliveries) in idxs.iter().zip(sim.send_batch_from(*sender, &probes)) {
                let flow = &flows[i];
                for delivery in deliveries {
                    *bin.mbps_by_participant.entry(delivery.to).or_default() += flow.rate_mbps;
                    if let Some(dst) = delivery.packet.dst_ip() {
                        *bin.mbps_by_destination.entry(dst).or_default() += flow.rate_mbps;
                    }
                }
            }
        }
        bins.push(bin);
        t += bin_s;
    }
    bins
}

/// A named column extractor for [`render_series`].
pub type SeriesColumn<'a> = (&'a str, Box<dyn Fn(&TrafficBin) -> f64>);

/// Render bins as the tab-separated series the figure binaries print.
pub fn render_series(bins: &[TrafficBin], columns: &[SeriesColumn<'_>]) -> String {
    let mut out = String::from("time_s");
    for (name, _) in columns {
        out.push('\t');
        out.push_str(name);
    }
    out.push('\n');
    for bin in bins {
        out.push_str(&bin.t_s.to_string());
        for (_, f) in columns {
            out.push('\t');
            out.push_str(&format!("{:.2}", f(bin)));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IxpProfile, IxpTopology};
    use sdx_core::SdxRuntime;

    fn small_sim() -> (FabricSim, IxpTopology) {
        let t = IxpTopology::generate(IxpProfile::ams_ix(6, 60), 5);
        let mut sdx = SdxRuntime::default();
        t.install(&mut sdx);
        sdx.compile().unwrap();
        (FabricSim::new(sdx), t)
    }

    #[test]
    fn flows_are_accounted_per_bin() {
        let (mut sim, topo) = small_sim();
        let sender = topo.participants[0].id;
        // A destination announced by someone else but not by the sender
        // (senders keep their own prefixes off the fabric).
        let own = topo.announced_by(sender);
        let dst = topo
            .announced_by(topo.participants[1].id)
            .difference(&own)
            .iter()
            .next()
            .copied()
            .expect("participant 2 announces a prefix the sender does not")
            .first_addr();
        let flows = [FlowSpec {
            from: sender,
            src: Ipv4Addr::new(55, 0, 0, 1),
            dst,
            src_port: 1000,
            dst_port: 53,
            rate_mbps: 1.0,
        }];
        let bins = run_timeline(&mut sim, &flows, Vec::new(), 10, 1);
        assert_eq!(bins.len(), 10);
        for bin in &bins {
            let total: f64 = bin.mbps_by_participant.values().sum();
            assert!((total - 1.0).abs() < 1e-9, "bin {bin:?}");
        }
    }

    #[test]
    fn events_fire_once_at_their_time() {
        let (mut sim, _) = small_sim();
        let fired = std::rc::Rc::new(std::cell::Cell::new(0));
        let f = fired.clone();
        let events = vec![TimelineEvent::at(5, move |_sim| f.set(f.get() + 1))];
        run_timeline(&mut sim, &[], events, 10, 1);
        assert_eq!(fired.get(), 1);
    }

    #[test]
    fn render_series_is_tabular() {
        let bins = vec![TrafficBin {
            t_s: 0,
            mbps_by_participant: BTreeMap::from([(ParticipantId(1), 2.0)]),
            mbps_by_destination: BTreeMap::new(),
        }];
        let s = render_series(
            &bins,
            &[(
                "p1",
                Box::new(|b: &TrafficBin| {
                    b.mbps_by_participant
                        .get(&ParticipantId(1))
                        .copied()
                        .unwrap_or(0.0)
                }),
            )],
        );
        assert!(s.starts_with("time_s\tp1\n"));
        assert!(s.contains("0\t2.00"));
    }
}
