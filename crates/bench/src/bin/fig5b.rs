//! Regenerates Figure 5b (wide-area load balance over time). The scenario is
//! identical to `examples/wide_area_load_balancer.rs`; this binary exists so
//! every figure has a `sdx-bench` target.

fn main() {
    let status = std::process::Command::new(env!("CARGO"))
        .args(["run", "--quiet", "--example", "wide_area_load_balancer"])
        .status()
        .expect("run example");
    std::process::exit(status.code().unwrap_or(1));
}
