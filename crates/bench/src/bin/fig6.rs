//! Regenerates Figure 6: the number of prefix groups as a function of the
//! number of prefixes with SDX policies, for 100/200/300 participants —
//! the paper's exact methodology: MDS over P' = { pᵢ ∩ pₓ }.

use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};
use sdx_bench::arg_scale;
use sdx_core::minimum_disjoint_subsets;
use sdx_ip::PrefixSet;
use sdx_workload::{IxpProfile, IxpTopology};

fn main() {
    let scale = arg_scale(1.0);
    println!("# Figure 6 — prefix groups vs prefixes with SDX policies");
    println!("participants\tprefixes\tprefix_groups");
    let mut rng = StdRng::seed_from_u64(6);
    for &n in &[100usize, 200, 300] {
        // Like the paper: the top-N ASes (those announcing more than one
        // prefix) of an AMS-IX-sized table.
        let topology = IxpTopology::generate(IxpProfile::ams_ix(n, (30_000.0 * scale) as usize), 6);
        let mut all = topology.all_prefixes();
        all.shuffle(&mut rng);
        for &x in &[0usize, 5_000, 10_000, 15_000, 20_000, 25_000] {
            let x = ((x as f64) * scale) as usize;
            let px: PrefixSet = all.iter().take(x).copied().collect();
            let collection: Vec<PrefixSet> = topology
                .participants
                .iter()
                .map(|p| topology.announced_by(p.id).intersection(&px))
                .filter(|s| !s.is_empty())
                .collect();
            let groups = minimum_disjoint_subsets(&collection);
            println!("{n}\t{x}\t{}", groups.len());
        }
    }
}
