//! Streaming churn bench: drains an AMS-IX-profile Table-1 BGP update
//! trace through the churn engine's delta-install pipeline — route-server
//! decision → fragment recompile → rule-level delta in make-before-break
//! order against the live tuple-space index — while replaying packet load
//! on the sharded data plane and periodically running the paper's
//! background reoptimization.
//!
//! Reports sustained updates/sec, convergence-latency percentiles
//! (route-event ingress → first correctly-forwarded packet), per-event
//! delta rule counts, and the streamed-vs-batch forwarding-fingerprint
//! check: a one-shot recompile of the final RIB must forward identically.
//! Exits nonzero when the fingerprints differ or no update was processed.
//!
//! `SDX_BENCH_QUICK=1` shrinks to a CI-sized run (1 h virtual AMS-IX
//! churn); the full run covers 24 h. `SDX_BENCH_JSON=path` overrides the
//! artifact path; `SDX_DP_THREADS=N` sets the data-plane shard count.

use sdx_bench::{bench_json_path, build_sdx, quick_mode, write_bench_json};
use sdx_churn::{forwarding_fingerprint, ChurnConfig, ChurnEngine};
use sdx_core::CompileOptions;
use sdx_workload::{generate_trace, TraceConfig};

const SEED: u64 = 11;

fn main() {
    let quick = quick_mode();
    let (participants, prefixes, duration_s, replay_flows) = if quick {
        (14, 200, 3_600, 64)
    } else {
        (60, 4_000, 86_400, 512)
    };
    let shards = std::env::var("SDX_DP_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(4);

    eprintln!(
        "churn: {participants} participants, {prefixes} prefixes, {duration_s} s virtual trace"
    );
    let config = ChurnConfig {
        trace: TraceConfig {
            duration_s,
            ..Default::default()
        },
        seed: SEED,
        replay_interval_s: 60,
        replay_flows,
        reoptimize_interval_s: 1_800,
    };

    // Streamed: the engine drains the trace event by event.
    let (mut sdx, topology, _mix) =
        build_sdx(participants, prefixes, SEED, CompileOptions::default());
    sdx.set_dataplane_threads(shards);
    sdx.compile().expect("initial compile");
    let mut engine = ChurnEngine::new(sdx, topology.clone(), config);
    let report = engine.run();
    let streamed_fp = forwarding_fingerprint(engine.runtime_mut(), &topology, 4);

    // Batch oracle: same updates straight into the RIB, one recompile.
    let (mut batch, _, _) = build_sdx(participants, prefixes, SEED, CompileOptions::default());
    for e in &generate_trace(&topology, config.trace, SEED).events {
        batch.apply_update(e.from, &e.update);
    }
    batch.compile().expect("batch recompile");
    let batch_fp = forwarding_fingerprint(&mut batch, &topology, 4);
    let fingerprints_match = streamed_fp == batch_fp;

    eprintln!(
        "churn: {} events ({} bursts) in {:.2} s busy / {:.2} s wall -> {:.0} updates/s",
        report.events, report.bursts, report.update_busy_s, report.wall_s, report.updates_per_sec
    );
    eprintln!(
        "churn: convergence p50 {} us, p99 {} us, max {} us over {} samples ({} failures)",
        report.convergence_p50_us,
        report.convergence_p99_us,
        report.convergence_max_us,
        report.convergence_samples,
        report.convergence_failures
    );
    eprintln!(
        "churn: deltas +{} -{} rules (max {}/event, mean {:.1}), {} reoptimizes ({} forced), \
         {} exhaustions, {} replayed packets",
        report.delta_installed,
        report.delta_removed,
        report.delta_rules_max,
        report.delta_rules_mean,
        report.reoptimizes,
        report.reoptimizes_forced,
        report.overlay_exhausted,
        report.replayed_packets
    );
    println!("# fingerprint streamed {streamed_fp:016x}");
    println!("# fingerprint batch    {batch_fp:016x}");

    let records = vec![format!(
        concat!(
            "{{\"bench\":\"churn\",\"participants\":{},\"prefixes\":{},",
            "\"virtual_s\":{},\"events\":{},\"bursts\":{},\"updates_per_sec\":{:.1},",
            "\"convergence_p50_us\":{},\"convergence_p99_us\":{},\"convergence_max_us\":{},",
            "\"convergence_samples\":{},\"convergence_failures\":{},",
            "\"delta_installed\":{},\"delta_removed\":{},\"delta_rules_max\":{},",
            "\"delta_rules_mean\":{:.2},\"reoptimizes\":{},\"reoptimizes_forced\":{},",
            "\"overlay_exhausted\":{},\"install_errors\":{},",
            "\"replay_batches\":{},\"replayed_packets\":{},\"overlay_rules_final\":{},",
            "\"update_busy_s\":{:.3},\"wall_s\":{:.3},",
            "\"streamed_fingerprint\":\"{:016x}\",\"batch_fingerprint\":\"{:016x}\",",
            "\"streamed_eq_batch\":{}}}"
        ),
        participants,
        prefixes,
        report.virtual_s,
        report.events,
        report.bursts,
        report.updates_per_sec,
        report.convergence_p50_us,
        report.convergence_p99_us,
        report.convergence_max_us,
        report.convergence_samples,
        report.convergence_failures,
        report.delta_installed,
        report.delta_removed,
        report.delta_rules_max,
        report.delta_rules_mean,
        report.reoptimizes,
        report.reoptimizes_forced,
        report.overlay_exhausted,
        report.install_errors,
        report.replay_batches,
        report.replayed_packets,
        report.overlay_rules_final,
        report.update_busy_s,
        report.wall_s,
        streamed_fp,
        batch_fp,
        fingerprints_match
    )];

    let path = bench_json_path("BENCH_churn.json");
    write_bench_json(&path, &records).expect("write bench json");
    eprintln!("wrote {}", path.display());

    if !fingerprints_match {
        eprintln!("churn: FAIL — streamed and batch fingerprints differ");
        std::process::exit(1);
    }
    if report.events == 0 || report.convergence_samples == 0 {
        eprintln!("churn: FAIL — trace produced no measurable events");
        std::process::exit(1);
    }
}
