//! Streaming churn bench: drains an AMS-IX-profile Table-1 BGP update
//! trace through the churn engine's delta-install pipeline — route-server
//! decision → fragment recompile → rule-level delta in make-before-break
//! order against the live tuple-space index — while replaying packet load
//! on the sharded data plane and periodically running the paper's
//! background reoptimization.
//!
//! Reports sustained updates/sec, convergence-latency percentiles
//! (route-event ingress → first correctly-forwarded packet), per-event
//! delta rule counts, and the streamed-vs-batch forwarding-fingerprint
//! check: a one-shot recompile of the final RIB must forward identically.
//!
//! Three runs land in the artifact:
//! 1. `churn` — the unchecked baseline (as in prior revisions).
//! 2. `churn_checked` — the same trace with `delta_check = Deny`: every
//!    streamed delta passes the incremental header-space verifier before
//!    install. Records verdict counts, per-event check percentiles, and
//!    the throughput ratio against the baseline.
//! 3. `churn_delta_scale` — a 200-participant fabric with sparse
//!    from-scratch sampling: incremental vs from-scratch check latency
//!    percentiles, the p50 speedup, and verdict-agreement counts.
//!
//! Exits nonzero when fingerprints differ, no update was processed, or a
//! sampled incremental verdict disagrees with the from-scratch oracle.
//!
//! `SDX_BENCH_QUICK=1` shrinks to a CI-sized run (1 h virtual AMS-IX
//! churn); the full run covers 24 h. `SDX_BENCH_JSON=path` overrides the
//! artifact path; `SDX_DP_THREADS=N` sets the data-plane shard count.

use sdx_bench::{bench_json_path, build_sdx, percentile, quick_mode, write_bench_json};
use sdx_churn::{forwarding_fingerprint, ChurnConfig, ChurnEngine, ChurnReport};
use sdx_core::{AnalysisMode, CompileOptions};
use sdx_workload::{generate_trace, TraceConfig};

const SEED: u64 = 11;

/// Render the shared per-run fields of a churn record (caller appends
/// run-specific fields and the closing brace).
fn churn_record_head(bench: &str, participants: usize, prefixes: usize, r: &ChurnReport) -> String {
    format!(
        concat!(
            "{{\"bench\":\"{}\",\"participants\":{},\"prefixes\":{},",
            "\"virtual_s\":{},\"events\":{},\"bursts\":{},\"updates_per_sec\":{:.1},",
            "\"convergence_p50_us\":{},\"convergence_p99_us\":{},\"convergence_max_us\":{},",
            "\"convergence_samples\":{},\"convergence_failures\":{},",
            "\"delta_installed\":{},\"delta_removed\":{},\"delta_rules_max\":{},",
            "\"delta_rules_mean\":{:.2},\"reoptimizes\":{},\"reoptimizes_forced\":{},",
            "\"overlay_exhausted\":{},\"install_errors\":{},",
            "\"replay_batches\":{},\"replayed_packets\":{},\"overlay_rules_final\":{},",
            "\"update_busy_s\":{:.3},\"wall_s\":{:.3}"
        ),
        bench,
        participants,
        prefixes,
        r.virtual_s,
        r.events,
        r.bursts,
        r.updates_per_sec,
        r.convergence_p50_us,
        r.convergence_p99_us,
        r.convergence_max_us,
        r.convergence_samples,
        r.convergence_failures,
        r.delta_installed,
        r.delta_removed,
        r.delta_rules_max,
        r.delta_rules_mean,
        r.reoptimizes,
        r.reoptimizes_forced,
        r.overlay_exhausted,
        r.install_errors,
        r.replay_batches,
        r.replayed_packets,
        r.overlay_rules_final,
        r.update_busy_s,
        r.wall_s,
    )
}

/// The verdict/latency fields every checked run appends.
fn delta_check_fields(r: &ChurnReport) -> String {
    format!(
        concat!(
            ",\"delta_checked\":{},\"delta_certified\":{},\"delta_structural\":{},",
            "\"delta_reordered\":{},\"delta_rejected\":{},\"delta_denied\":{},",
            "\"check_p50_us\":{},\"check_p99_us\":{},\"check_max_us\":{},",
            "\"check_total_us\":{}"
        ),
        r.delta_checked,
        r.delta_certified,
        r.delta_structural,
        r.delta_reordered,
        r.delta_rejected,
        r.delta_denied,
        r.check_p50_us,
        r.check_p99_us,
        r.check_max_us,
        r.check_total_us,
    )
}

fn main() {
    let quick = quick_mode();
    let (participants, prefixes, duration_s, replay_flows) = if quick {
        (14, 200, 3_600, 64)
    } else {
        (60, 4_000, 86_400, 512)
    };
    let shards = std::env::var("SDX_DP_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(4);

    eprintln!(
        "churn: {participants} participants, {prefixes} prefixes, {duration_s} s virtual trace"
    );
    let config = ChurnConfig {
        trace: TraceConfig {
            duration_s,
            ..Default::default()
        },
        seed: SEED,
        replay_interval_s: 60,
        replay_flows,
        reoptimize_interval_s: 1_800,
    };

    // Streamed: the engine drains the trace event by event.
    let (mut sdx, topology, _mix) =
        build_sdx(participants, prefixes, SEED, CompileOptions::default());
    sdx.set_dataplane_threads(shards);
    sdx.compile().expect("initial compile");
    let mut engine = ChurnEngine::new(sdx, topology.clone(), config);
    let report = engine.run();
    let streamed_fp = forwarding_fingerprint(engine.runtime_mut(), &topology, 4);

    // Batch oracle: same updates straight into the RIB, one recompile.
    let (mut batch, _, _) = build_sdx(participants, prefixes, SEED, CompileOptions::default());
    for e in &generate_trace(&topology, config.trace, SEED).events {
        batch.apply_update(e.from, &e.update);
    }
    batch.compile().expect("batch recompile");
    let batch_fp = forwarding_fingerprint(&mut batch, &topology, 4);
    let fingerprints_match = streamed_fp == batch_fp;

    eprintln!(
        "churn: {} events ({} bursts) in {:.2} s busy / {:.2} s wall -> {:.0} updates/s",
        report.events, report.bursts, report.update_busy_s, report.wall_s, report.updates_per_sec
    );
    eprintln!(
        "churn: convergence p50 {} us, p99 {} us, max {} us over {} samples ({} failures)",
        report.convergence_p50_us,
        report.convergence_p99_us,
        report.convergence_max_us,
        report.convergence_samples,
        report.convergence_failures
    );
    eprintln!(
        "churn: deltas +{} -{} rules (max {}/event, mean {:.1}), {} reoptimizes ({} forced), \
         {} exhaustions, {} replayed packets",
        report.delta_installed,
        report.delta_removed,
        report.delta_rules_max,
        report.delta_rules_mean,
        report.reoptimizes,
        report.reoptimizes_forced,
        report.overlay_exhausted,
        report.replayed_packets
    );
    println!("# fingerprint streamed {streamed_fp:016x}");
    println!("# fingerprint batch    {batch_fp:016x}");
    // Checked run: identical trace, every streamed delta gated by the
    // incremental verifier in Deny mode. No from-scratch sampling — the
    // throughput figure isolates the incremental checker's overhead.
    let checked_opts = CompileOptions {
        delta_check: AnalysisMode::Deny,
        ..CompileOptions::default()
    };
    let (mut checked_sdx, _, _) = build_sdx(participants, prefixes, SEED, checked_opts);
    checked_sdx.set_dataplane_threads(shards);
    checked_sdx.compile().expect("initial compile (checked)");
    let mut checked_engine = ChurnEngine::new(checked_sdx, topology.clone(), config);
    let checked = checked_engine.run();
    let checked_fp = forwarding_fingerprint(checked_engine.runtime_mut(), &topology, 4);
    let checked_match = checked_fp == batch_fp;
    let checked_ratio = checked.updates_per_sec / report.updates_per_sec.max(f64::EPSILON);
    eprintln!(
        "churn_checked: {:.0} updates/s ({:.2}x baseline), {} checked \
         ({} structural, {} reordered, {} rejected, {} denied), check p50 {} us p99 {} us",
        checked.updates_per_sec,
        checked_ratio,
        checked.delta_checked,
        checked.delta_structural,
        checked.delta_reordered,
        checked.delta_rejected,
        checked.delta_denied,
        checked.check_p50_us,
        checked.check_p99_us
    );

    // Scale run: a 200-participant fabric with sparse from-scratch
    // sampling, measuring the incremental cache's advantage over a
    // ground-up header-space check of the full update schedule.
    // From-scratch checks run over the full tag-closed universe (seconds
    // each at this scale) — sample sparsely to bound bench wall time.
    let (scale_participants, scale_prefixes, scale_duration_s, scale_sample) = if quick {
        (200, 300, 3_600, 8)
    } else {
        (200, 600, 14_400, 8)
    };
    eprintln!(
        "churn_delta_scale: {scale_participants} participants, {scale_prefixes} prefixes, \
         sampling every {scale_sample}th check"
    );
    let scale_opts = CompileOptions {
        delta_check: AnalysisMode::Warn,
        ..CompileOptions::default()
    };
    let (mut scale_sdx, scale_topology, _) =
        build_sdx(scale_participants, scale_prefixes, SEED, scale_opts);
    scale_sdx.set_delta_check_sample(scale_sample);
    scale_sdx.set_delta_log_limit(65_536);
    scale_sdx.compile().expect("initial compile (scale)");
    let scale_config = ChurnConfig {
        trace: TraceConfig {
            duration_s: scale_duration_s,
            ..Default::default()
        },
        seed: SEED,
        replay_interval_s: 0,
        replay_flows: 0,
        reoptimize_interval_s: 1_800,
    };
    let mut scale_engine = ChurnEngine::new(scale_sdx, scale_topology, scale_config);
    let scale = scale_engine.run();
    let runtime = scale_engine.runtime_mut();
    let mut inc_us: Vec<u64> = runtime.delta_samples().iter().map(|(i, _)| *i).collect();
    let mut scratch_us: Vec<u64> = runtime.delta_samples().iter().map(|(_, s)| *s).collect();
    inc_us.sort_unstable();
    scratch_us.sort_unstable();
    let inc_p50 = percentile(&inc_us, 0.50);
    let inc_p99 = percentile(&inc_us, 0.99);
    let scratch_p50 = percentile(&scratch_us, 0.50);
    let scratch_p99 = percentile(&scratch_us, 0.99);
    let speedup_p50 = scratch_p50 as f64 / (inc_p50.max(1)) as f64;
    let agreed = runtime
        .delta_log()
        .iter()
        .filter(|r| r.agreed == Some(true))
        .count();
    let disagreed = runtime
        .delta_log()
        .iter()
        .filter(|r| r.agreed == Some(false))
        .count();
    eprintln!(
        "churn_delta_scale: {} samples, incremental p50 {} us / p99 {} us vs \
         from-scratch p50 {} us / p99 {} us ({:.1}x at p50), {} agreed / {} disagreed",
        inc_us.len(),
        inc_p50,
        inc_p99,
        scratch_p50,
        scratch_p99,
        speedup_p50,
        agreed,
        disagreed
    );

    let records = vec![
        format!(
            concat!(
                "{},\"streamed_fingerprint\":\"{:016x}\",\"batch_fingerprint\":\"{:016x}\",",
                "\"streamed_eq_batch\":{}}}"
            ),
            churn_record_head("churn", participants, prefixes, &report),
            streamed_fp,
            batch_fp,
            fingerprints_match
        ),
        format!(
            concat!(
                "{}{},\"checked_fingerprint\":\"{:016x}\",\"checked_eq_batch\":{},",
                "\"baseline_updates_per_sec\":{:.1},\"checked_over_baseline\":{:.3}}}"
            ),
            churn_record_head("churn_checked", participants, prefixes, &checked),
            delta_check_fields(&checked),
            checked_fp,
            checked_match,
            report.updates_per_sec,
            checked_ratio
        ),
        format!(
            concat!(
                "{}{},\"sample_every\":{},\"samples\":{},",
                "\"incremental_p50_us\":{},\"incremental_p99_us\":{},",
                "\"scratch_p50_us\":{},\"scratch_p99_us\":{},\"speedup_p50\":{:.1},",
                "\"agreed\":{},\"disagreed\":{}}}"
            ),
            churn_record_head(
                "churn_delta_scale",
                scale_participants,
                scale_prefixes,
                &scale
            ),
            delta_check_fields(&scale),
            scale_sample,
            inc_us.len(),
            inc_p50,
            inc_p99,
            scratch_p50,
            scratch_p99,
            speedup_p50,
            agreed,
            disagreed
        ),
    ];

    let path = bench_json_path("BENCH_churn.json");
    write_bench_json(&path, &records).expect("write bench json");
    eprintln!("wrote {}", path.display());

    if !fingerprints_match || !checked_match {
        eprintln!("churn: FAIL — streamed/checked and batch fingerprints differ");
        std::process::exit(1);
    }
    if report.events == 0 || report.convergence_samples == 0 {
        eprintln!("churn: FAIL — trace produced no measurable events");
        std::process::exit(1);
    }
    if checked.delta_checked == 0 || scale.delta_checked == 0 || inc_us.is_empty() {
        eprintln!("churn: FAIL — checked runs verified no deltas");
        std::process::exit(1);
    }
    if disagreed > 0 {
        eprintln!("churn: FAIL — incremental verdicts disagreed with the from-scratch oracle");
        std::process::exit(1);
    }
}
