//! Regenerates Figure 8: initial compilation time as a function of prefix
//! groups, for 100/200/300 participants.
//!
//! Knobs (environment):
//! - `SDX_THREADS` — fork-join workers for the compile pipeline (0 = one
//!   per core; default 1). The output is bit-identical at every setting.
//! - `SDX_BENCH_QUICK=1` — shrink the sweep so the CI smoke finishes in
//!   seconds.
//! - `SDX_BENCH_JSON` — where to write the machine-readable record array
//!   (default `BENCH_compile.json` in the working directory).
//! - `SDX_VERIFY=1` — run the whole-fabric reachability verifier on every
//!   compile (warn mode) plus a differential recompile check after BGP
//!   churn; the per-pass wall clocks land in the JSON records.
//!
//! Besides the human-readable table, each scale prints a
//! `# fingerprint <participants> <target> <hash>` line; the CI smoke diffs
//! these lines across thread counts to prove output identity.

use sdx_bench::{
    bench_json_path, compile_record, env_threads, quick_mode, verify_mode, write_bench_json,
};
use sdx_core::{AnalysisMode, CompileOptions, SdxRuntime};
use sdx_workload::{generate_policies_with_groups, IxpProfile, IxpTopology};

/// Figures 7–10 control the prefix-group count directly, so the table is
/// generated without multi-homing (each prefix has one announcer and the
/// group count tracks the policy partition).
fn single_homed(participants: usize, prefixes: usize) -> IxpProfile {
    IxpProfile {
        multi_home_fraction: 0.0,
        ..IxpProfile::ams_ix(participants, prefixes)
    }
}

fn main() {
    let threads = env_threads();
    let verify = verify_mode();
    let (sizes, targets, prefixes): (&[usize], &[usize], usize) = if quick_mode() {
        (&[30], &[100, 200], 3_000)
    } else {
        (&[100, 200, 300], &[200, 400, 600, 800, 1_000], 25_000)
    };

    println!("# Figure 8 — initial compilation time vs prefix groups (threads={threads})");
    println!("participants\ttarget_groups\tmeasured_groups\tcompile_ms");
    let mut records = Vec::new();
    for &n in sizes {
        let topology = IxpTopology::generate(single_homed(n, prefixes), 8);
        for &target in targets {
            let mix = generate_policies_with_groups(&topology, target, 8);
            let mut options = CompileOptions::with_threads(threads);
            if verify {
                options.verify = AnalysisMode::Warn;
            }
            let mut sdx = SdxRuntime::new(options);
            topology.install(&mut sdx);
            for (id, policy) in &mix.policies {
                sdx.set_policy(*id, policy.clone());
            }
            let mut stats = sdx.compile().expect("compiles");
            let fingerprint = sdx.compilation().expect("compiled").fabric.fingerprint();
            if verify {
                // Push a withdraw/re-announce through the §4.3.2 fast path,
                // then check the incrementally patched pipeline against a
                // from-scratch compile (modulo VNH tags).
                let batch = topology.announcements[0].clone();
                let churn = [batch.prefixes[0]];
                sdx.withdraw(batch.from, churn);
                sdx.announce(batch.from, churn, batch.attrs);
                let report = sdx.verify_differential().expect("compiled fabric");
                if !report.diagnostics.is_empty() {
                    eprintln!(
                        "# verify-diff: {} finding(s) at n={n} target={target}",
                        report.diagnostics.len()
                    );
                }
                // Re-read the stats so the differential wall clock lands in
                // the record alongside the reachability pass timings.
                stats = sdx.compilation().expect("compiled").stats;
            }
            println!(
                "{n}\t{target}\t{}\t{:.2}",
                stats.groups,
                stats.duration_us as f64 / 1_000.0
            );
            println!("# fingerprint\t{n}\t{target}\t{fingerprint:016x}");
            records.push(compile_record("fig8", n, target, fingerprint, &stats));
        }
    }

    let path = bench_json_path("BENCH_compile.json");
    write_bench_json(&path, &records).expect("write bench json");
    eprintln!("wrote {}", path.display());
}
