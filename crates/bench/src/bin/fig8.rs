//! Regenerates Figure 8: initial compilation time as a function of prefix
//! groups, for 100/200/300 participants.

use sdx_core::{CompileOptions, SdxRuntime};
use sdx_workload::{generate_policies_with_groups, IxpProfile, IxpTopology};

/// Figures 7–10 control the prefix-group count directly, so the table is
/// generated without multi-homing (each prefix has one announcer and the
/// group count tracks the policy partition).
fn single_homed(participants: usize, prefixes: usize) -> IxpProfile {
    IxpProfile {
        multi_home_fraction: 0.0,
        ..IxpProfile::ams_ix(participants, prefixes)
    }
}

fn main() {
    println!("# Figure 8 — initial compilation time vs prefix groups");
    println!("participants\ttarget_groups\tmeasured_groups\tcompile_ms");
    for &n in &[100usize, 200, 300] {
        let topology = IxpTopology::generate(single_homed(n, 25_000), 8);
        for &target in &[200usize, 400, 600, 800, 1_000] {
            let mix = generate_policies_with_groups(&topology, target, 8);
            let mut sdx = SdxRuntime::new(CompileOptions::default());
            topology.install(&mut sdx);
            for (id, policy) in &mix.policies {
                sdx.set_policy(*id, policy.clone());
            }
            let stats = sdx.compile().expect("compiles");
            println!(
                "{n}\t{target}\t{}\t{:.2}",
                stats.groups,
                stats.duration_us as f64 / 1_000.0
            );
        }
    }
}
