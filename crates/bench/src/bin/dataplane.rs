//! Data-plane throughput benchmark: replay generated traffic through the
//! compiled fabric at 100/200/300 participants, comparing the tuple-space
//! indexed flow-table lookup against the linear-scan baseline, and emit
//! `BENCH_dataplane.json` (packets/sec for both paths, rule/bucket counts,
//! index build time).
//!
//! Knobs: `SDX_BENCH_QUICK=1` shrinks the sweep for CI; `SDX_BENCH_JSON`
//! overrides the artifact path; `SDX_THREADS` is accepted for symmetry but
//! the data plane is single-threaded.
//!
//! `--diff-fig1` switches to the correctness smoke: rebuild the paper's
//! Figure 1 exchange, push a probe grid through an indexed and a
//! linear-scan fabric (before and after fast-path churn), and exit non-zero
//! on any forwarding difference.

use std::net::Ipv4Addr;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sdx_bench::{bench_json_path, build_sdx, quick_mode, write_bench_json};
use sdx_bgp::{AsPath, Asn, ExportPolicy, PathAttributes};
use sdx_core::{
    Clause, CompileOptions, FabricSim, Participant, ParticipantId, ParticipantPolicy, PortConfig,
    SdxRuntime,
};
use sdx_ip::Prefix;
use sdx_policy::{match_, Field, Packet};
use sdx_switch::{BorderRouter, Forward};

fn main() {
    if std::env::args().any(|a| a == "--diff-fig1") {
        diff_fig1();
        return;
    }

    let quick = quick_mode();
    let (sizes, prefixes, indexed_target, linear_target): (&[usize], usize, u64, u64) = if quick {
        (&[20], 400, 20_000, 2_000)
    } else {
        (&[100, 200, 300], 10_000, 200_000, 4_000)
    };

    println!("# Data plane — indexed vs linear flow-table lookup");
    println!("participants\trules\tbuckets\tindex_build_us\tindexed_pps\tlinear_pps\tspeedup");
    let mut records = Vec::new();
    for &n in sizes {
        let (mut sdx, topology, _mix) = build_sdx(n, prefixes, 11, CompileOptions::default());
        sdx.compile().expect("compiles");
        let frames = build_frames(&sdx, &topology, if quick { 64 } else { 256 });
        assert!(!frames.is_empty(), "no routable traffic generated");

        // Index construction cost, measured on a copy of the installed table.
        let mut table = sdx.switch().table().clone();
        let start = Instant::now();
        table.rebuild_index();
        let index_build_us = start.elapsed().as_micros() as u64;

        let rules = sdx.switch().total_rules();
        let stats = sdx.switch().index_stats();

        sdx.set_linear_scan(false);
        let indexed_pps = replay(&mut sdx, &frames, indexed_target);
        sdx.set_linear_scan(true);
        let linear_pps = replay(&mut sdx, &frames, linear_target);
        sdx.set_linear_scan(false);
        let speedup = indexed_pps / linear_pps;

        println!(
            "{n}\t{rules}\t{}\t{index_build_us}\t{indexed_pps:.0}\t{linear_pps:.0}\t{speedup:.1}x",
            stats.buckets
        );
        records.push(format!(
            concat!(
                "{{\"bench\":\"dataplane\",\"participants\":{},\"rules\":{},",
                "\"buckets\":{},\"groups\":{},\"index_build_us\":{},",
                "\"indexed_packets\":{},\"indexed_pps\":{:.0},",
                "\"linear_packets\":{},\"linear_pps\":{:.0},\"speedup\":{:.2}}}"
            ),
            n,
            rules,
            stats.buckets,
            stats.groups,
            index_build_us,
            indexed_target,
            indexed_pps,
            linear_target,
            linear_pps,
            speedup,
        ));
    }
    let path = bench_json_path("BENCH_dataplane.json");
    write_bench_json(&path, &records).expect("write bench json");
    eprintln!("wrote {}", path.display());
}

/// Tagged fabric frames for a sample of cross-participant flows, as the
/// senders' border routers would emit them (FIB + ARP + VMAC tag). Built
/// once; the replay loop reuses them.
fn build_frames(
    sdx: &SdxRuntime,
    topology: &sdx_workload::IxpTopology,
    flows: usize,
) -> Vec<Packet> {
    let mut rng = StdRng::seed_from_u64(11);
    let senders: Vec<&Participant> = topology
        .participants
        .iter()
        .filter(|p| p.is_physical())
        .collect();
    let mut routers: std::collections::BTreeMap<ParticipantId, BorderRouter> =
        std::collections::BTreeMap::new();
    let mut frames = Vec::new();
    for _ in 0..flows * 4 {
        if frames.len() >= flows {
            break;
        }
        let sender = senders[rng.gen_range(0..senders.len())];
        let ann = &topology.announcements[rng.gen_range(0..topology.announcements.len())];
        if ann.from == sender.id {
            continue;
        }
        let prefix = ann.prefixes[rng.gen_range(0..ann.prefixes.len())];
        let dst = prefix.first_addr();
        let dport = *[80u16, 443, 53, 22].choose(&mut rng).unwrap();
        let pkt = Packet::new()
            .with(Field::EthType, 0x0800u16)
            .with(Field::IpProto, 17u8)
            .with(Field::SrcIp, Ipv4Addr::from(rng.gen::<u32>()))
            .with(Field::DstIp, dst)
            .with(Field::SrcPort, rng.gen_range(1024..u16::MAX))
            .with(Field::DstPort, dport);
        let router = routers.entry(sender.id).or_insert_with(|| {
            let port = &sender.ports[0];
            let mut r = BorderRouter::new(port.port, port.mac, port.ip);
            sdx.sync_router(sender.id, &mut r);
            r
        });
        let frame = match router.forward(pkt.clone()) {
            Forward::Frame(f) => Some(f),
            Forward::NeedArp(req) => sdx.resolve_arp(&req).and_then(|reply| {
                router.learn_arp(&reply);
                match router.forward(pkt) {
                    Forward::Frame(f) => Some(f),
                    _ => None,
                }
            }),
            Forward::NoRoute => None,
        };
        frames.extend(frame);
    }
    frames
}

/// Replay the frames through the fabric in batches until at least `target`
/// packets have been processed; returns packets per second.
fn replay(sdx: &mut SdxRuntime, frames: &[Packet], target: u64) -> f64 {
    let mut sent = 0u64;
    let start = Instant::now();
    while sent < target {
        let outs = sdx.process_batch(frames);
        debug_assert_eq!(outs.len(), frames.len());
        sent += frames.len() as u64;
    }
    sent as f64 / start.elapsed().as_secs_f64()
}

// ---------------------------------------------------------------------------
// --diff-fig1: indexed vs linear forwarding equivalence on Figure 1.
// ---------------------------------------------------------------------------

const A: ParticipantId = ParticipantId(1);
const B: ParticipantId = ParticipantId(2);
const C: ParticipantId = ParticipantId(3);

fn p(s: &str) -> Prefix {
    s.parse().unwrap()
}

fn port(n: u32, last: u8) -> PortConfig {
    PortConfig {
        port: n,
        mac: sdx_ip::MacAddr::from_u64(0x0a00_0000_0000 + n as u64),
        ip: Ipv4Addr::new(172, 0, 0, last),
    }
}

fn attrs(path: &[u32], nh: Ipv4Addr) -> PathAttributes {
    PathAttributes::new(AsPath::sequence(path.iter().copied()), nh)
}

/// The Figure 1 exchange (same construction as the `figure1` end-to-end
/// tests): A's application-specific peering, B's inbound engineering, B's
/// selective export of 14.0.0.0/8.
fn fig1_runtime() -> SdxRuntime {
    let mut sdx = SdxRuntime::new(CompileOptions::default());
    sdx.add_participant(Participant::new(A, Asn(100), vec![port(1, 11)]));
    sdx.add_participant(Participant::new(
        B,
        Asn(200),
        vec![port(2, 21), port(3, 22)],
    ));
    sdx.add_participant(Participant::new(C, Asn(300), vec![port(4, 31)]));

    let b_nh = Ipv4Addr::new(172, 0, 0, 21);
    let c_nh = Ipv4Addr::new(172, 0, 0, 31);
    sdx.announce(
        B,
        [p("11.0.0.0/8"), p("12.0.0.0/8"), p("14.0.0.0/8")],
        attrs(&[200, 65001], b_nh),
    );
    sdx.announce(B, [p("13.0.0.0/8")], attrs(&[200], b_nh));
    sdx.set_export_policy(
        B,
        ExportPolicy::export_all().deny_prefix_to(p("14.0.0.0/8"), A.peer()),
    );
    sdx.announce(
        C,
        [p("11.0.0.0/8"), p("12.0.0.0/8"), p("14.0.0.0/8")],
        attrs(&[300], c_nh),
    );
    sdx.announce(C, [p("13.0.0.0/8")], attrs(&[300, 500, 65001], c_nh));

    sdx.set_policy(
        A,
        ParticipantPolicy::new()
            .outbound(Clause::fwd(match_(Field::DstPort, 80u16), B))
            .outbound(Clause::fwd(match_(Field::DstPort, 443u16), C)),
    );
    sdx.set_policy(
        B,
        ParticipantPolicy::new()
            .inbound(Clause::to_port(
                sdx_policy::match_prefix(Field::SrcIp, p("0.0.0.0/1")),
                2,
            ))
            .inbound(Clause::to_port(
                sdx_policy::match_prefix(Field::SrcIp, p("128.0.0.0/1")),
                3,
            )),
    );
    sdx
}

fn fig1_sim(linear: bool) -> FabricSim {
    let mut sdx = fig1_runtime();
    sdx.compile().expect("figure 1 compiles");
    sdx.set_linear_scan(linear);
    let mut sim = FabricSim::new(sdx);
    sim.sync();
    sim
}

fn probe(src: &str, dst: &str, dport: u16) -> Packet {
    Packet::new()
        .with(Field::EthType, 0x0800u16)
        .with(Field::IpProto, 6u8)
        .with(Field::SrcIp, src.parse::<Ipv4Addr>().unwrap())
        .with(Field::DstIp, dst.parse::<Ipv4Addr>().unwrap())
        .with(Field::SrcPort, 50_000u16)
        .with(Field::DstPort, dport)
}

fn diff_fig1() {
    let mut indexed = fig1_sim(false);
    let mut linear = fig1_sim(true);

    let srcs = ["55.0.0.1", "200.0.0.1"];
    let dsts = ["11.0.0.1", "12.0.0.1", "13.0.0.1", "14.0.0.1", "99.0.0.1"];
    let dports = [80u16, 443, 53, 22];
    let mut checked = 0usize;
    let mut mismatches = 0usize;
    let mut run_grid = |indexed: &mut FabricSim, linear: &mut FabricSim, tag: &str| {
        for from in [A, C] {
            for src in srcs {
                for dst in dsts {
                    for dport in dports {
                        let pkt = probe(src, dst, dport);
                        let a = indexed.send_from(from, pkt.clone());
                        let b = linear.send_from(from, pkt);
                        checked += 1;
                        if a != b {
                            mismatches += 1;
                            eprintln!(
                                "MISMATCH [{tag}] from={from:?} {src}->{dst}:{dport}: \
                                 indexed={a:?} linear={b:?}"
                            );
                        }
                    }
                }
            }
        }
    };
    run_grid(&mut indexed, &mut linear, "base");

    // Fast-path churn: B withdraws 13.0.0.0/8, overlay rules stack above
    // the base table on both sides; forwarding must stay identical.
    for sim in [&mut indexed, &mut linear] {
        sim.runtime_mut().withdraw(B, [p("13.0.0.0/8")]);
        sim.sync();
    }
    run_grid(&mut indexed, &mut linear, "post-withdraw");

    // And back, so overlay retirement + re-append is covered too.
    for sim in [&mut indexed, &mut linear] {
        sim.runtime_mut().announce(
            B,
            [p("13.0.0.0/8")],
            attrs(&[200], Ipv4Addr::new(172, 0, 0, 21)),
        );
        sim.sync();
    }
    run_grid(&mut indexed, &mut linear, "post-reannounce");

    if mismatches == 0 {
        println!("fig1-diff: OK ({checked} probes, indexed == linear)");
    } else {
        println!("fig1-diff: FAILED ({mismatches}/{checked} probes differ)");
        std::process::exit(1);
    }
}
