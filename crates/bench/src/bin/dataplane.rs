//! Data-plane throughput benchmark: replay generated traffic through the
//! compiled fabric across a shards × participants sweep (1/2/4/8 shards ×
//! 100/200/300 participants), comparing the RSS-sharded tuple-space data
//! plane against the single-threaded linear-scan baseline, and emit
//! `BENCH_dataplane.json` (aggregate + wall packets/sec, scaling
//! efficiency, packets-per-sample, rule/bucket counts, index build time).
//!
//! **Aggregate throughput model.** Shards are executed *serially* with
//! per-shard busy-time instrumentation (`process_batch_serial_into`);
//! aggregate pps is `total packets / max(per-shard busy time)` — the
//! throughput N dedicated cores would sustain, since each shard is an
//! independent run-to-completion loop over a lock-free snapshot with its
//! own counters (the property tests prove output is shard-count-invariant).
//! This keeps the measurement honest on machines with fewer physical cores
//! than shards; `wall_pps` (packets / wall clock on *this* machine) is
//! reported alongside.
//!
//! Knobs: `SDX_BENCH_QUICK=1` shrinks the sweep for CI; `SDX_BENCH_JSON`
//! overrides the artifact path; `SDX_DP_THREADS=N` pins the shard sweep to
//! a single shard count (the ci.sh shard smoke diffs the forwarding
//! fingerprints of `SDX_DP_THREADS=1` vs `4`).
//!
//! `--diff-fig1` switches to the correctness smoke: rebuild the paper's
//! Figure 1 exchange, push a probe grid through an indexed and a
//! linear-scan fabric (before and after fast-path churn), and exit non-zero
//! on any forwarding difference.

use std::net::Ipv4Addr;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sdx_bench::{bench_json_path, build_sdx, quick_mode, write_bench_json};
use sdx_bgp::{AsPath, Asn, ExportPolicy, PathAttributes};
use sdx_core::{
    Clause, CompileOptions, FabricSim, Participant, ParticipantId, ParticipantPolicy, PortConfig,
    SdxRuntime,
};
use sdx_ip::Prefix;
use sdx_policy::{match_, Field, Packet};
use sdx_switch::{BatchOutput, BorderRouter, Forward};

fn main() {
    if std::env::args().any(|a| a == "--diff-fig1") {
        diff_fig1();
        return;
    }

    let quick = quick_mode();
    let (sizes, prefixes, target, linear_floor, linear_box): (&[usize], usize, u64, u64, Duration) =
        if quick {
            (&[20], 400, 20_000, 2_000, Duration::from_millis(50))
        } else {
            (
                &[100, 200, 300],
                10_000,
                200_000,
                20_000,
                Duration::from_millis(500),
            )
        };
    let default_shards: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let pinned = std::env::var("SDX_DP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| n.max(1));
    let shard_counts: Vec<usize> = match pinned {
        Some(n) => vec![n],
        None => default_shards.to_vec(),
    };

    println!("# Data plane — RSS-sharded tuple-space lookup vs linear baseline");
    println!("# aggregate_pps = packets / max per-shard busy time (dedicated-core model)");
    println!(
        "participants\tshards\trules\tbuckets\tindex_build_us\taggregate_pps\twall_pps\t\
         efficiency\tlinear_pps\tspeedup"
    );
    let mut records = Vec::new();
    for &n in sizes {
        let (mut sdx, topology, _mix) = build_sdx(n, prefixes, 11, CompileOptions::default());
        sdx.compile().expect("compiles");
        let frames = build_frames(&sdx, &topology, if quick { 256 } else { 1024 });
        assert!(!frames.is_empty(), "no routable traffic generated");

        // Index construction cost, measured on a copy of the installed table.
        let mut table = sdx.switch().table().clone();
        let start = Instant::now();
        table.rebuild_index();
        let index_build_us = start.elapsed().as_micros() as u64;

        let rules = sdx.switch().total_rules();
        let stats = sdx.switch().index_stats();

        // Linear-scan baseline, time-boxed for stability: at least
        // `linear_floor` packets AND at least `linear_box` of wall clock
        // (the old fixed 4,000-packet sample was ±10% run to run).
        sdx.set_linear_scan(true);
        sdx.set_dataplane_threads(1);
        let (linear_pps, linear_packets) =
            replay_linear(&mut sdx, &frames, linear_floor, linear_box);
        sdx.set_linear_scan(false);

        // One-shard aggregate pps anchors the efficiency column.
        let mut base_pps = None;
        for &shards in &shard_counts {
            sdx.set_dataplane_threads(shards);
            let run = replay_sharded(&mut sdx, &frames, target);
            let base = *base_pps.get_or_insert(if shards == 1 {
                run.aggregate_pps
            } else {
                // Pinned sweep without a 1-shard row: measure it once.
                sdx.set_dataplane_threads(1);
                let b = replay_sharded(&mut sdx, &frames, target).aggregate_pps;
                sdx.set_dataplane_threads(shards);
                b
            });
            let efficiency = run.aggregate_pps / (shards as f64 * base);
            let speedup = run.aggregate_pps / linear_pps;
            let fp = fingerprint(&mut sdx, &frames);

            println!(
                "{n}\t{shards}\t{rules}\t{}\t{index_build_us}\t{:.0}\t{:.0}\t{efficiency:.2}\t\
                 {linear_pps:.0}\t{speedup:.1}x",
                stats.buckets, run.aggregate_pps, run.wall_pps
            );
            println!("# fingerprint participants={n} shards={shards} {fp:016x}");
            records.push(format!(
                concat!(
                    "{{\"bench\":\"dataplane\",\"participants\":{},\"shards\":{},",
                    "\"rules\":{},\"buckets\":{},\"groups\":{},\"index_build_us\":{},",
                    "\"packets\":{},\"aggregate_pps\":{:.0},\"wall_pps\":{:.0},",
                    "\"scaling_efficiency\":{:.3},\"linear_packets\":{},",
                    "\"linear_pps\":{:.0},\"speedup_vs_linear\":{:.2}}}"
                ),
                n,
                shards,
                rules,
                stats.buckets,
                stats.groups,
                index_build_us,
                run.packets,
                run.aggregate_pps,
                run.wall_pps,
                efficiency,
                linear_packets,
                linear_pps,
                speedup,
            ));
        }
    }
    let path = bench_json_path("BENCH_dataplane.json");
    write_bench_json(&path, &records).expect("write bench json");
    eprintln!("wrote {}", path.display());
}

/// One sharded measurement: packets replayed, aggregate (dedicated-core)
/// pps, and wall pps on this machine.
struct ShardRun {
    packets: u64,
    aggregate_pps: f64,
    wall_pps: f64,
}

/// Replay `frames` through the sharded fabric in serial measurement mode
/// until at least `target` packets have been processed; aggregate pps uses
/// the busiest shard's cumulative busy time.
fn replay_sharded(sdx: &mut SdxRuntime, frames: &[Packet], target: u64) -> ShardRun {
    let mut out = BatchOutput::new();
    // Warm up scratch (arena growth, snapshot publication) off the clock.
    sdx.process_batch_serial_into(frames, &mut out);
    sdx.reset_shard_busy();
    let mut sent = 0u64;
    let wall = Instant::now();
    while sent < target {
        sdx.process_batch_serial_into(frames, &mut out);
        debug_assert_eq!(out.packets(), frames.len());
        sent += frames.len() as u64;
    }
    let wall = wall.elapsed().as_secs_f64();
    let max_busy = sdx
        .shard_busy()
        .into_iter()
        .max()
        .unwrap_or_default()
        .as_secs_f64();
    ShardRun {
        packets: sent,
        aggregate_pps: sent as f64 / max_busy.max(f64::EPSILON),
        wall_pps: sent as f64 / wall.max(f64::EPSILON),
    }
}

/// Replay through the single-threaded linear-scan path until both the
/// packet floor and the time box are met; returns (pps, packets sampled).
fn replay_linear(
    sdx: &mut SdxRuntime,
    frames: &[Packet],
    floor: u64,
    time_box: Duration,
) -> (f64, u64) {
    let mut out = BatchOutput::new();
    sdx.process_batch_into(frames, &mut out); // warm-up, off the clock
    let mut sent = 0u64;
    let start = Instant::now();
    while sent < floor || start.elapsed() < time_box {
        sdx.process_batch_into(frames, &mut out);
        sent += frames.len() as u64;
    }
    (sent as f64 / start.elapsed().as_secs_f64(), sent)
}

/// Deterministic digest of one batch's forwarding behavior (egress ports
/// and full emitted headers, grouped per input packet in input order) —
/// must be identical for every shard count; ci.sh diffs it at 1 vs 4.
fn fingerprint(sdx: &mut SdxRuntime, frames: &[Packet]) -> u64 {
    let mut out = BatchOutput::new();
    sdx.process_batch_into(frames, &mut out);
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(PRIME);
    };
    for emissions in out.iter() {
        mix(emissions.len() as u64 + 1);
        for (egress, pkt) in emissions {
            mix(*egress as u64);
            for (field, value) in pkt.iter() {
                mix(*field as u64 + 1);
                mix(*value);
            }
        }
    }
    h
}

/// Tagged fabric frames for a sample of cross-participant flows, as the
/// senders' border routers would emit them (FIB + ARP + VMAC tag). Built
/// once; the replay loop reuses them.
fn build_frames(
    sdx: &SdxRuntime,
    topology: &sdx_workload::IxpTopology,
    flows: usize,
) -> Vec<Packet> {
    let mut rng = StdRng::seed_from_u64(11);
    let senders: Vec<&Participant> = topology
        .participants
        .iter()
        .filter(|p| p.is_physical())
        .collect();
    let mut routers: std::collections::BTreeMap<ParticipantId, BorderRouter> =
        std::collections::BTreeMap::new();
    let mut frames = Vec::new();
    for _ in 0..flows * 4 {
        if frames.len() >= flows {
            break;
        }
        let sender = senders[rng.gen_range(0..senders.len())];
        let ann = &topology.announcements[rng.gen_range(0..topology.announcements.len())];
        if ann.from == sender.id {
            continue;
        }
        let prefix = ann.prefixes[rng.gen_range(0..ann.prefixes.len())];
        let dst = prefix.first_addr();
        let dport = *[80u16, 443, 53, 22].choose(&mut rng).unwrap();
        let pkt = Packet::new()
            .with(Field::EthType, 0x0800u16)
            .with(Field::IpProto, 17u8)
            .with(Field::SrcIp, Ipv4Addr::from(rng.gen::<u32>()))
            .with(Field::DstIp, dst)
            .with(Field::SrcPort, rng.gen_range(1024..u16::MAX))
            .with(Field::DstPort, dport);
        let router = routers.entry(sender.id).or_insert_with(|| {
            let port = &sender.ports[0];
            let mut r = BorderRouter::new(port.port, port.mac, port.ip);
            sdx.sync_router(sender.id, &mut r);
            r
        });
        let frame = match router.forward(pkt.clone()) {
            Forward::Frame(f) => Some(f),
            Forward::NeedArp(req) => sdx.resolve_arp(&req).and_then(|reply| {
                router.learn_arp(&reply);
                match router.forward(pkt) {
                    Forward::Frame(f) => Some(f),
                    _ => None,
                }
            }),
            Forward::NoRoute => None,
        };
        frames.extend(frame);
    }
    frames
}

// ---------------------------------------------------------------------------
// --diff-fig1: indexed vs linear forwarding equivalence on Figure 1.
// ---------------------------------------------------------------------------

const A: ParticipantId = ParticipantId(1);
const B: ParticipantId = ParticipantId(2);
const C: ParticipantId = ParticipantId(3);

fn p(s: &str) -> Prefix {
    s.parse().unwrap()
}

fn port(n: u32, last: u8) -> PortConfig {
    PortConfig {
        port: n,
        mac: sdx_ip::MacAddr::from_u64(0x0a00_0000_0000 + n as u64),
        ip: Ipv4Addr::new(172, 0, 0, last),
    }
}

fn attrs(path: &[u32], nh: Ipv4Addr) -> PathAttributes {
    PathAttributes::new(AsPath::sequence(path.iter().copied()), nh)
}

/// The Figure 1 exchange (same construction as the `figure1` end-to-end
/// tests): A's application-specific peering, B's inbound engineering, B's
/// selective export of 14.0.0.0/8.
fn fig1_runtime() -> SdxRuntime {
    let mut sdx = SdxRuntime::new(CompileOptions::default());
    sdx.add_participant(Participant::new(A, Asn(100), vec![port(1, 11)]));
    sdx.add_participant(Participant::new(
        B,
        Asn(200),
        vec![port(2, 21), port(3, 22)],
    ));
    sdx.add_participant(Participant::new(C, Asn(300), vec![port(4, 31)]));

    let b_nh = Ipv4Addr::new(172, 0, 0, 21);
    let c_nh = Ipv4Addr::new(172, 0, 0, 31);
    sdx.announce(
        B,
        [p("11.0.0.0/8"), p("12.0.0.0/8"), p("14.0.0.0/8")],
        attrs(&[200, 65001], b_nh),
    );
    sdx.announce(B, [p("13.0.0.0/8")], attrs(&[200], b_nh));
    sdx.set_export_policy(
        B,
        ExportPolicy::export_all().deny_prefix_to(p("14.0.0.0/8"), A.peer()),
    );
    sdx.announce(
        C,
        [p("11.0.0.0/8"), p("12.0.0.0/8"), p("14.0.0.0/8")],
        attrs(&[300], c_nh),
    );
    sdx.announce(C, [p("13.0.0.0/8")], attrs(&[300, 500, 65001], c_nh));

    sdx.set_policy(
        A,
        ParticipantPolicy::new()
            .outbound(Clause::fwd(match_(Field::DstPort, 80u16), B))
            .outbound(Clause::fwd(match_(Field::DstPort, 443u16), C)),
    );
    sdx.set_policy(
        B,
        ParticipantPolicy::new()
            .inbound(Clause::to_port(
                sdx_policy::match_prefix(Field::SrcIp, p("0.0.0.0/1")),
                2,
            ))
            .inbound(Clause::to_port(
                sdx_policy::match_prefix(Field::SrcIp, p("128.0.0.0/1")),
                3,
            )),
    );
    sdx
}

fn fig1_sim(linear: bool) -> FabricSim {
    let mut sdx = fig1_runtime();
    sdx.compile().expect("figure 1 compiles");
    sdx.set_linear_scan(linear);
    let mut sim = FabricSim::new(sdx);
    sim.sync();
    sim
}

fn probe(src: &str, dst: &str, dport: u16) -> Packet {
    Packet::new()
        .with(Field::EthType, 0x0800u16)
        .with(Field::IpProto, 6u8)
        .with(Field::SrcIp, src.parse::<Ipv4Addr>().unwrap())
        .with(Field::DstIp, dst.parse::<Ipv4Addr>().unwrap())
        .with(Field::SrcPort, 50_000u16)
        .with(Field::DstPort, dport)
}

fn diff_fig1() {
    let mut indexed = fig1_sim(false);
    let mut linear = fig1_sim(true);

    let srcs = ["55.0.0.1", "200.0.0.1"];
    let dsts = ["11.0.0.1", "12.0.0.1", "13.0.0.1", "14.0.0.1", "99.0.0.1"];
    let dports = [80u16, 443, 53, 22];
    let mut checked = 0usize;
    let mut mismatches = 0usize;
    let mut run_grid = |indexed: &mut FabricSim, linear: &mut FabricSim, tag: &str| {
        for from in [A, C] {
            for src in srcs {
                for dst in dsts {
                    for dport in dports {
                        let pkt = probe(src, dst, dport);
                        let a = indexed.send_from(from, pkt.clone());
                        let b = linear.send_from(from, pkt);
                        checked += 1;
                        if a != b {
                            mismatches += 1;
                            eprintln!(
                                "MISMATCH [{tag}] from={from:?} {src}->{dst}:{dport}: \
                                 indexed={a:?} linear={b:?}"
                            );
                        }
                    }
                }
            }
        }
    };
    run_grid(&mut indexed, &mut linear, "base");

    // Fast-path churn: B withdraws 13.0.0.0/8, overlay rules stack above
    // the base table on both sides; forwarding must stay identical.
    for sim in [&mut indexed, &mut linear] {
        sim.runtime_mut().withdraw(B, [p("13.0.0.0/8")]);
        sim.sync();
    }
    run_grid(&mut indexed, &mut linear, "post-withdraw");

    // And back, so overlay retirement + re-append is covered too.
    for sim in [&mut indexed, &mut linear] {
        sim.runtime_mut().announce(
            B,
            [p("13.0.0.0/8")],
            attrs(&[200], Ipv4Addr::new(172, 0, 0, 21)),
        );
        sim.sync();
    }
    run_grid(&mut indexed, &mut linear, "post-reannounce");

    if mismatches == 0 {
        println!("fig1-diff: OK ({checked} probes, indexed == linear)");
    } else {
        println!("fig1-diff: FAILED ({mismatches}/{checked} probes differ)");
        std::process::exit(1);
    }
}
