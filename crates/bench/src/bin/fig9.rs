//! Regenerates Figure 9: additional forwarding rules installed by the fast
//! path after a burst of BGP updates (worst case: every update allocates a
//! fresh VNH), for 100/200/300 participants.

use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};
use sdx_bgp::Update;
use sdx_core::{CompileOptions, SdxRuntime};
use sdx_workload::{generate_policies_with_groups, IxpProfile, IxpTopology};

/// Figures 7–10 control the prefix-group count directly, so the table is
/// generated without multi-homing (each prefix has one announcer and the
/// group count tracks the policy partition).
fn single_homed(participants: usize, prefixes: usize) -> IxpProfile {
    IxpProfile {
        multi_home_fraction: 0.0,
        ..IxpProfile::ams_ix(participants, prefixes)
    }
}

fn main() {
    println!("# Figure 9 — additional rules after a BGP update burst");
    println!("participants\tburst_size\tadditional_rules");
    let mut rng = StdRng::seed_from_u64(9);
    for &n in &[100usize, 200, 300] {
        let topology = IxpTopology::generate(single_homed(n, 10_000), 9);
        for &burst in &[0usize, 20, 40, 60, 80, 100] {
            let mix = generate_policies_with_groups(&topology, 500, 9);
            let mut sdx = SdxRuntime::new(CompileOptions::default());
            topology.install(&mut sdx);
            for (id, policy) in &mix.policies {
                sdx.set_policy(*id, policy.clone());
            }
            sdx.compile().expect("compiles");

            // Worst case: each update changes the best path of a distinct
            // policy-relevant prefix.
            let grouped: Vec<_> = sdx
                .compilation()
                .unwrap()
                .group_index
                .keys()
                .copied()
                .collect();
            let mut sample = grouped.clone();
            sample.shuffle(&mut rng);
            for prefix in sample.into_iter().take(burst) {
                let owner = topology
                    .announcements
                    .iter()
                    .find(|a| a.prefixes.contains(&prefix))
                    .map(|a| (a.from, a.attrs.clone()))
                    .expect("announced prefix has an owner");
                let mut attrs = owner.1;
                attrs.as_path = attrs.as_path.prepend(sdx_bgp::Asn(64_999));
                sdx.apply_update(owner.0, &Update::announce([prefix], attrs));
            }
            println!("{n}\t{burst}\t{}", sdx.incremental_stats().overlay_rules);
        }
    }
}
