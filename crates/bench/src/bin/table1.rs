//! Regenerates Table 1: the three IXP datasets (peers, prefixes, BGP
//! updates, % prefixes updated), synthesized at the published sizes.
//!
//! `--scale 0.1` shrinks prefix counts (and proportionally updates) for a
//! quick run; default is full scale.

use sdx_bench::arg_scale;
use sdx_workload::{table1_row, trace_stats, IxpProfile, IxpTopology, TraceConfig};

fn main() {
    let scale = arg_scale(1.0);
    println!("# Table 1 — IXP datasets (synthetic, scale {scale})");
    println!(
        "{:<8} {:>6} {:>9} {:>12} {:>22}",
        "IXP", "peers", "prefixes", "BGP updates", "% prefixes w/ updates"
    );
    let paper = [
        ("AMS-IX", 639, 518_082, 11_161_624, 9.88),
        ("DE-CIX", 580, 518_391, 30_934_525, 13.64),
        ("LINX", 496, 503_392, 16_658_819, 12.67),
    ];
    for (i, (name, peers, prefixes, paper_updates, paper_pct)) in paper.iter().enumerate() {
        let scaled_prefixes = ((*prefixes as f64) * scale) as usize;
        let profile = match *name {
            "AMS-IX" => IxpProfile::ams_ix(*peers, scaled_prefixes),
            "DE-CIX" => IxpProfile::de_cix(*peers, scaled_prefixes),
            _ => IxpProfile::linx(*peers, scaled_prefixes),
        };
        // Tune per-IXP churn to the published level.
        let config = TraceConfig {
            unstable_fraction: paper_pct / 100.0,
            raw_multiplicity_mean: *paper_updates as f64 * scale / 26_000.0,
            ..TraceConfig::default()
        };
        let topology = IxpTopology::generate(profile, 100 + i as u64);
        let trace = trace_stats(&topology, config, 200 + i as u64);
        let row = table1_row(&topology, &trace);
        println!(
            "{:<8} {:>6} {:>9} {:>12} {:>21.2}%",
            row.ixp, row.peers, row.prefixes, row.bgp_updates, row.pct_prefixes_updated
        );
        println!(
            "{:<8} {:>6} {:>9} {:>12} {:>21.2}%   <- paper",
            name,
            peers,
            (*prefixes as f64 * scale) as usize,
            (*paper_updates as f64 * scale) as usize,
            paper_pct
        );
    }
}
