//! Regenerates Figure 5a (application-specific peering over time). The
//! scenario is identical to `examples/app_specific_peering.rs`; this binary
//! exists so every figure has a `sdx-bench` target.

fn main() {
    let status = std::process::Command::new(env!("CARGO"))
        .args(["run", "--quiet", "--example", "app_specific_peering"])
        .status()
        .expect("run example");
    std::process::exit(status.code().unwrap_or(1));
}
