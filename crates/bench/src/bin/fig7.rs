//! Regenerates Figure 7: forwarding rules as a function of prefix groups,
//! for 100/200/300 participants.

use sdx_core::{CompileOptions, SdxRuntime};
use sdx_workload::{generate_policies_with_groups, IxpProfile, IxpTopology};

/// Figures 7–10 control the prefix-group count directly, so the table is
/// generated without multi-homing (each prefix has one announcer and the
/// group count tracks the policy partition).
fn single_homed(participants: usize, prefixes: usize) -> IxpProfile {
    IxpProfile {
        multi_home_fraction: 0.0,
        ..IxpProfile::ams_ix(participants, prefixes)
    }
}

fn main() {
    println!("# Figure 7 — forwarding rules vs prefix groups");
    println!("participants\ttarget_groups\tmeasured_groups\tflow_rules");
    for &n in &[100usize, 200, 300] {
        let topology = IxpTopology::generate(single_homed(n, 25_000), 7);
        for &target in &[200usize, 400, 600, 800, 1_000] {
            let mix = generate_policies_with_groups(&topology, target, 7);
            let mut sdx = SdxRuntime::new(CompileOptions::default());
            topology.install(&mut sdx);
            for (id, policy) in &mix.policies {
                sdx.set_policy(*id, policy.clone());
            }
            let stats = sdx.compile().expect("compiles");
            println!("{n}\t{target}\t{}\t{}", stats.groups, stats.rules);
        }
    }
}
