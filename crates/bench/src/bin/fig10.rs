//! Regenerates Figure 10: the distribution (CDF) of the time to process a
//! single BGP update through the fast path, for 100/200/300 participants.
//!
//! Honors the same environment knobs as `fig8`: `SDX_THREADS` (compile
//! workers), `SDX_BENCH_QUICK=1` (shrunken sweep), and `SDX_BENCH_JSON`
//! (machine-readable record path, default `BENCH_compile.json` — the
//! records cover the initial compilations this figure performs).

use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};
use sdx_bench::{
    bench_json_path, compile_record, env_threads, percentile, quick_mode, write_bench_json,
};
use sdx_bgp::Update;
use sdx_core::{CompileOptions, SdxRuntime};
use sdx_workload::{generate_policies_with_groups, IxpProfile, IxpTopology};

/// Figures 7–10 control the prefix-group count directly, so the table is
/// generated without multi-homing (each prefix has one announcer and the
/// group count tracks the policy partition).
fn single_homed(participants: usize, prefixes: usize) -> IxpProfile {
    IxpProfile {
        multi_home_fraction: 0.0,
        ..IxpProfile::ams_ix(participants, prefixes)
    }
}

fn main() {
    let threads = env_threads();
    let (sizes, prefixes, target, samples): (&[usize], usize, usize, usize) = if quick_mode() {
        (&[30], 2_000, 100, 50)
    } else {
        (&[100, 200, 300], 10_000, 500, 400)
    };

    println!("# Figure 10 — time to process a single BGP update (fast path, threads={threads})");
    println!("participants\tpercentile\ttime_ms");
    let mut rng = StdRng::seed_from_u64(10);
    let mut records = Vec::new();
    for &n in sizes {
        let topology = IxpTopology::generate(single_homed(n, prefixes), 10);
        let mix = generate_policies_with_groups(&topology, target, 10);
        let mut sdx = SdxRuntime::new(CompileOptions::with_threads(threads));
        topology.install(&mut sdx);
        for (id, policy) in &mix.policies {
            sdx.set_policy(*id, policy.clone());
        }
        let stats = sdx.compile().expect("compiles");
        let fingerprint = sdx.compilation().expect("compiled").fabric.fingerprint();
        records.push(compile_record("fig10", n, target, fingerprint, &stats));

        let mut update_prefixes: Vec<_> = sdx
            .compilation()
            .unwrap()
            .group_index
            .keys()
            .copied()
            .collect();
        update_prefixes.shuffle(&mut rng);

        let mut times_us = Vec::new();
        for prefix in update_prefixes.into_iter().take(samples) {
            let owner = topology
                .announcements
                .iter()
                .find(|a| a.prefixes.contains(&prefix))
                .map(|a| (a.from, a.attrs.clone()))
                .expect("announced prefix has an owner");
            let mut attrs = owner.1;
            attrs.as_path = attrs.as_path.prepend(sdx_bgp::Asn(64_999));
            sdx.apply_update(owner.0, &Update::announce([prefix], attrs));
            times_us.push(sdx.incremental_stats().last_update_us);
        }
        times_us.sort_unstable();
        for p in [0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.00] {
            println!(
                "{n}\t{:.2}\t{:.3}",
                p,
                percentile(&times_us, p) as f64 / 1_000.0
            );
        }
    }

    let path = bench_json_path("BENCH_compile.json");
    write_bench_json(&path, &records).expect("write bench json");
    eprintln!("wrote {}", path.display());
}
