//! Update-plan synthesis cost over BGP churn, at 100/200/300 participants:
//! for each churn-driven recompile with the plan gate active, the size of
//! the rule-level delta, the intermediate states the ordering search
//! explored, the per-step verification cost, and how often the planner had
//! to fall back to the two-phase schedule.
//!
//! Honors `SDX_THREADS`, `SDX_BENCH_QUICK=1`, and `SDX_BENCH_JSON`
//! (default `BENCH_plan.json`).

use std::io::Write;

use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};
use sdx_bench::{arg_scale, bench_json_path, env_threads, quick_mode, write_bench_json};
use sdx_core::{AnalysisMode, CompileOptions, SdxRuntime};
use sdx_workload::{generate_policies_with_groups, IxpProfile, IxpTopology};

fn single_homed(participants: usize, prefixes: usize) -> IxpProfile {
    IxpProfile {
        multi_home_fraction: 0.0,
        ..IxpProfile::ams_ix(participants, prefixes)
    }
}

fn main() {
    let threads = env_threads();
    let scale = arg_scale(1.0);
    // Planning cost scales with *table* size (delta steps × symbolic
    // transit per intermediate state), so the full sweep varies the
    // participant count at a fixed moderate prefix/policy density;
    // `--scale` grows the density for longer runs.
    let (sizes, prefixes, target, rounds): (&[usize], usize, usize, usize) = if quick_mode() {
        (&[30], 2_000, 100, 3)
    } else {
        (&[100, 200, 300], 2_000, 100, 5)
    };
    let prefixes = ((prefixes as f64 * scale) as usize).max(100);
    let target = ((target as f64 * scale) as usize).max(10);

    println!("# Update-plan synthesis over BGP churn (threads={threads})");
    println!(
        "participants\tround\tsteps\texplored\ttwo_phase\tapplied\tnaive_violations\t\
         delta_us\tnaive_us\tsearch_us\tper_step_check_us\tround_ms"
    );
    let mut rng = StdRng::seed_from_u64(14);
    let mut records = Vec::new();
    for &n in sizes {
        let topology = IxpTopology::generate(single_homed(n, prefixes), 14);
        let mix = generate_policies_with_groups(&topology, target, 14);
        let mut options = CompileOptions::with_threads(threads);
        options.plan = AnalysisMode::Warn;
        let mut sdx = SdxRuntime::new(options);
        topology.install(&mut sdx);
        for (id, policy) in &mix.policies {
            sdx.set_policy(*id, policy.clone());
        }
        sdx.compile().expect("initial compile");

        let mut churn_prefixes: Vec<_> = sdx
            .compilation()
            .expect("compiled")
            .group_index
            .keys()
            .copied()
            .collect();
        churn_prefixes.shuffle(&mut rng);

        let mut two_phase = 0usize;
        let mut executed = 0usize;
        for (round, prefix) in churn_prefixes.into_iter().take(rounds).enumerate() {
            let owner = topology
                .announcements
                .iter()
                .find(|a| a.prefixes.contains(&prefix))
                .map(|a| (a.from, a.attrs.clone()))
                .expect("announced prefix has an owner");
            // Route churn: the owner flaps the prefix (fast path runs), then
            // the plan-gated recompile folds the overlay back into the base
            // tables through a synthesized schedule.
            let t0 = std::time::Instant::now();
            sdx.withdraw(owner.0, [prefix]);
            sdx.announce(owner.0, [prefix], owner.1);
            let stats = sdx.compile().expect("churn recompile");
            let round_ms = t0.elapsed().as_millis();
            let report = sdx.last_plan().expect("plan gate ran");
            two_phase += stats.plan_two_phase as usize;
            executed += 1;

            println!(
                "{n}\t{round}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                stats.plan_steps,
                stats.plan_explored,
                stats.plan_two_phase,
                stats.plan_applied,
                report.naive_violations.len(),
                stats.stages.plan_delta_us,
                report.times.naive_us,
                stats.stages.plan_search_us,
                report.per_step_check_us,
                round_ms,
            );
            let _ = std::io::stdout().flush();
            records.push(format!(
                concat!(
                    "{{\"bench\":\"plan\",\"participants\":{},\"round\":{},",
                    "\"steps\":{},\"explored\":{},\"two_phase\":{},\"applied\":{},",
                    "\"naive_violations\":{},\"wall_us\":{{\"delta\":{},\"naive\":{},",
                    "\"search\":{},\"check\":{},\"per_step_check\":{}}},",
                    "\"round_ms\":{}}}"
                ),
                n,
                round,
                stats.plan_steps,
                stats.plan_explored,
                stats.plan_two_phase,
                stats.plan_applied,
                report.naive_violations.len(),
                stats.stages.plan_delta_us,
                report.times.naive_us,
                stats.stages.plan_search_us,
                stats.stages.plan_check_us,
                report.per_step_check_us,
                round_ms,
            ));
        }
        println!(
            "# {n} participants: two-phase fallback rate {}/{}",
            two_phase, executed
        );
    }

    let path = bench_json_path("BENCH_plan.json");
    write_bench_json(&path, &records).expect("write bench json");
    eprintln!("wrote {}", path.display());
}
