//! Shared harness for the evaluation benchmarks: workload construction and
//! small statistics helpers used by the figure binaries and Criterion
//! benches.

use sdx_core::{CompileOptions, SdxRuntime};
use sdx_workload::{generate_policies, IxpProfile, IxpTopology, PolicyMix};

/// Build a fully configured SDX (topology installed, §6.1 policies set) of
/// the given size, ready to compile.
pub fn build_sdx(
    participants: usize,
    prefixes: usize,
    seed: u64,
    options: CompileOptions,
) -> (SdxRuntime, IxpTopology, PolicyMix) {
    let topology = IxpTopology::generate(IxpProfile::ams_ix(participants, prefixes), seed);
    let mix = generate_policies(&topology, seed.wrapping_add(1));
    let mut sdx = SdxRuntime::new(options);
    topology.install(&mut sdx);
    for (id, policy) in &mix.policies {
        sdx.set_policy(*id, policy.clone());
    }
    (sdx, topology, mix)
}

/// The `p`-th percentile (0.0–1.0) of a sorted sample.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Parse `--scale <f64>` style arguments; returns the default when absent.
pub fn arg_scale(default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == "--scale")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_sdx_compiles() {
        let (mut sdx, topology, mix) = build_sdx(30, 600, 1, CompileOptions::default());
        assert_eq!(topology.participants.len(), 30);
        assert!(mix.clauses > 0);
        let stats = sdx.compile().unwrap();
        assert!(stats.rules > 0);
    }

    #[test]
    fn percentile_bounds() {
        let v = [1, 2, 3, 4, 5];
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&v, 0.5), 3);
        assert_eq!(percentile(&v, 1.0), 5);
        assert_eq!(percentile(&[], 0.5), 0);
    }
}
