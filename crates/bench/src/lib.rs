//! Shared harness for the evaluation benchmarks: workload construction and
//! small statistics helpers used by the figure binaries and Criterion
//! benches.

use std::path::{Path, PathBuf};

use sdx_core::{CompileOptions, CompileStats, SdxRuntime};
use sdx_workload::{generate_policies, IxpProfile, IxpTopology, PolicyMix};

/// Build a fully configured SDX (topology installed, §6.1 policies set) of
/// the given size, ready to compile.
pub fn build_sdx(
    participants: usize,
    prefixes: usize,
    seed: u64,
    options: CompileOptions,
) -> (SdxRuntime, IxpTopology, PolicyMix) {
    let topology = IxpTopology::generate(IxpProfile::ams_ix(participants, prefixes), seed);
    let mix = generate_policies(&topology, seed.wrapping_add(1));
    let mut sdx = SdxRuntime::new(options);
    topology.install(&mut sdx);
    for (id, policy) in &mix.policies {
        sdx.set_policy(*id, policy.clone());
    }
    (sdx, topology, mix)
}

/// The `p`-th percentile (0.0–1.0) of a sorted sample.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One machine-readable compile measurement, rendered as a JSON object (the
/// workspace has no JSON dependency, and the schema is flat enough to emit
/// by hand). `fingerprint` is the fabric classifier's rule-list hash, so two
/// bench runs at different thread counts can be checked for identical
/// output.
pub fn compile_record(
    bench: &str,
    participants: usize,
    target_groups: usize,
    fingerprint: u64,
    stats: &CompileStats,
) -> String {
    let s = &stats.stages;
    format!(
        concat!(
            "{{\"bench\":\"{}\",\"participants\":{},\"target_groups\":{},",
            "\"groups\":{},\"rules\":{},\"threads\":{},\"fingerprint\":\"{:016x}\",",
            "\"wall_us\":{{\"total\":{},\"validate\":{},\"policy_sets\":{},\"fec\":{},",
            "\"stage1\":{},\"stage2\":{},\"compose\":{},\"analysis\":{},",
            "\"verify_transit\":{},\"verify_isolation\":{},\"verify_blackhole\":{},",
            "\"verify_vnh\":{},\"verify_diff\":{}}},",
            "\"verify\":{{\"warnings\":{},\"errors\":{}}},",
            "\"pred_cache\":{{\"nodes\":{},\"hits\":{},\"misses\":{}}},",
            "\"memo\":{{\"hits\":{},\"misses\":{}}}}}",
        ),
        bench,
        participants,
        target_groups,
        stats.groups,
        stats.rules,
        s.threads,
        fingerprint,
        stats.duration_us,
        s.validate_us,
        s.policy_sets_us,
        s.fec_us,
        s.stage1_us,
        s.stage2_us,
        s.compose_us,
        s.analysis_us,
        s.verify_transit_us,
        s.verify_isolation_us,
        s.verify_blackhole_us,
        s.verify_vnh_us,
        s.verify_diff_us,
        stats.verify_warnings,
        stats.verify_errors,
        stats.pred_nodes,
        stats.pred_cache_hits,
        stats.pred_cache_misses,
        stats.memo_hits,
        stats.memo_misses,
    )
}

/// Write pre-rendered records as a JSON array to `path` (the
/// `BENCH_compile.json` artifact the figure binaries emit).
pub fn write_bench_json(path: &Path, records: &[String]) -> std::io::Result<()> {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("  ");
        out.push_str(r);
        out.push_str(if i + 1 == records.len() { "\n" } else { ",\n" });
    }
    out.push_str("]\n");
    std::fs::write(path, out)
}

/// The worker count the benchmarks use: `SDX_THREADS` (0 = one per core),
/// defaulting to 1 (sequential).
pub fn env_threads() -> usize {
    std::env::var("SDX_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Whether `SDX_BENCH_QUICK=1` asked for the shrunken sweep (the CI smoke
/// uses it to finish in seconds).
pub fn quick_mode() -> bool {
    std::env::var("SDX_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Whether `SDX_VERIFY=1` asked the figure binaries to run the symbolic
/// reachability verifier alongside each compile (and a differential check
/// after BGP churn), recording the per-pass wall clocks.
pub fn verify_mode() -> bool {
    std::env::var("SDX_VERIFY")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Where to write the bench JSON artifact: `SDX_BENCH_JSON` or `default`.
pub fn bench_json_path(default: &str) -> PathBuf {
    std::env::var("SDX_BENCH_JSON")
        .unwrap_or_else(|_| default.to_string())
        .into()
}

/// Parse `--scale <f64>` style arguments; returns the default when absent.
pub fn arg_scale(default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == "--scale")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_sdx_compiles() {
        let (mut sdx, topology, mix) = build_sdx(30, 600, 1, CompileOptions::default());
        assert_eq!(topology.participants.len(), 30);
        assert!(mix.clauses > 0);
        let stats = sdx.compile().unwrap();
        assert!(stats.rules > 0);
    }

    #[test]
    fn percentile_bounds() {
        let v = [1, 2, 3, 4, 5];
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&v, 0.5), 3);
        assert_eq!(percentile(&v, 1.0), 5);
        assert_eq!(percentile(&[], 0.5), 0);
    }
}
