//! Criterion bench backing Figure 10: processing one BGP update through the
//! §4.3.2 fast path.

use criterion::{criterion_group, criterion_main, Criterion};
use sdx_bgp::Update;
use sdx_core::{CompileOptions, SdxRuntime};
use sdx_workload::{generate_policies_with_groups, IxpProfile, IxpTopology};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_update");
    g.sample_size(20);
    let profile = IxpProfile {
        multi_home_fraction: 0.0,
        ..IxpProfile::ams_ix(100, 5_000)
    };
    let topology = IxpTopology::generate(profile, 10);
    let mix = generate_policies_with_groups(&topology, 300, 10);
    let mut sdx = SdxRuntime::new(CompileOptions::default());
    topology.install(&mut sdx);
    for (id, policy) in &mix.policies {
        sdx.set_policy(*id, policy.clone());
    }
    sdx.compile().unwrap();
    let prefix = *sdx
        .compilation()
        .unwrap()
        .group_index
        .keys()
        .next()
        .unwrap();
    let a = topology
        .announcements
        .iter()
        .find(|a| a.prefixes.contains(&prefix))
        .unwrap();
    let from = a.from;
    let mut attrs = a.attrs.clone();
    attrs.as_path = attrs.as_path.prepend(sdx_bgp::Asn(64_999));
    let update = Update::announce([prefix], attrs);

    g.bench_function("single_update_fast_path", |b| {
        b.iter(|| sdx.apply_update(from, &update))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
