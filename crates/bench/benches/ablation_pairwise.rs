//! Ablation (§4.3.1): pruned sequential composition (only participants that
//! exchange traffic are composed — implemented as the port index) vs the
//! naive all-pairs composition.

use criterion::{criterion_group, criterion_main, Criterion};
use sdx_core::{CompileOptions, SdxRuntime};
use sdx_policy::{sequential_compose, sequential_compose_naive};
use sdx_workload::{generate_policies_with_groups, IxpProfile, IxpTopology};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_pairwise");
    g.sample_size(10);
    let profile = IxpProfile {
        multi_home_fraction: 0.0,
        ..IxpProfile::ams_ix(60, 3_000)
    };
    let topology = IxpTopology::generate(profile, 43);
    let mix = generate_policies_with_groups(&topology, 150, 43);
    let mut sdx = SdxRuntime::new(CompileOptions::default());
    topology.install(&mut sdx);
    for (id, policy) in &mix.policies {
        sdx.set_policy(*id, policy.clone());
    }
    sdx.compile().unwrap();
    let compilation = sdx.compilation().unwrap();
    let (s1, s2) = (compilation.stage1.clone(), compilation.stage2.clone());

    // The two variants must agree.
    assert_eq!(
        sequential_compose(&s1, &s2),
        sequential_compose_naive(&s1, &s2)
    );

    g.bench_function("compose_pruned", |b| {
        b.iter(|| sequential_compose(&s1, &s2))
    });
    g.bench_function("compose_all_pairs", |b| {
        b.iter(|| sequential_compose_naive(&s1, &s2))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
