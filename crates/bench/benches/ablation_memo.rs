//! Ablation (§4.3.1): memoized receiver-stage compilation vs recompiling
//! every participant block on each pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdx_core::{CompileOptions, SdxRuntime};
use sdx_workload::{generate_policies_with_groups, IxpProfile, IxpTopology};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_memo");
    g.sample_size(10);
    for &memoize in &[true, false] {
        let profile = IxpProfile {
            multi_home_fraction: 0.0,
            ..IxpProfile::ams_ix(80, 3_000)
        };
        let topology = IxpTopology::generate(profile, 44);
        let mix = generate_policies_with_groups(&topology, 200, 44);
        let mut sdx = SdxRuntime::new(CompileOptions {
            memoize,
            ..Default::default()
        });
        topology.install(&mut sdx);
        for (id, policy) in &mix.policies {
            sdx.set_policy(*id, policy.clone());
        }
        sdx.compile().unwrap(); // warm the cache
        g.bench_with_input(
            BenchmarkId::new("recompile", format!("memo_{memoize}")),
            &(),
            |b, _| b.iter(|| sdx.reoptimize().unwrap()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
