//! Criterion bench backing Table 1: the cost of synthesizing an IXP table
//! and a week-long update trace.

use criterion::{criterion_group, criterion_main, Criterion};
use sdx_workload::{trace_stats, IxpProfile, IxpTopology, TraceConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("generate_topology_100x5k", |b| {
        b.iter(|| IxpTopology::generate(IxpProfile::ams_ix(100, 5_000), 1))
    });
    let topology = IxpTopology::generate(IxpProfile::ams_ix(100, 5_000), 1);
    g.bench_function("trace_stats_week_100x5k", |b| {
        b.iter(|| trace_stats(&topology, TraceConfig::default(), 2))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
