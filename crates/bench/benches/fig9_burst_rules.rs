//! Criterion bench backing Figure 9: applying a burst of BGP updates
//! through the fast path (rules installed are reported by the `fig9`
//! binary; this measures the work).

use criterion::{criterion_group, criterion_main, Criterion};
use sdx_bgp::Update;
use sdx_core::{CompileOptions, SdxRuntime};
use sdx_workload::{generate_policies_with_groups, IxpProfile, IxpTopology};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_burst");
    g.sample_size(10);
    let profile = IxpProfile {
        multi_home_fraction: 0.0,
        ..IxpProfile::ams_ix(100, 5_000)
    };
    let topology = IxpTopology::generate(profile, 9);
    let mix = generate_policies_with_groups(&topology, 300, 9);
    let mut sdx = SdxRuntime::new(CompileOptions::default());
    topology.install(&mut sdx);
    for (id, policy) in &mix.policies {
        sdx.set_policy(*id, policy.clone());
    }
    sdx.compile().unwrap();
    let prefixes: Vec<_> = sdx
        .compilation()
        .unwrap()
        .group_index
        .keys()
        .copied()
        .take(20)
        .collect();
    let updates: Vec<_> = prefixes
        .iter()
        .map(|prefix| {
            let a = topology
                .announcements
                .iter()
                .find(|a| a.prefixes.contains(prefix))
                .unwrap();
            let mut attrs = a.attrs.clone();
            attrs.as_path = attrs.as_path.prepend(sdx_bgp::Asn(64_999));
            (a.from, Update::announce([*prefix], attrs))
        })
        .collect();

    g.bench_function("burst_of_20_updates", |b| {
        b.iter(|| {
            for (from, update) in &updates {
                sdx.apply_update(*from, update);
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
