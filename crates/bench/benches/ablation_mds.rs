//! Ablation (§4.2): VNH/VMAC tagging vs naive destination-prefix filters.
//! Measures compilation with the optimization on and off; the naive mode's
//! rule explosion is reported once on stderr.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdx_core::{CompileOptions, SdxRuntime};
use sdx_workload::{generate_policies_with_groups, IxpProfile, IxpTopology};

fn build(options: CompileOptions) -> SdxRuntime {
    let profile = IxpProfile {
        multi_home_fraction: 0.0,
        ..IxpProfile::ams_ix(60, 3_000)
    };
    let topology = IxpTopology::generate(profile, 42);
    let mix = generate_policies_with_groups(&topology, 150, 42);
    let mut sdx = SdxRuntime::new(options);
    topology.install(&mut sdx);
    for (id, policy) in &mix.policies {
        sdx.set_policy(*id, policy.clone());
    }
    sdx
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_mds");
    g.sample_size(10);
    for &use_vnh in &[true, false] {
        let options = CompileOptions {
            use_vnh,
            ..Default::default()
        };
        let mut sdx = build(options);
        let stats = sdx.compile().unwrap();
        eprintln!(
            "ablation_mds: use_vnh={use_vnh} -> {} rules, {} groups",
            stats.rules, stats.groups
        );
        g.bench_with_input(
            BenchmarkId::new("compile", format!("vnh_{use_vnh}")),
            &(),
            |b, _| b.iter(|| sdx.compile().unwrap()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
