//! Criterion bench backing Figure 6: the Minimum Disjoint Subsets
//! computation over per-participant announcement sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdx_core::minimum_disjoint_subsets;
use sdx_ip::PrefixSet;
use sdx_workload::{IxpProfile, IxpTopology};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_mds");
    g.sample_size(10);
    for &(n, x) in &[(100usize, 5_000usize), (300, 10_000)] {
        let topology = IxpTopology::generate(IxpProfile::ams_ix(n, x), 6);
        let collection: Vec<PrefixSet> = topology
            .participants
            .iter()
            .map(|p| topology.announced_by(p.id))
            .collect();
        g.bench_with_input(
            BenchmarkId::new("mds", format!("{n}x{x}")),
            &collection,
            |b, coll| b.iter(|| minimum_disjoint_subsets(coll)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
