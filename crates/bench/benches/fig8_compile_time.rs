//! Criterion bench backing Figure 8: initial compilation time scaling with
//! prefix groups and participants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdx_core::{CompileOptions, SdxRuntime};
use sdx_workload::{generate_policies_with_groups, IxpProfile, IxpTopology};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_compile_time");
    g.sample_size(10);
    for &(n, groups) in &[(100usize, 200usize), (200, 200), (100, 600)] {
        let profile = IxpProfile {
            multi_home_fraction: 0.0,
            ..IxpProfile::ams_ix(n, 8_000)
        };
        let topology = IxpTopology::generate(profile, 8);
        let mix = generate_policies_with_groups(&topology, groups, 8);
        g.bench_with_input(
            BenchmarkId::new("initial_compile", format!("{n}p_{groups}g")),
            &(),
            |b, _| {
                let mut sdx = SdxRuntime::new(CompileOptions::default());
                topology.install(&mut sdx);
                for (id, policy) in &mix.policies {
                    sdx.set_policy(*id, policy.clone());
                }
                b.iter(|| sdx.compile().unwrap());
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
