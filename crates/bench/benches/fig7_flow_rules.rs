//! Criterion bench backing Figure 7: full policy compilation at a
//! controlled prefix-group count (rule counts are printed by the
//! `fig7` binary; this measures the compilation producing them).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdx_core::{CompileOptions, SdxRuntime};
use sdx_workload::{generate_policies_with_groups, IxpProfile, IxpTopology};

fn build(n: usize, groups: usize) -> SdxRuntime {
    let profile = IxpProfile {
        multi_home_fraction: 0.0,
        ..IxpProfile::ams_ix(n, 8_000)
    };
    let topology = IxpTopology::generate(profile, 7);
    let mix = generate_policies_with_groups(&topology, groups, 7);
    let mut sdx = SdxRuntime::new(CompileOptions::default());
    topology.install(&mut sdx);
    for (id, policy) in &mix.policies {
        sdx.set_policy(*id, policy.clone());
    }
    sdx
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_compile");
    g.sample_size(10);
    for &(n, groups) in &[(100usize, 200usize), (100, 400)] {
        g.bench_with_input(
            BenchmarkId::new("compile", format!("{n}p_{groups}g")),
            &(n, groups),
            |b, &(n, groups)| {
                let mut sdx = build(n, groups);
                b.iter(|| sdx.compile().unwrap());
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
