//! Ablation (§4.3.2): the two-stage incremental update (fast path) vs a
//! full recompilation per BGP update.

use criterion::{criterion_group, criterion_main, Criterion};
use sdx_bgp::Update;
use sdx_core::{CompileOptions, SdxRuntime};
use sdx_workload::{generate_policies_with_groups, IxpProfile, IxpTopology};

fn setup() -> (SdxRuntime, sdx_core::ParticipantId, Update) {
    let profile = IxpProfile {
        multi_home_fraction: 0.0,
        ..IxpProfile::ams_ix(80, 3_000)
    };
    let topology = IxpTopology::generate(profile, 45);
    let mix = generate_policies_with_groups(&topology, 200, 45);
    let mut sdx = SdxRuntime::new(CompileOptions::default());
    topology.install(&mut sdx);
    for (id, policy) in &mix.policies {
        sdx.set_policy(*id, policy.clone());
    }
    sdx.compile().unwrap();
    let prefix = *sdx
        .compilation()
        .unwrap()
        .group_index
        .keys()
        .next()
        .unwrap();
    let a = topology
        .announcements
        .iter()
        .find(|a| a.prefixes.contains(&prefix))
        .unwrap();
    let mut attrs = a.attrs.clone();
    attrs.as_path = attrs.as_path.prepend(sdx_bgp::Asn(64_999));
    (sdx, a.from, Update::announce([prefix], attrs))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_fastpath");
    g.sample_size(10);
    let (mut sdx, from, update) = setup();
    g.bench_function("update_fast_path", |b| {
        b.iter(|| sdx.apply_update(from, &update))
    });
    let (mut sdx, from, update) = setup();
    g.bench_function("update_full_recompile", |b| {
        b.iter(|| {
            sdx.apply_update(from, &update);
            sdx.reoptimize().unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
