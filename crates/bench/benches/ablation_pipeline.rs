//! Ablation: single-table composed fabric vs a two-table OpenFlow pipeline
//! (the iSDX direction). The pipeline avoids the composition cross-product:
//! fewer total rules and faster compilation, at the cost of multi-table
//! hardware.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdx_core::{CompileOptions, SdxRuntime};
use sdx_workload::{generate_policies_with_groups, IxpProfile, IxpTopology};

fn build(multi_table: bool) -> SdxRuntime {
    let profile = IxpProfile {
        multi_home_fraction: 0.0,
        ..IxpProfile::ams_ix(100, 5_000)
    };
    let topology = IxpTopology::generate(profile, 46);
    let mix = generate_policies_with_groups(&topology, 300, 46);
    let mut sdx = SdxRuntime::new(CompileOptions {
        multi_table,
        ..Default::default()
    });
    topology.install(&mut sdx);

    // Composition's cost is the cross-product of sender rules with receiver
    // clauses, so give every policy target an inbound-engineering block
    // (the §6.1 mix shape: eyeballs steer inbound traffic).
    let targets: std::collections::BTreeSet<sdx_core::ParticipantId> = mix
        .policies
        .values()
        .flat_map(|p| p.outbound.iter())
        .filter_map(|c| match c.dest {
            sdx_core::Dest::Participant(t) => Some(t),
            _ => None,
        })
        .collect();
    for (id, policy) in &mix.policies {
        sdx.set_policy(*id, policy.clone());
    }
    for target in targets {
        let port = topology
            .participants
            .iter()
            .find(|p| p.id == target)
            .and_then(|p| p.primary_port())
            .map(|p| p.port)
            .unwrap();
        let mut policy = sdx_core::ParticipantPolicy::new();
        for i in 0..6u32 {
            policy = policy.inbound(sdx_core::Clause::to_port(
                sdx_policy::Predicate::test_prefix(
                    sdx_policy::Field::SrcIp,
                    sdx_ip::Prefix::from_bits(i << 29, 3),
                ),
                port,
            ));
        }
        sdx.set_policy(target, policy);
    }
    sdx
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_pipeline");
    g.sample_size(10);
    for &multi_table in &[false, true] {
        let mut sdx = build(multi_table);
        let stats = sdx.compile().unwrap();
        eprintln!(
            "ablation_pipeline: multi_table={multi_table} -> {} rules ({} stage1 + {} stage2)",
            stats.rules, stats.stage1_rules, stats.stage2_rules
        );
        g.bench_with_input(
            BenchmarkId::new("compile", format!("multi_table_{multi_table}")),
            &(),
            |b, _| b.iter(|| sdx.compile().unwrap()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
