use std::fmt;

/// Errors produced when parsing or constructing network primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IpError {
    /// The textual form of a prefix was malformed (missing `/`, bad octets…).
    InvalidPrefix(String),
    /// A prefix length was outside `0..=32`.
    InvalidPrefixLen(u8),
    /// The textual form of a MAC address was malformed.
    InvalidMac(String),
}

impl fmt::Display for IpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpError::InvalidPrefix(s) => write!(f, "invalid IPv4 prefix: {s:?}"),
            IpError::InvalidPrefixLen(l) => write!(f, "invalid prefix length: /{l}"),
            IpError::InvalidMac(s) => write!(f, "invalid MAC address: {s:?}"),
        }
    }
}

impl std::error::Error for IpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(IpError::InvalidPrefix("x".into())
            .to_string()
            .contains("prefix"));
        assert!(IpError::InvalidPrefixLen(40).to_string().contains("/40"));
        assert!(IpError::InvalidMac("zz".into()).to_string().contains("MAC"));
    }
}
