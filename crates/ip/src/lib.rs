//! Network primitive types for the SDX: IPv4 prefixes, longest-prefix-match
//! tries, prefix sets, and MAC addresses.
//!
//! Everything in this crate is deterministic and allocation-conscious; the
//! SDX controller manipulates hundreds of thousands of prefixes (a full
//! default-free routing table) and the structures here are the foundation of
//! the forwarding-equivalence-class machinery in `sdx-core`.
//!
//! # Quick tour
//!
//! ```
//! use sdx_ip::{Prefix, PrefixTrie};
//!
//! let p: Prefix = "10.0.0.0/8".parse().unwrap();
//! assert!(p.contains_addr("10.1.2.3".parse().unwrap()));
//!
//! let mut trie = PrefixTrie::new();
//! trie.insert("10.0.0.0/8".parse().unwrap(), "coarse");
//! trie.insert("10.1.0.0/16".parse().unwrap(), "fine");
//! let (got, _) = trie.longest_match("10.1.2.3".parse().unwrap()).unwrap();
//! assert_eq!(got.to_string(), "10.1.0.0/16");
//! ```

mod error;
mod mac;
mod prefix;
mod set;
mod trie;

pub use error::IpError;
pub use mac::MacAddr;
pub use prefix::Prefix;
pub use set::PrefixSet;
pub use trie::PrefixTrie;

pub use std::net::Ipv4Addr;
