use std::net::Ipv4Addr;

use crate::Prefix;

/// A binary (Patricia-less, one bit per level) trie mapping IPv4 prefixes to
/// values, supporting exact lookup and longest-prefix match.
///
/// Border routers in the SDX data plane use this as their FIB (stage one of
/// the multi-stage FIB of §4.2), and the route server uses it to index its
/// RIBs. One bit per level keeps the implementation obviously correct; at
/// full-table scale (~500k prefixes) it is still comfortably fast for the
/// paper's experiments.
#[derive(Debug, Clone)]
pub struct PrefixTrie<V> {
    root: Node<V>,
    len: usize,
}

#[derive(Debug, Clone)]
struct Node<V> {
    value: Option<V>,
    children: [Option<Box<Node<V>>>; 2],
}

impl<V> Default for Node<V> {
    fn default() -> Self {
        Node {
            value: None,
            children: [None, None],
        }
    }
}

impl<V> Default for PrefixTrie<V> {
    fn default() -> Self {
        Self::new()
    }
}

/// The `i`-th bit of `bits`, counting from the most significant.
fn bit(bits: u32, i: u8) -> usize {
    ((bits >> (31 - i)) & 1) as usize
}

impl<V> PrefixTrie<V> {
    /// An empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            root: Node::default(),
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie holds no prefixes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a value for `prefix`, returning the previous value if any.
    pub fn insert(&mut self, prefix: Prefix, value: V) -> Option<V> {
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let b = bit(prefix.bits(), i);
            node = node.children[b].get_or_insert_with(Box::default);
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Remove the value for exactly `prefix`, returning it if present.
    /// (Empty interior nodes are left in place; removal is rare in our
    /// workloads and lookups skip them for free.)
    pub fn remove(&mut self, prefix: &Prefix) -> Option<V> {
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let b = bit(prefix.bits(), i);
            node = node.children[b].as_deref_mut()?;
        }
        let old = node.value.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// The value stored for exactly `prefix`.
    pub fn get(&self, prefix: &Prefix) -> Option<&V> {
        let mut node = &self.root;
        for i in 0..prefix.len() {
            let b = bit(prefix.bits(), i);
            node = node.children[b].as_deref()?;
        }
        node.value.as_ref()
    }

    /// Mutable access to the value stored for exactly `prefix`.
    pub fn get_mut(&mut self, prefix: &Prefix) -> Option<&mut V> {
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let b = bit(prefix.bits(), i);
            node = node.children[b].as_deref_mut()?;
        }
        node.value.as_mut()
    }

    /// Longest-prefix match for a single address: the most specific stored
    /// prefix containing `addr`, with its value.
    pub fn longest_match(&self, addr: Ipv4Addr) -> Option<(Prefix, &V)> {
        let bits = u32::from(addr);
        let mut node = &self.root;
        let mut best: Option<(Prefix, &V)> = None;
        for i in 0..=32u8 {
            if let Some(v) = &node.value {
                best = Some((Prefix::from_bits(bits, i), v));
            }
            if i == 32 {
                break;
            }
            match node.children[bit(bits, i)].as_deref() {
                Some(child) => node = child,
                None => break,
            }
        }
        best
    }

    /// All stored prefixes that contain `addr`, least specific first.
    pub fn matches(&self, addr: Ipv4Addr) -> Vec<(Prefix, &V)> {
        let mut out = Vec::new();
        self.walk(addr, |p, v| out.push((p, v)));
        out
    }

    /// Visit every stored prefix containing `addr`, least specific first,
    /// without allocating. This is the data-plane lookup primitive: the
    /// switch's tuple-space index walks the containing chain of each
    /// prefix-keyed bucket per packet, so the allocation-free form matters.
    pub fn walk<'a>(&'a self, addr: Ipv4Addr, mut visit: impl FnMut(Prefix, &'a V)) {
        let bits = u32::from(addr);
        let mut node = &self.root;
        for i in 0..=32u8 {
            if let Some(v) = &node.value {
                visit(Prefix::from_bits(bits, i), v);
            }
            if i == 32 {
                break;
            }
            match node.children[bit(bits, i)].as_deref() {
                Some(child) => node = child,
                None => break,
            }
        }
    }

    /// Iterate over all `(prefix, value)` pairs in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &V)> {
        let mut out = Vec::with_capacity(self.len);
        collect(&self.root, 0, 0, &mut out);
        out.into_iter()
    }

    /// Remove every entry.
    pub fn clear(&mut self) {
        self.root = Node::default();
        self.len = 0;
    }
}

fn collect<'a, V>(node: &'a Node<V>, bits: u32, depth: u8, out: &mut Vec<(Prefix, &'a V)>) {
    if let Some(v) = &node.value {
        out.push((Prefix::from_bits(bits, depth), v));
    }
    if depth == 32 {
        return;
    }
    if let Some(child) = node.children[0].as_deref() {
        collect(child, bits, depth + 1, out);
    }
    if let Some(child) = node.children[1].as_deref() {
        collect(child, bits | (1 << (31 - depth)), depth + 1, out);
    }
}

impl<V> FromIterator<(Prefix, V)> for PrefixTrie<V> {
    fn from_iter<T: IntoIterator<Item = (Prefix, V)>>(iter: T) -> Self {
        let mut trie = PrefixTrie::new();
        for (p, v) in iter {
            trie.insert(p, v);
        }
        trie
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn a(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn insert_get_remove() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&p("10.0.0.0/8")), Some(&2));
        assert_eq!(t.get(&p("10.0.0.0/16")), None);
        assert_eq!(t.remove(&p("10.0.0.0/8")), Some(2));
        assert_eq!(t.remove(&p("10.0.0.0/8")), None);
        assert!(t.is_empty());
    }

    #[test]
    fn longest_match_prefers_specific() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), "default");
        t.insert(p("10.0.0.0/8"), "eight");
        t.insert(p("10.1.0.0/16"), "sixteen");
        assert_eq!(t.longest_match(a("10.1.2.3")).unwrap().1, &"sixteen");
        assert_eq!(t.longest_match(a("10.2.0.1")).unwrap().1, &"eight");
        assert_eq!(t.longest_match(a("192.0.2.1")).unwrap().1, &"default");
    }

    #[test]
    fn longest_match_none_when_empty_or_uncovered() {
        let mut t = PrefixTrie::new();
        assert!(t.longest_match(a("10.0.0.1")).is_none());
        t.insert(p("10.0.0.0/8"), ());
        assert!(t.longest_match(a("11.0.0.1")).is_none());
    }

    #[test]
    fn matches_returns_chain_least_specific_first() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), 0);
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.1.0.0/16"), 16);
        t.insert(p("10.1.2.3/32"), 32);
        let chain: Vec<i32> = t
            .matches(a("10.1.2.3"))
            .into_iter()
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(chain, vec![0, 8, 16, 32]);
    }

    #[test]
    fn walk_agrees_with_matches() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), 0);
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.1.0.0/16"), 16);
        for addr in ["10.1.2.3", "10.9.9.9", "192.0.2.1"] {
            let mut walked = Vec::new();
            t.walk(a(addr), |q, v| walked.push((q, v)));
            assert_eq!(walked, t.matches(a(addr)));
        }
    }

    #[test]
    fn host_route_matchable() {
        let mut t = PrefixTrie::new();
        t.insert(p("1.2.3.4/32"), "host");
        assert_eq!(t.longest_match(a("1.2.3.4")).unwrap().1, &"host");
        assert!(t.longest_match(a("1.2.3.5")).is_none());
    }

    #[test]
    fn iter_visits_all_in_order() {
        let prefixes = ["10.0.0.0/8", "0.0.0.0/0", "10.1.0.0/16", "192.168.0.0/24"];
        let t: PrefixTrie<usize> = prefixes
            .iter()
            .enumerate()
            .map(|(i, s)| (p(s), i))
            .collect();
        let got: Vec<Prefix> = t.iter().map(|(q, _)| q).collect();
        assert_eq!(got.len(), 4);
        // Lexicographic (DFS, zero-branch first) ordering.
        assert_eq!(got[0], p("0.0.0.0/0"));
        assert_eq!(got[1], p("10.0.0.0/8"));
        assert_eq!(got[2], p("10.1.0.0/16"));
        assert_eq!(got[3], p("192.168.0.0/24"));
    }

    #[test]
    fn clear_resets() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), ());
        t.clear();
        assert!(t.is_empty());
        assert!(t.longest_match(a("10.0.0.1")).is_none());
    }
}
