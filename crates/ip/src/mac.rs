use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::IpError;

/// A 48-bit Ethernet MAC address.
///
/// The SDX uses MAC addresses both for real ports and as *virtual MAC* tags
/// (VMACs) that encode a forwarding equivalence class (§4.2 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// The all-zero address, used as "unset".
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Build from the low 48 bits of a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let b = v.to_be_bytes();
        MacAddr([b[2], b[3], b[4], b[5], b[6], b[7]])
    }

    /// The address as a `u64` (high 16 bits zero).
    pub fn to_u64(&self) -> u64 {
        let mut b = [0u8; 8];
        b[2..].copy_from_slice(&self.0);
        u64::from_be_bytes(b)
    }

    /// Is this the broadcast address?
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// Is this a locally-administered address (bit 1 of the first octet)?
    /// All SDX-generated VMACs are locally administered.
    pub fn is_local(&self) -> bool {
        self.0[0] & 0x02 != 0
    }

    /// The `i`-th VMAC in the SDX's tag space: `0a:53:xx:xx:xx:xx`
    /// (locally-administered unicast; `53` is ASCII "S" for SDX), a prefix
    /// no participant interface uses, so VMAC tags can never collide with
    /// real router MACs. The 32-bit index space comfortably exceeds any
    /// realistic FEC count plus fast-path churn between reoptimizations.
    pub fn vmac(i: u64) -> Self {
        MacAddr::from_u64(0x0a53_0000_0000 | (i & 0xffff_ffff))
    }

    /// Is this address inside the SDX VMAC tag space?
    pub fn is_vmac(&self) -> bool {
        self.to_u64() >> 32 == 0x0a53
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for MacAddr {
    type Err = IpError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut out = [0u8; 6];
        let mut parts = s.split(':');
        for slot in out.iter_mut() {
            let part = parts.next().ok_or_else(|| IpError::InvalidMac(s.into()))?;
            *slot = u8::from_str_radix(part, 16).map_err(|_| IpError::InvalidMac(s.into()))?;
        }
        if parts.next().is_some() {
            return Err(IpError::InvalidMac(s.into()));
        }
        Ok(MacAddr(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_round_trip() {
        let m: MacAddr = "02:00:00:00:00:2a".parse().unwrap();
        assert_eq!(m.to_string(), "02:00:00:00:00:2a");
        assert_eq!(m, MacAddr::from_u64(0x0200_0000_002a));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!("02:00:00:00:00".parse::<MacAddr>().is_err());
        assert!("02:00:00:00:00:00:00".parse::<MacAddr>().is_err());
        assert!("zz:00:00:00:00:00".parse::<MacAddr>().is_err());
    }

    #[test]
    fn u64_round_trip() {
        for v in [0u64, 1, 0xffff_ffff_ffff, 0x0123_4567_89ab] {
            assert_eq!(MacAddr::from_u64(v).to_u64(), v);
        }
    }

    #[test]
    fn vmacs_are_local_unicast_and_distinct() {
        let a = MacAddr::vmac(1);
        let b = MacAddr::vmac(2);
        assert_ne!(a, b);
        assert!(a.is_local());
        assert!(!a.is_broadcast());
        assert!(a.is_vmac() && b.is_vmac());
        assert!(!MacAddr::from_u64(0x0200_0000_0001).is_vmac());
        assert_eq!(a.to_string(), "0a:53:00:00:00:01");
    }

    #[test]
    fn broadcast_detection() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(!MacAddr::ZERO.is_broadcast());
    }
}
