use std::collections::BTreeSet;
use std::fmt;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use crate::Prefix;

/// A set of IPv4 prefixes with set-algebra operations.
///
/// The SDX's BGP-consistency transformation (§4.1) intersects a policy's
/// destination-prefix filter with the set of prefixes a next-hop participant
/// actually exports; forwarding-equivalence-class computation (§4.2)
/// intersects and groups the per-participant announced-prefix sets. Prefixes
/// are kept in a `BTreeSet`, deduplicated but *not* aggregated: the paper is
/// explicit that FEC members need not be contiguous blocks, so the set keeps
/// each announced prefix as its own atom.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PrefixSet {
    prefixes: BTreeSet<Prefix>,
}

impl PrefixSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of prefixes in the set.
    pub fn len(&self) -> usize {
        self.prefixes.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.prefixes.is_empty()
    }

    /// Insert a prefix; returns `true` if it was not already present.
    pub fn insert(&mut self, p: Prefix) -> bool {
        self.prefixes.insert(p)
    }

    /// Remove a prefix; returns `true` if it was present.
    pub fn remove(&mut self, p: &Prefix) -> bool {
        self.prefixes.remove(p)
    }

    /// Does the set contain exactly this prefix?
    pub fn contains(&self, p: &Prefix) -> bool {
        self.prefixes.contains(p)
    }

    /// Is `addr` covered by any member prefix?
    pub fn covers_addr(&self, addr: Ipv4Addr) -> bool {
        self.prefixes.iter().any(|p| p.contains_addr(addr))
    }

    /// Exact-member set union.
    pub fn union(&self, other: &PrefixSet) -> PrefixSet {
        PrefixSet {
            prefixes: self.prefixes.union(&other.prefixes).copied().collect(),
        }
    }

    /// Exact-member set intersection.
    pub fn intersection(&self, other: &PrefixSet) -> PrefixSet {
        PrefixSet {
            prefixes: self
                .prefixes
                .intersection(&other.prefixes)
                .copied()
                .collect(),
        }
    }

    /// Exact-member set difference (`self \ other`).
    pub fn difference(&self, other: &PrefixSet) -> PrefixSet {
        PrefixSet {
            prefixes: self.prefixes.difference(&other.prefixes).copied().collect(),
        }
    }

    /// Is `self` a subset of `other` (exact membership)?
    pub fn is_subset(&self, other: &PrefixSet) -> bool {
        self.prefixes.is_subset(&other.prefixes)
    }

    /// Iterate over member prefixes in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Prefix> {
        self.prefixes.iter()
    }
}

impl FromIterator<Prefix> for PrefixSet {
    fn from_iter<T: IntoIterator<Item = Prefix>>(iter: T) -> Self {
        PrefixSet {
            prefixes: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a PrefixSet {
    type Item = &'a Prefix;
    type IntoIter = std::collections::btree_set::Iter<'a, Prefix>;

    fn into_iter(self) -> Self::IntoIter {
        self.prefixes.iter()
    }
}

impl IntoIterator for PrefixSet {
    type Item = Prefix;
    type IntoIter = std::collections::btree_set::IntoIter<Prefix>;

    fn into_iter(self) -> Self::IntoIter {
        self.prefixes.into_iter()
    }
}

impl fmt::Display for PrefixSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.prefixes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ps: &[&str]) -> PrefixSet {
        ps.iter().map(|s| s.parse().unwrap()).collect()
    }

    #[test]
    fn insert_dedups() {
        let mut s = PrefixSet::new();
        assert!(s.insert("10.0.0.0/8".parse().unwrap()));
        assert!(!s.insert("10.0.0.0/8".parse().unwrap()));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn set_algebra() {
        let a = set(&["10.0.0.0/8", "20.0.0.0/8"]);
        let b = set(&["20.0.0.0/8", "30.0.0.0/8"]);
        assert_eq!(
            a.union(&b),
            set(&["10.0.0.0/8", "20.0.0.0/8", "30.0.0.0/8"])
        );
        assert_eq!(a.intersection(&b), set(&["20.0.0.0/8"]));
        assert_eq!(a.difference(&b), set(&["10.0.0.0/8"]));
        assert!(set(&["20.0.0.0/8"]).is_subset(&b));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn covers_addr_checks_member_prefixes() {
        let s = set(&["10.0.0.0/8", "192.168.1.0/24"]);
        assert!(s.covers_addr("10.250.0.1".parse().unwrap()));
        assert!(s.covers_addr("192.168.1.44".parse().unwrap()));
        assert!(!s.covers_addr("192.168.2.1".parse().unwrap()));
    }

    #[test]
    fn display_sorted() {
        let s = set(&["20.0.0.0/8", "10.0.0.0/8"]);
        assert_eq!(s.to_string(), "{10.0.0.0/8, 20.0.0.0/8}");
    }

    #[test]
    fn membership_is_exact_not_covering() {
        // A PrefixSet is a set of route atoms, not an address-space union:
        // a covering prefix does not imply membership of its subnets.
        let s = set(&["10.0.0.0/8"]);
        assert!(!s.contains(&"10.1.0.0/16".parse().unwrap()));
    }
}
