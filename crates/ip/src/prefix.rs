use std::cmp::Ordering;
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::IpError;

/// An IPv4 prefix in CIDR form, e.g. `10.0.0.0/8`.
///
/// The network address is always stored in canonical (masked) form: bits
/// below the prefix length are zero. Two prefixes that print the same compare
/// equal, and the derived `Ord` sorts first by address and then by length,
/// which places a covering prefix immediately before its subnets.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Prefix {
    bits: u32,
    len: u8,
}

impl Prefix {
    /// Build a prefix from an address and length, masking off host bits.
    ///
    /// Returns an error if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Result<Self, IpError> {
        if len > 32 {
            return Err(IpError::InvalidPrefixLen(len));
        }
        let bits = u32::from(addr) & mask(len);
        Ok(Prefix { bits, len })
    }

    /// Build a prefix from raw bits and length, masking off host bits.
    /// Panics if `len > 32`; intended for internal/trusted callers.
    pub fn from_bits(bits: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length out of range: {len}");
        Prefix {
            bits: bits & mask(len),
            len,
        }
    }

    /// The all-encompassing default route `0.0.0.0/0`.
    pub const DEFAULT: Prefix = Prefix { bits: 0, len: 0 };

    /// A host route (`/32`) for a single address.
    pub fn host(addr: Ipv4Addr) -> Self {
        Prefix {
            bits: u32::from(addr),
            len: 32,
        }
    }

    /// The network address (masked).
    pub fn addr(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.bits)
    }

    /// The raw network bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The prefix length in bits.
    #[allow(clippy::len_without_is_empty)] // a prefix is a length-tagged value, not a container
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Whether this is the zero-length default prefix.
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// The subnet mask as raw bits.
    pub fn mask_bits(&self) -> u32 {
        mask(self.len)
    }

    /// Does this prefix contain the given address?
    pub fn contains_addr(&self, addr: Ipv4Addr) -> bool {
        (u32::from(addr) & self.mask_bits()) == self.bits
    }

    /// Does this prefix contain (i.e. is it equal to or less specific than)
    /// `other`?
    pub fn contains(&self, other: &Prefix) -> bool {
        self.len <= other.len && (other.bits & self.mask_bits()) == self.bits
    }

    /// Do the two prefixes share any addresses? (True iff one contains the
    /// other.)
    pub fn overlaps(&self, other: &Prefix) -> bool {
        self.contains(other) || other.contains(self)
    }

    /// The intersection of two prefixes: the more specific one if they
    /// overlap, `None` otherwise.
    pub fn intersect(&self, other: &Prefix) -> Option<Prefix> {
        if self.contains(other) {
            Some(*other)
        } else if other.contains(self) {
            Some(*self)
        } else {
            None
        }
    }

    /// The two halves of this prefix, if it can be split (`len < 32`).
    pub fn split(&self) -> Option<(Prefix, Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let len = self.len + 1;
        let lo = Prefix {
            bits: self.bits,
            len,
        };
        let hi = Prefix {
            bits: self.bits | (1u32 << (32 - len)),
            len,
        };
        Some((lo, hi))
    }

    /// The immediate covering prefix (one bit shorter), or `None` for `/0`.
    pub fn parent(&self) -> Option<Prefix> {
        if self.len == 0 {
            None
        } else {
            Some(Prefix::from_bits(self.bits, self.len - 1))
        }
    }

    /// The first address covered by the prefix.
    pub fn first_addr(&self) -> Ipv4Addr {
        self.addr()
    }

    /// The last address covered by the prefix.
    pub fn last_addr(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.bits | !self.mask_bits())
    }

    /// The number of addresses covered, saturating at `u64` width.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.len as u64)
    }

    /// Compare by specificity: more-specific (longer) prefixes sort first.
    /// Useful for building priority-ordered rule lists.
    pub fn cmp_specificity(&self, other: &Prefix) -> Ordering {
        other.len.cmp(&self.len).then(self.bits.cmp(&other.bits))
    }
}

fn mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len as u32)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr(), self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for Prefix {
    type Err = IpError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = match s.split_once('/') {
            Some((a, l)) => (a, l),
            None => (s, "32"),
        };
        let addr: Ipv4Addr = addr
            .parse()
            .map_err(|_| IpError::InvalidPrefix(s.to_string()))?;
        let len: u8 = len
            .parse()
            .map_err(|_| IpError::InvalidPrefix(s.to_string()))?;
        Prefix::new(addr, len)
    }
}

impl From<Ipv4Addr> for Prefix {
    fn from(addr: Ipv4Addr) -> Self {
        Prefix::host(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "192.168.1.0/24", "1.2.3.4/32"] {
            assert_eq!(p(s).to_string(), s);
        }
    }

    #[test]
    fn bare_address_parses_as_host_route() {
        assert_eq!(p("1.2.3.4"), p("1.2.3.4/32"));
    }

    #[test]
    fn host_bits_are_masked() {
        assert_eq!(p("10.1.2.3/8"), p("10.0.0.0/8"));
        assert_eq!(p("10.1.2.3/8").to_string(), "10.0.0.0/8");
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("10.0.0/8".parse::<Prefix>().is_err());
        assert!("abc/8".parse::<Prefix>().is_err());
        assert!("10.0.0.0/x".parse::<Prefix>().is_err());
    }

    #[test]
    fn containment() {
        assert!(p("10.0.0.0/8").contains(&p("10.1.0.0/16")));
        assert!(p("10.0.0.0/8").contains(&p("10.0.0.0/8")));
        assert!(!p("10.1.0.0/16").contains(&p("10.0.0.0/8")));
        assert!(!p("10.0.0.0/8").contains(&p("11.0.0.0/8")));
        assert!(p("0.0.0.0/0").contains(&p("255.0.0.0/8")));
    }

    #[test]
    fn contains_addr_boundaries() {
        let q = p("10.1.0.0/16");
        assert!(q.contains_addr("10.1.0.0".parse().unwrap()));
        assert!(q.contains_addr("10.1.255.255".parse().unwrap()));
        assert!(!q.contains_addr("10.2.0.0".parse().unwrap()));
        assert!(!q.contains_addr("10.0.255.255".parse().unwrap()));
    }

    #[test]
    fn overlap_and_intersection() {
        assert_eq!(
            p("10.0.0.0/8").intersect(&p("10.1.0.0/16")),
            Some(p("10.1.0.0/16"))
        );
        assert_eq!(
            p("10.1.0.0/16").intersect(&p("10.0.0.0/8")),
            Some(p("10.1.0.0/16"))
        );
        assert_eq!(p("10.0.0.0/8").intersect(&p("11.0.0.0/8")), None);
        assert!(p("0.0.0.0/1").overlaps(&p("1.0.0.0/8")));
        assert!(!p("0.0.0.0/1").overlaps(&p("128.0.0.0/1")));
    }

    #[test]
    fn split_halves_partition_parent() {
        let (lo, hi) = p("10.0.0.0/8").split().unwrap();
        assert_eq!(lo, p("10.0.0.0/9"));
        assert_eq!(hi, p("10.128.0.0/9"));
        assert!(p("10.0.0.0/8").contains(&lo));
        assert!(p("10.0.0.0/8").contains(&hi));
        assert!(!lo.overlaps(&hi));
        assert!(p("1.2.3.4/32").split().is_none());
    }

    #[test]
    fn parent_inverts_split() {
        let q = p("10.128.0.0/9");
        assert_eq!(q.parent(), Some(p("10.0.0.0/8")));
        assert_eq!(Prefix::DEFAULT.parent(), None);
    }

    #[test]
    fn first_last_size() {
        let q = p("192.168.1.0/24");
        assert_eq!(q.first_addr().to_string(), "192.168.1.0");
        assert_eq!(q.last_addr().to_string(), "192.168.1.255");
        assert_eq!(q.size(), 256);
        assert_eq!(Prefix::DEFAULT.size(), 1u64 << 32);
    }

    #[test]
    fn specificity_ordering() {
        let mut v = [p("10.0.0.0/8"), p("10.1.0.0/16"), p("10.1.1.0/24")];
        v.sort_by(|a, b| a.cmp_specificity(b));
        assert_eq!(v[0], p("10.1.1.0/24"));
        assert_eq!(v[2], p("10.0.0.0/8"));
    }
}
