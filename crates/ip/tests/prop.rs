//! Property-based tests for the `sdx-ip` primitives.

use proptest::prelude::*;
use sdx_ip::{MacAddr, Prefix, PrefixSet, PrefixTrie};
use std::net::Ipv4Addr;

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| Prefix::from_bits(bits, len))
}

proptest! {
    #[test]
    fn prefix_parse_display_round_trip(p in arb_prefix()) {
        let s = p.to_string();
        let q: Prefix = s.parse().unwrap();
        prop_assert_eq!(p, q);
    }

    #[test]
    fn prefix_contains_is_reflexive_and_antisymmetric(a in arb_prefix(), b in arb_prefix()) {
        prop_assert!(a.contains(&a));
        if a.contains(&b) && b.contains(&a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn prefix_contains_first_and_last(p in arb_prefix()) {
        prop_assert!(p.contains_addr(p.first_addr()));
        prop_assert!(p.contains_addr(p.last_addr()));
    }

    #[test]
    fn split_partitions(p in arb_prefix()) {
        if let Some((lo, hi)) = p.split() {
            prop_assert!(p.contains(&lo) && p.contains(&hi));
            prop_assert!(!lo.overlaps(&hi));
            prop_assert_eq!(lo.size() + hi.size(), p.size());
            prop_assert_eq!(lo.parent(), Some(p));
            prop_assert_eq!(hi.parent(), Some(p));
        }
    }

    #[test]
    fn intersect_agrees_with_addr_membership(a in arb_prefix(), b in arb_prefix(), addr in any::<u32>()) {
        let addr = Ipv4Addr::from(addr);
        let in_both = a.contains_addr(addr) && b.contains_addr(addr);
        match a.intersect(&b) {
            Some(i) => prop_assert_eq!(in_both, i.contains_addr(addr)),
            None => prop_assert!(!in_both),
        }
    }

    #[test]
    fn trie_longest_match_is_most_specific(prefixes in prop::collection::vec(arb_prefix(), 1..60), addr in any::<u32>()) {
        let addr = Ipv4Addr::from(addr);
        let trie: PrefixTrie<usize> = prefixes.iter().copied().zip(0..).collect();
        let brute = prefixes
            .iter()
            .filter(|p| p.contains_addr(addr))
            .max_by_key(|p| p.len());
        match (trie.longest_match(addr), brute) {
            (Some((got, _)), Some(want)) => prop_assert_eq!(got.len(), want.len()),
            (None, None) => {}
            (got, want) => prop_assert!(false, "trie={got:?} brute={want:?}"),
        }
    }

    #[test]
    fn trie_get_after_insert(prefixes in prop::collection::vec(arb_prefix(), 0..60)) {
        let mut trie = PrefixTrie::new();
        for (i, p) in prefixes.iter().enumerate() {
            trie.insert(*p, i);
        }
        // The last write for each distinct prefix wins.
        for p in &prefixes {
            let want = prefixes.iter().rposition(|q| q == p).unwrap();
            prop_assert_eq!(trie.get(p), Some(&want));
        }
        let distinct: std::collections::BTreeSet<_> = prefixes.iter().collect();
        prop_assert_eq!(trie.len(), distinct.len());
    }

    #[test]
    fn trie_iter_round_trips(prefixes in prop::collection::vec(arb_prefix(), 0..60)) {
        let trie: PrefixTrie<()> = prefixes.iter().map(|p| (*p, ())).collect();
        let got: std::collections::BTreeSet<Prefix> = trie.iter().map(|(p, _)| p).collect();
        let want: std::collections::BTreeSet<Prefix> = prefixes.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn prefix_set_laws(a in prop::collection::btree_set(arb_prefix(), 0..30), b in prop::collection::btree_set(arb_prefix(), 0..30)) {
        let sa: PrefixSet = a.iter().copied().collect();
        let sb: PrefixSet = b.iter().copied().collect();
        let u = sa.union(&sb);
        let i = sa.intersection(&sb);
        prop_assert!(i.is_subset(&sa) && i.is_subset(&sb));
        prop_assert!(sa.is_subset(&u) && sb.is_subset(&u));
        prop_assert_eq!(u.len() + i.len(), sa.len() + sb.len());
        prop_assert_eq!(sa.difference(&sb).len(), sa.len() - i.len());
    }

    #[test]
    fn mac_round_trip(v in 0u64..=0xffff_ffff_ffff) {
        let m = MacAddr::from_u64(v);
        prop_assert_eq!(m.to_u64(), v);
        let s = m.to_string();
        let parsed: MacAddr = s.parse().unwrap();
        prop_assert_eq!(parsed, m);
    }
}
