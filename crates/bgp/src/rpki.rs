//! RPKI route-origin validation (RFC 6811 semantics), used by the SDX to
//! verify prefix ownership before accepting announcements — the paper's
//! "the SDX would verify that AS D indeed owns the IP prefix (e.g., using
//! the RPKI)" for remote participants originating anycast prefixes (§3.2).

use sdx_ip::{Prefix, PrefixTrie};
use serde::{Deserialize, Serialize};

use crate::Asn;

/// A Route Origin Authorization: `asn` may originate `prefix` and any of
/// its subnets up to `max_length`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Roa {
    /// The authorized prefix.
    pub prefix: Prefix,
    /// Longest authorized subnet length (≥ `prefix.len()`).
    pub max_length: u8,
    /// The authorized origin AS.
    pub asn: Asn,
}

/// RFC 6811 validation states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RpkiStatus {
    /// A covering ROA authorizes the (prefix, origin) pair.
    Valid,
    /// Covering ROAs exist but none authorizes the pair.
    Invalid,
    /// No covering ROA exists.
    NotFound,
}

/// A validated ROA database.
#[derive(Debug, Clone, Default)]
pub struct RpkiValidator {
    roas: PrefixTrie<Vec<Roa>>,
}

impl RpkiValidator {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a ROA. A `max_length` below the prefix length is clamped up
    /// to it (such ROAs would otherwise authorize nothing, which is never
    /// the publisher's intent).
    pub fn add_roa(&mut self, mut roa: Roa) {
        roa.max_length = roa.max_length.max(roa.prefix.len()).min(32);
        match self.roas.get_mut(&roa.prefix) {
            Some(list) => list.push(roa),
            None => {
                self.roas.insert(roa.prefix, vec![roa]);
            }
        }
    }

    /// Number of ROAs registered.
    pub fn len(&self) -> usize {
        self.roas.iter().map(|(_, v)| v.len()).sum()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.roas.is_empty()
    }

    /// Validate an announced (prefix, origin) pair.
    pub fn validate(&self, prefix: &Prefix, origin: Asn) -> RpkiStatus {
        // Covering ROAs: every stored entry whose prefix contains the
        // announcement. Walk the trie along the announced prefix.
        let mut covered = false;
        for (_, roas) in self.roas.matches(prefix.addr()) {
            for roa in roas {
                if !roa.prefix.contains(prefix) {
                    continue;
                }
                covered = true;
                if roa.asn == origin && prefix.len() <= roa.max_length {
                    return RpkiStatus::Valid;
                }
            }
        }
        if covered {
            RpkiStatus::Invalid
        } else {
            RpkiStatus::NotFound
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn validator() -> RpkiValidator {
        let mut v = RpkiValidator::new();
        v.add_roa(Roa {
            prefix: p("74.125.0.0/16"),
            max_length: 24,
            asn: Asn(15169),
        });
        v.add_roa(Roa {
            prefix: p("10.0.0.0/8"),
            max_length: 8,
            asn: Asn(65001),
        });
        v
    }

    #[test]
    fn valid_origin_and_length() {
        let v = validator();
        assert_eq!(
            v.validate(&p("74.125.1.0/24"), Asn(15169)),
            RpkiStatus::Valid
        );
        assert_eq!(
            v.validate(&p("74.125.0.0/16"), Asn(15169)),
            RpkiStatus::Valid
        );
    }

    #[test]
    fn wrong_origin_is_invalid() {
        let v = validator();
        assert_eq!(
            v.validate(&p("74.125.1.0/24"), Asn(666)),
            RpkiStatus::Invalid
        );
    }

    #[test]
    fn too_specific_is_invalid() {
        let v = validator();
        assert_eq!(
            v.validate(&p("74.125.1.0/25"), Asn(15169)),
            RpkiStatus::Invalid
        );
        assert_eq!(
            v.validate(&p("10.1.0.0/16"), Asn(65001)),
            RpkiStatus::Invalid
        );
    }

    #[test]
    fn uncovered_is_not_found() {
        let v = validator();
        assert_eq!(
            v.validate(&p("192.0.2.0/24"), Asn(15169)),
            RpkiStatus::NotFound
        );
    }

    #[test]
    fn multiple_roas_any_match_wins() {
        let mut v = validator();
        v.add_roa(Roa {
            prefix: p("74.125.0.0/16"),
            max_length: 24,
            asn: Asn(64500),
        });
        assert_eq!(
            v.validate(&p("74.125.1.0/24"), Asn(64500)),
            RpkiStatus::Valid
        );
        assert_eq!(
            v.validate(&p("74.125.1.0/24"), Asn(15169)),
            RpkiStatus::Valid
        );
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn short_max_length_clamped() {
        let mut v = RpkiValidator::new();
        v.add_roa(Roa {
            prefix: p("192.0.2.0/24"),
            max_length: 8,
            asn: Asn(1),
        });
        assert_eq!(v.validate(&p("192.0.2.0/24"), Asn(1)), RpkiStatus::Valid);
    }
}
