//! The BGP decision process used by the route server to pick one best route
//! per prefix on behalf of each participant (§3.2 of the paper).

use std::cmp::Ordering;

use crate::{PeerId, Route, RouterId};

/// A route candidate: the route plus where it was learned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// The peer (participant border router) that announced the route.
    pub peer: PeerId,
    /// That peer's BGP identifier, the final tie-breaker.
    pub router_id: RouterId,
    /// The announced route.
    pub route: Route,
}

/// Compare two candidates; `Ordering::Greater` means `a` is preferred.
///
/// The steps, in order (a route-server flavor of RFC 4271 §9.1):
/// 1. higher LOCAL_PREF (absent treated as 100, the conventional default);
/// 2. shorter AS_PATH;
/// 3. lower ORIGIN (IGP < EGP < INCOMPLETE);
/// 4. lower MED (absent treated as 0; compared across neighbors, i.e.
///    "always-compare-med", which keeps the process deterministic);
/// 5. lower router ID;
/// 6. lower peer ID (total order even for identical router IDs).
pub fn prefer(a: &Candidate, b: &Candidate) -> Ordering {
    let lp = |c: &Candidate| c.route.attrs.local_pref.unwrap_or(100);
    let med = |c: &Candidate| c.route.attrs.med.unwrap_or(0);
    lp(a)
        .cmp(&lp(b))
        .then_with(|| {
            b.route
                .attrs
                .as_path
                .path_len()
                .cmp(&a.route.attrs.as_path.path_len())
        })
        .then_with(|| (b.route.attrs.origin as u8).cmp(&(a.route.attrs.origin as u8)))
        .then_with(|| med(b).cmp(&med(a)))
        .then_with(|| b.router_id.cmp(&a.router_id))
        .then_with(|| b.peer.cmp(&a.peer))
}

/// Select the best candidate, if any.
pub fn select<'a>(candidates: impl IntoIterator<Item = &'a Candidate>) -> Option<&'a Candidate> {
    candidates.into_iter().max_by(|a, b| prefer(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AsPath, Origin, PathAttributes};
    use std::net::Ipv4Addr;

    fn cand(peer: u32, path_len: usize, lp: Option<u32>) -> Candidate {
        let path = AsPath::sequence((0..path_len as u32).map(|i| 65000 + i));
        let mut attrs = PathAttributes::new(path, Ipv4Addr::new(10, 0, 0, peer as u8));
        attrs.local_pref = lp;
        Candidate {
            peer: PeerId(peer),
            router_id: RouterId(peer),
            route: Route::new("203.0.113.0/24".parse().unwrap(), attrs),
        }
    }

    #[test]
    fn local_pref_dominates_path_length() {
        let long_but_preferred = cand(1, 5, Some(200));
        let short = cand(2, 1, Some(100));
        assert_eq!(prefer(&long_but_preferred, &short), Ordering::Greater);
    }

    #[test]
    fn absent_local_pref_defaults_to_100() {
        let explicit = cand(1, 2, Some(100));
        let implicit = cand(2, 1, None);
        // Same local-pref; the shorter path wins.
        assert_eq!(prefer(&implicit, &explicit), Ordering::Greater);
    }

    #[test]
    fn shorter_as_path_wins() {
        assert_eq!(
            prefer(&cand(1, 1, None), &cand(2, 3, None)),
            Ordering::Greater
        );
    }

    #[test]
    fn origin_breaks_path_tie() {
        let mut igp = cand(1, 2, None);
        igp.route.attrs.origin = Origin::Igp;
        let mut incomplete = cand(2, 2, None);
        incomplete.route.attrs.origin = Origin::Incomplete;
        assert_eq!(prefer(&igp, &incomplete), Ordering::Greater);
    }

    #[test]
    fn med_breaks_origin_tie() {
        let mut low = cand(1, 2, None);
        low.route.attrs.med = Some(5);
        let mut high = cand(2, 2, None);
        high.route.attrs.med = Some(50);
        assert_eq!(prefer(&low, &high), Ordering::Greater);
    }

    #[test]
    fn router_id_final_tiebreak() {
        let a = cand(1, 2, None);
        let b = cand(2, 2, None);
        assert_eq!(prefer(&a, &b), Ordering::Greater); // lower router id
    }

    #[test]
    fn select_picks_maximum() {
        let cands = [cand(3, 4, None), cand(1, 2, Some(300)), cand(2, 1, None)];
        let best = select(cands.iter()).unwrap();
        assert_eq!(best.peer, PeerId(1));
        assert!(select(std::iter::empty()).is_none());
    }

    #[test]
    fn prefer_is_total_and_antisymmetric() {
        let a = cand(1, 2, None);
        let b = cand(2, 2, None);
        assert_eq!(prefer(&a, &b), prefer(&b, &a).reverse());
        assert_eq!(prefer(&a, &a), Ordering::Equal);
    }
}
