//! Per-participant export policies: which of a peer's routes the route
//! server re-advertises to which other peers.
//!
//! This is how the paper's Figure 1b arises: "AS B does not export a BGP
//! route for destination prefix p4 to AS A", so the SDX must never direct
//! A's traffic for p4 through B.

use std::collections::BTreeSet;

use sdx_ip::Prefix;
use serde::{Deserialize, Serialize};

use crate::PeerId;

/// The export policy a peer attaches to its announcements.
///
/// Default is export-to-everyone; denials can be per-peer (classic "do not
/// peer with X via the route server") or per-(prefix, peer) (selective
/// advertisement).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExportPolicy {
    deny_peers: BTreeSet<PeerId>,
    deny_prefix_to: BTreeSet<(Prefix, PeerId)>,
}

impl ExportPolicy {
    /// Export everything to everyone.
    pub fn export_all() -> Self {
        Self::default()
    }

    /// Never export any route to `peer`.
    pub fn deny_peer(mut self, peer: PeerId) -> Self {
        self.deny_peers.insert(peer);
        self
    }

    /// Do not export `prefix` to `peer` (other prefixes unaffected).
    pub fn deny_prefix_to(mut self, prefix: Prefix, peer: PeerId) -> Self {
        self.deny_prefix_to.insert((prefix, peer));
        self
    }

    /// Remove a per-peer denial.
    pub fn allow_peer(mut self, peer: PeerId) -> Self {
        self.deny_peers.remove(&peer);
        self
    }

    /// May `prefix` be exported to `to`?
    pub fn allows(&self, prefix: &Prefix, to: PeerId) -> bool {
        !self.deny_peers.contains(&to) && !self.deny_prefix_to.contains(&(*prefix, to))
    }

    /// Is anything denied at all? (Fast path for the common open policy.)
    pub fn is_open(&self) -> bool {
        self.deny_peers.is_empty() && self.deny_prefix_to.is_empty()
    }

    /// The peers explicitly denied this prefix (per-peer denials plus
    /// per-(prefix, peer) denials). The SDX uses this to find participants
    /// whose default best route diverges from the global one.
    pub fn explicit_denials(&self, prefix: &Prefix) -> impl Iterator<Item = PeerId> + '_ {
        let prefix = *prefix;
        self.deny_peers.iter().copied().chain(
            self.deny_prefix_to
                .iter()
                .filter(move |(p, _)| *p == prefix)
                .map(|(_, peer)| *peer),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn default_allows_everything() {
        let pol = ExportPolicy::export_all();
        assert!(pol.allows(&p("10.0.0.0/8"), PeerId(1)));
        assert!(pol.is_open());
    }

    #[test]
    fn per_peer_denial() {
        let pol = ExportPolicy::export_all().deny_peer(PeerId(1));
        assert!(!pol.allows(&p("10.0.0.0/8"), PeerId(1)));
        assert!(pol.allows(&p("10.0.0.0/8"), PeerId(2)));
        assert!(!pol.is_open());
    }

    #[test]
    fn per_prefix_denial_is_selective() {
        let pol = ExportPolicy::export_all().deny_prefix_to(p("10.3.0.0/16"), PeerId(1));
        assert!(!pol.allows(&p("10.3.0.0/16"), PeerId(1)));
        assert!(pol.allows(&p("10.3.0.0/16"), PeerId(2)));
        assert!(pol.allows(&p("10.4.0.0/16"), PeerId(1)));
    }

    #[test]
    fn allow_peer_reverses_denial() {
        let pol = ExportPolicy::export_all()
            .deny_peer(PeerId(1))
            .allow_peer(PeerId(1));
        assert!(pol.allows(&p("10.0.0.0/8"), PeerId(1)));
    }
}
