//! A from-scratch BGP implementation for the SDX: RFC 4271 wire codec,
//! session FSM, RIBs, the decision process, and the SDX-flavored route
//! server of §3.2/§5.1 of the paper (per-participant best routes, export
//! policies, feasible-route queries, AS-path pattern filters, and next-hop
//! rewriting hooks for virtual next hops).
//!
//! ```
//! use sdx_bgp::{AsPath, Asn, PathAttributes, PeerId, RouteServer, RouterId};
//! use std::net::Ipv4Addr;
//!
//! let mut rs = RouteServer::new();
//! rs.add_peer(PeerId(1), Asn(65001), RouterId(1));
//! rs.add_peer(PeerId(2), Asn(65002), RouterId(2));
//! rs.announce(
//!     PeerId(2),
//!     ["203.0.113.0/24".parse().unwrap()],
//!     PathAttributes::new(AsPath::sequence([65002]), Ipv4Addr::new(10, 0, 0, 2)),
//! );
//! let best = rs.best_route(&"203.0.113.0/24".parse().unwrap(), PeerId(1)).unwrap();
//! assert_eq!(best.peer, PeerId(2));
//! ```

mod aspath_pattern;
pub mod decision;
mod export;
mod rib;
mod route;
mod route_server;
pub mod rpki;
pub mod session;
mod types;
pub mod wire;

pub use aspath_pattern::{AsPathPattern, PatternError};
pub use decision::Candidate;
pub use export::ExportPolicy;
pub use rib::{AdjRibIn, CandidateTable};
pub use route::{PathAttributes, Route, Update};
pub use route_server::{PeerInfo, RouteServer, RsEvent};
pub use rpki::{Roa, RpkiStatus, RpkiValidator};
pub use session::{Session, SessionAction, SessionConfig, SessionEvent, SessionState};
pub use types::{AsPath, AsPathSegment, Asn, Community, Origin, PeerId, RouterId};
