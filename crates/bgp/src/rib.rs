//! Routing information bases: the per-peer Adj-RIB-In and the per-prefix
//! candidate table the route server selects from.

use std::collections::BTreeMap;

use sdx_ip::{Prefix, PrefixSet, PrefixTrie};

use crate::{PeerId, Route};

/// The routes learned from a single peer, indexed by prefix.
#[derive(Debug, Clone, Default)]
pub struct AdjRibIn {
    routes: PrefixTrie<Route>,
}

impl AdjRibIn {
    /// An empty RIB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install (or replace) the peer's route for a prefix; returns the
    /// replaced route if any.
    pub fn insert(&mut self, route: Route) -> Option<Route> {
        self.routes.insert(route.prefix, route)
    }

    /// Withdraw the peer's route for a prefix.
    pub fn remove(&mut self, prefix: &Prefix) -> Option<Route> {
        self.routes.remove(prefix)
    }

    /// The peer's route for exactly this prefix.
    pub fn get(&self, prefix: &Prefix) -> Option<&Route> {
        self.routes.get(prefix)
    }

    /// Number of prefixes learned from the peer.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether the RIB is empty.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Every prefix the peer currently announces.
    pub fn prefixes(&self) -> PrefixSet {
        self.routes.iter().map(|(p, _)| p).collect()
    }

    /// Iterate over `(prefix, route)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &Route)> {
        self.routes.iter()
    }
}

/// The global candidate table: for each prefix, who announces it and with
/// what route. The route server's per-participant best route is computed
/// from these candidates, filtered by export policy.
#[derive(Debug, Clone, Default)]
pub struct CandidateTable {
    by_prefix: BTreeMap<Prefix, BTreeMap<PeerId, Route>>,
}

impl CandidateTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a peer's route for a prefix.
    pub fn insert(&mut self, peer: PeerId, route: Route) -> Option<Route> {
        self.by_prefix
            .entry(route.prefix)
            .or_default()
            .insert(peer, route)
    }

    /// Remove a peer's route for a prefix.
    pub fn remove(&mut self, peer: PeerId, prefix: &Prefix) -> Option<Route> {
        let entry = self.by_prefix.get_mut(prefix)?;
        let removed = entry.remove(&peer);
        if entry.is_empty() {
            self.by_prefix.remove(prefix);
        }
        removed
    }

    /// Drop every route learned from a peer (session teardown). Returns the
    /// prefixes that lost a candidate.
    pub fn remove_peer(&mut self, peer: PeerId) -> Vec<Prefix> {
        let mut touched = Vec::new();
        self.by_prefix.retain(|prefix, peers| {
            if peers.remove(&peer).is_some() {
                touched.push(*prefix);
            }
            !peers.is_empty()
        });
        touched
    }

    /// All candidates for a prefix.
    pub fn candidates(&self, prefix: &Prefix) -> impl Iterator<Item = (&PeerId, &Route)> {
        self.by_prefix
            .get(prefix)
            .into_iter()
            .flat_map(|m| m.iter())
    }

    /// Every prefix with at least one candidate.
    pub fn prefixes(&self) -> impl Iterator<Item = &Prefix> {
        self.by_prefix.keys()
    }

    /// Number of prefixes with candidates.
    pub fn len(&self) -> usize {
        self.by_prefix.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.by_prefix.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AsPath, PathAttributes};
    use std::net::Ipv4Addr;

    fn route(prefix: &str, first_as: u32) -> Route {
        Route::new(
            prefix.parse().unwrap(),
            PathAttributes::new(AsPath::sequence([first_as]), Ipv4Addr::new(10, 0, 0, 1)),
        )
    }

    #[test]
    fn adj_rib_in_replaces_per_prefix() {
        let mut rib = AdjRibIn::new();
        assert!(rib.insert(route("10.0.0.0/8", 1)).is_none());
        let old = rib.insert(route("10.0.0.0/8", 2)).unwrap();
        assert_eq!(old.attrs.as_path.origin_as().unwrap().0, 1);
        assert_eq!(rib.len(), 1);
        assert!(rib.remove(&"10.0.0.0/8".parse().unwrap()).is_some());
        assert!(rib.is_empty());
    }

    #[test]
    fn adj_rib_in_prefix_set() {
        let mut rib = AdjRibIn::new();
        rib.insert(route("10.0.0.0/8", 1));
        rib.insert(route("20.0.0.0/8", 1));
        let ps = rib.prefixes();
        assert_eq!(ps.len(), 2);
        assert!(ps.contains(&"10.0.0.0/8".parse().unwrap()));
    }

    #[test]
    fn candidate_table_tracks_multiple_peers() {
        let mut t = CandidateTable::new();
        t.insert(PeerId(1), route("10.0.0.0/8", 1));
        t.insert(PeerId(2), route("10.0.0.0/8", 2));
        assert_eq!(t.candidates(&"10.0.0.0/8".parse().unwrap()).count(), 2);
        t.remove(PeerId(1), &"10.0.0.0/8".parse().unwrap());
        assert_eq!(t.candidates(&"10.0.0.0/8".parse().unwrap()).count(), 1);
        t.remove(PeerId(2), &"10.0.0.0/8".parse().unwrap());
        assert!(t.is_empty());
    }

    #[test]
    fn remove_peer_reports_touched_prefixes() {
        let mut t = CandidateTable::new();
        t.insert(PeerId(1), route("10.0.0.0/8", 1));
        t.insert(PeerId(1), route("20.0.0.0/8", 1));
        t.insert(PeerId(2), route("10.0.0.0/8", 2));
        let touched = t.remove_peer(PeerId(1));
        assert_eq!(touched.len(), 2);
        // 10/8 still has peer 2's candidate; 20/8 is gone entirely.
        assert_eq!(t.len(), 1);
    }
}
