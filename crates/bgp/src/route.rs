use std::fmt;
use std::net::Ipv4Addr;

use sdx_ip::Prefix;
use serde::{Deserialize, Serialize};

use crate::{AsPath, Community, Origin};

/// The path attributes attached to a BGP route.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathAttributes {
    /// ORIGIN (well-known mandatory).
    pub origin: Origin,
    /// AS_PATH (well-known mandatory).
    pub as_path: AsPath,
    /// NEXT_HOP (well-known mandatory). The SDX rewrites this to a virtual
    /// next hop (VNH) before re-advertising (§4.2).
    pub next_hop: Ipv4Addr,
    /// MULTI_EXIT_DISC (optional non-transitive).
    pub med: Option<u32>,
    /// LOCAL_PREF (well-known on iBGP/route-server sessions).
    pub local_pref: Option<u32>,
    /// COMMUNITIES (optional transitive, RFC 1997).
    pub communities: Vec<Community>,
}

impl PathAttributes {
    /// Minimal attributes: IGP origin, the given AS path and next hop.
    pub fn new(as_path: AsPath, next_hop: Ipv4Addr) -> Self {
        PathAttributes {
            origin: Origin::Igp,
            as_path,
            next_hop,
            med: None,
            local_pref: None,
            communities: Vec::new(),
        }
    }

    /// Builder: set LOCAL_PREF.
    pub fn with_local_pref(mut self, lp: u32) -> Self {
        self.local_pref = Some(lp);
        self
    }

    /// Builder: set MED.
    pub fn with_med(mut self, med: u32) -> Self {
        self.med = Some(med);
        self
    }

    /// Builder: add a community.
    pub fn with_community(mut self, c: Community) -> Self {
        self.communities.push(c);
        self
    }

    /// Builder: set ORIGIN.
    pub fn with_origin(mut self, origin: Origin) -> Self {
        self.origin = origin;
        self
    }

    /// A copy with the next hop replaced (how the SDX injects VNHs).
    pub fn with_next_hop(mut self, nh: Ipv4Addr) -> Self {
        self.next_hop = nh;
        self
    }
}

/// A route: a destination prefix plus its path attributes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Route {
    /// The destination prefix.
    pub prefix: Prefix,
    /// The attributes announced with it.
    pub attrs: PathAttributes,
}

impl Route {
    /// Construct a route.
    pub fn new(prefix: Prefix, attrs: PathAttributes) -> Self {
        Route { prefix, attrs }
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} via {} path [{}]",
            self.prefix, self.attrs.next_hop, self.attrs.as_path
        )
    }
}

/// A model-level BGP UPDATE: withdrawals plus announcements.
///
/// On the wire a single UPDATE carries one attribute set for all its NLRI;
/// this model form matches that (one `attrs` for all `announce` prefixes).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Update {
    /// Prefixes no longer reachable via the sender.
    pub withdraw: Vec<Prefix>,
    /// Prefixes announced with `attrs`.
    pub announce: Vec<Prefix>,
    /// Attributes for the announced prefixes (`None` iff `announce` empty).
    pub attrs: Option<PathAttributes>,
}

impl Update {
    /// An update announcing prefixes with the given attributes.
    pub fn announce(prefixes: impl IntoIterator<Item = Prefix>, attrs: PathAttributes) -> Self {
        Update {
            withdraw: Vec::new(),
            announce: prefixes.into_iter().collect(),
            attrs: Some(attrs),
        }
    }

    /// An update withdrawing prefixes.
    pub fn withdraw(prefixes: impl IntoIterator<Item = Prefix>) -> Self {
        Update {
            withdraw: prefixes.into_iter().collect(),
            announce: Vec::new(),
            attrs: None,
        }
    }

    /// Every prefix the update touches (withdrawn and announced).
    pub fn touched_prefixes(&self) -> impl Iterator<Item = &Prefix> {
        self.withdraw.iter().chain(self.announce.iter())
    }

    /// The announced routes as `Route` values.
    pub fn routes(&self) -> Vec<Route> {
        match &self.attrs {
            Some(attrs) => self
                .announce
                .iter()
                .map(|p| Route::new(*p, attrs.clone()))
                .collect(),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Asn;

    fn attrs() -> PathAttributes {
        PathAttributes::new(AsPath::sequence([65001, 65002]), Ipv4Addr::new(10, 0, 0, 1))
    }

    #[test]
    fn builders_compose() {
        let a = attrs()
            .with_local_pref(200)
            .with_med(5)
            .with_community(Community::new(65000, 1))
            .with_origin(Origin::Egp);
        assert_eq!(a.local_pref, Some(200));
        assert_eq!(a.med, Some(5));
        assert_eq!(a.communities.len(), 1);
        assert_eq!(a.origin, Origin::Egp);
        assert_eq!(a.as_path.origin_as(), Some(Asn(65002)));
    }

    #[test]
    fn next_hop_rewrite() {
        let a = attrs().with_next_hop(Ipv4Addr::new(172, 0, 0, 9));
        assert_eq!(a.next_hop, Ipv4Addr::new(172, 0, 0, 9));
    }

    #[test]
    fn update_roundtrip_to_routes() {
        let u = Update::announce(
            ["10.0.0.0/8".parse().unwrap(), "20.0.0.0/8".parse().unwrap()],
            attrs(),
        );
        let routes = u.routes();
        assert_eq!(routes.len(), 2);
        assert!(routes.iter().all(|r| r.attrs == attrs()));
        assert_eq!(u.touched_prefixes().count(), 2);
    }

    #[test]
    fn withdraw_update_has_no_routes() {
        let u = Update::withdraw(["10.0.0.0/8".parse().unwrap()]);
        assert!(u.routes().is_empty());
        assert_eq!(u.touched_prefixes().count(), 1);
    }

    #[test]
    fn route_display() {
        let r = Route::new("10.0.0.0/8".parse().unwrap(), attrs());
        let s = r.to_string();
        assert!(s.contains("10.0.0.0/8"), "{s}");
        assert!(s.contains("65001 65002"), "{s}");
    }
}
