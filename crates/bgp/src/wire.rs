//! RFC 4271 wire codec for the BGP message subset the SDX route server
//! speaks: OPEN, UPDATE, KEEPALIVE, and NOTIFICATION, with the path
//! attributes ORIGIN, AS_PATH, NEXT_HOP, MED, LOCAL_PREF, and COMMUNITIES.
//!
//! AS numbers in AS_PATH are encoded as four octets (the RFC 6793 convention
//! used by modern speakers that negotiate 4-octet-AS capability); the OPEN
//! "My Autonomous System" field stays two octets, with `AS_TRANS` (23456)
//! substituted for ASNs that do not fit, as RFC 6793 prescribes.

use std::net::Ipv4Addr;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use sdx_ip::Prefix;

use crate::{AsPath, AsPathSegment, Asn, Community, Origin, PathAttributes, RouterId, Update};

/// RFC 4271 maximum message size.
pub const MAX_MESSAGE: usize = 4096;
/// Message header size (marker + length + type).
pub const HEADER_LEN: usize = 19;
/// The substitute 2-octet ASN for 4-octet AS numbers (RFC 6793).
pub const AS_TRANS: u16 = 23456;

/// A decoded BGP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Session negotiation.
    Open(OpenMsg),
    /// Route announcements and withdrawals.
    Update(Update),
    /// Error report; the sender closes the session after it.
    Notification(NotificationMsg),
    /// Hold-timer refresh.
    Keepalive,
}

/// The OPEN message body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenMsg {
    /// Protocol version, always 4.
    pub version: u8,
    /// Sender's AS number (full 4-octet value; see module docs for the wire
    /// representation).
    pub asn: Asn,
    /// Proposed hold time in seconds (0 disables keepalives).
    pub hold_time: u16,
    /// Sender's BGP identifier.
    pub router_id: RouterId,
}

/// The NOTIFICATION message body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotificationMsg {
    /// Error code (RFC 4271 §4.5).
    pub code: u8,
    /// Error subcode.
    pub subcode: u8,
    /// Diagnostic data.
    pub data: Vec<u8>,
}

/// Decoding/encoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Not enough bytes for a complete message.
    Truncated,
    /// The 16-byte marker was not all ones.
    BadMarker,
    /// The length field was outside `[19, 4096]` or inconsistent.
    BadLength(u16),
    /// Unknown message type code.
    UnknownType(u8),
    /// OPEN carried an unsupported version.
    BadVersion(u8),
    /// A path attribute was malformed.
    Attribute(&'static str),
    /// An NLRI/withdrawn prefix was malformed.
    BadPrefix,
    /// A mandatory attribute was missing from an UPDATE with NLRI.
    MissingMandatoryAttr(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated message"),
            WireError::BadMarker => write!(f, "bad marker"),
            WireError::BadLength(l) => write!(f, "bad length {l}"),
            WireError::UnknownType(t) => write!(f, "unknown message type {t}"),
            WireError::BadVersion(v) => write!(f, "unsupported BGP version {v}"),
            WireError::Attribute(what) => write!(f, "malformed path attribute: {what}"),
            WireError::BadPrefix => write!(f, "malformed NLRI prefix"),
            WireError::MissingMandatoryAttr(a) => write!(f, "missing mandatory attribute {a}"),
        }
    }
}

impl std::error::Error for WireError {}

mod msg_type {
    pub const OPEN: u8 = 1;
    pub const UPDATE: u8 = 2;
    pub const NOTIFICATION: u8 = 3;
    pub const KEEPALIVE: u8 = 4;
}

mod attr_type {
    pub const ORIGIN: u8 = 1;
    pub const AS_PATH: u8 = 2;
    pub const NEXT_HOP: u8 = 3;
    pub const MED: u8 = 4;
    pub const LOCAL_PREF: u8 = 5;
    pub const COMMUNITIES: u8 = 8;
}

mod attr_flags {
    pub const OPTIONAL: u8 = 0x80;
    pub const TRANSITIVE: u8 = 0x40;
    pub const EXTENDED_LENGTH: u8 = 0x10;
}

/// Encode a message to its wire form.
pub fn encode(msg: &Message) -> Bytes {
    let mut body = BytesMut::new();
    let type_code = match msg {
        Message::Open(open) => {
            body.put_u8(open.version);
            let as16 = u16::try_from(open.asn.0).unwrap_or(AS_TRANS);
            body.put_u16(as16);
            body.put_u16(open.hold_time);
            body.put_u32(open.router_id.0);
            body.put_u8(0); // no optional parameters
            msg_type::OPEN
        }
        Message::Update(update) => {
            encode_update(update, &mut body);
            msg_type::UPDATE
        }
        Message::Notification(n) => {
            body.put_u8(n.code);
            body.put_u8(n.subcode);
            body.put_slice(&n.data);
            msg_type::NOTIFICATION
        }
        Message::Keepalive => msg_type::KEEPALIVE,
    };

    let mut out = BytesMut::with_capacity(HEADER_LEN + body.len());
    out.put_slice(&[0xff; 16]);
    out.put_u16((HEADER_LEN + body.len()) as u16);
    out.put_u8(type_code);
    out.put_slice(&body);
    out.freeze()
}

fn encode_update(update: &Update, body: &mut BytesMut) {
    // Withdrawn routes.
    let mut withdrawn = BytesMut::new();
    for p in &update.withdraw {
        encode_prefix(p, &mut withdrawn);
    }
    body.put_u16(withdrawn.len() as u16);
    body.put_slice(&withdrawn);

    // Path attributes.
    let mut attrs = BytesMut::new();
    if let Some(a) = &update.attrs {
        encode_attr(&mut attrs, attr_flags::TRANSITIVE, attr_type::ORIGIN, |b| {
            b.put_u8(a.origin as u8)
        });
        encode_attr(
            &mut attrs,
            attr_flags::TRANSITIVE,
            attr_type::AS_PATH,
            |b| {
                for seg in a.as_path.segments() {
                    let (code, asns) = match seg {
                        AsPathSegment::Set(asns) => (1u8, asns),
                        AsPathSegment::Sequence(asns) => (2u8, asns),
                    };
                    b.put_u8(code);
                    b.put_u8(asns.len() as u8);
                    for asn in asns {
                        b.put_u32(asn.0);
                    }
                }
            },
        );
        encode_attr(
            &mut attrs,
            attr_flags::TRANSITIVE,
            attr_type::NEXT_HOP,
            |b| b.put_u32(u32::from(a.next_hop)),
        );
        if let Some(med) = a.med {
            encode_attr(&mut attrs, attr_flags::OPTIONAL, attr_type::MED, |b| {
                b.put_u32(med)
            });
        }
        if let Some(lp) = a.local_pref {
            encode_attr(
                &mut attrs,
                attr_flags::TRANSITIVE,
                attr_type::LOCAL_PREF,
                |b| b.put_u32(lp),
            );
        }
        if !a.communities.is_empty() {
            encode_attr(
                &mut attrs,
                attr_flags::OPTIONAL | attr_flags::TRANSITIVE,
                attr_type::COMMUNITIES,
                |b| {
                    for c in &a.communities {
                        b.put_u32(c.0);
                    }
                },
            );
        }
    }
    body.put_u16(attrs.len() as u16);
    body.put_slice(&attrs);

    // NLRI.
    for p in &update.announce {
        encode_prefix(p, body);
    }
}

fn encode_attr(out: &mut BytesMut, flags: u8, type_code: u8, fill: impl FnOnce(&mut BytesMut)) {
    let mut value = BytesMut::new();
    fill(&mut value);
    if value.len() > 255 {
        out.put_u8(flags | attr_flags::EXTENDED_LENGTH);
        out.put_u8(type_code);
        out.put_u16(value.len() as u16);
    } else {
        out.put_u8(flags);
        out.put_u8(type_code);
        out.put_u8(value.len() as u8);
    }
    out.put_slice(&value);
}

fn encode_prefix(p: &Prefix, out: &mut BytesMut) {
    out.put_u8(p.len());
    let nbytes = (p.len() as usize).div_ceil(8);
    out.put_slice(&p.bits().to_be_bytes()[..nbytes]);
}

/// Decode one message from the front of `buf`, returning it and the number
/// of bytes consumed. Returns `Err(Truncated)` if `buf` holds less than one
/// full message (callers buffering a stream should wait for more bytes).
pub fn decode(buf: &[u8]) -> Result<(Message, usize), WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Truncated);
    }
    if buf[..16] != [0xff; 16] {
        return Err(WireError::BadMarker);
    }
    let len = u16::from_be_bytes([buf[16], buf[17]]) as usize;
    if !(HEADER_LEN..=MAX_MESSAGE).contains(&len) {
        return Err(WireError::BadLength(len as u16));
    }
    if buf.len() < len {
        return Err(WireError::Truncated);
    }
    let type_code = buf[18];
    let mut body = &buf[HEADER_LEN..len];
    let msg = match type_code {
        msg_type::OPEN => Message::Open(decode_open(&mut body)?),
        msg_type::UPDATE => Message::Update(decode_update(&mut body)?),
        msg_type::NOTIFICATION => {
            if body.len() < 2 {
                return Err(WireError::Truncated);
            }
            Message::Notification(NotificationMsg {
                code: body.get_u8(),
                subcode: body.get_u8(),
                data: body.to_vec(),
            })
        }
        msg_type::KEEPALIVE => Message::Keepalive,
        other => return Err(WireError::UnknownType(other)),
    };
    Ok((msg, len))
}

/// Pull complete messages out of a growing stream buffer. Consumed bytes are
/// removed from `buf`; returns `None` when no complete message remains.
pub fn read_message(buf: &mut BytesMut) -> Result<Option<Message>, WireError> {
    match decode(&buf[..]) {
        Ok((msg, consumed)) => {
            buf.advance(consumed);
            Ok(Some(msg))
        }
        Err(WireError::Truncated) => Ok(None),
        Err(e) => Err(e),
    }
}

fn decode_open(body: &mut &[u8]) -> Result<OpenMsg, WireError> {
    if body.len() < 10 {
        return Err(WireError::Truncated);
    }
    let version = body.get_u8();
    if version != 4 {
        return Err(WireError::BadVersion(version));
    }
    let asn = Asn(body.get_u16() as u32);
    let hold_time = body.get_u16();
    let router_id = RouterId(body.get_u32());
    let opt_len = body.get_u8() as usize;
    if body.len() < opt_len {
        return Err(WireError::Truncated);
    }
    body.advance(opt_len); // optional parameters ignored
    Ok(OpenMsg {
        version,
        asn,
        hold_time,
        router_id,
    })
}

fn decode_update(body: &mut &[u8]) -> Result<Update, WireError> {
    if body.len() < 2 {
        return Err(WireError::Truncated);
    }
    let withdrawn_len = body.get_u16() as usize;
    if body.len() < withdrawn_len {
        return Err(WireError::Truncated);
    }
    let mut withdrawn_bytes = &body[..withdrawn_len];
    body.advance(withdrawn_len);
    let mut withdraw = Vec::new();
    while !withdrawn_bytes.is_empty() {
        withdraw.push(decode_prefix(&mut withdrawn_bytes)?);
    }

    if body.len() < 2 {
        return Err(WireError::Truncated);
    }
    let attrs_len = body.get_u16() as usize;
    if body.len() < attrs_len {
        return Err(WireError::Truncated);
    }
    let mut attr_bytes = &body[..attrs_len];
    body.advance(attrs_len);

    let mut origin = None;
    let mut as_path = None;
    let mut next_hop = None;
    let mut med = None;
    let mut local_pref = None;
    let mut communities = Vec::new();

    while !attr_bytes.is_empty() {
        if attr_bytes.len() < 2 {
            return Err(WireError::Attribute("attribute header"));
        }
        let flags = attr_bytes.get_u8();
        let type_code = attr_bytes.get_u8();
        let len = if flags & attr_flags::EXTENDED_LENGTH != 0 {
            if attr_bytes.len() < 2 {
                return Err(WireError::Attribute("extended length"));
            }
            attr_bytes.get_u16() as usize
        } else {
            if attr_bytes.is_empty() {
                return Err(WireError::Attribute("length"));
            }
            attr_bytes.get_u8() as usize
        };
        if attr_bytes.len() < len {
            return Err(WireError::Attribute("value"));
        }
        let mut value = &attr_bytes[..len];
        attr_bytes.advance(len);

        match type_code {
            attr_type::ORIGIN => {
                if value.len() != 1 {
                    return Err(WireError::Attribute("ORIGIN length"));
                }
                origin =
                    Some(Origin::from_u8(value[0]).ok_or(WireError::Attribute("ORIGIN value"))?);
            }
            attr_type::AS_PATH => {
                let mut path = AsPath::empty();
                while !value.is_empty() {
                    if value.len() < 2 {
                        return Err(WireError::Attribute("AS_PATH segment header"));
                    }
                    let seg_type = value.get_u8();
                    let count = value.get_u8() as usize;
                    if value.len() < count * 4 {
                        return Err(WireError::Attribute("AS_PATH segment body"));
                    }
                    let asns: Vec<Asn> = (0..count).map(|_| Asn(value.get_u32())).collect();
                    let seg = match seg_type {
                        1 => AsPathSegment::Set(asns),
                        2 => AsPathSegment::Sequence(asns),
                        _ => return Err(WireError::Attribute("AS_PATH segment type")),
                    };
                    path.push_segment(seg);
                }
                as_path = Some(path);
            }
            attr_type::NEXT_HOP => {
                if value.len() != 4 {
                    return Err(WireError::Attribute("NEXT_HOP length"));
                }
                next_hop = Some(Ipv4Addr::from(value.get_u32()));
            }
            attr_type::MED => {
                if value.len() != 4 {
                    return Err(WireError::Attribute("MED length"));
                }
                med = Some(value.get_u32());
            }
            attr_type::LOCAL_PREF => {
                if value.len() != 4 {
                    return Err(WireError::Attribute("LOCAL_PREF length"));
                }
                local_pref = Some(value.get_u32());
            }
            attr_type::COMMUNITIES => {
                if !value.len().is_multiple_of(4) {
                    return Err(WireError::Attribute("COMMUNITIES length"));
                }
                while !value.is_empty() {
                    communities.push(Community(value.get_u32()));
                }
            }
            _ => {} // tolerate and skip unrecognized attributes
        }
    }

    let mut announce = Vec::new();
    let mut nlri = *body;
    while !nlri.is_empty() {
        announce.push(decode_prefix(&mut nlri)?);
    }

    let attrs = if announce.is_empty() {
        None
    } else {
        let origin = origin.ok_or(WireError::MissingMandatoryAttr("ORIGIN"))?;
        let as_path = as_path.ok_or(WireError::MissingMandatoryAttr("AS_PATH"))?;
        let next_hop = next_hop.ok_or(WireError::MissingMandatoryAttr("NEXT_HOP"))?;
        Some(PathAttributes {
            origin,
            as_path,
            next_hop,
            med,
            local_pref,
            communities,
        })
    };

    Ok(Update {
        withdraw,
        announce,
        attrs,
    })
}

fn decode_prefix(bytes: &mut &[u8]) -> Result<Prefix, WireError> {
    if bytes.is_empty() {
        return Err(WireError::BadPrefix);
    }
    let len = bytes.get_u8();
    if len > 32 {
        return Err(WireError::BadPrefix);
    }
    let nbytes = (len as usize).div_ceil(8);
    if bytes.len() < nbytes {
        return Err(WireError::BadPrefix);
    }
    let mut octets = [0u8; 4];
    octets[..nbytes].copy_from_slice(&bytes[..nbytes]);
    bytes.advance(nbytes);
    Ok(Prefix::from_bits(u32::from_be_bytes(octets), len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs() -> PathAttributes {
        PathAttributes::new(
            AsPath::sequence([65001, 3356, 43515]),
            Ipv4Addr::new(10, 0, 0, 9),
        )
        .with_local_pref(150)
        .with_med(10)
        .with_community(Community::new(65000, 80))
    }

    fn round_trip(msg: Message) -> Message {
        let wire = encode(&msg);
        let (decoded, consumed) = decode(&wire).expect("decode");
        assert_eq!(consumed, wire.len());
        decoded
    }

    #[test]
    fn keepalive_round_trip() {
        assert_eq!(round_trip(Message::Keepalive), Message::Keepalive);
        assert_eq!(encode(&Message::Keepalive).len(), HEADER_LEN);
    }

    #[test]
    fn open_round_trip() {
        let open = OpenMsg {
            version: 4,
            asn: Asn(65010),
            hold_time: 90,
            router_id: RouterId::from_addr(Ipv4Addr::new(172, 0, 0, 1)),
        };
        assert_eq!(round_trip(Message::Open(open)), Message::Open(open));
    }

    #[test]
    fn open_large_asn_uses_as_trans() {
        let open = OpenMsg {
            version: 4,
            asn: Asn(4_200_000_000),
            hold_time: 90,
            router_id: RouterId(1),
        };
        let got = round_trip(Message::Open(open));
        match got {
            Message::Open(o) => assert_eq!(o.asn, Asn(AS_TRANS as u32)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn update_round_trip_full() {
        let u = Update {
            withdraw: vec!["192.0.2.0/24".parse().unwrap()],
            announce: vec![
                "10.0.0.0/8".parse().unwrap(),
                "203.0.113.0/25".parse().unwrap(),
            ],
            attrs: Some(attrs()),
        };
        assert_eq!(round_trip(Message::Update(u.clone())), Message::Update(u));
    }

    #[test]
    fn update_withdraw_only() {
        let u = Update::withdraw(["10.0.0.0/8".parse().unwrap(), "0.0.0.0/0".parse().unwrap()]);
        assert_eq!(round_trip(Message::Update(u.clone())), Message::Update(u));
    }

    #[test]
    fn update_with_as_set_segment() {
        let mut path = AsPath::sequence([65001]);
        path.push_segment(AsPathSegment::Set(vec![Asn(1), Asn(2)]));
        let u = Update::announce(
            ["10.0.0.0/8".parse().unwrap()],
            PathAttributes::new(path, Ipv4Addr::new(10, 0, 0, 1)),
        );
        assert_eq!(round_trip(Message::Update(u.clone())), Message::Update(u));
    }

    #[test]
    fn notification_round_trip() {
        let n = NotificationMsg {
            code: 6,
            subcode: 2,
            data: vec![1, 2, 3],
        };
        assert_eq!(
            round_trip(Message::Notification(n.clone())),
            Message::Notification(n)
        );
    }

    #[test]
    fn decode_rejects_bad_marker() {
        let mut wire = encode(&Message::Keepalive).to_vec();
        wire[0] = 0;
        assert_eq!(decode(&wire).unwrap_err(), WireError::BadMarker);
    }

    #[test]
    fn decode_rejects_unknown_type() {
        let mut wire = encode(&Message::Keepalive).to_vec();
        wire[18] = 99;
        assert_eq!(decode(&wire).unwrap_err(), WireError::UnknownType(99));
    }

    #[test]
    fn decode_truncated_asks_for_more() {
        let wire = encode(&Message::Update(Update::announce(
            ["10.0.0.0/8".parse().unwrap()],
            attrs(),
        )));
        for cut in 0..wire.len() {
            assert_eq!(
                decode(&wire[..cut]).unwrap_err(),
                WireError::Truncated,
                "cut {cut}"
            );
        }
    }

    #[test]
    fn missing_mandatory_attr_rejected() {
        // Hand-craft an UPDATE with NLRI but no attributes.
        let mut body = BytesMut::new();
        body.put_u16(0); // withdrawn len
        body.put_u16(0); // attrs len
        encode_prefix(&"10.0.0.0/8".parse().unwrap(), &mut body);
        let mut wire = BytesMut::new();
        wire.put_slice(&[0xff; 16]);
        wire.put_u16((HEADER_LEN + body.len()) as u16);
        wire.put_u8(msg_type::UPDATE);
        wire.put_slice(&body);
        assert!(matches!(
            decode(&wire).unwrap_err(),
            WireError::MissingMandatoryAttr(_)
        ));
    }

    #[test]
    fn stream_reader_extracts_messages() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&encode(&Message::Keepalive));
        let u = Message::Update(Update::announce(["10.0.0.0/8".parse().unwrap()], attrs()));
        buf.extend_from_slice(&encode(&u));
        // Partial third message.
        buf.extend_from_slice(&encode(&Message::Keepalive)[..5]);

        assert_eq!(read_message(&mut buf).unwrap(), Some(Message::Keepalive));
        assert_eq!(read_message(&mut buf).unwrap(), Some(u));
        assert_eq!(read_message(&mut buf).unwrap(), None);
        assert_eq!(buf.len(), 5);
    }

    #[test]
    fn default_prefix_encodes_to_one_byte() {
        let mut out = BytesMut::new();
        encode_prefix(&Prefix::DEFAULT, &mut out);
        assert_eq!(out.len(), 1);
        let mut slice = &out[..];
        assert_eq!(decode_prefix(&mut slice).unwrap(), Prefix::DEFAULT);
    }
}
