//! A BGP session finite-state machine (RFC 4271 §8, simplified to the events
//! that occur over an IXP's in-fabric TCP sessions) plus an in-memory
//! transport so two speakers can be wired together in tests and simulations
//! without sockets.
//!
//! The FSM is sans-I/O: `handle` consumes an event and returns the actions
//! (messages to send, updates to deliver) for the caller to execute, which
//! keeps it deterministic and directly testable.

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};

use bytes::{Bytes, BytesMut};

use crate::wire::{self, Message, NotificationMsg, OpenMsg};
use crate::{Asn, RouterId, Update};

/// RFC 4271 session states. `Connect`/`Active` are collapsed into `Connect`
/// since the in-memory transport has no half-open TCP distinction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Not started.
    Idle,
    /// Waiting for the transport to come up.
    Connect,
    /// OPEN sent, waiting for the peer's OPEN.
    OpenSent,
    /// OPEN exchanged, waiting for KEEPALIVE.
    OpenConfirm,
    /// Session up; UPDATEs flow.
    Established,
}

/// Inputs to the FSM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionEvent {
    /// Operator starts the session.
    ManualStart,
    /// Operator stops the session.
    ManualStop,
    /// The underlying transport connected.
    TransportUp,
    /// The underlying transport failed.
    TransportDown,
    /// A complete message arrived.
    Message(Message),
    /// The hold timer fired without hearing from the peer.
    HoldTimerExpired,
    /// Time to refresh the peer's hold timer.
    KeepaliveTimerExpired,
}

/// Outputs of the FSM for the caller to execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionAction {
    /// Transmit a message to the peer.
    Send(Message),
    /// The session just reached `Established`.
    Established,
    /// The session went down; the state is back to `Idle`.
    Closed(CloseReason),
    /// An UPDATE arrived on an established session.
    Deliver(Update),
}

/// Why a session closed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CloseReason {
    /// Operator action.
    ManualStop,
    /// Transport failure.
    TransportDown,
    /// Hold timer expiry.
    HoldTimeExpired,
    /// Peer sent a NOTIFICATION.
    PeerNotification(NotificationMsg),
    /// We sent a NOTIFICATION due to a protocol error.
    ProtocolError(&'static str),
}

/// Local configuration of one session endpoint.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Our AS number.
    pub asn: Asn,
    /// Our BGP identifier.
    pub router_id: RouterId,
    /// Hold time we propose, in seconds.
    pub hold_time: u16,
}

/// The session FSM.
#[derive(Debug)]
pub struct Session {
    config: SessionConfig,
    state: SessionState,
    peer_open: Option<OpenMsg>,
}

impl Session {
    /// A new session in `Idle`.
    pub fn new(config: SessionConfig) -> Self {
        Session {
            config,
            state: SessionState::Idle,
            peer_open: None,
        }
    }

    /// Current FSM state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// The peer's OPEN parameters, once received.
    pub fn peer_open(&self) -> Option<&OpenMsg> {
        self.peer_open.as_ref()
    }

    /// The negotiated hold time (minimum of both proposals), once open.
    pub fn negotiated_hold_time(&self) -> Option<u16> {
        self.peer_open
            .map(|o| o.hold_time.min(self.config.hold_time))
    }

    fn our_open(&self) -> Message {
        Message::Open(OpenMsg {
            version: 4,
            asn: self.config.asn,
            hold_time: self.config.hold_time,
            router_id: self.config.router_id,
        })
    }

    fn close(&mut self, reason: CloseReason) -> Vec<SessionAction> {
        self.state = SessionState::Idle;
        self.peer_open = None;
        vec![SessionAction::Closed(reason)]
    }

    fn protocol_error(&mut self, code: u8, subcode: u8, what: &'static str) -> Vec<SessionAction> {
        let notify = SessionAction::Send(Message::Notification(NotificationMsg {
            code,
            subcode,
            data: Vec::new(),
        }));
        let mut actions = vec![notify];
        actions.extend(self.close(CloseReason::ProtocolError(what)));
        actions
    }

    /// Advance the FSM on an event.
    pub fn handle(&mut self, event: SessionEvent) -> Vec<SessionAction> {
        use SessionEvent as Ev;
        use SessionState::*;
        match (self.state, event) {
            (_, Ev::ManualStop) => self.close(CloseReason::ManualStop),
            (_, Ev::TransportDown) => self.close(CloseReason::TransportDown),
            (_, Ev::HoldTimerExpired) => {
                let mut actions = vec![SessionAction::Send(Message::Notification(
                    NotificationMsg {
                        code: 4,
                        subcode: 0,
                        data: Vec::new(),
                    },
                ))];
                actions.extend(self.close(CloseReason::HoldTimeExpired));
                actions
            }

            (Idle, Ev::ManualStart) => {
                self.state = Connect;
                Vec::new()
            }
            (Idle, _) => Vec::new(),

            (Connect, Ev::TransportUp) => {
                self.state = OpenSent;
                vec![SessionAction::Send(self.our_open())]
            }
            (Connect, _) => Vec::new(),

            (OpenSent, Ev::Message(Message::Open(open))) => {
                self.peer_open = Some(open);
                self.state = OpenConfirm;
                vec![SessionAction::Send(Message::Keepalive)]
            }
            (OpenSent, Ev::Message(Message::Notification(n))) => {
                self.close(CloseReason::PeerNotification(n))
            }
            (OpenSent, Ev::Message(_)) => {
                // FSM error: anything but OPEN here is fatal.
                self.protocol_error(5, 0, "expected OPEN")
            }
            (OpenSent, _) => Vec::new(),

            (OpenConfirm, Ev::Message(Message::Keepalive)) => {
                self.state = Established;
                vec![SessionAction::Established]
            }
            (OpenConfirm, Ev::Message(Message::Notification(n))) => {
                self.close(CloseReason::PeerNotification(n))
            }
            (OpenConfirm, Ev::Message(_)) => self.protocol_error(5, 0, "expected KEEPALIVE"),
            (OpenConfirm, Ev::KeepaliveTimerExpired) => {
                vec![SessionAction::Send(Message::Keepalive)]
            }
            (OpenConfirm, _) => Vec::new(),

            (Established, Ev::Message(Message::Update(update))) => {
                vec![SessionAction::Deliver(update)]
            }
            (Established, Ev::Message(Message::Keepalive)) => Vec::new(),
            (Established, Ev::Message(Message::Notification(n))) => {
                self.close(CloseReason::PeerNotification(n))
            }
            (Established, Ev::Message(Message::Open(_))) => {
                self.protocol_error(5, 0, "OPEN while up")
            }
            (Established, Ev::KeepaliveTimerExpired) => {
                vec![SessionAction::Send(Message::Keepalive)]
            }
            (Established, Ev::ManualStart | Ev::TransportUp) => Vec::new(),
        }
    }
}

/// One end of an in-memory, byte-stream transport (a stand-in for the TCP
/// connection across the IXP fabric).
#[derive(Debug)]
pub struct Endpoint {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
    inbox: BytesMut,
}

/// Create a connected pair of endpoints.
pub fn pipe() -> (Endpoint, Endpoint) {
    let (atx, brx) = unbounded();
    let (btx, arx) = unbounded();
    (
        Endpoint {
            tx: atx,
            rx: arx,
            inbox: BytesMut::new(),
        },
        Endpoint {
            tx: btx,
            rx: brx,
            inbox: BytesMut::new(),
        },
    )
}

impl Endpoint {
    /// Send a BGP message to the peer.
    pub fn send(&self, msg: &Message) -> bool {
        self.tx.send(wire::encode(msg)).is_ok()
    }

    /// Receive the next complete message, if one has arrived. Bytes are
    /// buffered across calls, so partial deliveries reassemble correctly.
    pub fn recv(&mut self) -> Result<Option<Message>, wire::WireError> {
        loop {
            if let Some(msg) = wire::read_message(&mut self.inbox)? {
                return Ok(Some(msg));
            }
            match self.rx.try_recv() {
                Ok(chunk) => self.inbox.extend_from_slice(&chunk),
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => return Ok(None),
            }
        }
    }
}

/// Drive two sessions over a pipe until neither has anything left to do.
/// Returns the updates each side delivered. Used by tests and simulations to
/// bring a pair up to `Established` and exchange routes.
pub fn run_pair(
    a: &mut Session,
    b: &mut Session,
    a_end: &mut Endpoint,
    b_end: &mut Endpoint,
    mut outbound_a: Vec<Update>,
    mut outbound_b: Vec<Update>,
) -> (Vec<Update>, Vec<Update>) {
    let mut delivered_a = Vec::new();
    let mut delivered_b = Vec::new();

    let mut pending_a = a.handle(SessionEvent::ManualStart);
    pending_a.extend(a.handle(SessionEvent::TransportUp));
    let mut pending_b = b.handle(SessionEvent::ManualStart);
    pending_b.extend(b.handle(SessionEvent::TransportUp));

    loop {
        let mut progressed = false;

        for action in std::mem::take(&mut pending_a) {
            progressed = true;
            match action {
                SessionAction::Send(msg) => {
                    a_end.send(&msg);
                }
                SessionAction::Established => {
                    for u in outbound_a.drain(..) {
                        a_end.send(&Message::Update(u));
                    }
                }
                SessionAction::Deliver(u) => delivered_a.push(u),
                SessionAction::Closed(_) => {}
            }
        }
        for action in std::mem::take(&mut pending_b) {
            progressed = true;
            match action {
                SessionAction::Send(msg) => {
                    b_end.send(&msg);
                }
                SessionAction::Established => {
                    for u in outbound_b.drain(..) {
                        b_end.send(&Message::Update(u));
                    }
                }
                SessionAction::Deliver(u) => delivered_b.push(u),
                SessionAction::Closed(_) => {}
            }
        }

        while let Ok(Some(msg)) = a_end.recv() {
            progressed = true;
            pending_a.extend(a.handle(SessionEvent::Message(msg)));
        }
        while let Ok(Some(msg)) = b_end.recv() {
            progressed = true;
            pending_b.extend(b.handle(SessionEvent::Message(msg)));
        }

        if !progressed && pending_a.is_empty() && pending_b.is_empty() {
            break;
        }
    }
    (delivered_a, delivered_b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AsPath, PathAttributes};
    use std::net::Ipv4Addr;

    fn config(asn: u32) -> SessionConfig {
        SessionConfig {
            asn: Asn(asn),
            router_id: RouterId(asn),
            hold_time: 90,
        }
    }

    fn update() -> Update {
        Update::announce(
            ["10.0.0.0/8".parse().unwrap()],
            PathAttributes::new(AsPath::sequence([65001]), Ipv4Addr::new(10, 0, 0, 1)),
        )
    }

    #[test]
    fn happy_path_to_established() {
        let mut s = Session::new(config(65001));
        assert_eq!(s.state(), SessionState::Idle);
        assert!(s.handle(SessionEvent::ManualStart).is_empty());
        assert_eq!(s.state(), SessionState::Connect);

        let actions = s.handle(SessionEvent::TransportUp);
        assert!(matches!(actions[0], SessionAction::Send(Message::Open(_))));
        assert_eq!(s.state(), SessionState::OpenSent);

        let peer_open = OpenMsg {
            version: 4,
            asn: Asn(65002),
            hold_time: 30,
            router_id: RouterId(2),
        };
        let actions = s.handle(SessionEvent::Message(Message::Open(peer_open)));
        assert_eq!(actions, vec![SessionAction::Send(Message::Keepalive)]);
        assert_eq!(s.state(), SessionState::OpenConfirm);
        assert_eq!(s.negotiated_hold_time(), Some(30));

        let actions = s.handle(SessionEvent::Message(Message::Keepalive));
        assert_eq!(actions, vec![SessionAction::Established]);
        assert_eq!(s.state(), SessionState::Established);
    }

    #[test]
    fn update_delivered_only_when_established() {
        let mut s = Session::new(config(65001));
        s.handle(SessionEvent::ManualStart);
        s.handle(SessionEvent::TransportUp);
        // UPDATE before OPEN: protocol error, notification sent, back to Idle.
        let actions = s.handle(SessionEvent::Message(Message::Update(update())));
        assert!(matches!(
            actions[0],
            SessionAction::Send(Message::Notification(_))
        ));
        assert_eq!(s.state(), SessionState::Idle);
    }

    #[test]
    fn hold_timer_closes_with_notification() {
        let mut s = Session::new(config(65001));
        s.handle(SessionEvent::ManualStart);
        s.handle(SessionEvent::TransportUp);
        let actions = s.handle(SessionEvent::HoldTimerExpired);
        assert!(matches!(
            actions.as_slice(),
            [SessionAction::Send(Message::Notification(n)), SessionAction::Closed(CloseReason::HoldTimeExpired)]
            if n.code == 4
        ));
    }

    #[test]
    fn peer_notification_closes() {
        let mut s = Session::new(config(65001));
        s.handle(SessionEvent::ManualStart);
        s.handle(SessionEvent::TransportUp);
        let n = NotificationMsg {
            code: 6,
            subcode: 4,
            data: vec![],
        };
        let actions = s.handle(SessionEvent::Message(Message::Notification(n.clone())));
        assert_eq!(
            actions,
            vec![SessionAction::Closed(CloseReason::PeerNotification(n))]
        );
    }

    #[test]
    fn keepalive_timer_sends_keepalive_when_up() {
        let mut s = Session::new(config(65001));
        s.handle(SessionEvent::ManualStart);
        s.handle(SessionEvent::TransportUp);
        s.handle(SessionEvent::Message(Message::Open(OpenMsg {
            version: 4,
            asn: Asn(2),
            hold_time: 90,
            router_id: RouterId(2),
        })));
        s.handle(SessionEvent::Message(Message::Keepalive));
        let actions = s.handle(SessionEvent::KeepaliveTimerExpired);
        assert_eq!(actions, vec![SessionAction::Send(Message::Keepalive)]);
    }

    #[test]
    fn full_pair_exchanges_updates_over_wire() {
        let mut a = Session::new(config(65001));
        let mut b = Session::new(config(65002));
        let (mut ea, mut eb) = pipe();
        let (got_a, got_b) = run_pair(&mut a, &mut b, &mut ea, &mut eb, vec![update()], Vec::new());
        assert_eq!(a.state(), SessionState::Established);
        assert_eq!(b.state(), SessionState::Established);
        assert_eq!(got_b, vec![update()]); // B received A's update
        assert!(got_a.is_empty());
    }

    #[test]
    fn manual_stop_from_any_state() {
        let mut s = Session::new(config(65001));
        s.handle(SessionEvent::ManualStart);
        let actions = s.handle(SessionEvent::ManualStop);
        assert_eq!(
            actions,
            vec![SessionAction::Closed(CloseReason::ManualStop)]
        );
        assert_eq!(s.state(), SessionState::Idle);
    }
}
