//! The SDX route server (§3.2, §5.1): collects announcements from every
//! participant, runs the decision process *per participant* (honoring export
//! policies), and exposes the reachability relation the SDX policy compiler
//! needs ("which prefixes may A forward through B?").
//!
//! In contrast to a conventional route server, the best route is queried per
//! (prefix, participant) because export filtering can give different
//! participants different candidate sets — and the SDX additionally lets a
//! participant forward to *any feasible* next hop, not just its best one.

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use sdx_ip::{Prefix, PrefixSet, PrefixTrie};

use crate::decision::{self, Candidate};
use crate::{
    AdjRibIn, AsPathPattern, Asn, CandidateTable, Community, ExportPolicy, PathAttributes, PeerId,
    Route, RouterId, Update,
};

/// Static facts about one peer.
#[derive(Debug, Clone)]
pub struct PeerInfo {
    /// The peer's AS number.
    pub asn: Asn,
    /// The peer's BGP identifier (decision-process tie-breaker).
    pub router_id: RouterId,
    /// The export policy applied to routes *learned from* this peer.
    pub export: ExportPolicy,
}

/// An event the route server emits for the SDX controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsEvent {
    /// The candidate set for a prefix changed; per-participant best routes
    /// for it may have changed.
    PrefixTouched(Prefix),
    /// A peer was removed and all its routes withdrawn.
    PeerDown(PeerId),
}

/// The route server state.
#[derive(Debug, Default)]
pub struct RouteServer {
    peers: BTreeMap<PeerId, PeerInfo>,
    adj_in: BTreeMap<PeerId, AdjRibIn>,
    candidates: CandidateTable,
    /// Longest-prefix-match index over candidate prefixes; values are
    /// announcer refcounts.
    prefix_index: PrefixTrie<u32>,
}

impl RouteServer {
    /// An empty route server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a peer session.
    pub fn add_peer(&mut self, peer: PeerId, asn: Asn, router_id: RouterId) {
        self.peers.insert(
            peer,
            PeerInfo {
                asn,
                router_id,
                export: ExportPolicy::export_all(),
            },
        );
        self.adj_in.entry(peer).or_default();
    }

    /// Replace a peer's export policy.
    pub fn set_export_policy(&mut self, peer: PeerId, export: ExportPolicy) {
        if let Some(info) = self.peers.get_mut(&peer) {
            info.export = export;
        }
    }

    /// Tear down a peer: drop its routes from every table.
    pub fn remove_peer(&mut self, peer: PeerId) -> Vec<RsEvent> {
        self.peers.remove(&peer);
        self.adj_in.remove(&peer);
        let touched = self.candidates.remove_peer(peer);
        for prefix in &touched {
            Self::index_release(&mut self.prefix_index, prefix);
        }
        let mut events: Vec<RsEvent> = touched.into_iter().map(RsEvent::PrefixTouched).collect();
        events.push(RsEvent::PeerDown(peer));
        events
    }

    /// Registered peers.
    pub fn peers(&self) -> impl Iterator<Item = (&PeerId, &PeerInfo)> {
        self.peers.iter()
    }

    /// Peer metadata.
    pub fn peer(&self, peer: PeerId) -> Option<&PeerInfo> {
        self.peers.get(&peer)
    }

    /// Ingest a BGP update from a peer, returning one event per touched
    /// prefix.
    pub fn apply_update(&mut self, peer: PeerId, update: &Update) -> Vec<RsEvent> {
        let mut events = Vec::new();
        let Some(rib) = self.adj_in.get_mut(&peer) else {
            return events;
        };
        for prefix in &update.withdraw {
            if rib.remove(prefix).is_some() {
                self.candidates.remove(peer, prefix);
                Self::index_release(&mut self.prefix_index, prefix);
                events.push(RsEvent::PrefixTouched(*prefix));
            }
        }
        for route in update.routes() {
            let prefix = route.prefix;
            let replaced = rib.insert(route.clone()).is_some();
            self.candidates.insert(peer, route);
            if !replaced {
                Self::index_acquire(&mut self.prefix_index, prefix);
            }
            events.push(RsEvent::PrefixTouched(prefix));
        }
        events
    }

    fn index_acquire(index: &mut PrefixTrie<u32>, prefix: Prefix) {
        match index.get_mut(&prefix) {
            Some(count) => *count += 1,
            None => {
                index.insert(prefix, 1);
            }
        }
    }

    fn index_release(index: &mut PrefixTrie<u32>, prefix: &Prefix) {
        if let Some(count) = index.get_mut(prefix) {
            *count -= 1;
            if *count == 0 {
                index.remove(prefix);
            }
        }
    }

    /// Convenience: announce prefixes from a peer with the given attributes.
    pub fn announce(
        &mut self,
        peer: PeerId,
        prefixes: impl IntoIterator<Item = Prefix>,
        attrs: PathAttributes,
    ) -> Vec<RsEvent> {
        self.apply_update(peer, &Update::announce(prefixes, attrs))
    }

    /// Convenience: withdraw prefixes from a peer.
    pub fn withdraw(
        &mut self,
        peer: PeerId,
        prefixes: impl IntoIterator<Item = Prefix>,
    ) -> Vec<RsEvent> {
        self.apply_update(peer, &Update::withdraw(prefixes))
    }

    /// Does the route's community set allow export to a peer with ASN
    /// `to_asn`? Implements RFC 1997 NO_EXPORT/NO_ADVERTISE plus the
    /// conventional route-server action communities (`0:peer-as` = deny,
    /// `64512:peer-as` = allow-list).
    fn communities_allow(route: &Route, to_asn: Asn) -> bool {
        let comms = &route.attrs.communities;
        if comms.contains(&Community::NO_EXPORT) || comms.contains(&Community::NO_ADVERTISE) {
            return false;
        }
        let to16 = u16::try_from(to_asn.0).ok();
        if let Some(to16) = to16 {
            if comms.contains(&Community::rs_deny_to(to16)) {
                return false;
            }
        }
        // An allow-list (any 64512:* member) restricts export to its members.
        let has_allow_list = comms.iter().any(|c| c.asn() == 64_512);
        if has_allow_list {
            return to16
                .map(|t| comms.contains(&Community::rs_only_to(t)))
                .unwrap_or(false);
        }
        true
    }

    /// The candidates for `prefix` visible to `for_peer`: announced by
    /// another peer, exported to `for_peer` (per export policy *and* the
    /// route's communities), and free of AS-path loops.
    fn visible_candidates(&self, prefix: &Prefix, for_peer: PeerId) -> Vec<Candidate> {
        let for_asn = self.peers.get(&for_peer).map(|p| p.asn);
        self.candidates
            .candidates(prefix)
            .filter(|(peer, _)| **peer != for_peer)
            .filter_map(|(peer, route)| {
                let info = self.peers.get(peer)?;
                if !info.export.allows(prefix, for_peer) {
                    return None;
                }
                if let Some(asn) = for_asn {
                    // Loop prevention: never give a peer a route through
                    // itself.
                    if route.attrs.as_path.contains(asn) {
                        return None;
                    }
                    if !Self::communities_allow(route, asn) {
                        return None;
                    }
                }
                Some(Candidate {
                    peer: *peer,
                    router_id: info.router_id,
                    route: route.clone(),
                })
            })
            .collect()
    }

    /// The best route for `prefix` from `for_peer`'s point of view.
    pub fn best_route(&self, prefix: &Prefix, for_peer: PeerId) -> Option<Candidate> {
        let candidates = self.visible_candidates(prefix, for_peer);
        decision::select(candidates.iter()).cloned()
    }

    /// Every peer through which `for_peer` may reach `prefix` (the paper's
    /// "all feasible routes", used by the BGP-consistency transformation).
    pub fn reachable_via(&self, prefix: &Prefix, for_peer: PeerId) -> BTreeSet<PeerId> {
        self.visible_candidates(prefix, for_peer)
            .into_iter()
            .map(|c| c.peer)
            .collect()
    }

    /// The whole advertisement relation for `prefix` in one pass: each
    /// viewer mapped to [`reachable_via`](Self::reachable_via)'s answer for
    /// it (viewers with no feasible route are omitted). The candidate list
    /// is walked once per viewer with no route cloning, which is what the
    /// streamed delta checker needs at churn rate — per-viewer
    /// `reachable_via` calls rebuild a `Candidate` vector (attrs clone per
    /// entry) for every participant on every update.
    pub fn advert_map(&self, prefix: &Prefix) -> BTreeMap<PeerId, BTreeSet<PeerId>> {
        let candidates: Vec<(PeerId, &Route)> = self
            .candidates
            .candidates(prefix)
            .filter(|(peer, _)| self.peers.contains_key(peer))
            .map(|(peer, route)| (*peer, route))
            .collect();
        let mut out = BTreeMap::new();
        for (&viewer, info) in &self.peers {
            let mut via = BTreeSet::new();
            for (announcer, route) in &candidates {
                if *announcer == viewer {
                    continue;
                }
                let exporter = &self.peers[announcer];
                if !exporter.export.allows(prefix, viewer)
                    || route.attrs.as_path.contains(info.asn)
                    || !Self::communities_allow(route, info.asn)
                {
                    continue;
                }
                via.insert(*announcer);
            }
            if !via.is_empty() {
                out.insert(viewer, via);
            }
        }
        out
    }

    /// The prefixes `for_peer` may forward through `next_hop`: announced by
    /// `next_hop` and exported to `for_peer`. This set becomes the BGP filter
    /// spliced into `for_peer`'s outbound policies (§4.1).
    pub fn prefixes_via(&self, next_hop: PeerId, for_peer: PeerId) -> PrefixSet {
        let Some(info) = self.peers.get(&next_hop) else {
            return PrefixSet::new();
        };
        let Some(rib) = self.adj_in.get(&next_hop) else {
            return PrefixSet::new();
        };
        let for_asn = self.peers.get(&for_peer).map(|p| p.asn);
        rib.iter()
            .filter(|(prefix, route)| {
                info.export.allows(prefix, for_peer)
                    && for_asn
                        .map(|asn| {
                            !route.attrs.as_path.contains(asn)
                                && Self::communities_allow(route, asn)
                        })
                        .unwrap_or(true)
            })
            .map(|(prefix, _)| prefix)
            .collect()
    }

    /// Does `announcer` export its route for `prefix` to `viewer`? (Single
    /// point lookup; the fast path of §4.3.2 uses this instead of
    /// materializing whole `prefixes_via` sets.)
    pub fn exports_to(&self, announcer: PeerId, prefix: &Prefix, viewer: PeerId) -> bool {
        if announcer == viewer {
            return false;
        }
        let Some(route) = self.adj_in.get(&announcer).and_then(|rib| rib.get(prefix)) else {
            return false;
        };
        let Some(info) = self.peers.get(&announcer) else {
            return false;
        };
        if !info.export.allows(prefix, viewer) {
            return false;
        }
        match self.peers.get(&viewer) {
            Some(v) => {
                !route.attrs.as_path.contains(v.asn) && Self::communities_allow(route, v.asn)
            }
            None => true,
        }
    }

    /// Every prefix a peer currently announces.
    pub fn announced_by(&self, peer: PeerId) -> PrefixSet {
        self.adj_in
            .get(&peer)
            .map(|rib| rib.prefixes())
            .unwrap_or_default()
    }

    /// A peer's route for a specific prefix, if it announces one.
    pub fn route_from(&self, peer: PeerId, prefix: &Prefix) -> Option<&Route> {
        self.adj_in.get(&peer)?.get(prefix)
    }

    /// All prefixes known to the route server (any announcer).
    pub fn all_prefixes(&self) -> Vec<Prefix> {
        self.candidates.prefixes().copied().collect()
    }

    /// Number of distinct prefixes known.
    pub fn prefix_count(&self) -> usize {
        self.candidates.len()
    }

    /// The best route for `prefix` over *all* candidates, with no viewer
    /// filtering — the "default next hop selected by the route server" used
    /// in pass 2 of the FEC computation (§4.2).
    pub fn best_route_global(&self, prefix: &Prefix) -> Option<Candidate> {
        let candidates: Vec<Candidate> = self
            .candidates
            .candidates(prefix)
            .filter_map(|(peer, route)| {
                let info = self.peers.get(peer)?;
                Some(Candidate {
                    peer: *peer,
                    router_id: info.router_id,
                    route: route.clone(),
                })
            })
            .collect();
        decision::select(candidates.iter()).cloned()
    }

    /// Participants to whom the globally-best route for `prefix` is *not*
    /// exported (their default next hop may diverge from the global one).
    pub fn export_exceptions(&self, prefix: &Prefix) -> Vec<PeerId> {
        let Some(best) = self.best_route_global(prefix) else {
            return Vec::new();
        };
        let Some(info) = self.peers.get(&best.peer) else {
            return Vec::new();
        };
        info.export
            .explicit_denials(prefix)
            .filter(|denied| *denied != best.peer && self.peers.contains_key(denied))
            .collect()
    }

    /// Longest-prefix match over all candidate prefixes: the most specific
    /// announced prefix covering `addr`, with `for_peer`'s best route for it.
    pub fn lpm_best(&self, addr: Ipv4Addr, for_peer: PeerId) -> Option<(Prefix, Candidate)> {
        let (prefix, _) = self.prefix_index.longest_match(addr)?;
        let best = self.best_route(&prefix, for_peer)?;
        Some((prefix, best))
    }

    /// The paper's `RIB.filter('as_path', pattern)`: every prefix with a
    /// candidate route whose AS path matches.
    pub fn filter_as_path(&self, pattern: &AsPathPattern) -> PrefixSet {
        self.candidates
            .prefixes()
            .filter(|prefix| {
                self.candidates
                    .candidates(prefix)
                    .any(|(_, route)| pattern.matches(&route.attrs.as_path))
            })
            .copied()
            .collect()
    }

    /// The re-advertisement (Adj-RIB-Out entry) of `for_peer`'s best route
    /// for `prefix`, with an optional next-hop override — the hook the SDX
    /// uses to substitute virtual next hops (§4.2).
    pub fn advertisement(
        &self,
        prefix: &Prefix,
        for_peer: PeerId,
        next_hop_override: Option<Ipv4Addr>,
    ) -> Option<Update> {
        let best = self.best_route(prefix, for_peer)?;
        let mut attrs = best.route.attrs.clone();
        if let Some(nh) = next_hop_override {
            attrs = attrs.with_next_hop(nh);
        }
        Some(Update::announce([*prefix], attrs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AsPath;

    const A: PeerId = PeerId(1);
    const B: PeerId = PeerId(2);
    const C: PeerId = PeerId(3);

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn attrs(path: &[u32], nh: [u8; 4]) -> PathAttributes {
        PathAttributes::new(AsPath::sequence(path.iter().copied()), Ipv4Addr::from(nh))
    }

    /// Figure 1b of the paper: B announces p1..p4 (not exporting p4 to A),
    /// C announces p1..p3 (plus the default-retaining p5 elsewhere).
    fn figure_1b() -> RouteServer {
        let mut rs = RouteServer::new();
        rs.add_peer(A, Asn(100), RouterId(1));
        rs.add_peer(B, Asn(200), RouterId(2));
        rs.add_peer(C, Asn(300), RouterId(3));

        rs.announce(
            B,
            [
                p("11.0.0.0/8"),
                p("12.0.0.0/8"),
                p("13.0.0.0/8"),
                p("14.0.0.0/8"),
            ],
            attrs(&[200, 65001], [10, 0, 0, 2]),
        );
        rs.set_export_policy(
            B,
            ExportPolicy::export_all().deny_prefix_to(p("14.0.0.0/8"), A),
        );

        // C's shorter paths for p1, p2 make it the default next hop for them.
        rs.announce(
            C,
            [p("11.0.0.0/8"), p("12.0.0.0/8")],
            attrs(&[300], [10, 0, 0, 3]),
        );
        rs.announce(C, [p("14.0.0.0/8")], attrs(&[300, 65001], [10, 0, 0, 3]));
        rs
    }

    #[test]
    fn best_route_prefers_shorter_path() {
        let rs = figure_1b();
        assert_eq!(rs.best_route(&p("11.0.0.0/8"), A).unwrap().peer, C);
        // p3 is only announced by B.
        assert_eq!(rs.best_route(&p("13.0.0.0/8"), A).unwrap().peer, B);
    }

    #[test]
    fn export_policy_hides_prefix_from_peer() {
        let rs = figure_1b();
        // A can reach p4 via C only; B withholds it.
        assert_eq!(rs.reachable_via(&p("14.0.0.0/8"), A), BTreeSet::from([C]));
        // B itself never gets its own route back.
        assert!(!rs.reachable_via(&p("13.0.0.0/8"), B).contains(&B));
        // Another peer still sees B's p4.
        assert_eq!(rs.reachable_via(&p("14.0.0.0/8"), C), BTreeSet::from([B]));
    }

    #[test]
    fn advert_map_matches_per_peer_reachable_via() {
        let rs = figure_1b();
        for prefix in ["11.0.0.0/8", "12.0.0.0/8", "13.0.0.0/8", "14.0.0.0/8"] {
            let prefix = p(prefix);
            let map = rs.advert_map(&prefix);
            for &peer in [A, B, C].iter() {
                let via = rs.reachable_via(&prefix, peer);
                assert_eq!(
                    map.get(&peer).cloned().unwrap_or_default(),
                    via,
                    "advert_map diverged from reachable_via for {prefix} at {peer}"
                );
            }
        }
    }

    #[test]
    fn prefixes_via_reflects_export_policy() {
        let rs = figure_1b();
        let via_b = rs.prefixes_via(B, A);
        assert_eq!(via_b.len(), 3); // p1, p2, p3 — not p4
        assert!(via_b.contains(&p("11.0.0.0/8")));
        assert!(!via_b.contains(&p("14.0.0.0/8")));
        let via_c = rs.prefixes_via(C, A);
        assert_eq!(via_c.len(), 3); // p1, p2, p4
    }

    #[test]
    fn feasible_routes_beyond_best() {
        // "AS A can still direct the corresponding Web traffic through AS B,
        // since AS B does export a BGP route for these prefixes to AS A."
        let rs = figure_1b();
        let feasible = rs.reachable_via(&p("11.0.0.0/8"), A);
        assert!(feasible.contains(&B));
        assert!(feasible.contains(&C));
    }

    #[test]
    fn withdrawal_updates_candidates() {
        let mut rs = figure_1b();
        let events = rs.withdraw(C, [p("11.0.0.0/8")]);
        assert_eq!(events, vec![RsEvent::PrefixTouched(p("11.0.0.0/8"))]);
        assert_eq!(rs.best_route(&p("11.0.0.0/8"), A).unwrap().peer, B);
        // Withdrawing a prefix that was never announced emits nothing.
        assert!(rs.withdraw(C, [p("99.0.0.0/8")]).is_empty());
    }

    #[test]
    fn peer_removal_withdraws_everything() {
        let mut rs = figure_1b();
        let events = rs.remove_peer(B);
        assert!(events.contains(&RsEvent::PeerDown(B)));
        assert_eq!(events.len(), 5); // 4 prefixes + PeerDown
        assert!(rs.best_route(&p("13.0.0.0/8"), A).is_none());
    }

    #[test]
    fn loop_prevention_skips_own_asn() {
        let mut rs = RouteServer::new();
        rs.add_peer(A, Asn(100), RouterId(1));
        rs.add_peer(B, Asn(200), RouterId(2));
        // B's route traverses AS 100 — A must never receive it.
        rs.announce(
            B,
            [p("10.0.0.0/8")],
            attrs(&[200, 100, 65001], [10, 0, 0, 2]),
        );
        assert!(rs.best_route(&p("10.0.0.0/8"), A).is_none());
        assert!(rs.prefixes_via(B, A).is_empty());
    }

    #[test]
    fn filter_as_path_collects_prefixes() {
        let rs = figure_1b();
        let pattern: AsPathPattern = ".*65001$".parse().unwrap();
        let got = rs.filter_as_path(&pattern);
        // p1..p4 have candidates ending in 65001 (B's routes, and C's p4).
        assert_eq!(got.len(), 4);
        let none: AsPathPattern = ".*9$".parse().unwrap();
        assert!(rs.filter_as_path(&none).is_empty());
    }

    #[test]
    fn advertisement_rewrites_next_hop() {
        let rs = figure_1b();
        let adv = rs
            .advertisement(&p("11.0.0.0/8"), A, Some(Ipv4Addr::new(172, 16, 0, 1)))
            .unwrap();
        assert_eq!(
            adv.attrs.as_ref().unwrap().next_hop,
            Ipv4Addr::new(172, 16, 0, 1)
        );
        let plain = rs.advertisement(&p("11.0.0.0/8"), A, None).unwrap();
        assert_eq!(
            plain.attrs.as_ref().unwrap().next_hop,
            Ipv4Addr::new(10, 0, 0, 3)
        );
    }

    #[test]
    fn route_replacement_keeps_latest() {
        let mut rs = figure_1b();
        rs.announce(B, [p("11.0.0.0/8")], attrs(&[200], [10, 0, 0, 2]));
        // B's path is now as short as C's; decision falls through to
        // origin/MED ties and picks the lower router id (B).
        assert_eq!(rs.best_route(&p("11.0.0.0/8"), A).unwrap().peer, B);
    }

    #[test]
    fn no_export_community_hides_route() {
        let mut rs = RouteServer::new();
        rs.add_peer(A, Asn(100), RouterId(1));
        rs.add_peer(B, Asn(200), RouterId(2));
        rs.announce(
            B,
            [p("10.0.0.0/8")],
            attrs(&[200], [10, 0, 0, 2]).with_community(Community::NO_EXPORT),
        );
        assert!(rs.best_route(&p("10.0.0.0/8"), A).is_none());
        assert!(!rs.exports_to(B, &p("10.0.0.0/8"), A));
    }

    #[test]
    fn rs_action_communities_control_export() {
        let mut rs = RouteServer::new();
        rs.add_peer(A, Asn(100), RouterId(1));
        rs.add_peer(B, Asn(200), RouterId(2));
        rs.add_peer(C, Asn(300), RouterId(3));

        // 0:100 — do not export to AS 100 (peer A).
        rs.announce(
            B,
            [p("10.0.0.0/8")],
            attrs(&[200], [10, 0, 0, 2]).with_community(Community::rs_deny_to(100)),
        );
        assert!(rs.best_route(&p("10.0.0.0/8"), A).is_none());
        assert!(rs.best_route(&p("10.0.0.0/8"), C).is_some());

        // 64512:300 — export only to AS 300 (peer C).
        rs.announce(
            B,
            [p("20.0.0.0/8")],
            attrs(&[200], [10, 0, 0, 2]).with_community(Community::rs_only_to(300)),
        );
        assert!(rs.best_route(&p("20.0.0.0/8"), A).is_none());
        assert!(rs.best_route(&p("20.0.0.0/8"), C).is_some());
        assert!(rs.prefixes_via(B, C).contains(&p("20.0.0.0/8")));
        assert!(!rs.prefixes_via(B, A).contains(&p("20.0.0.0/8")));
    }

    #[test]
    fn update_from_unknown_peer_ignored() {
        let mut rs = RouteServer::new();
        let events = rs.announce(PeerId(99), [p("10.0.0.0/8")], attrs(&[1], [10, 0, 0, 9]));
        assert!(events.is_empty());
        assert_eq!(rs.prefix_count(), 0);
    }
}
