//! Regular-expression matching on AS paths, supporting the paper's
//! `RIB.filter('as_path', .*43515$)` policy idiom (§3.2, "Grouping traffic
//! based on BGP attributes").
//!
//! The pattern language is the practical subset operators actually use in
//! route-server and looking-glass configs:
//!
//! * `^` / `$` — anchor at the first / last AS of the path;
//! * a number — match one AS exactly;
//! * `.` — match any single AS;
//! * `.*` — match any (possibly empty) run of ASes;
//! * whitespace separates tokens (and is optional around `.*`).
//!
//! Unanchored patterns use search semantics, like a regex: `3356` matches
//! any path containing AS3356.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::{AsPath, Asn};

/// A compiled AS-path pattern.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsPathPattern {
    tokens: Vec<Token>,
    source: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Token {
    /// `.*` — any run of ASes, including empty.
    Gap,
    /// `.` — exactly one AS, any value.
    AnyOne,
    /// A literal AS number.
    Literal(u32),
}

/// Pattern parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternError(pub String);

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid AS-path pattern: {}", self.0)
    }
}

impl std::error::Error for PatternError {}

impl AsPathPattern {
    /// Does the pattern match this AS path?
    pub fn matches(&self, path: &AsPath) -> bool {
        let asns = path.asns();
        wildcard_match(&self.tokens, &asns)
    }

    /// Does the pattern match this flat ASN sequence?
    pub fn matches_asns(&self, asns: &[Asn]) -> bool {
        wildcard_match(&self.tokens, asns)
    }

    /// The original pattern text.
    pub fn source(&self) -> &str {
        &self.source
    }
}

impl FromStr for AsPathPattern {
    type Err = PatternError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.trim();
        if trimmed.is_empty() {
            return Err(PatternError("empty pattern".into()));
        }
        let mut rest = trimmed;
        let anchored_start = rest.starts_with('^');
        if anchored_start {
            rest = &rest[1..];
        }
        let anchored_end = rest.ends_with('$');
        if anchored_end {
            rest = &rest[..rest.len() - 1];
        }
        if rest.contains('^') || rest.contains('$') {
            return Err(PatternError(format!("misplaced anchor in {trimmed:?}")));
        }

        let mut tokens = Vec::new();
        if !anchored_start {
            tokens.push(Token::Gap);
        }
        let mut chars = rest.chars().peekable();
        while let Some(&c) = chars.peek() {
            match c {
                ws if ws.is_whitespace() => {
                    chars.next();
                }
                '.' => {
                    chars.next();
                    if chars.peek() == Some(&'*') {
                        chars.next();
                        tokens.push(Token::Gap);
                    } else {
                        tokens.push(Token::AnyOne);
                    }
                }
                d if d.is_ascii_digit() => {
                    let mut n: u64 = 0;
                    while let Some(&d) = chars.peek() {
                        if !d.is_ascii_digit() {
                            break;
                        }
                        n = n * 10 + (d as u64 - '0' as u64);
                        if n > u32::MAX as u64 {
                            return Err(PatternError(format!(
                                "AS number too large in {trimmed:?}"
                            )));
                        }
                        chars.next();
                    }
                    tokens.push(Token::Literal(n as u32));
                }
                other => {
                    return Err(PatternError(format!(
                        "unexpected character {other:?} in {trimmed:?}"
                    )))
                }
            }
        }
        if !anchored_end {
            tokens.push(Token::Gap);
        }
        // Collapse adjacent gaps (e.g. from an unanchored `.*174.*`).
        tokens.dedup_by(|a, b| *a == Token::Gap && *b == Token::Gap);
        Ok(AsPathPattern {
            tokens,
            source: trimmed.to_string(),
        })
    }
}

impl fmt::Display for AsPathPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.source)
    }
}

/// Classic wildcard matching DP: `dp[j]` = can tokens consumed so far match
/// the first `j` ASes.
fn wildcard_match(tokens: &[Token], asns: &[Asn]) -> bool {
    let n = asns.len();
    let mut dp = vec![false; n + 1];
    dp[0] = true;
    for token in tokens {
        match token {
            Token::Gap => {
                // Gap extends any reachable position to all later positions.
                let mut reachable = false;
                for slot in dp.iter_mut() {
                    reachable |= *slot;
                    *slot = reachable;
                }
            }
            Token::AnyOne => {
                for j in (1..=n).rev() {
                    dp[j] = dp[j - 1];
                }
                dp[0] = false;
            }
            Token::Literal(asn) => {
                for j in (1..=n).rev() {
                    dp[j] = dp[j - 1] && asns[j - 1].0 == *asn;
                }
                dp[0] = false;
            }
        }
    }
    dp[n]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat(s: &str) -> AsPathPattern {
        s.parse().unwrap()
    }

    fn path(asns: &[u32]) -> AsPath {
        AsPath::sequence(asns.iter().copied())
    }

    #[test]
    fn paper_youtube_example() {
        // ".*43515$" — all routes ending in AS 43515 (YouTube).
        let p = pat(".*43515$");
        assert!(p.matches(&path(&[174, 3356, 43515])));
        assert!(p.matches(&path(&[43515])));
        assert!(!p.matches(&path(&[43515, 174])));
        assert!(!p.matches(&path(&[174])));
    }

    #[test]
    fn anchored_start() {
        let p = pat("^174 .*");
        assert!(p.matches(&path(&[174, 3356])));
        assert!(p.matches(&path(&[174])));
        assert!(!p.matches(&path(&[3356, 174])));
    }

    #[test]
    fn fully_anchored_exact() {
        let p = pat("^174 3356$");
        assert!(p.matches(&path(&[174, 3356])));
        assert!(!p.matches(&path(&[174, 3356, 1])));
        assert!(!p.matches(&path(&[174])));
    }

    #[test]
    fn unanchored_is_search() {
        let p = pat("3356");
        assert!(p.matches(&path(&[174, 3356, 43515])));
        assert!(p.matches(&path(&[3356])));
        assert!(!p.matches(&path(&[174, 43515])));
    }

    #[test]
    fn any_one_token() {
        let p = pat("^174 . 43515$");
        assert!(p.matches(&path(&[174, 9999, 43515])));
        assert!(!p.matches(&path(&[174, 43515])));
        assert!(!p.matches(&path(&[174, 1, 2, 43515])));
    }

    #[test]
    fn gap_matches_empty() {
        let p = pat("^174.*43515$");
        assert!(p.matches(&path(&[174, 43515])));
        assert!(p.matches(&path(&[174, 1, 2, 43515])));
    }

    #[test]
    fn empty_path_cases() {
        assert!(pat(".*").matches(&path(&[])));
        assert!(!pat("174").matches(&path(&[])));
        assert!(pat("^$").matches(&path(&[])));
        assert!(!pat("^$").matches(&path(&[1])));
    }

    #[test]
    fn parse_errors() {
        assert!("".parse::<AsPathPattern>().is_err());
        assert!("abc".parse::<AsPathPattern>().is_err());
        assert!("17^4".parse::<AsPathPattern>().is_err());
        assert!("99999999999999999999".parse::<AsPathPattern>().is_err());
    }

    #[test]
    fn display_preserves_source() {
        assert_eq!(pat(".*43515$").to_string(), ".*43515$");
    }
}
