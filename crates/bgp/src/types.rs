use std::fmt;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

/// An autonomous system number (4-octet, RFC 6793).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Self {
        Asn(v)
    }
}

/// Identifies a BGP peer (an SDX participant's border router) on the route
/// server. The SDX maps participants to peers one-to-one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PeerId(pub u32);

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer{}", self.0)
    }
}

/// A BGP identifier (router ID), compared numerically in the decision
/// process tie-break.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RouterId(pub u32);

impl RouterId {
    /// Build from the conventional dotted-quad form.
    pub fn from_addr(addr: Ipv4Addr) -> Self {
        RouterId(u32::from(addr))
    }

    /// The dotted-quad rendering.
    pub fn addr(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.0)
    }
}

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.addr())
    }
}

/// The ORIGIN path attribute (RFC 4271 §5.1.1). Lower is preferred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Origin {
    /// Learned from an interior routing protocol.
    Igp = 0,
    /// Learned via EGP.
    Egp = 1,
    /// Origin unknown.
    Incomplete = 2,
}

impl Origin {
    /// Decode from the wire value.
    pub fn from_u8(v: u8) -> Option<Origin> {
        match v {
            0 => Some(Origin::Igp),
            1 => Some(Origin::Egp),
            2 => Some(Origin::Incomplete),
            _ => None,
        }
    }
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Origin::Igp => write!(f, "IGP"),
            Origin::Egp => write!(f, "EGP"),
            Origin::Incomplete => write!(f, "?"),
        }
    }
}

/// A standard community value (RFC 1997), conventionally `ASN:value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Community(pub u32);

impl Community {
    /// RFC 1997 NO_EXPORT: do not re-advertise beyond the local domain —
    /// a route server drops such routes from every Adj-RIB-Out.
    pub const NO_EXPORT: Community = Community(0xffff_ff01);

    /// RFC 1997 NO_ADVERTISE: do not re-advertise at all.
    pub const NO_ADVERTISE: Community = Community(0xffff_ff02);

    /// The conventional route-server action community `0:peer-as`:
    /// "do not export this route to `peer-as`".
    pub fn rs_deny_to(peer_as: u16) -> Community {
        Community::new(0, peer_as)
    }

    /// The conventional route-server action community `64512:peer-as`
    /// (route servers often use their own ASN; we follow the common
    /// private-ASN convention): "export this route only to `peer-as`".
    pub fn rs_only_to(peer_as: u16) -> Community {
        Community::new(64_512, peer_as)
    }

    /// Build from the conventional `asn:value` halves.
    pub fn new(asn: u16, value: u16) -> Self {
        Community(((asn as u32) << 16) | value as u32)
    }

    /// The high (ASN) half.
    pub fn asn(&self) -> u16 {
        (self.0 >> 16) as u16
    }

    /// The low (value) half.
    pub fn value(&self) -> u16 {
        self.0 as u16
    }
}

impl fmt::Display for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.asn(), self.value())
    }
}

/// An AS path: an ordered sequence of segments.
///
/// We model the two RFC 4271 segment kinds. Sequences contribute their length
/// to path-length comparison; sets contribute 1 (RFC 4271 §9.1.2.2 note a).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct AsPath {
    segments: Vec<AsPathSegment>,
}

/// One AS_PATH segment.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsPathSegment {
    /// An ordered sequence of traversed ASes.
    Sequence(Vec<Asn>),
    /// An unordered set (the result of aggregation).
    Set(Vec<Asn>),
}

impl AsPath {
    /// The empty path (a route originated locally).
    pub fn empty() -> Self {
        AsPath::default()
    }

    /// A path that is a single sequence of ASes.
    pub fn sequence(asns: impl IntoIterator<Item = u32>) -> Self {
        AsPath {
            segments: vec![AsPathSegment::Sequence(asns.into_iter().map(Asn).collect())],
        }
    }

    /// The raw segments.
    pub fn segments(&self) -> &[AsPathSegment] {
        &self.segments
    }

    /// Append a segment.
    pub fn push_segment(&mut self, seg: AsPathSegment) {
        self.segments.push(seg);
    }

    /// Prepend an AS (what a router does when exporting a route).
    pub fn prepend(&self, asn: Asn) -> AsPath {
        let mut segments = self.segments.clone();
        match segments.first_mut() {
            Some(AsPathSegment::Sequence(seq)) => seq.insert(0, asn),
            _ => segments.insert(0, AsPathSegment::Sequence(vec![asn])),
        }
        AsPath { segments }
    }

    /// Path length for the decision process: sequence hops count 1 each,
    /// each set counts 1.
    pub fn path_len(&self) -> usize {
        self.segments
            .iter()
            .map(|s| match s {
                AsPathSegment::Sequence(seq) => seq.len(),
                AsPathSegment::Set(_) => 1,
            })
            .sum()
    }

    /// All ASes on the path, in order (sets flattened in place).
    pub fn asns(&self) -> Vec<Asn> {
        self.segments
            .iter()
            .flat_map(|s| match s {
                AsPathSegment::Sequence(seq) => seq.iter(),
                AsPathSegment::Set(set) => set.iter(),
            })
            .copied()
            .collect()
    }

    /// The originating AS (last on the path), if any.
    pub fn origin_as(&self) -> Option<Asn> {
        self.asns().last().copied()
    }

    /// The neighbor AS (first on the path), if any.
    pub fn first_as(&self) -> Option<Asn> {
        self.asns().first().copied()
    }

    /// Does the path contain this AS (loop detection)?
    pub fn contains(&self, asn: Asn) -> bool {
        self.asns().contains(&asn)
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, seg) in self.segments.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            match seg {
                AsPathSegment::Sequence(seq) => {
                    for (j, asn) in seq.iter().enumerate() {
                        if j > 0 {
                            write!(f, " ")?;
                        }
                        write!(f, "{}", asn.0)?;
                    }
                }
                AsPathSegment::Set(set) => {
                    write!(f, "{{")?;
                    for (j, asn) in set.iter().enumerate() {
                        if j > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{}", asn.0)?;
                    }
                    write!(f, "}}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asn_and_router_id_display() {
        assert_eq!(Asn(65000).to_string(), "AS65000");
        assert_eq!(
            RouterId::from_addr(Ipv4Addr::new(10, 0, 0, 1)).to_string(),
            "10.0.0.1"
        );
    }

    #[test]
    fn community_halves() {
        let c = Community::new(65000, 42);
        assert_eq!(c.asn(), 65000);
        assert_eq!(c.value(), 42);
        assert_eq!(c.to_string(), "65000:42");
    }

    #[test]
    fn origin_wire_values() {
        assert_eq!(Origin::from_u8(0), Some(Origin::Igp));
        assert_eq!(Origin::from_u8(2), Some(Origin::Incomplete));
        assert_eq!(Origin::from_u8(3), None);
        assert!(Origin::Igp < Origin::Incomplete);
    }

    #[test]
    fn as_path_prepend_and_length() {
        let p = AsPath::sequence([3356, 43515]);
        assert_eq!(p.path_len(), 2);
        let q = p.prepend(Asn(174));
        assert_eq!(q.path_len(), 3);
        assert_eq!(q.first_as(), Some(Asn(174)));
        assert_eq!(q.origin_as(), Some(Asn(43515)));
        assert_eq!(q.to_string(), "174 3356 43515");
    }

    #[test]
    fn as_path_sets_count_once() {
        let mut p = AsPath::sequence([1, 2]);
        p.push_segment(AsPathSegment::Set(vec![Asn(3), Asn(4), Asn(5)]));
        assert_eq!(p.path_len(), 3);
        assert!(p.contains(Asn(4)));
        assert_eq!(p.to_string(), "1 2 {3,4,5}");
    }

    #[test]
    fn prepend_to_empty_path() {
        let p = AsPath::empty().prepend(Asn(7));
        assert_eq!(p.path_len(), 1);
        assert_eq!(p.origin_as(), Some(Asn(7)));
    }
}
