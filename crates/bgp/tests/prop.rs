//! Property tests: wire-codec round trips and AS-path pattern matching
//! against a brute-force oracle.

use proptest::prelude::*;
use sdx_bgp::wire::{decode, encode, Message, NotificationMsg, OpenMsg};
use sdx_bgp::{
    AsPath, AsPathPattern, AsPathSegment, Asn, Community, Origin, PathAttributes, RouterId, Update,
};
use sdx_ip::Prefix;
use std::net::Ipv4Addr;

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| Prefix::from_bits(bits, len))
}

fn arb_as_path() -> impl Strategy<Value = AsPath> {
    prop::collection::vec(
        prop_oneof![
            prop::collection::vec(0u32..100_000, 1..5)
                .prop_map(|v| AsPathSegment::Sequence(v.into_iter().map(Asn).collect())),
            prop::collection::vec(0u32..100_000, 1..4)
                .prop_map(|v| AsPathSegment::Set(v.into_iter().map(Asn).collect())),
        ],
        0..3,
    )
    .prop_map(|segments| {
        let mut p = AsPath::empty();
        for s in segments {
            p.push_segment(s);
        }
        p
    })
}

fn arb_attrs() -> impl Strategy<Value = PathAttributes> {
    (
        arb_as_path(),
        any::<u32>(),
        prop::option::of(any::<u32>()),
        prop::option::of(any::<u32>()),
        prop::collection::vec(any::<u32>(), 0..4),
        0u8..3,
    )
        .prop_map(|(as_path, nh, med, lp, comms, origin)| PathAttributes {
            origin: Origin::from_u8(origin).unwrap(),
            as_path,
            next_hop: Ipv4Addr::from(nh),
            med,
            local_pref: lp,
            communities: comms.into_iter().map(Community).collect(),
        })
}

fn arb_update() -> impl Strategy<Value = Update> {
    (
        prop::collection::vec(arb_prefix(), 0..10),
        prop::collection::vec(arb_prefix(), 0..10),
        arb_attrs(),
    )
        .prop_map(|(withdraw, announce, attrs)| {
            let attrs = if announce.is_empty() {
                None
            } else {
                Some(attrs)
            };
            Update {
                withdraw,
                announce,
                attrs,
            }
        })
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        Just(Message::Keepalive),
        (1u32..65_536, any::<u16>(), any::<u32>()).prop_map(|(asn, hold, id)| {
            Message::Open(OpenMsg {
                version: 4,
                asn: Asn(asn & 0xffff),
                hold_time: hold,
                router_id: RouterId(id),
            })
        }),
        arb_update().prop_map(Message::Update),
        (
            any::<u8>(),
            any::<u8>(),
            prop::collection::vec(any::<u8>(), 0..20)
        )
            .prop_map(
                |(code, subcode, data)| Message::Notification(NotificationMsg {
                    code,
                    subcode,
                    data
                })
            ),
    ]
}

proptest! {
    #[test]
    fn wire_round_trip(msg in arb_message()) {
        let wire = encode(&msg);
        prop_assume!(wire.len() <= sdx_bgp::wire::MAX_MESSAGE);
        let (decoded, consumed) = decode(&wire).expect("decode");
        prop_assert_eq!(consumed, wire.len());
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn truncation_never_panics(msg in arb_message(), cut in 0usize..100) {
        let wire = encode(&msg);
        let cut = cut.min(wire.len());
        let _ = decode(&wire[..cut]); // must not panic; Truncated or a parse error is fine
    }

    #[test]
    fn corruption_never_panics(msg in arb_message(), idx in 0usize..200, byte in any::<u8>()) {
        let mut wire = encode(&msg).to_vec();
        let idx = idx % wire.len();
        wire[idx] = byte;
        let _ = decode(&wire); // any Result is acceptable; panics are not
    }

    #[test]
    fn literal_only_pattern_matches_subsequence_oracle(
        path in prop::collection::vec(0u32..50, 0..8),
        needle in prop::collection::vec(0u32..50, 1..4),
    ) {
        // An unanchored literal pattern "a b c" means the path contains the
        // contiguous run [a, b, c].
        let source = needle.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(" ");
        let pattern: AsPathPattern = source.parse().unwrap();
        let as_path = AsPath::sequence(path.iter().copied());
        let oracle = path.windows(needle.len()).any(|w| w == &needle[..]);
        prop_assert_eq!(pattern.matches(&as_path), oracle);
    }

    #[test]
    fn anchored_suffix_pattern_oracle(
        path in prop::collection::vec(0u32..50, 0..8),
        tail in 0u32..50,
    ) {
        let pattern: AsPathPattern = format!(".*{tail}$").parse().unwrap();
        let as_path = AsPath::sequence(path.iter().copied());
        prop_assert_eq!(pattern.matches(&as_path), path.last() == Some(&tail));
    }
}

mod decision_props {
    use proptest::prelude::*;
    use sdx_bgp::decision::{prefer, select, Candidate};
    use sdx_bgp::{AsPath, Origin, PathAttributes, PeerId, Route, RouterId};
    use std::cmp::Ordering;
    use std::net::Ipv4Addr;

    fn arb_candidate() -> impl Strategy<Value = Candidate> {
        (
            1u32..6,
            0usize..5,
            prop::option::of(50u32..300),
            prop::option::of(0u32..100),
            0u8..3,
        )
            .prop_map(|(peer, path_len, lp, med, origin)| {
                let mut attrs = PathAttributes::new(
                    AsPath::sequence((0..path_len as u32).map(|i| 100 + i)),
                    Ipv4Addr::new(10, 0, 0, peer as u8),
                );
                attrs.local_pref = lp;
                attrs.med = med;
                attrs.origin = Origin::from_u8(origin).unwrap();
                Candidate {
                    peer: PeerId(peer),
                    router_id: RouterId(peer),
                    route: Route::new("203.0.113.0/24".parse().unwrap(), attrs),
                }
            })
    }

    proptest! {
        /// The decision process is a total order: antisymmetric and
        /// transitive, so "best route" is well-defined.
        #[test]
        fn prefer_is_antisymmetric_and_transitive(
            a in arb_candidate(),
            b in arb_candidate(),
            c in arb_candidate(),
        ) {
            prop_assert_eq!(prefer(&a, &b), prefer(&b, &a).reverse());
            prop_assert_eq!(prefer(&a, &a), Ordering::Equal);
            if prefer(&a, &b) != Ordering::Less && prefer(&b, &c) != Ordering::Less {
                prop_assert_ne!(prefer(&a, &c), Ordering::Less);
            }
        }

        /// `select` returns a candidate no other candidate beats.
        #[test]
        fn select_is_maximal(cands in prop::collection::vec(arb_candidate(), 1..8)) {
            let best = select(cands.iter()).unwrap();
            for c in &cands {
                prop_assert_ne!(prefer(c, best), Ordering::Greater);
            }
        }
    }
}
