//! Static update-plan safety analysis for the SDX.
//!
//! A churn-driven recompile replaces the fabric's flow tables. Installing
//! the new tables rule-by-rule walks through intermediate states, and an
//! unlucky interleaving can transiently blackhole traffic or leak it to a
//! participant that never advertised the destination — even when both the
//! old and the new state are individually safe. This crate closes that
//! window *statically*, before any rule moves:
//!
//! 1. [`delta`] computes the rule-level difference between the two states
//!    (install/remove steps against the live tuple-space-indexed tables,
//!    not a wholesale rebuild);
//! 2. [`check`] judges any intermediate state against the header-space
//!    invariants (isolation, blackhole-freedom, per-packet consistency),
//!    reusing the [`sdx_analyze::hs`] engine incrementally — a step pinned
//!    to one VMAC tag only re-verifies that tag's injections;
//! 3. [`search`] synthesizes a safe *ordering* of the steps by
//!    verifier-guided depth-first search with backtracking, falling back
//!    to a per-packet-consistent two-phase (install / barrier / drain)
//!    plan when no safe single-phase ordering exists.
//!
//! The controller (`sdx-core`) runs [`plan`] as its third compile gate and
//! applies the synthesized schedule to the live tables; `sdx-lint --plan`
//! surfaces the naive-ordering violations with named step-and-witness
//! evidence.

use std::time::Instant;

use sdx_analyze::{Diagnostic, PassKind, Severity, VerifyInput};

pub mod check;
pub mod delta;
pub mod incremental;
pub mod search;

pub use check::{Checker, Phase, Violation, ViolationKind};
pub use delta::{
    classifier_of, diff, state_of_classifier, state_of_cookie, state_of_table, DeltaOp, PlanRule,
    PlanStep, TableState,
};
pub use incremental::{
    DeltaEvent, DeltaReport, DeltaVerdict, EmissionKey, IncStats, IncrementalChecker,
};
pub use search::{judge_order, make_before_break, synthesize, Schedule, SearchResult};

/// Default DFS node budget: far above what SDX churn deltas need, low
/// enough that a pathological delta falls back to two-phase promptly.
pub const DEFAULT_SEARCH_BUDGET: usize = 20_000;

/// Cap on recorded naive-ordering violations. The naive judgement is
/// evidence that ordering matters, never a gate — at workload scale a bad
/// ordering can flag tens of thousands of (injection, step) pairs, and
/// rendering them all as diagnostics would dwarf the compile itself. Once
/// the cap is hit the judgement stops early.
pub const MAX_NAIVE_VIOLATIONS: usize = 256;

/// Everything the planner reads.
pub struct PlanInput<'a> {
    /// The installed (pre-update) tables, rule content per table.
    pub old_state: Vec<TableState>,
    /// The target (post-update) tables.
    pub new_state: Vec<TableState>,
    /// Verifier view of the old fabric (tables + FIBs + ground truth).
    pub old_verify: &'a VerifyInput,
    /// Verifier view of the new fabric.
    pub new_verify: &'a VerifyInput,
    /// DFS node budget ([`DEFAULT_SEARCH_BUDGET`] when in doubt).
    pub budget: usize,
}

/// Wall-clock breakdown of one planning run, microseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlanTimes {
    /// Computing the rule-level delta.
    pub delta_us: u128,
    /// Judging the naive install-stream ordering.
    pub naive_us: u128,
    /// Ordering search plus fallback (includes its checking).
    pub search_us: u128,
}

/// The planner's verdict.
#[derive(Debug)]
pub struct PlanReport {
    /// The rule-level delta in naive install-stream order (removals then
    /// installs per table — what a differ would emit).
    pub steps: Vec<PlanStep>,
    /// The synthesized safe schedule, when one exists.
    pub schedule: Option<Schedule>,
    /// Violations of the *naive* ordering (evidence that ordering matters;
    /// never blocks installation).
    pub naive_violations: Vec<Violation>,
    /// Violations that doomed the fallback when no safe schedule exists.
    pub violations: Vec<Violation>,
    /// Search nodes expanded (intermediate states checked).
    pub explored: usize,
    /// Microseconds spent in intermediate-state checking during synthesis.
    pub check_us: u128,
    /// Per-step check cost of the synthesized schedule, µs (averaged).
    pub per_step_check_us: u128,
    /// Stage timing.
    pub times: PlanTimes,
}

impl PlanReport {
    /// Does a safe schedule exist?
    pub fn safe(&self) -> bool {
        self.schedule.is_some()
    }

    /// Was the two-phase fallback needed?
    pub fn two_phase(&self) -> bool {
        self.schedule.as_ref().map(|s| s.two_phase).unwrap_or(false)
    }

    /// Render the report as analyzer diagnostics:
    ///
    /// * `plan-naive-*` (**error**): the naive install-stream ordering
    ///   traverses an unsafe intermediate state — step index and witness
    ///   packet attached. Evidence, not a gate: a safe schedule may and
    ///   usually does exist.
    /// * `plan-ordered` / `plan-two-phase` (**warning**): summary of the
    ///   synthesized schedule.
    /// * `plan-unsafe` (**error**): no per-packet-consistent schedule
    ///   exists at rule granularity; violations of the best fallback
    ///   attached. This is the finding the `Deny` gate blocks on.
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for v in &self.naive_violations {
            out.push(Diagnostic {
                severity: Severity::Error,
                pass: PassKind::Plan,
                code: match v.kind {
                    ViolationKind::Blackhole => "plan-naive-blackhole",
                    ViolationKind::IsolationLeak => "plan-naive-leak",
                    ViolationKind::Inconsistent => "plan-naive-inconsistent",
                    ViolationKind::Undecided => "plan-naive-undecided",
                },
                message: format!(
                    "naive ordering unsafe after step {} ({}): {}",
                    v.step, v.step_desc, v.message
                ),
                participant: Some(v.sender),
                clause: None,
                witness: v.witness.clone(),
            });
        }
        match &self.schedule {
            Some(s) => out.push(Diagnostic {
                severity: Severity::Warning,
                pass: PassKind::Plan,
                code: if s.two_phase {
                    "plan-two-phase"
                } else {
                    "plan-ordered"
                },
                message: if s.two_phase {
                    format!(
                        "no safe single-phase ordering; synthesized two-phase plan: \
                         {} install step(s), barrier, {} removal step(s) \
                         ({} state(s) explored)",
                        s.barrier,
                        s.order.len() - s.barrier,
                        self.explored
                    )
                } else {
                    format!(
                        "synthesized safe ordering of {} step(s) ({} before the \
                         drain barrier; {} state(s) explored)",
                        s.order.len(),
                        s.barrier,
                        self.explored
                    )
                },
                participant: None,
                clause: None,
                witness: None,
            }),
            None => {
                for v in &self.violations {
                    out.push(Diagnostic {
                        severity: Severity::Error,
                        pass: PassKind::Plan,
                        code: "plan-unsafe",
                        message: format!(
                            "no safe schedule exists; fallback unsafe after step {} \
                             ({}): {}",
                            v.step, v.step_desc, v.message
                        ),
                        participant: Some(v.sender),
                        clause: None,
                        witness: v.witness.clone(),
                    });
                }
            }
        }
        out
    }
}

/// Run the full analysis: delta, naive-order judgement, safe-ordering
/// synthesis (with two-phase fallback).
pub fn plan(input: &PlanInput<'_>) -> PlanReport {
    let checker = Checker::new(input.old_verify, input.new_verify);

    let t0 = Instant::now();
    let steps = diff(&input.old_state, &input.new_state);
    let delta_us = t0.elapsed().as_micros();

    let (naive_violations, naive_us) = judge_order(&checker, &input.old_state, &steps);

    let t1 = Instant::now();
    let result = synthesize(&checker, &input.old_state, &steps, input.budget);
    let search_us = t1.elapsed().as_micros();

    let per_step = result
        .schedule
        .as_ref()
        .filter(|s| !s.order.is_empty())
        .map(|s| result.check_us / s.order.len() as u128)
        .unwrap_or(0);

    PlanReport {
        steps,
        schedule: result.schedule,
        naive_violations,
        violations: result.violations,
        explored: result.explored,
        check_us: result.check_us,
        per_step_check_us: per_step,
        times: PlanTimes {
            delta_us,
            naive_us,
            search_us,
        },
    }
}
