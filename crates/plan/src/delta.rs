//! Rule-level deltas between two fabric states.
//!
//! A [`TableState`] is the behavior-relevant content of one pipeline table:
//! `(priority, match, actions, goto)` per rule, priority-ordered, with
//! cookies and install sequence numbers deliberately absent (an update plan
//! retires rules by content, not by which generation installed them — the
//! same abstraction [`FlowTable::fingerprint`] hashes). The delta between
//! two states is a *multiset* difference per table: rules present only in
//! the old state become [`DeltaOp::Remove`] steps, rules present only in the
//! new state become [`DeltaOp::Install`] steps. Rules present in both are
//! never touched — that is what makes the delta an incremental update
//! stream rather than a wholesale rebuild.
//!
//! [`FlowTable::fingerprint`]: sdx_switch::FlowTable::fingerprint

use std::collections::BTreeMap;
use std::fmt;

use sdx_policy::{Action, Classifier, Match, Rule};
use sdx_switch::{FlowRule, FlowTable};

/// The behavior-relevant content of one flow rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanRule {
    /// Higher wins.
    pub priority: u32,
    /// The match.
    pub match_: Match,
    /// The action list (empty = drop).
    pub actions: Vec<Action>,
    /// OpenFlow `goto_table` continuation, if any.
    pub goto_table: Option<usize>,
}

impl PlanRule {
    /// The rendered form used as the multiset-diff key (and mirrored by
    /// [`FlowTable::fingerprint`]'s per-rule line).
    pub(crate) fn key(&self) -> String {
        self.to_string()
    }

    /// Lower to a [`FlowRule`] carrying `cookie`.
    pub fn to_flow_rule(&self, cookie: u64) -> FlowRule {
        let mut fr = FlowRule::new(self.priority, self.match_.clone(), self.actions.clone())
            .with_cookie(cookie);
        if let Some(t) = self.goto_table {
            fr = fr.with_goto(t);
        }
        fr
    }
}

impl fmt::Display for PlanRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prio={} {} ->", self.priority, self.match_)?;
        if self.actions.is_empty() {
            write!(f, " drop")?;
        } else {
            for a in &self.actions {
                write!(f, " {a}")?;
            }
        }
        if let Some(t) = self.goto_table {
            write!(f, " goto({t})")?;
        }
        Ok(())
    }
}

/// What one update step does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaOp {
    /// Add the rule to the table.
    Install,
    /// Retire the rule from the table.
    Remove,
}

/// One step of an update plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanStep {
    /// Which pipeline table the step touches.
    pub table: usize,
    /// Install or remove.
    pub op: DeltaOp,
    /// The rule content.
    pub rule: PlanRule,
}

impl fmt::Display for PlanStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.op {
            DeltaOp::Install => "install",
            DeltaOp::Remove => "remove",
        };
        write!(f, "{op} table {} {}", self.table, self.rule)
    }
}

/// One pipeline table's rule content, sorted like a [`FlowTable`]: priority
/// descending, first-installed-wins within equal priorities.
pub type TableState = Vec<PlanRule>;

/// The [`TableState`] of a live flow table.
pub fn state_of_table(table: &FlowTable) -> TableState {
    table
        .rules()
        .iter()
        .map(|r| PlanRule {
            priority: r.priority,
            match_: r.match_.clone(),
            actions: r.actions.clone(),
            goto_table: r.goto_table,
        })
        .collect()
}

/// The [`TableState`] of just the rules in `table` carrying `cookie` —
/// the live content of one install generation (e.g. a fast-path overlay
/// fragment), in table order. Diffing this against a freshly compiled
/// fragment yields the rule-level steps that migrate the generation
/// without touching the rest of the table.
pub fn state_of_cookie(table: &FlowTable, cookie: u64) -> TableState {
    table
        .rules()
        .iter()
        .filter(|r| r.cookie == cookie)
        .map(|r| PlanRule {
            priority: r.priority,
            match_: r.match_.clone(),
            actions: r.actions.clone(),
            goto_table: r.goto_table,
        })
        .collect()
}

/// The [`TableState`] a fresh `install_classifier` of `classifier` would
/// produce: rule `i` at priority `len - i`, `goto` on every non-drop rule
/// when given (mirrors `FlowTable::append_classifier_goto` at boost 0).
pub fn state_of_classifier(classifier: &Classifier, goto: Option<usize>) -> TableState {
    let n = classifier.len() as u32;
    classifier
        .rules()
        .iter()
        .enumerate()
        .map(|(i, r)| PlanRule {
            priority: n - i as u32,
            match_: r.match_.clone(),
            actions: r.actions.clone(),
            goto_table: match (goto, r.is_drop()) {
                (Some(t), false) => Some(t),
                _ => None,
            },
        })
        .collect()
}

/// Render a state as a classifier for the symbolic engine: rules in table
/// order (priority descending) become first-match-wins rules.
pub fn classifier_of(state: &TableState) -> Classifier {
    Classifier::new(
        state
            .iter()
            .map(|r| Rule {
                match_: r.match_.clone(),
                actions: r.actions.clone(),
            })
            .collect(),
    )
}

/// The rule-level delta from `old` to `new`, in the **naive install-stream
/// order** a differ would emit: per table, removals (old table order) then
/// installs (new table order). This is exactly the ordering the safety
/// analysis judges — the synthesized plan is a permutation of these steps.
pub fn diff(old: &[TableState], new: &[TableState]) -> Vec<PlanStep> {
    let tables = old.len().max(new.len());
    let empty = TableState::new();
    let mut steps = Vec::new();
    for t in 0..tables {
        let o = old.get(t).unwrap_or(&empty);
        let n = new.get(t).unwrap_or(&empty);
        // Multiset occurrence counts of new-side rules by content key.
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for rule in n {
            *counts.entry(rule.key()).or_default() += 1;
        }
        // Old rules not absorbed by a new-side occurrence are removals.
        let mut keep: BTreeMap<String, usize> = BTreeMap::new();
        for rule in o {
            let key = rule.key();
            match counts.get_mut(&key) {
                Some(c) if *c > 0 => {
                    *c -= 1;
                    *keep.entry(key).or_default() += 1;
                }
                _ => steps.push(PlanStep {
                    table: t,
                    op: DeltaOp::Remove,
                    rule: rule.clone(),
                }),
            }
        }
        // New rules not matched by a kept old-side occurrence are installs.
        for rule in n {
            let key = rule.key();
            match keep.get_mut(&key) {
                Some(c) if *c > 0 => *c -= 1,
                _ => steps.push(PlanStep {
                    table: t,
                    op: DeltaOp::Install,
                    rule: rule.clone(),
                }),
            }
        }
    }
    steps
}

/// Apply one step to a state vector, mirroring [`FlowTable`] semantics:
/// installs land at the end of their priority band (first installed wins),
/// removals retire the first content-equal rule. Returns whether the step
/// changed anything (a removal of an absent rule is a no-op).
pub fn apply(state: &mut Vec<TableState>, step: &PlanStep) -> bool {
    while state.len() <= step.table {
        state.push(TableState::new());
    }
    let table = &mut state[step.table];
    match step.op {
        DeltaOp::Install => {
            let pos = table.partition_point(|r| r.priority >= step.rule.priority);
            table.insert(pos, step.rule.clone());
            true
        }
        DeltaOp::Remove => match table.iter().position(|r| *r == step.rule) {
            Some(pos) => {
                table.remove(pos);
                true
            }
            None => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_policy::{Field, Pattern};

    fn rule(priority: u32, port: u32, out: Option<u32>) -> PlanRule {
        PlanRule {
            priority,
            match_: Match::on(Field::Port, Pattern::Exact(port as u64)),
            actions: out
                .map(|o| vec![Action::set(Field::Port, o)])
                .unwrap_or_default(),
            goto_table: None,
        }
    }

    #[test]
    fn diff_is_minimal_and_ordered() {
        let old = vec![vec![
            rule(3, 1, Some(9)),
            rule(2, 2, Some(8)),
            rule(1, 3, None),
        ]];
        let new = vec![vec![
            rule(3, 1, Some(7)),
            rule(2, 2, Some(8)),
            rule(1, 3, None),
        ]];
        let steps = diff(&old, &new);
        // Only the changed rule appears, removal before install.
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0].op, DeltaOp::Remove);
        assert_eq!(steps[0].rule, rule(3, 1, Some(9)));
        assert_eq!(steps[1].op, DeltaOp::Install);
        assert_eq!(steps[1].rule, rule(3, 1, Some(7)));
    }

    #[test]
    fn state_of_cookie_filters_one_generation() {
        let mut table = FlowTable::new();
        table.install(rule(3, 1, Some(9)).to_flow_rule(7));
        table.install(rule(2, 2, Some(8)).to_flow_rule(9));
        table.install(rule(1, 3, None).to_flow_rule(7));
        let state = state_of_cookie(&table, 7);
        assert_eq!(state, vec![rule(3, 1, Some(9)), rule(1, 3, None)]);
        assert!(state_of_cookie(&table, 42).is_empty());
    }

    #[test]
    fn make_before_break_installs_then_removes() {
        let old = vec![vec![rule(3, 1, Some(9)), rule(2, 2, Some(8))]];
        let new = vec![vec![rule(3, 1, Some(7)), rule(1, 3, None)]];
        let steps = diff(&old, &new);
        let schedule = crate::search::make_before_break(&steps);
        assert_eq!(schedule.order.len(), steps.len());
        assert_eq!(schedule.barrier, 2); // both installs precede the barrier
        assert!(schedule.order[..schedule.barrier]
            .iter()
            .all(|s| s.op == DeltaOp::Install));
        assert!(schedule.order[schedule.barrier..]
            .iter()
            .all(|s| s.op == DeltaOp::Remove));
        // Applying the schedule lands on the new state regardless of the
        // interleaving the differ emitted.
        let mut state = old.clone();
        for step in &schedule.order {
            assert!(apply(&mut state, step));
        }
        assert_eq!(state, new);
    }

    #[test]
    fn apply_round_trips_to_new_state() {
        let old = vec![vec![rule(3, 1, Some(9)), rule(1, 3, None)]];
        let new = vec![vec![
            rule(4, 5, Some(2)),
            rule(3, 1, Some(9)),
            rule(2, 2, Some(8)),
        ]];
        let mut state = old.clone();
        for step in diff(&old, &new) {
            assert!(apply(&mut state, &step));
        }
        assert_eq!(state, new);
    }
}
