//! Incremental delta-safety verification: header-space checking of every
//! streamed update at churn rate.
//!
//! The batch planner ([`crate::plan`]) proves per-packet consistency for a
//! full recompile by checking every intermediate state of the schedule
//! against both FIB generations — milliseconds of symbolic work that would
//! cap a streaming fast path at a few hundred updates per second. The
//! [`IncrementalChecker`] gets the same verdict at microsecond cost by
//! keeping the checking context alive across events and confining symbolic
//! work to the header regions a delta actually touches:
//!
//! * **Persistent emissions model.** The per-(sender, port, tag) emission
//!   map — which destinations each border router emits under which VMAC
//!   tag — is maintained incrementally: a delta re-homes exactly one
//!   prefix, so the map changes in O(affected keys), not O(RIB).
//! * **Dirty-region gate.** Each schedule step's match signature is
//!   converted to a header-space [`Region`]. An injection needs re-checking
//!   in a phase only if (a) its region intersects a step applied in that
//!   phase and (b) the phase's FIB generation actually emits packets into
//!   it. Fast-path deltas install rules pinned to a *fresh* VMAC tag (no
//!   old-generation emissions) and remove rules pinned to a *dying*
//!   per-prefix tag (no new-generation emissions), so both conditions fail
//!   for every injection and the schedule is **structurally certified**
//!   with zero symbolic work — the common case at churn rate.
//! * **Seeded partition cache.** When a delta does force symbolic work, the
//!   transient [`Checker`] is seeded with the persistent per-injection
//!   terminal-region partitions of the current tables (the "old" side of
//!   the event), and the new-side partitions it computes are harvested
//!   back once the delta commits. Cache entries are invalidated by tag:
//!   a committed step pinned to tag *t* drops exactly the partitions whose
//!   injection region carries *t*; an unpinned step drops everything.
//! * **Tag → rule dependency index.** Rule counts per pinned tag (and the
//!   unpinned-rule count) are maintained from the committed steps, giving
//!   the gate its candidate injections without scanning tables.
//!
//! The verdict pipeline mirrors the batch planner: judge the proposed
//! `make_before_break` schedule (pre-barrier states in [`Phase::Update`],
//! the barrier and post-barrier states in [`Phase::NewExact`]); on
//! violations, rerun the DFS ordering search scoped to the dirty set; if
//! that also fails, reject with the witness packets. The soundness claim —
//! that the restricted check decides exactly what checking *every*
//! injection at *every* intermediate state would — is executable:
//! [`IncrementalChecker::check_from_scratch`] runs the same protocol with
//! no cache, no gate, and the full injection universe, and the
//! `delta_check_prop` proptest asserts verdict equality over random churn
//! fabrics.
//!
//! One modeling assumption underpins the region math: pipeline tables may
//! rewrite the destination MAC only *away from* the tag space (tag → real
//! router MAC), never from one live tag to another, so a rule pinned to an
//! exact tag can only affect that tag's injections. The SDX compiler
//! upholds this by construction (VMACs are locally administered and never
//! assigned to router interfaces); steps in later pipeline tables are
//! conservatively reduced to their DstMac constraint because stage 1
//! rewrites the port field.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use sdx_analyze::VerifyInput;
use sdx_ip::{Prefix, PrefixSet};
use sdx_policy::{Classifier, Field, Match, Pattern, Region};

use crate::check::{self, Checker, Injection, Phase, SidePartition, Violation};
use crate::delta::{apply, classifier_of, PlanStep, TableState};
use crate::search::{judge_order, synthesize, Schedule};

/// An emission key: (sender participant, ingress port, VMAC tag).
pub type EmissionKey = (u32, u32, u64);

/// How the checker decided one streamed delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaVerdict {
    /// The proposed schedule is safe as given.
    Certified,
    /// The proposed schedule had an unsafe intermediate state, but the
    /// ordering search found a safe schedule ([`DeltaReport::schedule`]).
    Reordered,
    /// No per-packet-consistent schedule exists (or safety could not be
    /// decided); [`DeltaReport::violations`] carries the witnesses.
    Rejected,
}

impl DeltaVerdict {
    /// Stable lowercase label (diagnostics, JSON, lint output).
    pub fn label(self) -> &'static str {
        match self {
            DeltaVerdict::Certified => "certified",
            DeltaVerdict::Reordered => "reordered",
            DeltaVerdict::Rejected => "rejected",
        }
    }
}

/// One streamed delta, as the runtime's fast path sees it: the prefix being
/// re-homed, the emission keys that will carry it after the event, the
/// advertisement ground truth after the event, and the proposed schedule.
#[derive(Debug, Clone)]
pub struct DeltaEvent {
    /// The prefix whose forwarding the delta migrates.
    pub prefix: Prefix,
    /// Emission keys that emit `prefix` *after* the event (new FIB
    /// generation). Every key currently emitting it implicitly loses it.
    /// Must be sorted (order is not semantic) so the hot structural gate
    /// can membership-test by binary search; build with
    /// [`DeltaEvent::normalize`] or keep it sorted by construction.
    pub adds: Vec<EmissionKey>,
    /// `(advertiser, viewer)` pairs entitled to `prefix` after the event;
    /// leak classification uses the union of this and the pre-event truth.
    pub advert_now: Vec<(u32, u32)>,
    /// The proposed (make-before-break) schedule.
    pub schedule: Schedule,
    /// The naive differ emission order (removals before installs), judged
    /// for evidence when naive judging is enabled (`sdx-lint --delta`).
    pub naive: Vec<PlanStep>,
}

impl DeltaEvent {
    /// Restore the `adds` sorting invariant (order carries no meaning).
    pub fn normalize(&mut self) {
        self.adds.sort_unstable();
        self.adds.dedup();
    }
}

/// The verdict and its evidence for one streamed delta.
#[derive(Debug, Clone)]
pub struct DeltaReport {
    /// The decision.
    pub verdict: DeltaVerdict,
    /// Did the structural (region-disjointness) gate certify without any
    /// symbolic work?
    pub structural: bool,
    /// The safe reordering, when [`DeltaVerdict::Reordered`].
    pub schedule: Option<Schedule>,
    /// Violations of the *proposed* schedule (the rejection witnesses; also
    /// populated on [`DeltaVerdict::Reordered`] as the evidence that forced
    /// the reorder).
    pub violations: Vec<Violation>,
    /// Violations of the naive differ ordering (only when naive judging is
    /// enabled; evidence, not a gate).
    pub naive_violations: Vec<Violation>,
    /// Injections in the dirty set handed to symbolic checking.
    pub dirty_injections: usize,
    /// Intermediate states symbolically checked (judging + search).
    pub states_checked: usize,
    /// Microseconds the check took (stamped by the caller's clock when
    /// embedded in runtime records; 0 from the pure API).
    pub check_us: u64,
}

impl DeltaReport {
    fn certified(structural: bool) -> DeltaReport {
        DeltaReport {
            verdict: DeltaVerdict::Certified,
            structural,
            schedule: None,
            violations: Vec::new(),
            naive_violations: Vec::new(),
            dirty_injections: 0,
            states_checked: 0,
            check_us: 0,
        }
    }

    /// Is the delta safe to install (as proposed or reordered)?
    pub fn safe(&self) -> bool {
        self.verdict != DeltaVerdict::Rejected
    }

    /// The violation set reduced to its order- and provenance-independent
    /// content: the incremental judge visits each (injection, state) pair
    /// once while a from-scratch judge revisits unchanged regions at every
    /// step, so step indices and repeat counts differ while the *witness
    /// content* must not.
    pub fn violation_keys(&self) -> BTreeSet<String> {
        self.violations
            .iter()
            .map(|v| {
                format!(
                    "{}|{}|{:?}|{}",
                    v.kind.code_suffix(),
                    v.sender,
                    v.witness,
                    v.message
                )
            })
            .collect()
    }

    /// Do two reports agree on verdict, schedule, and witness content?
    /// (The soundness relation the equivalence proptest asserts.)
    pub fn agrees_with(&self, other: &DeltaReport) -> bool {
        self.verdict == other.verdict
            && render_schedule(&self.schedule) == render_schedule(&other.schedule)
            && self.violation_keys() == other.violation_keys()
    }
}

fn render_schedule(s: &Option<Schedule>) -> String {
    match s {
        None => String::new(),
        Some(s) => format!(
            "{}@{}:{}",
            s.order
                .iter()
                .map(|st| st.to_string())
                .collect::<Vec<_>>()
                .join(";"),
            s.barrier,
            s.two_phase
        ),
    }
}

/// Counters for the incremental checker (all saturating).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncStats {
    /// Deltas checked.
    pub events: u64,
    /// Certified by the structural region-disjointness gate alone.
    pub certified_structural: u64,
    /// Certified after symbolic checking of the dirty set.
    pub certified_symbolic: u64,
    /// Reordered by the DFS search.
    pub reordered: u64,
    /// Rejected as unsafe (or undecidable).
    pub rejected: u64,
    /// Intermediate states symbolically checked.
    pub states_checked: u64,
    /// Dirty injections handed to symbolic checking.
    pub injections_dirty: u64,
    /// Transient checkers seeded from the persistent partition cache.
    pub partition_seeded: u64,
    /// New-side partitions harvested back into the cache.
    pub partition_harvested: u64,
    /// Full reseeds (one per compile).
    pub seeds: u64,
}

fn sat(c: &mut u64, by: u64) {
    *c = c.saturating_add(by);
}

/// The persistent incremental verifier. One instance lives inside the
/// runtime, reseeded at every full compile and consulted on every streamed
/// delta before it is installed.
#[derive(Debug, Default)]
pub struct IncrementalChecker {
    /// Current emission map: key → destinations that key's router emits.
    ///
    /// The per-event maps (`emissions`, `by_prefix`, `keys_by_tag`,
    /// `advert_by_prefix`, `tag_rules`) are hash maps, not ordered maps:
    /// with thousands of live prefixes the commit path performs hundreds of
    /// probes per streamed event, and flat hashing beats deep tree walks
    /// both in probe cost and in cache footprint. Nothing observable
    /// iterates them directly — every consumer collects into an ordered
    /// set first, so verdicts stay deterministic.
    emissions: HashMap<EmissionKey, BTreeSet<Prefix>>,
    /// Reverse index: prefix → emission keys currently carrying it
    /// (sorted, deduplicated vectors — contiguous storage keeps the
    /// per-event commit from churning the allocator at update rate).
    by_prefix: HashMap<Prefix, Vec<EmissionKey>>,
    /// Tag → emission keys carrying that tag (gate candidates).
    keys_by_tag: HashMap<u64, BTreeSet<EmissionKey>>,
    /// Current advertisement ground truth (leak classification).
    advertised: BTreeMap<(u32, u32), PrefixSet>,
    /// Reverse index: prefix → (advertiser, viewer) pairs entitled to it
    /// (sorted, deduplicated).
    advert_by_prefix: HashMap<Prefix, Vec<(u32, u32)>>,
    port_owner: BTreeMap<u32, u32>,
    vport_base: u32,
    /// Per-injection terminal-region partitions of the *current* tables.
    partitions: BTreeMap<EmissionKey, SidePartition>,
    /// Tag → live rules pinned to it (dependency index; maintained from
    /// committed steps).
    tag_rules: HashMap<u64, usize>,
    /// Live rules with no exact-DstMac pin.
    unpinned_rules: usize,
    /// New-side partitions awaiting commit of the checked delta.
    pending: Option<BTreeMap<EmissionKey, SidePartition>>,
    /// Judge the naive differ order of every delta for evidence
    /// (`sdx-lint --delta`; forces symbolic machinery per event).
    judge_naive: bool,
    stats: IncStats,
}

/// The header-space region of one emission key: its ingress port and tag.
fn key_region(key: &EmissionKey) -> Region {
    Region::from_match(
        Match::on(Field::Port, Pattern::Exact(key.1 as u64))
            .and(Field::DstMac, Pattern::Exact(key.2))
            .expect("distinct fields"),
    )
}

/// The header-space region a step's rule can affect, as seen at pipeline
/// ingress. Table 0 matches original headers, so the full match signature
/// applies; later tables see a rewritten port, so only the (stable) DstMac
/// constraint survives the projection.
fn step_region(step: &PlanStep) -> Region {
    if step.table == 0 {
        Region::from_match(step.rule.match_.clone())
    } else {
        match step.rule.match_.get(Field::DstMac) {
            Some(p) => Region::from_match(Match::on(Field::DstMac, *p)),
            None => Region::from_match(Match::any()),
        }
    }
}

impl IncrementalChecker {
    /// Fresh, empty checker (no emissions; certifies everything until
    /// seeded).
    pub fn new() -> IncrementalChecker {
        IncrementalChecker::default()
    }

    /// Reseed from a full compile: the live verifier input (FIBs decide the
    /// emissions, `advertised` the ground truth) and the installed table
    /// state (rebuilds the tag → rule dependency index). Drops every cached
    /// partition — the tables just changed wholesale.
    pub fn seed(&mut self, vi: &VerifyInput, state: &[TableState]) {
        self.emissions = check::emissions(vi).into_iter().collect();
        self.by_prefix.clear();
        self.keys_by_tag.clear();
        for (key, prefixes) in &self.emissions {
            self.keys_by_tag.entry(key.2).or_default().insert(*key);
            for p in prefixes {
                self.by_prefix.entry(*p).or_default().push(*key);
            }
        }
        for keys in self.by_prefix.values_mut() {
            keys.sort_unstable();
            keys.dedup();
        }
        self.advertised = vi.advertised.clone();
        self.advert_by_prefix.clear();
        for (pair, set) in &self.advertised {
            for p in set.iter() {
                self.advert_by_prefix.entry(*p).or_default().push(*pair);
            }
        }
        for pairs in self.advert_by_prefix.values_mut() {
            pairs.sort_unstable();
            pairs.dedup();
        }
        self.port_owner = vi
            .participants
            .iter()
            .flat_map(|(id, ports)| ports.iter().map(|p| (*p, *id)))
            .collect();
        self.vport_base = vi.vport_base;
        self.partitions.clear();
        self.pending = None;
        self.tag_rules.clear();
        self.unpinned_rules = 0;
        for table in state {
            for rule in table {
                match rule.match_.get(Field::DstMac) {
                    Some(Pattern::Exact(t)) => *self.tag_rules.entry(*t).or_insert(0) += 1,
                    _ => self.unpinned_rules += 1,
                }
            }
        }
        sat(&mut self.stats.seeds, 1);
    }

    /// Counters.
    pub fn stats(&self) -> IncStats {
        self.stats
    }

    /// Live rules pinned to `tag` per the dependency index.
    pub fn tag_rule_count(&self, tag: u64) -> usize {
        self.tag_rules.get(&tag).copied().unwrap_or(0)
    }

    /// Enable judging the naive differ order of every delta (evidence for
    /// `sdx-lint --delta`; forces per-event symbolic work).
    pub fn set_judge_naive(&mut self, on: bool) {
        self.judge_naive = on;
    }

    /// Does deciding this event require the installed table state? True
    /// when the structural gate finds a dirty injection (symbolic checking
    /// needed) or naive judging is on. The caller materializes tables only
    /// on `true` — the churn-rate path never pays for it.
    pub fn needs_tables(&self, ev: &DeltaEvent) -> bool {
        if self.judge_naive && !ev.naive.is_empty() {
            return true;
        }
        let barrier = ev.schedule.barrier.min(ev.schedule.order.len());
        self.phase_has_dirty(&ev.schedule.order[..barrier], ev, Phase::Update)
            || self.phase_has_dirty(&ev.schedule.order[barrier..], ev, Phase::NewExact)
    }

    /// Does `key` emit anything in `phase`, under the event's re-homing?
    fn emits_in_phase(&self, key: &EmissionKey, ev: &DeltaEvent, phase: Phase) -> bool {
        match phase {
            Phase::Update => self.emissions.get(key).is_some_and(|s| !s.is_empty()),
            Phase::NewExact => {
                let in_adds = ev.adds.binary_search(key).is_ok();
                match self.emissions.get(key) {
                    Some(s) => in_adds || s.len() > usize::from(s.contains(&ev.prefix)),
                    None => in_adds,
                }
            }
        }
    }

    /// The structural dirty-region gate for one phase: is there any
    /// emission key whose region intersects a step applied in this phase
    /// *and* whose phase-generation emissions are nonempty?
    fn phase_has_dirty(&self, steps: &[PlanStep], ev: &DeltaEvent, phase: Phase) -> bool {
        // Steps in a phase overwhelmingly share one tag (a re-homing retires
        // one old tag and installs one new one), so the emitting-key scan —
        // the expensive half, one `emissions` probe per key — is memoized
        // per tag. The per-step work is then just region intersections
        // against the (almost always empty) emitting set.
        let emitting = |tag: u64| -> Vec<Region> {
            let mut v = Vec::new();
            if let Some(keys) = self.keys_by_tag.get(&tag) {
                v.extend(
                    keys.iter()
                        .filter(|k| self.emits_in_phase(k, ev, phase))
                        .map(key_region),
                );
            }
            v.extend(
                ev.adds
                    .iter()
                    .filter(|k| k.2 == tag && self.emits_in_phase(k, ev, phase))
                    .map(key_region),
            );
            v
        };
        let mut memo: BTreeMap<u64, Vec<Region>> = BTreeMap::new();
        let mut unpinned: Option<Vec<Region>> = None;
        for step in steps {
            let sregion = step_region(step);
            let regions = match Checker::affected_tag(step) {
                Some(tag) => memo.entry(tag).or_insert_with(|| emitting(tag)),
                None => unpinned.get_or_insert_with(|| {
                    self.emissions
                        .keys()
                        .chain(ev.adds.iter())
                        .filter(|k| self.emits_in_phase(k, ev, phase))
                        .map(key_region)
                        .collect()
                }),
            };
            if regions.iter().any(|r| r.intersect(&sregion).is_some()) {
                return true;
            }
        }
        false
    }

    /// The symbolic universe for this event: every emission key whose tag
    /// appears in the schedule (every key, if any step is unpinned). The
    /// universe is deliberately a tag-closed superset of the region-dirty
    /// set so tag-global judgements (retired-tag detection in the ordering
    /// search) match the full-universe ones.
    fn universe(&self, ev: &DeltaEvent) -> BTreeSet<EmissionKey> {
        let mut tags = BTreeSet::new();
        let mut unpinned = false;
        for step in &ev.schedule.order {
            match Checker::affected_tag(step) {
                Some(t) => {
                    tags.insert(t);
                }
                None => unpinned = true,
            }
        }
        let mut keys: BTreeSet<EmissionKey> = if unpinned {
            self.emissions.keys().copied().collect()
        } else {
            tags.iter()
                .filter_map(|t| self.keys_by_tag.get(t))
                .flatten()
                .copied()
                .collect()
        };
        keys.extend(
            ev.adds
                .iter()
                .filter(|k| unpinned || tags.contains(&k.2))
                .copied(),
        );
        keys
    }

    /// Every emission key the event involves (the from-scratch universe).
    fn full_universe(&self, ev: &DeltaEvent) -> BTreeSet<EmissionKey> {
        let mut keys: BTreeSet<EmissionKey> = self.emissions.keys().copied().collect();
        keys.extend(ev.adds.iter().copied());
        keys
    }

    /// Materialize [`Injection`]s for `keys` under the event's re-homing.
    /// Keys emitting nothing in either generation are skipped.
    fn build_injections(&self, ev: &DeltaEvent, keys: &BTreeSet<EmissionKey>) -> Vec<Injection> {
        keys.iter()
            .filter_map(|key| {
                let old: Vec<Prefix> = self
                    .emissions
                    .get(key)
                    .map(|s| s.iter().copied().collect())
                    .unwrap_or_default();
                let mut new: BTreeSet<Prefix> =
                    self.emissions.get(key).cloned().unwrap_or_default();
                new.remove(&ev.prefix);
                if ev.adds.binary_search(key).is_ok() {
                    new.insert(ev.prefix);
                }
                if old.is_empty() && new.is_empty() {
                    return None;
                }
                Some(Injection {
                    sender: key.0,
                    port: key.1,
                    tag: key.2,
                    old_prefixes: old,
                    new_prefixes: new.into_iter().collect(),
                })
            })
            .collect()
    }

    /// Build the transient [`Checker`] for one event over `keys`, plus the
    /// post-schedule table state. `seed` pulls old-side partitions from the
    /// persistent cache.
    fn transient_checker(
        &mut self,
        ev: &DeltaEvent,
        keys: &BTreeSet<EmissionKey>,
        initial: &[TableState],
        seed: bool,
    ) -> Checker {
        let injections = self.build_injections(ev, keys);
        let old_tables: Vec<Classifier> = initial.iter().map(classifier_of).collect();
        let mut new_state = initial.to_vec();
        for step in &ev.schedule.order {
            apply(&mut new_state, step);
        }
        let new_tables: Vec<Classifier> = new_state.iter().map(classifier_of).collect();
        let mut advertised = self.advertised.clone();
        for (a, v) in &ev.advert_now {
            advertised.entry((*a, *v)).or_default().insert(ev.prefix);
        }
        let n = injections.len();
        let checker = Checker::from_parts(
            old_tables,
            new_tables,
            injections,
            advertised,
            self.port_owner.clone(),
            self.vport_base,
        );
        if seed {
            for idx in 0..n {
                if let Some(parts) = self.partitions.get(&checker.injection_key(idx)) {
                    checker.seed_old_partition(idx, parts.clone());
                    sat(&mut self.stats.partition_seeded, 1);
                }
            }
        }
        checker
    }

    /// Check a streamed delta. `tables` (the installed state) is required
    /// exactly when [`needs_tables`](Self::needs_tables) says so; the
    /// structural fast path never touches it. The verdict must be followed
    /// by [`commit`](Self::commit) (delta installed — as proposed or
    /// reordered) or [`abort`](Self::abort) (install skipped).
    pub fn check_delta(&mut self, ev: &DeltaEvent, tables: Option<&[TableState]>) -> DeltaReport {
        sat(&mut self.stats.events, 1);
        self.pending = None;

        let barrier = ev.schedule.barrier.min(ev.schedule.order.len());
        // `tables == None` is the caller asserting `needs_tables` said no —
        // don't re-run the structural gate it just ran (it is the hot path
        // at churn rate); re-check only under debug assertions.
        let symbolic = if tables.is_none() && !self.judge_naive {
            debug_assert!(
                !(self.phase_has_dirty(&ev.schedule.order[..barrier], ev, Phase::Update)
                    || self.phase_has_dirty(&ev.schedule.order[barrier..], ev, Phase::NewExact)),
                "symbolic delta checked without table state"
            );
            false
        } else {
            self.phase_has_dirty(&ev.schedule.order[..barrier], ev, Phase::Update)
                || self.phase_has_dirty(&ev.schedule.order[barrier..], ev, Phase::NewExact)
        };

        let mut report = if !symbolic {
            sat(&mut self.stats.certified_structural, 1);
            DeltaReport::certified(true)
        } else {
            let Some(initial) = tables else {
                // Caller violated the needs_tables protocol; refuse rather
                // than guess.
                debug_assert!(false, "symbolic check requested without table state");
                sat(&mut self.stats.rejected, 1);
                let mut r = DeltaReport::certified(false);
                r.verdict = DeltaVerdict::Rejected;
                return r;
            };
            let keys = self.universe(ev);
            let r = self.check_symbolic(ev, &keys, initial, true);
            match r.verdict {
                DeltaVerdict::Certified => sat(&mut self.stats.certified_symbolic, 1),
                DeltaVerdict::Reordered => sat(&mut self.stats.reordered, 1),
                DeltaVerdict::Rejected => sat(&mut self.stats.rejected, 1),
            }
            sat(&mut self.stats.states_checked, r.states_checked as u64);
            sat(&mut self.stats.injections_dirty, r.dirty_injections as u64);
            r
        };

        if self.judge_naive && !ev.naive.is_empty() {
            if let Some(initial) = tables {
                let keys = self.full_universe(ev);
                let checker = self.transient_checker(ev, &keys, initial, false);
                let (naive, _us) = judge_order(&checker, initial, &ev.naive);
                report.naive_violations = naive;
            }
        }
        report
    }

    /// The symbolic pipeline over one universe: judge the proposed
    /// schedule, search for a reorder on violations. Shared verbatim by the
    /// incremental path (restricted universe, seeded cache) and the
    /// from-scratch oracle (full universe, cold cache) — the equivalence
    /// proptest compares exactly these two instantiations.
    fn check_symbolic(
        &mut self,
        ev: &DeltaEvent,
        keys: &BTreeSet<EmissionKey>,
        initial: &[TableState],
        seed: bool,
    ) -> DeltaReport {
        let checker = self.transient_checker(ev, keys, initial, seed);
        let dirty_injections = keys.len();
        let (violations, mut states_checked) = judge_schedule(&checker, initial, &ev.schedule);

        let (verdict, schedule) = if violations.is_empty() {
            (DeltaVerdict::Certified, None)
        } else {
            let result = synthesize(
                &checker,
                initial,
                &ev.schedule.order,
                crate::DEFAULT_SEARCH_BUDGET,
            );
            states_checked += result.explored;
            match result.schedule {
                Some(s) => (DeltaVerdict::Reordered, Some(s)),
                None => (DeltaVerdict::Rejected, None),
            }
        };

        if seed && verdict != DeltaVerdict::Rejected {
            // Harvest the new-side partitions for the persistent cache;
            // they describe the post-delta tables, valid once the delta
            // commits (any safe schedule ends in the same final state).
            let mut harvest = BTreeMap::new();
            for (idx, parts) in checker.take_new_partitions() {
                harvest.insert(checker.injection_key(idx), parts);
            }
            sat(&mut self.stats.partition_harvested, harvest.len() as u64);
            self.pending = Some(harvest);
        }

        DeltaReport {
            verdict,
            structural: false,
            schedule,
            violations,
            naive_violations: Vec::new(),
            dirty_injections,
            states_checked,
            check_us: 0,
        }
    }

    /// The from-scratch oracle: the identical verdict pipeline with no
    /// structural gate, no seeded partitions, and the full injection
    /// universe — what a batch `sdx-plan` check of every intermediate state
    /// decides. Used by the soundness proptest and the bench's speedup
    /// measurement; never touches the persistent caches.
    pub fn check_from_scratch(&self, ev: &DeltaEvent, tables: &[TableState]) -> DeltaReport {
        // `check_symbolic` only mutates `self` through stats and the
        // pending harvest, both disabled here via a scratch clone of the
        // index state. Cheap path: reuse the logic through a shim that
        // borrows immutably.
        let keys = self.full_universe(ev);
        let injections = self.build_injections(ev, &keys);
        let old_tables: Vec<Classifier> = tables.iter().map(classifier_of).collect();
        let mut new_state = tables.to_vec();
        for step in &ev.schedule.order {
            apply(&mut new_state, step);
        }
        let new_tables: Vec<Classifier> = new_state.iter().map(classifier_of).collect();
        let mut advertised = self.advertised.clone();
        for (a, v) in &ev.advert_now {
            advertised.entry((*a, *v)).or_default().insert(ev.prefix);
        }
        let dirty_injections = injections.len();
        let checker = Checker::from_parts(
            old_tables,
            new_tables,
            injections,
            advertised,
            self.port_owner.clone(),
            self.vport_base,
        );
        let (violations, mut states_checked) = judge_schedule(&checker, tables, &ev.schedule);
        let (verdict, schedule) = if violations.is_empty() {
            (DeltaVerdict::Certified, None)
        } else {
            let result = synthesize(
                &checker,
                tables,
                &ev.schedule.order,
                crate::DEFAULT_SEARCH_BUDGET,
            );
            states_checked += result.explored;
            match result.schedule {
                Some(s) => (DeltaVerdict::Reordered, Some(s)),
                None => (DeltaVerdict::Rejected, None),
            }
        };
        DeltaReport {
            verdict,
            structural: false,
            schedule,
            violations,
            naive_violations: Vec::new(),
            dirty_injections,
            states_checked,
            check_us: 0,
        }
    }

    /// Commit a checked delta: the steps of `installed` went into the live
    /// tables and the prefix re-homed onto `ev.adds`. Updates the emission
    /// maps, the advertisement truth, the tag index, and the partition
    /// cache (invalidate touched tags, then land the pending harvest).
    pub fn commit(&mut self, ev: &DeltaEvent, installed: &[PlanStep]) {
        // Partition invalidation by touched tag.
        let mut tags = BTreeSet::new();
        let mut unpinned = false;
        for step in installed {
            match Checker::affected_tag(step) {
                Some(t) => {
                    tags.insert(t);
                }
                None => unpinned = true,
            }
        }
        if unpinned {
            self.partitions.clear();
        } else if !tags.is_empty() {
            self.partitions.retain(|key, _| !tags.contains(&key.2));
        }
        if let Some(harvest) = self.pending.take() {
            self.partitions.extend(harvest);
        }

        // Tag → rule dependency index.
        for step in installed {
            let install = matches!(step.op, crate::delta::DeltaOp::Install);
            match Checker::affected_tag(step) {
                Some(t) if install => {
                    let slot = self.tag_rules.entry(t).or_insert(0);
                    *slot = slot.saturating_add(1);
                }
                // Drop zeroed entries in place rather than sweeping the
                // whole index per event — it holds one entry per live tag.
                Some(t) => {
                    if let Some(slot) = self.tag_rules.get_mut(&t) {
                        *slot = slot.saturating_sub(1);
                        if *slot == 0 {
                            self.tag_rules.remove(&t);
                        }
                    }
                }
                None if install => {
                    self.unpinned_rules = self.unpinned_rules.saturating_add(1);
                }
                None => {
                    self.unpinned_rules = self.unpinned_rules.saturating_sub(1);
                }
            }
        }

        // Re-home the prefix in the emission maps.
        let old_keys = self.by_prefix.remove(&ev.prefix).unwrap_or_default();
        for key in &old_keys {
            if let Some(set) = self.emissions.get_mut(key) {
                set.remove(&ev.prefix);
                if set.is_empty() {
                    self.emissions.remove(key);
                    if let Some(keys) = self.keys_by_tag.get_mut(&key.2) {
                        keys.remove(key);
                        if keys.is_empty() {
                            self.keys_by_tag.remove(&key.2);
                        }
                    }
                }
            }
        }
        if !ev.adds.is_empty() {
            let mut now = ev.adds.clone();
            now.sort_unstable();
            now.dedup();
            for key in &now {
                self.emissions.entry(*key).or_default().insert(ev.prefix);
                self.keys_by_tag.entry(key.2).or_default().insert(*key);
            }
            self.by_prefix.insert(ev.prefix, now);
        }

        // Advertisement ground truth: merge-walk the sorted before/now pair
        // lists so only the (typically tiny) symmetric difference touches
        // the `advertised` map.
        let mut now = ev.advert_now.clone();
        now.sort_unstable();
        now.dedup();
        let before = self.advert_by_prefix.remove(&ev.prefix).unwrap_or_default();
        let (mut i, mut j) = (0, 0);
        while i < before.len() || j < now.len() {
            match (before.get(i), now.get(j)) {
                (Some(b), Some(n)) if b == n => {
                    i += 1;
                    j += 1;
                }
                (Some(b), Some(n)) if b < n => {
                    if let Some(set) = self.advertised.get_mut(b) {
                        set.remove(&ev.prefix);
                    }
                    i += 1;
                }
                (Some(b), None) => {
                    if let Some(set) = self.advertised.get_mut(b) {
                        set.remove(&ev.prefix);
                    }
                    i += 1;
                }
                (_, Some(n)) => {
                    self.advertised.entry(*n).or_default().insert(ev.prefix);
                    j += 1;
                }
                (None, None) => unreachable!("loop condition"),
            }
        }
        if !now.is_empty() {
            self.advert_by_prefix.insert(ev.prefix, now);
        }
    }

    /// Drop the pending state of a checked delta whose install was skipped
    /// (Deny). The tables, emissions, and caches all still describe the
    /// live state — the stale overlay keeps forwarding until the full
    /// reoptimize reseeds everything.
    pub fn abort(&mut self) {
        self.pending = None;
    }
}

/// Judge an explicit schedule: apply the steps in order, checking each
/// intermediate state — pre-barrier states in [`Phase::Update`] against the
/// step's tag-dirty injections, the barrier state and every post-barrier
/// state in [`Phase::NewExact`]. Mirrors the two-phase judging of
/// [`crate::search::synthesize`]'s fallback, generalized to any given
/// order. Returns the stamped violations and the states checked.
fn judge_schedule(
    checker: &Checker,
    initial: &[TableState],
    schedule: &Schedule,
) -> (Vec<Violation>, usize) {
    let mut state = initial.to_vec();
    let mut violations = Vec::new();
    let mut states = 0usize;
    let barrier = schedule.barrier.min(schedule.order.len());
    if barrier == 0 && !schedule.order.is_empty() {
        // The barrier precedes every step: the *initial* state must already
        // show exactly the new behavior to the new generation.
        states += 1;
        for mut v in checker.check_state(&state, &checker.all_injections(), Phase::NewExact) {
            v.step = 0;
            v.step_desc = "barrier".to_string();
            violations.push(v);
        }
    }
    for (i, step) in schedule.order.iter().enumerate() {
        apply(&mut state, step);
        states += 1;
        let phase = if i < barrier {
            Phase::Update
        } else {
            Phase::NewExact
        };
        let dirty = checker.dirty_injections(Checker::affected_tag(step));
        for mut v in checker.check_state(&state, &dirty, phase) {
            v.step = i;
            v.step_desc = step.to_string();
            violations.push(v);
        }
        if i + 1 == barrier {
            // The barrier lands here: once the routers flip, this state
            // must already show exactly the new behavior.
            states += 1;
            for mut v in checker.check_state(&state, &checker.all_injections(), Phase::NewExact) {
                v.step = i;
                v.step_desc = "barrier".to_string();
                violations.push(v);
            }
        }
    }
    (violations, states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::{DeltaOp, PlanRule};
    use crate::make_before_break;
    use sdx_policy::Action;

    const SENDER: u32 = 1;
    const PORT: u32 = 10;
    const EGRESS: u32 = 20;
    const OLD_TAG: u64 = 0xAA;
    const NEW_TAG: u64 = 0xBB;

    fn pfx(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn fwd_rule(tag: u64, priority: u32) -> PlanRule {
        PlanRule {
            priority,
            match_: Match::on(Field::Port, Pattern::Exact(PORT as u64))
                .and(Field::DstMac, Pattern::Exact(tag))
                .unwrap(),
            actions: vec![Action::set(Field::Port, EGRESS as u64)],
            goto_table: None,
        }
    }

    fn step(op: DeltaOp, rule: PlanRule) -> PlanStep {
        PlanStep { table: 0, op, rule }
    }

    /// A checker whose world has one sender emitting `prefix` under
    /// `OLD_TAG`, forwarded by one pinned rule, with the receiver entitled.
    fn seeded() -> (IncrementalChecker, Vec<TableState>) {
        let mut c = IncrementalChecker::new();
        c.emissions
            .insert((SENDER, PORT, OLD_TAG), [pfx("10.0.0.0/8")].into());
        c.by_prefix
            .insert(pfx("10.0.0.0/8"), [(SENDER, PORT, OLD_TAG)].into());
        c.keys_by_tag
            .insert(OLD_TAG, [(SENDER, PORT, OLD_TAG)].into());
        let mut set = PrefixSet::new();
        set.insert(pfx("10.0.0.0/8"));
        c.advertised.insert((2, SENDER), set);
        c.advert_by_prefix
            .insert(pfx("10.0.0.0/8"), [(2, SENDER)].into());
        c.port_owner = [(PORT, SENDER), (EGRESS, 2u32)].into();
        c.vport_base = 1000;
        c.tag_rules.insert(OLD_TAG, 1);
        let state = vec![vec![fwd_rule(OLD_TAG, 100)]];
        (c, state)
    }

    fn rehoming_event() -> DeltaEvent {
        // Re-home 10.0.0.0/8 from OLD_TAG to NEW_TAG: install the new-tag
        // rule, remove the old-tag rule.
        let steps = vec![
            step(DeltaOp::Remove, fwd_rule(OLD_TAG, 100)),
            step(DeltaOp::Install, fwd_rule(NEW_TAG, 101)),
        ];
        DeltaEvent {
            prefix: pfx("10.0.0.0/8"),
            adds: vec![(SENDER, PORT, NEW_TAG)],
            advert_now: vec![(2, SENDER)],
            schedule: make_before_break(&steps),
            naive: steps,
        }
    }

    #[test]
    fn empty_schedule_structurally_certified() {
        let (mut c, _state) = seeded();
        let ev = DeltaEvent {
            prefix: pfx("10.0.0.0/8"),
            adds: vec![],
            advert_now: vec![],
            schedule: Schedule {
                order: vec![],
                barrier: 0,
                two_phase: true,
            },
            naive: vec![],
        };
        assert!(!c.needs_tables(&ev));
        let r = c.check_delta(&ev, None);
        assert_eq!(r.verdict, DeltaVerdict::Certified);
        assert!(r.structural);
    }

    #[test]
    fn tag_disjoint_mbb_structurally_certified() {
        let (mut c, state) = seeded();
        let ev = rehoming_event();
        // Installs pin the fresh tag (no old emissions), removals pin the
        // dying tag (no new emissions): zero dirty regions.
        assert!(!c.needs_tables(&ev));
        let r = c.check_delta(&ev, None);
        assert_eq!(r.verdict, DeltaVerdict::Certified);
        assert!(r.structural);
        // ... and the from-scratch oracle agrees.
        let fs = c.check_from_scratch(&ev, &state);
        assert_eq!(fs.verdict, DeltaVerdict::Certified);
        assert!(r.agrees_with(&fs));
        c.commit(&ev, &ev.schedule.order);
        assert_eq!(
            c.emissions.get(&(SENDER, PORT, NEW_TAG)),
            Some(&[pfx("10.0.0.0/8")].into())
        );
        assert!(!c.emissions.contains_key(&(SENDER, PORT, OLD_TAG)));
        assert_eq!(c.tag_rule_count(NEW_TAG), 1);
        assert_eq!(c.tag_rule_count(OLD_TAG), 0);
    }

    #[test]
    fn naive_order_blackhole_is_judged_but_mbb_reorders() {
        let (mut c, state) = seeded();
        c.set_judge_naive(true);
        let ev = rehoming_event();
        // Naive order removes the old-tag rule first — while the routers
        // still emit OLD_TAG — transiently blackholing the prefix.
        assert!(c.needs_tables(&ev));
        let r = c.check_delta(&ev, Some(&state));
        assert_eq!(r.verdict, DeltaVerdict::Certified);
        assert!(!r.naive_violations.is_empty(), "naive order must violate");
        assert!(r
            .naive_violations
            .iter()
            .any(|v| v.kind == crate::ViolationKind::Blackhole));
    }

    #[test]
    fn premature_removal_schedule_is_reordered() {
        let (mut c, state) = seeded();
        // A deliberately bad proposed schedule: removal before the barrier,
        // install after — every pre-barrier state blackholes OLD_TAG.
        let steps = vec![
            step(DeltaOp::Remove, fwd_rule(OLD_TAG, 100)),
            step(DeltaOp::Install, fwd_rule(NEW_TAG, 101)),
        ];
        let ev = DeltaEvent {
            prefix: pfx("10.0.0.0/8"),
            adds: vec![(SENDER, PORT, NEW_TAG)],
            advert_now: vec![(2, SENDER)],
            schedule: Schedule {
                order: steps.clone(),
                barrier: 1,
                two_phase: false,
            },
            naive: vec![],
        };
        assert!(c.needs_tables(&ev));
        let r = c.check_delta(&ev, Some(&state));
        assert_eq!(r.verdict, DeltaVerdict::Reordered);
        assert!(!r.violations.is_empty());
        let s = r.schedule.clone().expect("reordered schedule");
        // The safe order installs before removing.
        assert_eq!(s.order[0].op, DeltaOp::Install);
        let fs = c.check_from_scratch(&ev, &state);
        assert!(r.agrees_with(&fs), "incremental vs from-scratch verdict");
    }

    #[test]
    fn doomed_delta_is_rejected_with_witness() {
        // A genuinely unschedulable delta. Old: OLD_TAG carries p_n and p_r
        // via O1 (p_n-specific) over O2 (catch-all). New: p_r re-homes to
        // NEW_TAG (rule M), p_n stays on OLD_TAG but via N1 — installed at
        // *lower* priority than the old rules it replaces, so until the old
        // rules go, the new fragment is shadowed and the barrier can never
        // certify; yet neither old rule can be removed pre-barrier (p_r
        // traffic has no new-generation claim under OLD_TAG, so removing
        // O2 blackholes it, and removing O1 exposes the O2 hybrid to p_n).
        let p_n = pfx("10.1.0.0/16");
        let p_r = pfx("10.2.0.0/16");
        let pin = |tag: u64, p: Prefix, pri: u32, out: u64| PlanRule {
            priority: pri,
            match_: Match::on(Field::Port, Pattern::Exact(PORT as u64))
                .and(Field::DstMac, Pattern::Exact(tag))
                .unwrap()
                .and(Field::DstIp, Pattern::Prefix(p))
                .unwrap(),
            actions: vec![Action::set(Field::Port, out)],
            goto_table: None,
        };
        let o1 = pin(OLD_TAG, p_n, 210, 20);
        let o2 = fwd_rule(OLD_TAG, 200); // catch-all → EGRESS
        let n1 = pin(OLD_TAG, p_n, 110, 22);
        let m = fwd_rule(NEW_TAG, 300);

        let mut c = IncrementalChecker::new();
        c.emissions
            .insert((SENDER, PORT, OLD_TAG), [p_n, p_r].into());
        c.by_prefix.insert(p_n, [(SENDER, PORT, OLD_TAG)].into());
        c.by_prefix.insert(p_r, [(SENDER, PORT, OLD_TAG)].into());
        c.keys_by_tag
            .insert(OLD_TAG, [(SENDER, PORT, OLD_TAG)].into());
        let mut set = PrefixSet::new();
        set.insert(p_n);
        set.insert(p_r);
        c.advertised.insert((2, SENDER), set);
        c.advert_by_prefix.insert(p_n, [(2, SENDER)].into());
        c.advert_by_prefix.insert(p_r, [(2, SENDER)].into());
        c.port_owner = [(PORT, SENDER), (EGRESS, 2u32), (22, 2), (23, 2)].into();
        c.vport_base = 1000;
        let state = vec![vec![o1.clone(), o2.clone()]];

        let steps = vec![
            step(DeltaOp::Install, n1),
            step(DeltaOp::Install, m),
            step(DeltaOp::Remove, o1),
            step(DeltaOp::Remove, o2),
        ];
        let ev = DeltaEvent {
            prefix: p_r,
            adds: vec![(SENDER, PORT, NEW_TAG)],
            advert_now: vec![(2, SENDER)],
            schedule: make_before_break(&steps),
            naive: steps,
        };
        assert!(c.needs_tables(&ev));
        let r = c.check_delta(&ev, Some(&state));
        assert_eq!(r.verdict, DeltaVerdict::Rejected);
        assert!(r.violations.iter().any(|v| v.witness.is_some()));
        let fs = c.check_from_scratch(&ev, &state);
        assert!(r.agrees_with(&fs));
        c.abort();
        assert!(c.pending.is_none());
    }

    #[test]
    fn partition_cache_invalidates_touched_tags() {
        let (mut c, _) = seeded();
        c.partitions.insert((SENDER, PORT, OLD_TAG), Some(vec![]));
        c.partitions.insert((SENDER, PORT, 0xCC), Some(vec![]));
        let ev = rehoming_event();
        c.commit(&ev, &ev.schedule.order);
        assert!(!c.partitions.contains_key(&(SENDER, PORT, OLD_TAG)));
        assert!(c.partitions.contains_key(&(SENDER, PORT, 0xCC)));
    }

    #[test]
    fn withdraw_event_commits_emission_removal() {
        let (mut c, _) = seeded();
        let steps = vec![step(DeltaOp::Remove, fwd_rule(OLD_TAG, 100))];
        let ev = DeltaEvent {
            prefix: pfx("10.0.0.0/8"),
            adds: vec![],
            advert_now: vec![],
            schedule: Schedule {
                order: steps.clone(),
                barrier: 0,
                two_phase: true,
            },
            naive: steps,
        };
        // Post-barrier removal of a tag with no new-generation emissions:
        // structurally certified.
        assert!(!c.needs_tables(&ev));
        let r = c.check_delta(&ev, None);
        assert_eq!(r.verdict, DeltaVerdict::Certified);
        c.commit(&ev, &ev.schedule.order);
        assert!(c.emissions.is_empty());
        assert!(c.by_prefix.is_empty());
        assert!(c.advertised.get(&(2, SENDER)).unwrap().is_empty());
    }
}
