//! Safe-ordering synthesis: verifier-guided search over step permutations.
//!
//! Given the rule-level delta and a [`Checker`], find an ordering of the
//! steps whose every intermediate state passes the safety checks. The
//! search is a depth-first walk with backtracking:
//!
//! * **Drain partition.** Steps that only remove rules pinned to *retired*
//!   VMAC tags cannot be taken safely before the routers stop emitting
//!   those tags — and are trivially safe afterwards. They are peeled off
//!   up front and appended after the plan's barrier, shrinking the search
//!   space to the steps that actually interact.
//! * **Heuristic ordering.** At each node, candidate steps are tried
//!   installs-first (highest priority first — make-before-break), then
//!   removals (lowest priority first — dismantle from the bottom). For
//!   update patterns produced by the SDX compiler this usually finds a
//!   safe order on the first descent; the backtracking only pays when the
//!   greedy choice wedges.
//! * **Incremental re-checking.** A step pinned to one VMAC tag can only
//!   change that tag's behavior, so only that tag's injections are
//!   re-verified after it (see [`Checker::affected_tag`]).
//! * **Budget.** The walk explores at most `budget` nodes; exhaustion
//!   falls through to the two-phase fallback rather than hanging.
//!
//! When no safe single-phase ordering exists (or the budget runs out), the
//! planner falls back to a **two-phase** plan in the spirit of consistent
//! updates: phase A installs every new rule (the flow table's
//! first-installed-wins tie-break keeps old rules authoritative inside
//! equal-priority bands, so behavior is unchanged — verified, not
//! assumed), the barrier lets in-flight packets drain and the routers flip
//! to the new tags, then phase B removes the old rules (traffic must
//! already see exactly the new behavior — also verified). If even the
//! two-phase plan fails its checks, the delta genuinely has no
//! per-packet-consistent rule-granularity schedule and the plan is
//! reported unsafe with the violating steps as witnesses.

use crate::check::{Checker, Phase, Violation};
use crate::delta::{apply, DeltaOp, PlanStep, TableState};

/// The synthesized schedule.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// The steps, in execution order.
    pub order: Vec<PlanStep>,
    /// Steps `order[..barrier]` run first; the plan then waits for the
    /// route flip / packet drain before running `order[barrier..]`.
    pub barrier: usize,
    /// Was the two-phase fallback used (vs. a safe single-phase ordering)?
    pub two_phase: bool,
}

/// What the search produced.
#[derive(Debug)]
pub struct SearchResult {
    /// The safe schedule, when one exists.
    pub schedule: Option<Schedule>,
    /// Violations that doomed the two-phase fallback (empty on success).
    pub violations: Vec<Violation>,
    /// Search nodes expanded (states checked) across the DFS.
    pub explored: usize,
    /// Microseconds spent inside intermediate-state checking.
    pub check_us: u128,
}

/// The make-before-break ordering of a delta whose install and removal
/// sides are known to match **disjoint** packet sets (e.g. fast-path
/// fragments pinned to distinct exact VMAC tags): all installs first, then
/// the barrier, then the removals. Every intermediate state forwards each
/// packet exactly as either the old or the new state does — old-tag
/// traffic keeps hitting the old rules until they drain, new-tag traffic
/// only ever sees the complete new fragment or falls through to the base
/// table — so the schedule is per-packet consistent *by construction* and
/// needs no search. Callers are responsible for the disjointness
/// precondition; overlapping matches void the guarantee.
pub fn make_before_break(steps: &[PlanStep]) -> Schedule {
    let mut order: Vec<PlanStep> = Vec::with_capacity(steps.len());
    order.extend(steps.iter().filter(|s| s.op == DeltaOp::Install).cloned());
    let barrier = order.len();
    order.extend(steps.iter().filter(|s| s.op == DeltaOp::Remove).cloned());
    Schedule {
        order,
        barrier,
        two_phase: true,
    }
}

/// Judge an explicit ordering (e.g. the naive differ emission order):
/// apply the steps one by one and record every intermediate-state
/// violation, stamped with the step index after which it occurs. An
/// explicit order has no barrier, so every step — including retired-tag
/// drains — is judged in the pre-barrier [`Phase::Update`], where old-tag
/// traffic is still being emitted. Recording stops early once
/// [`crate::MAX_NAIVE_VIOLATIONS`] pile up: the judgement is evidence,
/// not a gate, and a bad ordering at workload scale flags tens of
/// thousands of (injection, step) pairs.
pub fn judge_order(
    checker: &Checker,
    initial: &[TableState],
    order: &[PlanStep],
) -> (Vec<Violation>, u128) {
    let mut state = initial.to_vec();
    let mut violations = Vec::new();
    let start = std::time::Instant::now();
    for (i, step) in order.iter().enumerate() {
        apply(&mut state, step);
        let dirty = checker.dirty_injections(Checker::affected_tag(step));
        for mut v in checker.check_state(&state, &dirty, Phase::Update) {
            v.step = i;
            v.step_desc = step.to_string();
            violations.push(v);
        }
        if violations.len() >= crate::MAX_NAIVE_VIOLATIONS {
            violations.truncate(crate::MAX_NAIVE_VIOLATIONS);
            break;
        }
    }
    (violations, start.elapsed().as_micros())
}

/// Is `step` a pure drain: the removal of a rule pinned to a retired tag?
fn is_drain(checker: &Checker, step: &PlanStep) -> bool {
    step.op == DeltaOp::Remove
        && Checker::affected_tag(step)
            .map(|t| checker.is_retired_tag(t))
            .unwrap_or(false)
}

/// Heuristic candidate order: installs by priority descending, then
/// removals by priority ascending. Returns indices into `steps`.
fn heuristic_order(steps: &[PlanStep], pending: &[bool]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..steps.len()).filter(|&i| pending[i]).collect();
    idx.sort_by_key(|&i| {
        let s = &steps[i];
        match s.op {
            DeltaOp::Install => (0u8, u32::MAX - s.rule.priority),
            DeltaOp::Remove => (1u8, s.rule.priority),
        }
    });
    idx
}

/// Synthesize a safe schedule for `steps` applied to `initial`.
pub fn synthesize(
    checker: &Checker,
    initial: &[TableState],
    steps: &[PlanStep],
    budget: usize,
) -> SearchResult {
    let start = std::time::Instant::now();
    let mut explored = 0usize;

    // Peel off the drain steps; they run after the barrier.
    let (update, drain): (Vec<PlanStep>, Vec<PlanStep>) =
        steps.iter().cloned().partition(|s| !is_drain(checker, s));

    // DFS over the update steps.
    let mut order: Vec<usize> = Vec::with_capacity(update.len());
    let mut pending = vec![true; update.len()];
    let mut state = initial.to_vec();
    let found = dfs(
        checker,
        &update,
        &mut state,
        &mut order,
        &mut pending,
        budget,
        &mut explored,
    );

    if found {
        let mut full: Vec<PlanStep> = order.iter().map(|&i| update[i].clone()).collect();
        let barrier = full.len();
        full.extend(drain);
        return SearchResult {
            schedule: Some(Schedule {
                order: full,
                barrier,
                two_phase: false,
            }),
            violations: Vec::new(),
            explored,
            check_us: start.elapsed().as_micros(),
        };
    }

    // Two-phase fallback: installs (old behavior must hold — the flow
    // table's first-installed-wins tie-break shields old rules inside
    // equal-priority bands), barrier, removals (new behavior must hold).
    let mut phase_a: Vec<PlanStep> = update
        .iter()
        .chain(drain.iter())
        .filter(|s| s.op == DeltaOp::Install)
        .cloned()
        .collect();
    phase_a.sort_by_key(|s| u32::MAX - s.rule.priority);
    let mut phase_b: Vec<PlanStep> = update
        .iter()
        .chain(drain.iter())
        .filter(|s| s.op == DeltaOp::Remove)
        .cloned()
        .collect();
    phase_b.sort_by_key(|s| s.rule.priority);

    let mut violations = Vec::new();
    let mut state = initial.to_vec();
    for (i, step) in phase_a.iter().enumerate() {
        apply(&mut state, step);
        explored += 1;
        let dirty = checker.dirty_injections(Checker::affected_tag(step));
        for mut v in checker.check_state(&state, &dirty, Phase::Update) {
            v.step = i;
            v.step_desc = step.to_string();
            violations.push(v);
        }
    }
    // The barrier lands on the post-phase-A state: once the routers flip,
    // that state — old rules still present — must already show exactly the
    // new behavior to the new generation, before any removal runs.
    if !phase_a.is_empty() || !phase_b.is_empty() {
        explored += 1;
        for mut v in checker.check_state(&state, &checker.all_injections(), Phase::NewExact) {
            v.step = phase_a.len().saturating_sub(1);
            v.step_desc = "barrier".to_string();
            violations.push(v);
        }
    }
    for (i, step) in phase_b.iter().enumerate() {
        apply(&mut state, step);
        explored += 1;
        let dirty = checker.dirty_injections(Checker::affected_tag(step));
        for mut v in checker.check_state(&state, &dirty, Phase::NewExact) {
            v.step = phase_a.len() + i;
            v.step_desc = step.to_string();
            violations.push(v);
        }
    }

    if violations.is_empty() {
        let barrier = phase_a.len();
        let mut full = phase_a;
        full.extend(phase_b);
        SearchResult {
            schedule: Some(Schedule {
                order: full,
                barrier,
                two_phase: true,
            }),
            violations: Vec::new(),
            explored,
            check_us: start.elapsed().as_micros(),
        }
    } else {
        SearchResult {
            schedule: None,
            violations,
            explored,
            check_us: start.elapsed().as_micros(),
        }
    }
}

/// Depth-first search for a safe single-phase ordering. `order` and
/// `pending` are the mutable frontier; `state` always reflects `order`
/// applied to the initial state. Returns `true` with `order` complete on
/// success.
fn dfs(
    checker: &Checker,
    steps: &[PlanStep],
    state: &mut Vec<TableState>,
    order: &mut Vec<usize>,
    pending: &mut [bool],
    budget: usize,
    explored: &mut usize,
) -> bool {
    if order.len() == steps.len() {
        return true;
    }
    for i in heuristic_order(steps, pending) {
        if *explored >= budget {
            return false;
        }
        *explored += 1;
        let step = &steps[i];
        // Snapshot for the undo: the inverse op is not position-exact
        // inside equal-priority bands, and first-installed-wins makes
        // position behavior-relevant there.
        let saved = state.clone();
        apply(state, step);
        let dirty = checker.dirty_injections(Checker::affected_tag(step));
        let safe = checker.check_state(state, &dirty, Phase::Update).is_empty();
        if safe {
            pending[i] = false;
            order.push(i);
            if dfs(checker, steps, state, order, pending, budget, explored) {
                return true;
            }
            order.pop();
            pending[i] = true;
        }
        *state = saved;
    }
    false
}
