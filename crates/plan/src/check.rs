//! Intermediate-state safety checking for update plans.
//!
//! The correctness notion is **per-packet consistency** (the consistent-
//! updates criterion from the SDN literature, adapted to the SDX's VNH-tag
//! pipeline): while a plan is being applied, every producible packet must
//! see either the *old* fabric behavior or the *new* fabric behavior —
//! never a transient hybrid that drops it (blackhole), delivers it to a
//! participant that never advertised its destination (isolation leak), or
//! delivers it somewhere neither state would.
//!
//! Injections follow `sdx-verify`'s model: per sender-port-and-VMAC-tag
//! header spaces, derived from the border-router FIB models of **both** the
//! old and the new state. What a router actually emits is phase-dependent:
//!
//! * **pre-barrier** ([`Phase::Update`]): routers still hold the *old*
//!   FIBs, so a tag is producible exactly for its old-FIB prefixes. A
//!   witness packet may see the old behavior always, and the new behavior
//!   only if the *new* FIBs also emit it identically (same tag, same
//!   destination) — otherwise the new state was never promised to that
//!   packet and showing it early is an inconsistency.
//! * **post-barrier** ([`Phase::NewExact`]): the SDX has re-advertised, the
//!   routers flipped to the new tag generation, in-flight old-tag packets
//!   have drained. Emissions follow the *new* FIBs and must see exactly the
//!   new behavior; old-generation tags are no longer produced, so steps
//!   touching only those (drain steps) are unconstrained.
//!
//! A tag with old-FIB emissions but none in the new FIBs is **retired**;
//! removals pinned to retired tags are the drain steps [`crate::search`]
//! sequences after the barrier.
//!
//! The checker runs the header-space engine ([`sdx_analyze::hs`]) over the
//! intermediate tables once per (dirty) injection, harvests candidate
//! witness packets from every terminal region, and adjudicates each witness
//! by *concrete* evaluation against the old and new pipelines — symbolic
//! coverage, concrete precision. Incrementality comes from tag pinning:
//! a step whose rule is pinned to one VMAC tag can only change the behavior
//! of that tag's injections, so everything else stays verified for free.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

use sdx_analyze::hs::{self, Flow, TRANSIT_REGION_LIMIT};
use sdx_analyze::VerifyInput;
use sdx_ip::{Prefix, PrefixSet};
use sdx_policy::{Classifier, Field, Match, Packet, Pattern, Region};

use crate::delta::{classifier_of, PlanStep, TableState};

/// Which behaviors an intermediate state is allowed to show.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Pre-barrier: routers emit the *old* FIBs' (tag, prefix) pairs. Each
    /// witness may see the old behavior, or the new behavior if the new
    /// FIBs emit the identical packet.
    Update,
    /// Post-barrier: routers emit the *new* FIBs' pairs and must see
    /// exactly the new behavior; retired tags are no longer emitted.
    NewExact,
}

/// What went wrong in an intermediate state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A producible packet is dropped although its allowed behavior
    /// delivers it.
    Blackhole,
    /// A producible packet is delivered to a participant that never
    /// advertised its destination prefix (old or new ground truth).
    IsolationLeak,
    /// The outcome matches no allowed behavior but is not a drop or a
    /// leak (e.g. delivered out the wrong — but entitled — port).
    Inconsistent,
    /// Symbolic transit saturated; safety could not be decided.
    Undecided,
}

impl ViolationKind {
    /// Stable diagnostic-code suffix.
    pub fn code_suffix(self) -> &'static str {
        match self {
            ViolationKind::Blackhole => "blackhole",
            ViolationKind::IsolationLeak => "leak",
            ViolationKind::Inconsistent => "inconsistent",
            ViolationKind::Undecided => "undecided",
        }
    }
}

/// One intermediate-state safety violation: the step after which the state
/// is unsafe, and a concrete witness packet demonstrating it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Index into the judged step sequence: the state *after* applying the
    /// step at this index (in the ordering under analysis) is unsafe.
    pub step: usize,
    /// Rendered form of that step.
    pub step_desc: String,
    /// What kind of unsafety.
    pub kind: ViolationKind,
    /// The sending participant whose traffic is harmed.
    pub sender: u32,
    /// The injected witness packet (absent for [`ViolationKind::Undecided`]).
    pub witness: Option<Packet>,
    /// Human-readable description.
    pub message: String,
}

/// One sender-side injection: everything one sender's router emits from one
/// port under one destination-MAC tag, split by FIB generation.
#[derive(Debug, Clone)]
pub(crate) struct Injection {
    pub(crate) sender: u32,
    pub(crate) port: u32,
    pub(crate) tag: u64,
    /// Destinations the *old* FIBs resolve to this tag (pre-barrier
    /// emissions).
    pub(crate) old_prefixes: Vec<Prefix>,
    /// Destinations the *new* FIBs resolve to this tag (post-barrier
    /// emissions).
    pub(crate) new_prefixes: Vec<Prefix>,
}

/// One injection's cached terminal-region partition of one pipeline;
/// `None` records saturation.
pub(crate) type SidePartition = Option<Vec<Region>>;

/// The immutable context a plan is checked against.
pub struct Checker {
    old_tables: Vec<Classifier>,
    new_tables: Vec<Classifier>,
    injections: Vec<Injection>,
    /// Union ground truth: `(advertiser, viewer) → prefixes` under old OR
    /// new route-server state (used to classify leaks).
    advertised: BTreeMap<(u32, u32), PrefixSet>,
    /// Physical port → owner, union of old and new registrations.
    port_owner: BTreeMap<u32, u32>,
    vport_base: u32,
    /// Per-injection terminal-region partitions of the *old* and *new*
    /// pipelines, computed lazily (state-independent, so cacheable across
    /// every intermediate state). Split by side so an incremental caller
    /// can seed the old side from a persistent cache and harvest the new
    /// side after the event commits.
    old_partitions: RefCell<BTreeMap<usize, SidePartition>>,
    new_partitions: RefCell<BTreeMap<usize, SidePartition>>,
}

/// The concrete pipeline outcome of one packet: evaluate each table in
/// traversal order, feeding every output of table *i* into table *i+1*
/// (the same semantics [`hs::transit_pipeline`] uses symbolically). The
/// empty set means the packet is dropped.
pub fn outcome(tables: &[Classifier], pkt: &Packet) -> BTreeSet<Packet> {
    let mut cur: BTreeSet<Packet> = BTreeSet::new();
    cur.insert(pkt.clone());
    for table in tables {
        cur = cur.iter().flat_map(|p| table.evaluate(p)).collect();
        if cur.is_empty() {
            break;
        }
    }
    cur
}

/// Every terminal region of `tables` on `region` — output *and* drop
/// regions — or `None` if the symbolic transit saturates.
fn terminal_regions(tables: &[Classifier], region: Region) -> Option<Vec<Region>> {
    let result = hs::transit_pipeline(
        tables,
        vec![Flow::new(region)],
        Field::DstMac,
        TRANSIT_REGION_LIMIT,
    );
    if result.saturated {
        return None;
    }
    let mut out: Vec<Region> = result
        .outputs
        .into_iter()
        .map(|(o, _)| o.flow.region)
        .collect();
    out.extend(result.drops.into_iter().map(|(_, d)| d.region));
    Some(out)
}

/// Per-(sender, port, tag) prefix map of one FIB generation.
pub(crate) fn emissions(vi: &VerifyInput) -> BTreeMap<(u32, u32, u64), BTreeSet<Prefix>> {
    let mut out: BTreeMap<(u32, u32, u64), BTreeSet<Prefix>> = BTreeMap::new();
    for fib in &vi.fibs {
        let ports = vi
            .participants
            .iter()
            .find(|(id, _)| *id == fib.participant)
            .map(|(_, p)| p.clone())
            .unwrap_or_default();
        for e in &fib.entries {
            let Some(mac) = e.mac else { continue };
            for port in &ports {
                out.entry((fib.participant, *port, mac))
                    .or_default()
                    .insert(e.prefix);
            }
        }
    }
    out
}

impl Checker {
    /// Build the checking context from the old and new verifier inputs.
    /// `old.fibs`/`new.fibs` decide the injections; `advertised` ground
    /// truths are unioned for leak classification.
    pub fn new(old: &VerifyInput, new: &VerifyInput) -> Checker {
        let old_em = emissions(old);
        let new_em = emissions(new);
        let keys: BTreeSet<(u32, u32, u64)> = old_em.keys().chain(new_em.keys()).copied().collect();
        let injections = keys
            .into_iter()
            .map(|key| Injection {
                sender: key.0,
                port: key.1,
                tag: key.2,
                old_prefixes: old_em
                    .get(&key)
                    .map(|s| s.iter().copied().collect())
                    .unwrap_or_default(),
                new_prefixes: new_em
                    .get(&key)
                    .map(|s| s.iter().copied().collect())
                    .unwrap_or_default(),
            })
            .collect();

        let mut advertised = old.advertised.clone();
        for (key, set) in &new.advertised {
            let slot = advertised.entry(*key).or_default();
            for p in set.iter() {
                slot.insert(*p);
            }
        }
        let mut port_owner = BTreeMap::new();
        for vi in [old, new] {
            for (id, ports) in &vi.participants {
                for p in ports {
                    port_owner.insert(*p, *id);
                }
            }
        }

        Checker::from_parts(
            old.tables.clone(),
            new.tables.clone(),
            injections,
            advertised,
            port_owner,
            new.vport_base.max(old.vport_base),
        )
    }

    /// Build the checking context from already-resolved parts. This is the
    /// entry the incremental verifier uses: it maintains emissions and
    /// ground truth across events itself and materializes classifiers only
    /// when a delta actually needs symbolic work.
    pub(crate) fn from_parts(
        old_tables: Vec<Classifier>,
        new_tables: Vec<Classifier>,
        injections: Vec<Injection>,
        advertised: BTreeMap<(u32, u32), PrefixSet>,
        port_owner: BTreeMap<u32, u32>,
        vport_base: u32,
    ) -> Checker {
        Checker {
            old_tables,
            new_tables,
            injections,
            advertised,
            port_owner,
            vport_base,
            old_partitions: RefCell::new(BTreeMap::new()),
            new_partitions: RefCell::new(BTreeMap::new()),
        }
    }

    /// The (sender, port, tag) key of `injections[idx]`.
    pub(crate) fn injection_key(&self, idx: usize) -> (u32, u32, u64) {
        let inj = &self.injections[idx];
        (inj.sender, inj.port, inj.tag)
    }

    /// Seed the cached *old*-pipeline partition for one injection (from a
    /// persistent cache computed against the identical tables earlier).
    pub(crate) fn seed_old_partition(&self, idx: usize, parts: SidePartition) {
        self.old_partitions.borrow_mut().insert(idx, parts);
    }

    /// Export every *new*-pipeline partition computed during checking, so
    /// the caller can persist them once the delta commits (the new tables
    /// become the current ones).
    pub(crate) fn take_new_partitions(&self) -> BTreeMap<usize, SidePartition> {
        std::mem::take(&mut *self.new_partitions.borrow_mut())
    }

    /// The injection region of `injections[idx]`: one sender port, one tag.
    fn injection_region(&self, idx: usize) -> Region {
        let inj = &self.injections[idx];
        Region::from_match(
            Match::on(Field::Port, Pattern::Exact(inj.port as u64))
                .and(Field::DstMac, Pattern::Exact(inj.tag))
                .expect("distinct fields"),
        )
    }

    /// One side's terminal-region partition for one injection, cached.
    fn side_partition(
        &self,
        cache: &RefCell<BTreeMap<usize, SidePartition>>,
        tables: &[Classifier],
        idx: usize,
    ) -> SidePartition {
        if let Some(cached) = cache.borrow().get(&idx) {
            return cached.clone();
        }
        let computed = terminal_regions(tables, self.injection_region(idx));
        cache.borrow_mut().insert(idx, computed.clone());
        computed
    }

    /// Old/new terminal-region partitions for one injection, cached.
    /// `None` when either pipeline saturates on it.
    fn reference_partitions(&self, idx: usize) -> Option<(Vec<Region>, Vec<Region>)> {
        let old = self.side_partition(&self.old_partitions, &self.old_tables, idx);
        let new = self.side_partition(&self.new_partitions, &self.new_tables, idx);
        old.zip(new)
    }

    /// Is `tag` retired — emitted by the old FIBs but by no new FIB? Steps
    /// that only remove retired-tag rules are drain steps, sequenced after
    /// the barrier (they cannot affect any post-barrier emission: those pin
    /// a different DstMac).
    pub fn is_retired_tag(&self, tag: u64) -> bool {
        let mut saw_old = false;
        for i in self.injections.iter().filter(|i| i.tag == tag) {
            if !i.new_prefixes.is_empty() {
                return false;
            }
            saw_old |= !i.old_prefixes.is_empty();
        }
        saw_old
    }

    /// The VMAC tag whose injections a step can affect: `Some(tag)` when
    /// the rule is pinned to one exact destination MAC, `None` when it can
    /// touch any tag (no or non-exact DstMac constraint).
    pub fn affected_tag(step: &PlanStep) -> Option<u64> {
        match step.rule.match_.get(Field::DstMac) {
            Some(Pattern::Exact(v)) => Some(*v),
            _ => None,
        }
    }

    /// Indices of the injections a step with `affected_tag` result `tag`
    /// dirties.
    pub fn dirty_injections(&self, tag: Option<u64>) -> Vec<usize> {
        self.injections
            .iter()
            .enumerate()
            .filter(|(_, i)| tag.map(|t| i.tag == t).unwrap_or(true))
            .map(|(idx, _)| idx)
            .collect()
    }

    /// Every injection index.
    pub fn all_injections(&self) -> Vec<usize> {
        (0..self.injections.len()).collect()
    }

    /// Check one injection against an intermediate state. Returns the
    /// violations found (without step provenance — the caller stamps those).
    pub fn check_injection(
        &self,
        tables: &[Classifier],
        idx: usize,
        phase: Phase,
    ) -> Vec<Violation> {
        let inj = &self.injections[idx];
        let produced: &[Prefix] = match phase {
            Phase::Update => &inj.old_prefixes,
            Phase::NewExact => &inj.new_prefixes,
        };
        if produced.is_empty() {
            return Vec::new(); // tag not emitted in this phase
        }

        let undecided = |what: &str| {
            vec![Violation {
                step: 0,
                step_desc: String::new(),
                kind: ViolationKind::Undecided,
                sender: inj.sender,
                witness: None,
                message: format!(
                    "P{} port {} tag {:#x}: symbolic transit of the {what} exceeded \
                     {} regions; intermediate state left unverified",
                    inj.sender, inj.port, inj.tag, TRANSIT_REGION_LIMIT
                ),
            }]
        };
        let Some(mid_regions) = terminal_regions(tables, self.injection_region(idx)) else {
            return undecided("intermediate state");
        };
        let Some((old_regions, new_regions)) = self.reference_partitions(idx) else {
            return undecided("old/new reference");
        };

        // Candidate witnesses, per cell of the mid ∩ old ∩ new
        // terminal-region product. The refinement matters: inside one cell
        // all three pipelines act uniformly, so a witness's verdict covers
        // its whole slice — a mid-region alone could mix packets whose
        // *old* or *new* behaviors differ, and a passing witness would mask
        // a failing neighbor. Uniformity also bounds the work: within a
        // cell a packet's verdict depends only on whether the *new* FIBs
        // produce it too (`new_produces`), so one producible representative
        // per truth value decides the entire cell — the concrete replays
        // below stay O(cells), not O(cells × prefixes).
        let new_produces_of = |w: &Packet| {
            w.dst_ip()
                .map(|ip| inj.new_prefixes.iter().any(|p| p.contains_addr(ip)))
                .unwrap_or(false)
        };
        let mut witnesses: BTreeSet<Packet> = BTreeSet::new();
        let mut harvest = |cell: &Region| {
            let mut covered = [false, false];
            for p in produced {
                if covered[0] && covered[1] {
                    break;
                }
                let Some(r) = cell.intersect_match(&Match::on(Field::DstIp, Pattern::Prefix(*p)))
                else {
                    continue;
                };
                if let Some(w) = r.witness() {
                    let np = new_produces_of(&w);
                    if !covered[np as usize] {
                        covered[np as usize] = true;
                        witnesses.insert(w);
                    }
                }
                if !covered[1] {
                    // The allowed set widens where a new-generation prefix
                    // overlaps; hunt for one such representative.
                    for q in &inj.new_prefixes {
                        let narrowed =
                            r.intersect_match(&Match::on(Field::DstIp, Pattern::Prefix(*q)));
                        if let Some(w) = narrowed.and_then(|n| n.witness()) {
                            covered[1] = true;
                            witnesses.insert(w);
                            break;
                        }
                    }
                }
            }
        };
        for mid_r in &mid_regions {
            for old_r in &old_regions {
                let Some(mo) = mid_r.intersect(old_r) else {
                    continue;
                };
                for new_r in &new_regions {
                    if let Some(cell) = mo.intersect(new_r) {
                        harvest(&cell);
                    }
                }
            }
        }

        let mut out = Vec::new();
        for w in witnesses {
            let mid = outcome(tables, &w);
            let old = outcome(&self.old_tables, &w);
            let new = outcome(&self.new_tables, &w);
            // Pre-barrier: old always allowed; new only if the new FIBs
            // emit the identical packet (same tag, same destination) — a
            // packet the new world never produces has no claim to the new
            // behavior. Post-barrier: new only.
            let new_produces = new_produces_of(&w);
            let allowed = match phase {
                Phase::Update => (true, new_produces),
                Phase::NewExact => (false, true),
            };
            let ok = (allowed.0 && mid == old) || (allowed.1 && mid == new);
            if ok {
                continue;
            }
            out.push(self.classify(inj, &w, mid, old, new, allowed));
        }
        out
    }

    /// Build the violation record for a witness whose intermediate outcome
    /// matches no allowed behavior.
    fn classify(
        &self,
        inj: &Injection,
        witness: &Packet,
        mid: BTreeSet<Packet>,
        old: BTreeSet<Packet>,
        new: BTreeSet<Packet>,
        allowed: (bool, bool),
    ) -> Violation {
        let describe = |set: &BTreeSet<Packet>| -> String {
            if set.is_empty() {
                "drop".to_string()
            } else {
                set.iter()
                    .map(|p| match p.get(Field::Port) {
                        Some(e) => format!("port {e}"),
                        None => "no egress".to_string(),
                    })
                    .collect::<Vec<_>>()
                    .join("+")
            }
        };
        let expectation = match allowed {
            (true, true) => format!("old={} or new={}", describe(&old), describe(&new)),
            (true, false) => format!("old={}", describe(&old)),
            _ => format!("new={}", describe(&new)),
        };

        // A transient drop of traffic the allowed behavior delivers:
        // blackhole.
        if mid.is_empty() {
            return Violation {
                step: 0,
                step_desc: String::new(),
                kind: ViolationKind::Blackhole,
                sender: inj.sender,
                witness: Some(witness.clone()),
                message: format!(
                    "traffic from P{} tagged {:#x} is transiently blackholed \
                     (expected {expectation})",
                    inj.sender, inj.tag
                ),
            };
        }

        // Delivered somewhere: a leak if any delivery reaches a participant
        // that never advertised the witness's destination to the sender.
        let dst_prefix = inj
            .old_prefixes
            .iter()
            .chain(inj.new_prefixes.iter())
            .find(|p| {
                witness
                    .dst_ip()
                    .map(|ip| p.contains_addr(ip))
                    .unwrap_or(false)
            });
        for p in &mid {
            let Some(egress) = p.get(Field::Port) else {
                continue;
            };
            if egress >= self.vport_base as u64 {
                continue;
            }
            let Some(receiver) = self.port_owner.get(&(egress as u32)) else {
                continue;
            };
            if *receiver == inj.sender {
                continue; // hairpin back to the sender is not a leak
            }
            let entitled = dst_prefix
                .map(|pref| {
                    self.advertised
                        .get(&(*receiver, inj.sender))
                        .map(|s| s.contains(pref))
                        .unwrap_or(false)
                })
                .unwrap_or(true);
            if !entitled {
                let pref = dst_prefix.expect("entitled is false only with a prefix");
                return Violation {
                    step: 0,
                    step_desc: String::new(),
                    kind: ViolationKind::IsolationLeak,
                    sender: inj.sender,
                    witness: Some(witness.clone()),
                    message: format!(
                        "traffic from P{} for {} is transiently delivered to \
                         P{} (port {}), which never advertised {} to P{} \
                         (expected {expectation})",
                        inj.sender, pref, receiver, egress, pref, inj.sender
                    ),
                };
            }
        }

        Violation {
            step: 0,
            step_desc: String::new(),
            kind: ViolationKind::Inconsistent,
            sender: inj.sender,
            witness: Some(witness.clone()),
            message: format!(
                "traffic from P{} tagged {:#x} transiently sees {}, matching \
                 no allowed behavior (expected {expectation})",
                inj.sender,
                inj.tag,
                describe(&mid)
            ),
        }
    }

    /// Check a whole intermediate state for the given injection indices.
    pub fn check_state(
        &self,
        state: &[TableState],
        indices: &[usize],
        phase: Phase,
    ) -> Vec<Violation> {
        let tables: Vec<Classifier> = state.iter().map(classifier_of).collect();
        let mut out = Vec::new();
        for &idx in indices {
            out.extend(self.check_injection(&tables, idx, phase));
        }
        out
    }
}
