//! Parser properties (the seeded fuzz harness's proptest half):
//!
//! 1. **Round-trip** — rendering any policy with `Display` and parsing it
//!    back preserves semantics exactly (same output packets for every
//!    probe), and parsing is a *normalization*: the parsed form renders to
//!    text the parser maps to itself (one trip may constant-fold, e.g.
//!    `!true` → `false`; after that, printer and grammar agree verbatim).
//! 2. **Token-soup robustness** — arbitrary concatenations of grammar
//!    tokens never panic the parser: they parse or fail with an error
//!    offset inside the input. Whatever *does* parse must itself
//!    round-trip.
//!
//! Case count is `PROPTEST_CASES`-bounded (default 256 here), so ci.sh can
//! run a quick sweep and a fuzzing session can crank it up.

use proptest::prelude::*;
use sdx_policy::{parse_policy, Field, Packet, Policy, Predicate};
use std::net::Ipv4Addr;

const PORTS: [u32; 4] = [1, 2, 101, 102];
const DST_PORTS: [u16; 3] = [80, 443, 22];
const IPS: [[u8; 4]; 4] = [
    [10, 0, 0, 1],
    [10, 200, 0, 1],
    [128, 0, 0, 1],
    [200, 1, 2, 3],
];
const PREFIXES: [&str; 5] = [
    "0.0.0.0/0",
    "0.0.0.0/1",
    "128.0.0.0/1",
    "10.0.0.0/8",
    "10.0.0.0/16",
];

/// Field tests drawn from the printable subset of the grammar (set
/// literals stay ≤8 entries — larger sets render as an elided summary the
/// parser rightly refuses).
fn arb_field_test() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        prop::sample::select(&PORTS[..]).prop_map(|p| Predicate::test(Field::Port, p)),
        prop::sample::select(&DST_PORTS[..]).prop_map(|p| Predicate::test(Field::DstPort, p)),
        prop::sample::select(&IPS[..])
            .prop_map(|ip| Predicate::test(Field::SrcIp, Ipv4Addr::from(ip))),
        prop::sample::select(&PREFIXES[..])
            .prop_map(|s| Predicate::test_prefix(Field::SrcIp, s.parse().unwrap())),
        prop::sample::select(&PREFIXES[..])
            .prop_map(|s| Predicate::test_prefix(Field::DstIp, s.parse().unwrap())),
        prop::collection::btree_set(prop::sample::select(&DST_PORTS[..]), 1..3)
            .prop_map(|s| Predicate::in_set(Field::DstPort, s.into_iter().map(u64::from))),
    ]
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    let leaf = prop_oneof![
        Just(Predicate::True),
        Just(Predicate::False),
        arb_field_test(),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Predicate::And(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Predicate::Or(a.into(), b.into())),
            inner.prop_map(|p| Predicate::Not(p.into())),
        ]
    })
}

fn arb_policy() -> impl Strategy<Value = Policy> {
    let leaf = prop_oneof![
        arb_predicate().prop_map(Policy::Filter),
        prop::sample::select(&PORTS[..]).prop_map(Policy::fwd),
        prop::sample::select(&DST_PORTS[..]).prop_map(|p| Policy::modify(Field::DstPort, p)),
        prop::sample::select(&IPS[..])
            .prop_map(|ip| Policy::modify(Field::DstIp, Ipv4Addr::from(ip))),
    ];
    leaf.prop_recursive(3, 20, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(Policy::parallel),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Policy::sequential),
            (arb_predicate(), inner.clone(), inner)
                .prop_map(|(p, a, b)| Policy::if_then_else(p, a, b)),
        ]
    })
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        prop::sample::select(&PORTS[..]),
        prop::sample::select(&IPS[..]),
        prop::sample::select(&IPS[..]),
        prop::sample::select(&DST_PORTS[..]),
        any::<bool>(),
    )
        .prop_map(|(port, src, dst, dport, full)| {
            if full {
                Packet::udp(port, Ipv4Addr::from(src), Ipv4Addr::from(dst), 5000, dport)
            } else {
                Packet::new().with(Field::Port, port)
            }
        })
}

/// Grammar tokens for the soup: every keyword, operator, and a few values —
/// plus some junk the tokenizer must reject cleanly.
const TOKENS: [&str; 24] = [
    "match",
    "fwd",
    "mod",
    "drop",
    "id",
    "if_",
    "true",
    "false",
    "(",
    ")",
    ">>",
    "+",
    "&&",
    "||",
    "!",
    ",",
    "=",
    "in",
    "{",
    "}",
    "dstport",
    "80",
    "10.0.0.0/8",
    "\u{3bb}",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        proptest::test_runner::Config::default().cases.min(256)
    ))]

    #[test]
    fn rendered_policy_reparses_with_identical_semantics(
        policy in arb_policy(),
        packets in prop::collection::vec(arb_packet(), 1..8),
    ) {
        let text = policy.to_string();
        let reparsed = parse_policy(&text)
            .unwrap_or_else(|e| panic!("printer emitted unparseable text {text:?}: {e}"));
        for pkt in &packets {
            prop_assert_eq!(
                reparsed.eval(pkt),
                policy.eval(pkt),
                "semantics drifted through the printer/parser pair\n\
                 original: {}\nreparsed: {}\npacket: {}",
                &policy, &reparsed, pkt
            );
        }
        // Parsing normalizes (it may constant-fold); the normal form is a
        // textual fixpoint of the printer/parser pair.
        let normal = reparsed.to_string();
        let again = parse_policy(&normal)
            .unwrap_or_else(|e| panic!("normal form {normal:?} unparseable: {e}"));
        prop_assert_eq!(again.to_string(), normal);
    }

    #[test]
    fn token_soup_never_panics_the_parser(
        soup in prop::collection::vec(prop::sample::select(&TOKENS[..]), 0..24),
        spaces in any::<u32>(),
    ) {
        // Vary the gluing so token boundaries are fuzzed too.
        let mut text = String::new();
        for (i, t) in soup.iter().enumerate() {
            if spaces & (1 << (i % 32)) != 0 && !text.is_empty() {
                text.push(' ');
            }
            text.push_str(t);
        }
        match parse_policy(&text) {
            Ok(p) => {
                // Accidentally valid soup must round-trip like anything else.
                let rendered = p.to_string();
                let again = parse_policy(&rendered).unwrap_or_else(|e| {
                    panic!("parsed soup {text:?} rendered unparseable {rendered:?}: {e}")
                });
                prop_assert_eq!(again.to_string(), rendered);
            }
            Err(e) => prop_assert!(
                e.at <= text.len(),
                "error offset {} outside input {:?}", e.at, text
            ),
        }
    }
}
