//! The compiler's soundness property: for every policy `p` and packet `k`,
//! `p.compile().evaluate(k) == p.eval(k)`.
//!
//! Policies and packets are drawn from a small shared domain so random
//! packets actually exercise the compiled rules.

use proptest::prelude::*;
use sdx_policy::{Field, Packet, Policy, Predicate};
use std::net::Ipv4Addr;

const PORTS: [u32; 4] = [1, 2, 101, 102];
const DST_PORTS: [u16; 3] = [80, 443, 22];
const IPS: [[u8; 4]; 4] = [
    [10, 0, 0, 1],
    [10, 200, 0, 1],
    [128, 0, 0, 1],
    [200, 1, 2, 3],
];
const PREFIXES: [&str; 5] = [
    "0.0.0.0/0",
    "0.0.0.0/1",
    "128.0.0.0/1",
    "10.0.0.0/8",
    "10.0.0.0/16",
];

fn arb_field_test() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        prop::sample::select(&PORTS[..]).prop_map(|p| Predicate::test(Field::Port, p)),
        prop::sample::select(&DST_PORTS[..]).prop_map(|p| Predicate::test(Field::DstPort, p)),
        prop::sample::select(&IPS[..])
            .prop_map(|ip| Predicate::test(Field::SrcIp, Ipv4Addr::from(ip))),
        prop::sample::select(&PREFIXES[..])
            .prop_map(|s| Predicate::test_prefix(Field::SrcIp, s.parse().unwrap())),
        prop::sample::select(&PREFIXES[..])
            .prop_map(|s| Predicate::test_prefix(Field::DstIp, s.parse().unwrap())),
        prop::collection::btree_set(prop::sample::select(&DST_PORTS[..]), 1..3)
            .prop_map(|s| Predicate::in_set(Field::DstPort, s.into_iter().map(u64::from))),
    ]
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    let leaf = prop_oneof![
        Just(Predicate::True),
        Just(Predicate::False),
        arb_field_test(),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Predicate::And(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Predicate::Or(a.into(), b.into())),
            inner.prop_map(|p| Predicate::Not(p.into())),
        ]
    })
}

fn arb_mod() -> impl Strategy<Value = Policy> {
    prop_oneof![
        prop::sample::select(&PORTS[..]).prop_map(Policy::fwd),
        prop::sample::select(&DST_PORTS[..]).prop_map(|p| Policy::modify(Field::DstPort, p)),
        prop::sample::select(&IPS[..])
            .prop_map(|ip| Policy::modify(Field::DstIp, Ipv4Addr::from(ip))),
    ]
}

fn arb_policy() -> impl Strategy<Value = Policy> {
    let leaf = prop_oneof![arb_predicate().prop_map(Policy::Filter), arb_mod(),];
    leaf.prop_recursive(3, 20, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(Policy::parallel),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Policy::sequential),
            (arb_predicate(), inner.clone(), inner)
                .prop_map(|(p, a, b)| Policy::if_then_else(p, a, b)),
        ]
    })
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        prop::sample::select(&PORTS[..]),
        prop::sample::select(&IPS[..]),
        prop::sample::select(&IPS[..]),
        prop::sample::select(&DST_PORTS[..]),
        any::<bool>(),
    )
        .prop_map(|(port, src, dst, dport, full)| {
            if full {
                Packet::udp(port, Ipv4Addr::from(src), Ipv4Addr::from(dst), 5000, dport)
            } else {
                // A partial packet (e.g. non-IP frame) exercises missing-field
                // match semantics.
                Packet::new().with(Field::Port, port)
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn compiled_classifier_agrees_with_interpreter(
        policy in arb_policy(),
        packets in prop::collection::vec(arb_packet(), 1..8),
    ) {
        let classifier = policy.compile();
        for pkt in &packets {
            prop_assert_eq!(
                classifier.evaluate(pkt),
                policy.eval(pkt),
                "policy: {}\nclassifier:\n{}\npacket: {}", &policy, &classifier, pkt
            );
        }
    }

    #[test]
    fn predicate_classifier_agrees_with_eval(
        pred in arb_predicate(),
        packets in prop::collection::vec(arb_packet(), 1..8),
    ) {
        let c = sdx_policy::compile_predicate(&pred);
        for pkt in &packets {
            let want = pred.eval(pkt);
            let got = !c.evaluate(pkt).is_empty();
            prop_assert_eq!(got, want, "pred: {}\nclassifier:\n{}\npacket: {}", &pred, &c, pkt);
        }
    }

    #[test]
    fn optimize_preserves_semantics(
        policy in arb_policy(),
        packets in prop::collection::vec(arb_packet(), 1..8),
    ) {
        let c = policy.compile();
        let optimized = c.clone().optimize();
        let o = optimized.classifier;
        prop_assert!(o.len() <= c.len());
        // The audit trail accounts exactly for the removed rules.
        prop_assert_eq!(o.len() + optimized.eliminated.len(), c.len());
        for e in &optimized.eliminated {
            prop_assert!(e.index < c.len());
        }
        for pkt in &packets {
            prop_assert_eq!(c.evaluate(pkt), o.evaluate(pkt));
        }
    }

    #[test]
    fn parallel_compose_is_union(
        a in arb_policy(),
        b in arb_policy(),
        pkt in arb_packet(),
    ) {
        let c = sdx_policy::parallel_compose(&a.compile(), &b.compile());
        let mut want = a.eval(&pkt);
        want.extend(b.eval(&pkt));
        prop_assert_eq!(c.evaluate(&pkt), want);
    }

    #[test]
    fn sequential_compose_threads_packets(
        a in arb_policy(),
        b in arb_policy(),
        pkt in arb_packet(),
    ) {
        let c = sdx_policy::sequential_compose(&a.compile(), &b.compile());
        let want: std::collections::BTreeSet<_> =
            a.eval(&pkt).iter().flat_map(|k| b.eval(k)).collect();
        prop_assert_eq!(c.evaluate(&pkt), want);
    }
}

proptest! {
    /// The cover analysis agrees with the interpreter: a rule reported
    /// shadowed is never the first match of any sampled packet, and for a
    /// live rule the produced witness really does reach it.
    #[test]
    fn cover_analysis_agrees_with_interpreter(
        policy in arb_policy(),
        packets in prop::collection::vec(arb_packet(), 1..8),
    ) {
        let c = policy.compile();
        let rules = c.rules();
        let first_match = |pkt: &Packet| rules.iter().position(|r| r.match_.matches(pkt));
        let dead: std::collections::BTreeSet<usize> =
            sdx_policy::shadowed_rules(&c).into_iter().map(|s| s.index).collect();
        for i in 0..rules.len() {
            let earlier: Vec<_> = rules[..i].iter().map(|r| r.match_.clone()).collect();
            match sdx_policy::witness_outside(&rules[i].match_, &earlier) {
                // The witness is a counterexample to "rule i is dead": the
                // interpreter must route it to rule i, and the analysis must
                // not have reported i shadowed.
                Some(w) => {
                    prop_assert_eq!(first_match(&w), Some(i));
                    prop_assert!(!dead.contains(&i));
                }
                // Covered (or the search gave up): no sampled packet may
                // reach a rule the analysis reported dead.
                None => {
                    for pkt in &packets {
                        prop_assert!(!(dead.contains(&i) && first_match(pkt) == Some(i)));
                    }
                }
            }
        }
        // Every reported shadowing set only references earlier rules.
        for s in sdx_policy::shadowed_rules(&c) {
            prop_assert!(s.shadowed_by.iter().all(|&j| j < s.index));
        }
    }
}

proptest! {
    /// Rendering a (negation-free, small-set) policy and parsing it back
    /// gives a semantically identical policy.
    #[test]
    fn display_parse_round_trip(policy in arb_policy(), packets in prop::collection::vec(arb_packet(), 1..6)) {
        let text = policy.to_string();
        let reparsed: Policy = text.parse().unwrap_or_else(|e| panic!("reparse {text:?}: {e}"));
        for pkt in &packets {
            prop_assert_eq!(
                reparsed.eval(pkt),
                policy.eval(pkt),
                "text: {}", &text
            );
        }
    }
}
