//! Compilation from policies to classifiers (prioritized rule lists).
//!
//! This is the Rust equivalent of the Pyretic runtime's compiler that the SDX
//! controller delegates to (§5.1 of the paper): predicates compile to
//! pass/drop rule lists, and policies compose via the classifier-level
//! parallel and sequential composition algorithms.
//!
//! The compiler's contract, enforced by property tests, is
//! `policy.compile().evaluate(pkt) == policy.eval(pkt)` for every packet.

use crate::{Action, Classifier, Elision, Match, Pattern, Policy, Predicate, Rule};

impl Policy {
    /// Compile the policy into an equivalent classifier.
    pub fn compile(&self) -> Classifier {
        match self {
            Policy::Filter(pred) => compile_predicate(pred),
            Policy::Mod(field, value) => Classifier::new(vec![Rule {
                match_: Match::any(),
                actions: vec![Action::set(*field, *value)],
            }]),
            Policy::Parallel(ps) => {
                let mut acc: Option<Classifier> = None;
                for p in ps {
                    let c = p.compile();
                    acc = Some(match acc {
                        None => c,
                        Some(prev) => parallel_compose(&prev, &c),
                    });
                }
                acc.unwrap_or_else(Classifier::drop_all)
            }
            Policy::Sequential(ps) => {
                let mut acc: Option<Classifier> = None;
                for p in ps {
                    let c = p.compile();
                    acc = Some(match acc {
                        None => c,
                        Some(prev) => sequential_compose(&prev, &c),
                    });
                }
                acc.unwrap_or_else(Classifier::pass_all)
            }
            Policy::IfThenElse(pred, then, otherwise) => {
                let cp = compile_predicate(pred);
                let cnp = negate_classifier(&cp);
                let branch_then = sequential_compose(&cp, &then.compile());
                let branch_else = sequential_compose(&cnp, &otherwise.compile());
                // The branches act on disjoint packet regions, so their
                // parallel composition implements the conditional.
                parallel_compose(&branch_then, &branch_else)
            }
        }
    }
}

/// Compile a predicate into a classifier whose rules either pass (identity
/// action) or drop.
pub fn compile_predicate(pred: &Predicate) -> Classifier {
    match pred {
        Predicate::True => Classifier::pass_all(),
        Predicate::False => Classifier::drop_all(),
        Predicate::Test(field, pattern) => {
            Classifier::new(vec![Rule::pass(Match::on(*field, *pattern))])
        }
        Predicate::InSet(field, values) => Classifier::new(
            values
                .iter()
                .map(|v| Rule::pass(Match::on(*field, Pattern::Exact(*v))))
                .collect(),
        ),
        Predicate::InPrefixes(field, prefixes) => Classifier::new(
            prefixes
                .iter()
                .map(|p| Rule::pass(Match::on(*field, Pattern::Prefix(*p))))
                .collect(),
        ),
        Predicate::And(a, b) => {
            product_bool(&compile_predicate(a), &compile_predicate(b), |x, y| x && y)
        }
        Predicate::Or(a, b) => {
            product_bool(&compile_predicate(a), &compile_predicate(b), |x, y| x || y)
        }
        Predicate::Not(p) => negate_classifier(&compile_predicate(p)),
    }
}

/// Flip pass and drop rules of a boolean (predicate) classifier.
pub(crate) fn negate_classifier(c: &Classifier) -> Classifier {
    Classifier::new(
        c.rules()
            .iter()
            .map(|r| {
                if r.is_drop() {
                    Rule::pass(r.match_.clone())
                } else {
                    Rule::drop(r.match_.clone())
                }
            })
            .collect(),
    )
    .optimize()
    .classifier
}

/// Cross product of two boolean classifiers, combining pass/drop with `op`.
///
/// Rules are ordered lexicographically by source priorities, so the first
/// matching product rule corresponds to the first matching rule in each
/// input, making the product's decision `op(c1(pkt), c2(pkt))`.
pub(crate) fn product_bool(
    c1: &Classifier,
    c2: &Classifier,
    op: impl Fn(bool, bool) -> bool,
) -> Classifier {
    let mut rules = Vec::new();
    for r1 in c1.rules() {
        for r2 in c2.rules() {
            if let Some(m) = r1.match_.intersect(&r2.match_) {
                let pass = op(!r1.is_drop(), !r2.is_drop());
                rules.push(if pass { Rule::pass(m) } else { Rule::drop(m) });
            }
        }
    }
    Classifier::new(rules).optimize().classifier
}

/// Parallel composition of compiled classifiers: the output packet set of the
/// composite is the union of both components' outputs.
pub fn parallel_compose(c1: &Classifier, c2: &Classifier) -> Classifier {
    let mut rules = Vec::new();
    for r1 in c1.rules() {
        for r2 in c2.rules() {
            if let Some(m) = r1.match_.intersect(&r2.match_) {
                let mut actions = r1.actions.clone();
                for b in &r2.actions {
                    if !actions.contains(b) {
                        actions.push(b.clone());
                    }
                }
                rules.push(Rule { match_: m, actions });
            }
        }
    }
    Classifier::new(rules).optimize().classifier
}

/// Sequential composition of compiled classifiers: feed every output of `c1`
/// into `c2`.
///
/// For each rule of `c1`, its action is *pushed through* `c2`: a later match
/// on a field the action assigns is resolved statically, and matches on
/// untouched fields become residual constraints on the original packet.
/// Multicast rules (multiple actions) push each action separately and merge
/// the results with parallel composition inside the rule's region.
///
/// An index over `c2`'s exact `Port` constraints prunes the push: a rule
/// whose action pins the packet's location only visits the `c2` rules that
/// could possibly match it. For the SDX this is §4.3.1's "only compose
/// participants that exchange traffic" — a sender rule targeting virtual
/// port B composes with participant B's rules only. Semantics are identical
/// to the unindexed version ([`sequential_compose_naive`]), which is kept
/// for the ablation benchmarks.
pub fn sequential_compose(c1: &Classifier, c2: &Classifier) -> Classifier {
    sequential_compose_traced(c1, c2).0
}

/// [`sequential_compose`] plus the optimizer's audit trail: which rules of
/// the raw composition product were eliminated, and why. Callers threading
/// compile statistics (or diagnostics) use this form.
pub fn sequential_compose_traced(c1: &Classifier, c2: &Classifier) -> (Classifier, Vec<Elision>) {
    let index = PortIndex::build(c2);
    sequential_compose_inner(c1, c2, Some(&index))
}

/// Unpruned sequential composition: every `c1` rule is pushed through every
/// `c2` rule. Same result as [`sequential_compose`], kept to measure the
/// cost of composing participants that never exchange traffic.
pub fn sequential_compose_naive(c1: &Classifier, c2: &Classifier) -> Classifier {
    sequential_compose_inner(c1, c2, None).0
}

fn sequential_compose_inner(
    c1: &Classifier,
    c2: &Classifier,
    index: Option<&PortIndex>,
) -> (Classifier, Vec<Elision>) {
    let parts: Vec<Vec<Rule>> = c1
        .rules()
        .iter()
        .map(|r1| compose_one(r1, c2, index))
        .collect();
    let optimized = Classifier::concat(parts).optimize();
    (optimized.classifier, optimized.eliminated)
}

/// [`sequential_compose_traced`] fanned out over a fork-join pool: each `c1`
/// rule's push-through is independent, so the rules are mapped in parallel
/// and their parts concatenated in priority order. The result is identical
/// to the sequential form for any thread count (the schedule never reaches
/// the output: parts are keyed by rule index and the final optimize pass is
/// order-preserving).
pub fn sequential_compose_traced_par(
    c1: &Classifier,
    c2: &Classifier,
    threads: usize,
) -> (Classifier, Vec<Elision>) {
    if crossbeam::pool::num_threads(threads.max(1)) <= 1 || c1.len() < 32 {
        return sequential_compose_traced(c1, c2);
    }
    let index = PortIndex::build(c2);
    let rules: Vec<&Rule> = c1.rules().iter().collect();
    let parts =
        crossbeam::pool::parallel_map(threads, rules, |r1| compose_one(r1, c2, Some(&index)));
    let optimized = Classifier::concat(parts).optimize();
    (optimized.classifier, optimized.eliminated)
}

/// The composition contribution of a single `c1` rule: its region pushed
/// through `c2` (see [`sequential_compose`]).
fn compose_one(r1: &Rule, c2: &Classifier, index: Option<&PortIndex>) -> Vec<Rule> {
    if r1.is_drop() {
        vec![Rule::drop(r1.match_.clone())]
    } else if r1.actions.len() == 1 {
        push_through(&r1.match_, &r1.actions[0], c2, index)
    } else {
        let mut acc: Option<Classifier> = None;
        for a in &r1.actions {
            let pushed = Classifier::new(push_through(&r1.match_, a, c2, index));
            acc = Some(match acc {
                None => pushed,
                Some(prev) => parallel_compose(&prev, &pushed),
            });
        }
        // Restrict the merged classifier (whose completion introduced a
        // wildcard catch-all) back to this rule's region so it cannot
        // capture packets belonging to later rules.
        acc.expect("non-drop rule has at least one action")
            .rules()
            .iter()
            .filter_map(|r| {
                r.match_.intersect(&r1.match_).map(|m| Rule {
                    match_: m,
                    actions: r.actions.clone(),
                })
            })
            .collect()
    }
}

/// Index of a classifier's rules by their exact `Port` constraint.
struct PortIndex {
    by_port: std::collections::BTreeMap<u64, Vec<usize>>,
    unconstrained: Vec<usize>,
}

impl PortIndex {
    fn build(c: &Classifier) -> Self {
        let mut by_port: std::collections::BTreeMap<u64, Vec<usize>> =
            std::collections::BTreeMap::new();
        let mut unconstrained = Vec::new();
        for (i, rule) in c.rules().iter().enumerate() {
            match rule.match_.get(crate::Field::Port) {
                Some(crate::Pattern::Exact(v)) => by_port.entry(*v).or_default().push(i),
                _ => unconstrained.push(i),
            }
        }
        PortIndex {
            by_port,
            unconstrained,
        }
    }

    /// Indices of rules that could match a packet whose `Port` the action
    /// pins to `port`, in priority order.
    fn candidates(&self, port: u64) -> Vec<usize> {
        let empty = Vec::new();
        let a = self.by_port.get(&port).unwrap_or(&empty);
        // Merge two ascending index lists.
        let mut out = Vec::with_capacity(a.len() + self.unconstrained.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() || j < self.unconstrained.len() {
            let next_a = a.get(i).copied().unwrap_or(usize::MAX);
            let next_b = self.unconstrained.get(j).copied().unwrap_or(usize::MAX);
            if next_a < next_b {
                out.push(next_a);
                i += 1;
            } else {
                out.push(next_b);
                j += 1;
            }
        }
        out
    }
}

/// Push a single action through `c2`, scoped to packets matching `m1`.
///
/// Produces, in `c2`'s priority order, one rule per compatible `c2` rule;
/// together they cover all of `m1`'s region (because `c2` is complete).
fn push_through(m1: &Match, a: &Action, c2: &Classifier, index: Option<&PortIndex>) -> Vec<Rule> {
    let rules = c2.rules();
    let pruned: Option<Vec<usize>> = match (index, a.get(crate::Field::Port)) {
        (Some(idx), Some(port)) => Some(idx.candidates(port)),
        _ => None,
    };
    let mut out = Vec::new();
    let mut push_one = |r2: &Rule| {
        let mut m = m1.clone();
        for (f, pat) in r2.match_.iter() {
            match a.get(*f) {
                // The action fixes this field: the constraint is decided now.
                Some(v) => {
                    if !pat.matches(v) {
                        return;
                    }
                }
                // The field passes through: constrain the original packet.
                None => match m.and(*f, *pat) {
                    Some(narrowed) => m = narrowed,
                    None => return,
                },
            }
        }
        let actions = r2.actions.iter().map(|b| a.then(b)).collect();
        out.push(Rule { match_: m, actions });
    };
    match pruned {
        Some(indices) => {
            for i in indices {
                push_one(&rules[i]);
            }
        }
        None => {
            for r2 in rules {
                push_one(r2);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Field, Packet};
    use std::net::Ipv4Addr;

    fn pkt(port: u32, dst_port: u16) -> Packet {
        Packet::udp(
            port,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(20, 0, 0, 1),
            5000,
            dst_port,
        )
    }

    /// Check compiler correctness on a sample of packets.
    fn check(policy: &Policy, packets: &[Packet]) {
        let c = policy.compile();
        for k in packets {
            assert_eq!(
                c.evaluate(k),
                policy.eval(k),
                "policy {policy} vs classifier\n{c} on {k}"
            );
        }
    }

    fn sample_packets() -> Vec<Packet> {
        let mut v = Vec::new();
        for port in [1u32, 2, 101] {
            for dst_port in [80u16, 443, 22] {
                v.push(pkt(port, dst_port));
            }
        }
        v.push(Packet::new()); // empty packet exercises missing-field paths
        v
    }

    #[test]
    fn compile_constants() {
        check(&Policy::id(), &sample_packets());
        check(&Policy::drop(), &sample_packets());
    }

    #[test]
    fn compile_filter_and_mod() {
        check(
            &Policy::Filter(Predicate::test(Field::DstPort, 80u16)),
            &sample_packets(),
        );
        check(&Policy::modify(Field::DstPort, 8080u16), &sample_packets());
        check(&Policy::fwd(42), &sample_packets());
    }

    #[test]
    fn compile_paper_outbound_policy() {
        let policy = (Predicate::test(Field::DstPort, 80u16) >> Policy::fwd(101))
            + (Predicate::test(Field::DstPort, 443u16) >> Policy::fwd(102));
        check(&policy, &sample_packets());
    }

    #[test]
    fn compile_sequential_mod_then_filter() {
        // A modification that makes a later filter pass.
        let p = Policy::modify(Field::DstPort, 443u16)
            >> Policy::Filter(Predicate::test(Field::DstPort, 443u16));
        check(&p, &sample_packets());
        // ...and one that makes it fail.
        let q = Policy::modify(Field::DstPort, 22u16)
            >> Policy::Filter(Predicate::test(Field::DstPort, 443u16));
        check(&q, &sample_packets());
    }

    #[test]
    fn compile_if_then_else() {
        let p = Policy::if_then_else(
            Predicate::test(Field::DstPort, 80u16),
            Policy::fwd(1),
            Policy::fwd(2),
        );
        check(&p, &sample_packets());
    }

    #[test]
    fn compile_negation() {
        let p = Policy::Filter(Predicate::test(Field::DstPort, 80u16).negate());
        check(&p, &sample_packets());
        let q = Policy::Filter(
            (Predicate::test(Field::Port, 1u32) & Predicate::test(Field::DstPort, 80u16)).negate(),
        );
        check(&q, &sample_packets());
    }

    #[test]
    fn compile_in_set_linear_rules() {
        let pred = Predicate::in_set(Field::DstPort, [80u64, 443, 8080]);
        let c = compile_predicate(&pred);
        // One rule per member plus the catch-all drop: no quadratic blowup.
        assert_eq!(c.len(), 4);
        check(&Policy::Filter(pred), &sample_packets());
    }

    #[test]
    fn compile_in_prefixes_linear_rules() {
        let prefixes: sdx_ip::PrefixSet = ["10.0.0.0/8", "20.0.0.0/8", "30.0.0.0/8"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let pred = Predicate::in_prefixes(Field::DstIp, prefixes);
        let c = compile_predicate(&pred);
        assert_eq!(c.len(), 4);
        check(&Policy::Filter(pred), &sample_packets());
    }

    #[test]
    fn compile_multicast_then_policy() {
        let p = (Policy::fwd(1) + Policy::fwd(2))
            >> Policy::if_then_else(
                Predicate::test(Field::Port, 1u32),
                Policy::modify(Field::DstPort, 53u16),
                Policy::id(),
            );
        check(&p, &sample_packets());
    }

    #[test]
    fn compile_multicast_with_drop_branch() {
        // One copy survives a later filter, the other does not.
        let p =
            (Policy::fwd(1) + Policy::fwd(2)) >> Policy::Filter(Predicate::test(Field::Port, 1u32));
        check(&p, &sample_packets());
    }

    #[test]
    fn compile_sdx_style_composition() {
        // Miniature of the paper's SDX = (PA + PB) >> (PA + PB) composition:
        // A's outbound forwards web traffic to B's virtual port (101); B's
        // inbound splits on source IP halves to its physical ports (2, 3).
        let pa = Predicate::test(Field::Port, 1u32) & Predicate::test(Field::DstPort, 80u16);
        let pa = pa >> Policy::fwd(101);
        let pb_lo = Predicate::test(Field::Port, 101u32)
            & Predicate::test_prefix(Field::SrcIp, "0.0.0.0/1".parse().unwrap());
        let pb_hi = Predicate::test(Field::Port, 101u32)
            & Predicate::test_prefix(Field::SrcIp, "128.0.0.0/1".parse().unwrap());
        let pb = (pb_lo >> Policy::fwd(2)) + (pb_hi >> Policy::fwd(3));
        let sdx = (pa.clone() + pb.clone()) >> (pa + pb);

        let c = sdx.compile();
        // Web packet from A's physical port with a low source address lands
        // on B's top port.
        let low = pkt(1, 80);
        let out = c.evaluate(&low);
        assert_eq!(out.len(), 1);
        assert_eq!(out.iter().next().unwrap().port(), Some(2));
        // High source addresses land on B's bottom port.
        let high = Packet::udp(
            1,
            Ipv4Addr::new(200, 0, 0, 1),
            Ipv4Addr::new(20, 0, 0, 1),
            5000,
            80,
        );
        assert_eq!(c.evaluate(&high).iter().next().unwrap().port(), Some(3));
        // Non-web traffic is dropped by this (default-free) composition.
        assert!(c.evaluate(&pkt(1, 22)).is_empty());
        check(&sdx, &sample_packets());
    }

    #[test]
    fn optimize_is_applied_and_safe() {
        let p = (Predicate::test(Field::DstPort, 80u16) >> Policy::fwd(1))
            + (Predicate::test(Field::DstPort, 80u16) >> Policy::fwd(1));
        let c = p.compile();
        check(&p, &sample_packets());
        // The duplicate branch must not duplicate actions.
        let out = c.evaluate(&pkt(1, 80));
        assert_eq!(out.len(), 1);
    }
}
