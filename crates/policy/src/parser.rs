//! A text syntax for policies, matching the paper's notation:
//!
//! ```text
//! (match(dstport=80) >> fwd(101)) + (match(dstport=443) >> fwd(102))
//! match(srcip=0.0.0.0/1) >> fwd(2)
//! match(dstip=74.125.1.1) >> mod(dstip=74.125.224.161)
//! if_(match(port=1), fwd(2), drop)
//! match(dstport in {80, 443}) >> fwd(101)
//! ```
//!
//! Grammar (precedence low→high: `+`, `>>`, atoms):
//!
//! ```text
//! policy   := seq ( '+' seq )*
//! seq      := atom ( '>>' atom )*
//! atom     := '(' policy ')' | 'drop' | 'id'
//!           | 'fwd' '(' NUM ')'
//!           | 'mod' '(' FIELD '=' VALUE ')'
//!           | 'if_' '(' pred ',' policy ',' policy ')'
//!           | pred
//! pred     := orpred
//! orpred   := andpred ( '||' andpred )*
//! andpred  := notpred ( '&&' notpred )*
//! notpred  := '!' notpred | '(' pred ')' | 'true' | 'false' | test
//! test     := 'match' '(' FIELD ('=' VALUE | 'in' '{' VALUE (',' VALUE)* '}') ')'
//! ```
//!
//! Values are integers, dotted-quad IPs, CIDR prefixes (IP fields), or
//! colon-hex MACs (MAC fields).

use std::net::Ipv4Addr;
use std::str::FromStr;

use sdx_ip::{MacAddr, Prefix, PrefixSet};

use crate::{Field, Pattern, Policy, Predicate};

/// A parse failure with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a policy expression.
pub fn parse_policy(input: &str) -> Result<Policy, ParseError> {
    let mut p = Parser::new(input);
    let policy = p.policy()?;
    p.expect_eof()?;
    Ok(policy)
}

/// Parse a predicate expression.
pub fn parse_predicate(input: &str) -> Result<Predicate, ParseError> {
    let mut p = Parser::new(input);
    let pred = p.pred()?;
    p.expect_eof()?;
    Ok(pred)
}

impl FromStr for Policy {
    type Err = ParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse_policy(s)
    }
}

impl FromStr for Predicate {
    type Err = ParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse_predicate(s)
    }
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { input, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), ParseError> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.error(format!("expected {token:?}")))
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        self.skip_ws();
        if self.pos == self.input.len() {
            Ok(())
        } else {
            Err(self.error("trailing input"))
        }
    }

    /// A run of identifier characters.
    fn word(&mut self) -> &'a str {
        self.skip_ws();
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|(_, c)| !(c.is_ascii_alphanumeric() || *c == '_'))
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        let w = &rest[..end];
        self.pos += end;
        w
    }

    /// A run of value characters (digits, dots, slashes, colons, hex).
    fn value_token(&mut self) -> &'a str {
        self.skip_ws();
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|(_, c)| !(c.is_ascii_hexdigit() || matches!(c, '.' | '/' | ':')))
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        let v = &rest[..end];
        self.pos += end;
        v
    }

    fn peek_word(&mut self) -> &'a str {
        let save = self.pos;
        let w = self.word();
        self.pos = save;
        w
    }

    // policy := seq ('+' seq)*
    fn policy(&mut self) -> Result<Policy, ParseError> {
        let mut branches = vec![self.seq()?];
        while self.eat("+") {
            branches.push(self.seq()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("one branch")
        } else {
            Policy::parallel(branches)
        })
    }

    // seq := atom ('>>' atom)*
    fn seq(&mut self) -> Result<Policy, ParseError> {
        let mut stages = vec![self.atom()?];
        while self.eat(">>") {
            stages.push(self.atom()?);
        }
        Ok(if stages.len() == 1 {
            stages.pop().expect("one stage")
        } else {
            Policy::sequential(stages)
        })
    }

    fn atom(&mut self) -> Result<Policy, ParseError> {
        self.skip_ws();
        // A parenthesized policy may also be a parenthesized predicate —
        // predicates are policies (filters), so `policy()` handles both.
        if self.rest().starts_with('(') && !self.starts_predicate() {
            self.expect("(")?;
            let inner = self.policy()?;
            self.expect(")")?;
            return Ok(inner);
        }
        match self.peek_word() {
            "drop" => {
                self.word();
                Ok(Policy::drop())
            }
            "id" => {
                self.word();
                Ok(Policy::id())
            }
            "fwd" => {
                self.word();
                self.expect("(")?;
                let port: u32 = self
                    .value_token()
                    .parse()
                    .map_err(|_| self.error("fwd() needs a port number"))?;
                self.expect(")")?;
                Ok(Policy::fwd(port))
            }
            "mod" => {
                self.word();
                self.expect("(")?;
                let field = self.field()?;
                self.expect("=")?;
                let value = self.field_value(field)?;
                self.expect(")")?;
                Ok(Policy::Mod(field, value))
            }
            "if_" => {
                self.word();
                self.expect("(")?;
                let pred = self.pred()?;
                self.expect(",")?;
                let then = self.policy()?;
                self.expect(",")?;
                let otherwise = self.policy()?;
                self.expect(")")?;
                Ok(Policy::if_then_else(pred, then, otherwise))
            }
            _ => Ok(Policy::Filter(self.pred()?)),
        }
    }

    /// Does the input at a '(' start a predicate (vs a policy group)? It
    /// does if, after matching parens, the next operator is boolean.
    fn starts_predicate(&mut self) -> bool {
        // Heuristic: find the matching ')' and look at what follows.
        let rest = self.rest();
        let mut depth = 0usize;
        for (i, c) in rest.char_indices() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        let after = rest[i + 1..].trim_start();
                        return after.starts_with("&&") || after.starts_with("||");
                    }
                }
                _ => {}
            }
        }
        false
    }

    // pred := andpred ('||' andpred)*
    fn pred(&mut self) -> Result<Predicate, ParseError> {
        let mut acc = self.and_pred()?;
        while self.eat("||") {
            acc = acc.or(self.and_pred()?);
        }
        Ok(acc)
    }

    fn and_pred(&mut self) -> Result<Predicate, ParseError> {
        let mut acc = self.not_pred()?;
        while self.eat("&&") {
            acc = acc.and(self.not_pred()?);
        }
        Ok(acc)
    }

    fn not_pred(&mut self) -> Result<Predicate, ParseError> {
        if self.eat("!") {
            return Ok(self.not_pred()?.negate());
        }
        self.skip_ws();
        if self.rest().starts_with('(') && self.peek_word().is_empty() {
            self.expect("(")?;
            let inner = self.pred()?;
            self.expect(")")?;
            return Ok(inner);
        }
        match self.peek_word() {
            "true" => {
                self.word();
                Ok(Predicate::True)
            }
            "false" => {
                self.word();
                Ok(Predicate::False)
            }
            "match" => self.match_test(),
            other => Err(self.error(format!("expected a predicate, found {other:?}"))),
        }
    }

    fn match_test(&mut self) -> Result<Predicate, ParseError> {
        self.expect("match")?;
        self.expect("(")?;
        let field = self.field()?;
        self.skip_ws();
        let pred = if self.eat("=") {
            let raw = self.value_token();
            self.parse_pattern(field, raw)?
        } else if self.peek_word() == "in" {
            self.word();
            self.expect("{")?;
            let mut members: Vec<&str> = vec![self.value_token()];
            while self.eat(",") {
                members.push(self.value_token());
            }
            self.expect("}")?;
            self.set_predicate(field, &members)?
        } else {
            return Err(self.error("expected '=' or 'in' in match()"));
        };
        self.expect(")")?;
        Ok(pred)
    }

    fn field(&mut self) -> Result<Field, ParseError> {
        let name = self.word();
        Field::ALL
            .iter()
            .find(|f| f.name() == name)
            .copied()
            .ok_or_else(|| self.error(format!("unknown field {name:?}")))
    }

    fn parse_pattern(&mut self, field: Field, raw: &str) -> Result<Predicate, ParseError> {
        if field.is_ip() && raw.contains('/') {
            let prefix: Prefix = raw
                .parse()
                .map_err(|e| self.error(format!("bad prefix {raw:?}: {e}")))?;
            Ok(Predicate::Test(field, Pattern::from(prefix)))
        } else {
            Ok(Predicate::Test(
                field,
                Pattern::Exact(self.scalar(field, raw)?),
            ))
        }
    }

    fn set_predicate(&mut self, field: Field, members: &[&str]) -> Result<Predicate, ParseError> {
        if field.is_ip() && members.iter().any(|m| m.contains('/')) {
            let mut set = PrefixSet::new();
            for m in members {
                set.insert(
                    m.parse()
                        .map_err(|e| self.error(format!("bad prefix {m:?}: {e}")))?,
                );
            }
            Ok(Predicate::in_prefixes(field, set))
        } else {
            let values: Result<Vec<u64>, ParseError> =
                members.iter().map(|m| self.scalar(field, m)).collect();
            Ok(Predicate::in_set(field, values?))
        }
    }

    fn scalar(&mut self, field: Field, raw: &str) -> Result<u64, ParseError> {
        if field.is_ip() {
            let ip: Ipv4Addr = raw
                .parse()
                .map_err(|_| self.error(format!("bad IP {raw:?}")))?;
            Ok(u32::from(ip) as u64)
        } else if field.is_mac() {
            let mac: MacAddr = raw
                .parse()
                .map_err(|_| self.error(format!("bad MAC {raw:?}")))?;
            Ok(mac.to_u64())
        } else {
            raw.parse()
                .map_err(|_| self.error(format!("bad value {raw:?}")))
        }
    }

    fn field_value(&mut self, field: Field) -> Result<u64, ParseError> {
        let raw = self.value_token();
        self.scalar(field, raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Packet;

    fn pkt(dport: u16) -> Packet {
        Packet::udp(
            1,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(20, 0, 0, 1),
            999,
            dport,
        )
    }

    #[test]
    fn paper_application_specific_peering_parses() {
        let p: Policy = "(match(dstport=80) >> fwd(101)) + (match(dstport=443) >> fwd(102))"
            .parse()
            .unwrap();
        assert_eq!(p.eval(&pkt(80)).iter().next().unwrap().port(), Some(101));
        assert_eq!(p.eval(&pkt(443)).iter().next().unwrap().port(), Some(102));
        assert!(p.eval(&pkt(22)).is_empty());
    }

    #[test]
    fn precedence_seq_binds_tighter_than_parallel() {
        let p: Policy = "match(dstport=80) >> fwd(1) + fwd(2)".parse().unwrap();
        // = (match >> fwd(1)) + fwd(2): port-22 traffic still reaches 2.
        assert_eq!(p.eval(&pkt(22)).len(), 1);
        assert_eq!(p.eval(&pkt(80)).len(), 2);
    }

    #[test]
    fn load_balancer_mod_parses() {
        let p: Policy = "match(dstip=20.0.0.1) >> mod(dstip=74.125.224.161) >> fwd(9)"
            .parse()
            .unwrap();
        let out = p.eval(&pkt(80));
        assert_eq!(
            out.iter().next().unwrap().dst_ip().unwrap().to_string(),
            "74.125.224.161"
        );
    }

    #[test]
    fn prefix_and_set_syntax() {
        let p: Predicate = "match(srcip=10.0.0.0/8)".parse().unwrap();
        assert!(p.eval(&pkt(80)));
        let p: Predicate = "match(dstport in {80, 443})".parse().unwrap();
        assert!(p.eval(&pkt(443)));
        assert!(!p.eval(&pkt(22)));
        let p: Predicate = "match(dstip in {20.0.0.0/8, 30.0.0.0/8})".parse().unwrap();
        assert!(p.eval(&pkt(80)));
    }

    #[test]
    fn boolean_operators_and_negation() {
        let p: Predicate = "match(dstport=80) && !match(srcip=10.0.0.0/8)"
            .parse()
            .unwrap();
        assert!(!p.eval(&pkt(80)));
        let p: Predicate = "(match(dstport=80) || match(dstport=443)) && true"
            .parse()
            .unwrap();
        assert!(p.eval(&pkt(443)));
    }

    #[test]
    fn if_and_constants() {
        let p: Policy = "if_(match(dstport=80), fwd(1), drop)".parse().unwrap();
        assert_eq!(p.eval(&pkt(80)).len(), 1);
        assert!(p.eval(&pkt(22)).is_empty());
        assert_eq!("id".parse::<Policy>().unwrap(), Policy::id());
        assert_eq!("drop".parse::<Policy>().unwrap(), Policy::drop());
    }

    #[test]
    fn mac_values_parse() {
        let p: Predicate = "match(dstmac=0a:53:00:00:00:01)".parse().unwrap();
        let k = Packet::new().with(Field::DstMac, MacAddr::vmac(1));
        assert!(p.eval(&k));
    }

    #[test]
    fn errors_have_positions() {
        let err = "match(dstport=80) >> nonsense(1)"
            .parse::<Policy>()
            .unwrap_err();
        assert!(err.at >= 21, "{err}");
        assert!("match(bogus=1)".parse::<Policy>().is_err());
        assert!("fwd(abc)".parse::<Policy>().is_err());
        assert!("match(dstport=80) extra".parse::<Policy>().is_err());
        assert!("match(dstport in {})".parse::<Policy>().is_err());
    }

    #[test]
    fn whitespace_insensitive() {
        let a: Policy = "match(dstport=80)>>fwd(1)".parse().unwrap();
        let b: Policy = "  match( dstport = 80 )  >>  fwd( 1 )  ".parse().unwrap();
        assert_eq!(a, b);
    }
}
