//! Hash-consing of predicates — an arena plus structural-hash table that
//! gives every distinct [`Predicate`] (and [`Pattern`]) node a small integer
//! id, so the compiler's hot loops compare and cache by id instead of
//! deep-comparing (or deep-cloning) trees.
//!
//! The SDX compiler builds near-identical predicates over and over: every
//! participant's clauses conjoin the same application match with a
//! per-participant port filter, and recompilations rebuild the same trees
//! from scratch. Interning collapses those into a DAG — equal subtrees share
//! one node — and the pool memoizes predicate→classifier compilation per
//! node, so a subtree shared by a hundred clauses is compiled exactly once.
//!
//! Thread safety: [`SharedPredicatePool`] wraps the pool in a mutex for the
//! parallel compile pipeline. Interning and memo lookups are cheap relative
//! to the composition work that dominates compilation, and holding the lock
//! across a miss guarantees every distinct predicate is compiled exactly
//! once — which also makes the pool's hit/miss counters deterministic for
//! any thread count (a property the compiler's stats tests rely on).

use std::collections::{BTreeSet, HashMap};
use std::hash::Hash;
use std::sync::{Arc, Mutex};

use sdx_ip::PrefixSet;

use crate::compile::{negate_classifier, product_bool};
use crate::{compile_predicate, Classifier, Field, Pattern, Predicate};

/// A generic hash-consing arena: `intern` maps equal values to one stable
/// id, `get` resolves the id back to the canonical value.
#[derive(Debug)]
pub struct Interner<T> {
    arena: Vec<T>,
    index: HashMap<T, u32>,
}

impl<T> Default for Interner<T> {
    fn default() -> Self {
        Interner {
            arena: Vec::new(),
            index: HashMap::new(),
        }
    }
}

impl<T: Clone + Eq + Hash> Interner<T> {
    /// An empty arena.
    pub fn new() -> Self {
        Interner {
            arena: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// The id of `value`, allocating a slot on first sight.
    pub fn intern(&mut self, value: T) -> u32 {
        if let Some(&id) = self.index.get(&value) {
            return id;
        }
        let id = u32::try_from(self.arena.len()).expect("interner overflow");
        self.arena.push(value.clone());
        self.index.insert(value, id);
        id
    }

    /// The canonical value for an id issued by this arena.
    pub fn get(&self, id: u32) -> &T {
        &self.arena[id as usize]
    }

    /// Number of distinct values interned.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }
}

/// Id of an interned predicate node. Equal ids ⇔ structurally equal
/// predicates (within one pool).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredId(u32);

/// One hash-consed predicate node: children are ids, leaf payloads are ids
/// into the side arenas, so node equality is O(1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Node {
    True,
    False,
    Test(Field, u32),
    InSet(Field, u32),
    InPrefixes(Field, u32),
    And(PredId, PredId),
    Or(PredId, PredId),
    Not(PredId),
}

/// Counters describing a pool's effectiveness, surfaced through the
/// compiler's statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Distinct predicate nodes in the arena (DAG size).
    pub nodes: usize,
    /// Distinct leaf patterns interned.
    pub patterns: usize,
    /// Top-level classifier requests answered from the memo table.
    pub compile_hits: usize,
    /// Top-level classifier requests that compiled fresh.
    pub compile_misses: usize,
}

/// The predicate pool: hash-consed nodes plus a per-node memo table of
/// compiled classifiers.
#[derive(Debug, Default)]
pub struct PredicatePool {
    patterns: Interner<Pattern>,
    value_sets: Interner<BTreeSet<u64>>,
    prefix_sets: Interner<PrefixSet>,
    nodes: Interner<Node>,
    compiled: HashMap<PredId, Arc<Classifier>>,
    hits: usize,
    misses: usize,
}

impl PredicatePool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a predicate tree, returning the id of its root node. Equal
    /// subtrees (across all predicates ever interned here) share one node.
    pub fn intern(&mut self, pred: &Predicate) -> PredId {
        let node = match pred {
            Predicate::True => Node::True,
            Predicate::False => Node::False,
            Predicate::Test(f, pat) => Node::Test(*f, self.patterns.intern(*pat)),
            Predicate::InSet(f, set) => Node::InSet(*f, self.value_sets.intern(set.clone())),
            Predicate::InPrefixes(f, set) => {
                Node::InPrefixes(*f, self.prefix_sets.intern(set.clone()))
            }
            Predicate::And(a, b) => {
                let (a, b) = (self.intern(a), self.intern(b));
                Node::And(a, b)
            }
            Predicate::Or(a, b) => {
                let (a, b) = (self.intern(a), self.intern(b));
                Node::Or(a, b)
            }
            Predicate::Not(p) => {
                let p = self.intern(p);
                Node::Not(p)
            }
        };
        PredId(self.nodes.intern(node))
    }

    /// Rebuild the predicate tree for an id (the DAG unfolds back into the
    /// original tree shape).
    pub fn resolve(&self, id: PredId) -> Predicate {
        match self.nodes.get(id.0) {
            Node::True => Predicate::True,
            Node::False => Predicate::False,
            Node::Test(f, pat) => Predicate::Test(*f, *self.patterns.get(*pat)),
            Node::InSet(f, sid) => Predicate::InSet(*f, self.value_sets.get(*sid).clone()),
            Node::InPrefixes(f, sid) => {
                Predicate::InPrefixes(*f, self.prefix_sets.get(*sid).clone())
            }
            Node::And(a, b) => {
                Predicate::And(Box::new(self.resolve(*a)), Box::new(self.resolve(*b)))
            }
            Node::Or(a, b) => Predicate::Or(Box::new(self.resolve(*a)), Box::new(self.resolve(*b))),
            Node::Not(p) => Predicate::Not(Box::new(self.resolve(*p))),
        }
    }

    /// The compiled classifier for a node, memoized per node id: shared
    /// subtrees (a port filter appearing in every clause of a participant,
    /// an application match shared across participants) compile once, and
    /// conjunctions combine their children's *cached* classifiers.
    pub fn classifier(&mut self, id: PredId) -> Arc<Classifier> {
        if let Some(c) = self.compiled.get(&id) {
            return Arc::clone(c);
        }
        let compiled = match self.nodes.get(id.0).clone() {
            Node::And(a, b) => {
                let (ca, cb) = (self.classifier(a), self.classifier(b));
                product_bool(&ca, &cb, |x, y| x && y)
            }
            Node::Or(a, b) => {
                let (ca, cb) = (self.classifier(a), self.classifier(b));
                product_bool(&ca, &cb, |x, y| x || y)
            }
            Node::Not(p) => {
                let cp = self.classifier(p);
                negate_classifier(&cp)
            }
            // Leaves: delegate to the tree compiler on the rebuilt leaf
            // (cheap — no recursion below a leaf).
            _ => compile_predicate(&self.resolve(id)),
        };
        let arc = Arc::new(compiled);
        self.compiled.insert(id, Arc::clone(&arc));
        arc
    }

    /// Intern + compile in one step, with hit/miss accounting. This is the
    /// compiler's entry point for clause predicates.
    pub fn compile(&mut self, pred: &Predicate) -> Arc<Classifier> {
        let id = self.intern(pred);
        if let Some(c) = self.compiled.get(&id) {
            self.hits += 1;
            return Arc::clone(c);
        }
        self.misses += 1;
        self.classifier(id)
    }

    /// Effectiveness counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            nodes: self.nodes.len(),
            patterns: self.patterns.len(),
            compile_hits: self.hits,
            compile_misses: self.misses,
        }
    }
}

/// A [`PredicatePool`] shareable across the fork-join compile pipeline.
#[derive(Debug, Default)]
pub struct SharedPredicatePool {
    inner: Mutex<PredicatePool>,
}

impl SharedPredicatePool {
    /// An empty shared pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern + compile a clause predicate (see [`PredicatePool::compile`]).
    /// Holding the lock across a miss means each distinct predicate is
    /// compiled exactly once, for any thread count.
    pub fn compile(&self, pred: &Predicate) -> Arc<Classifier> {
        self.inner.lock().unwrap().compile(pred)
    }

    /// Effectiveness counters (deterministic across thread counts).
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().unwrap().stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Packet;
    use std::net::Ipv4Addr;

    fn preds() -> Vec<Predicate> {
        let web = Predicate::test(Field::DstPort, 80u16);
        let ports = Predicate::in_set(Field::Port, [1u64, 2, 3]);
        let prefixes: PrefixSet = ["10.0.0.0/8", "20.0.0.0/16"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        vec![
            Predicate::True,
            Predicate::False,
            web.clone(),
            ports.clone(),
            Predicate::in_prefixes(Field::DstIp, prefixes),
            web.clone().and(ports.clone()),
            web.clone().or(ports).negate(),
            web.and(Predicate::test(Field::SrcPort, 9u16)),
        ]
    }

    #[test]
    fn intern_is_idempotent_and_shares_subtrees() {
        let mut pool = PredicatePool::new();
        let a = Predicate::test(Field::DstPort, 80u16);
        let b = Predicate::test(Field::Port, 1u32);
        let id1 = pool.intern(&a.clone().and(b.clone()));
        let nodes_before = pool.stats().nodes;
        // Re-interning the same tree allocates nothing.
        assert_eq!(pool.intern(&a.clone().and(b.clone())), id1);
        assert_eq!(pool.stats().nodes, nodes_before);
        // A different tree sharing subtrees only allocates the new spine.
        pool.intern(&a.and(b.negate()));
        assert_eq!(pool.stats().nodes, nodes_before + 2); // Not node + And node
    }

    #[test]
    fn resolve_round_trips() {
        let mut pool = PredicatePool::new();
        for p in preds() {
            let id = pool.intern(&p);
            assert_eq!(pool.resolve(id), p, "round trip of {p}");
        }
    }

    #[test]
    fn pooled_compile_matches_tree_compile() {
        let mut pool = PredicatePool::new();
        let packets: Vec<Packet> = vec![
            Packet::udp(
                1,
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(20, 0, 1, 2),
                5000,
                80,
            ),
            Packet::udp(
                9,
                Ipv4Addr::new(172, 16, 0, 1),
                Ipv4Addr::new(8, 8, 8, 8),
                5000,
                22,
            ),
            Packet::new(),
        ];
        for p in preds() {
            let pooled = pool.compile(&p);
            let tree = compile_predicate(&p);
            for pkt in &packets {
                assert_eq!(
                    pooled.evaluate(pkt),
                    tree.evaluate(pkt),
                    "pred {p} on {pkt}"
                );
            }
        }
    }

    #[test]
    fn compile_memoizes_per_node() {
        let mut pool = PredicatePool::new();
        let p = Predicate::test(Field::DstPort, 80u16).and(Predicate::test(Field::Port, 1u32));
        let first = pool.compile(&p);
        let second = pool.compile(&p);
        assert!(Arc::ptr_eq(&first, &second));
        let s = pool.stats();
        assert_eq!((s.compile_hits, s.compile_misses), (1, 1));
    }

    #[test]
    fn shared_pool_compiles_concurrently() {
        let pool = SharedPredicatePool::new();
        let p = Predicate::test(Field::DstPort, 80u16)
            .and(Predicate::in_set(Field::Port, [1u64, 2, 3, 4]));
        crossbeam::pool::scope(4, |s| {
            for _ in 0..16 {
                let pool = &pool;
                let p = &p;
                s.spawn(move || {
                    pool.compile(p);
                });
            }
        });
        let s = pool.stats();
        assert_eq!(s.compile_misses, 1);
        assert_eq!(s.compile_hits, 15);
    }
}
