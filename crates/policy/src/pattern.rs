use std::fmt;

use sdx_ip::Prefix;
use serde::{Deserialize, Serialize};

use crate::Field;

/// A pattern a single field is tested against: an exact value or (for IP
/// fields) a CIDR prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Pattern {
    /// The field must equal this raw value.
    Exact(u64),
    /// The field (an IPv4 address) must fall inside this prefix.
    Prefix(Prefix),
}

impl Pattern {
    /// Does a raw field value satisfy the pattern?
    pub fn matches(&self, value: u64) -> bool {
        match self {
            Pattern::Exact(v) => *v == value,
            Pattern::Prefix(p) => p.contains_addr((value as u32).into()),
        }
    }

    /// The set intersection of two patterns on the same field, or `None` if
    /// no value satisfies both.
    pub fn intersect(&self, other: &Pattern) -> Option<Pattern> {
        match (self, other) {
            (Pattern::Exact(a), Pattern::Exact(b)) => (a == b).then_some(*self),
            (Pattern::Exact(v), Pattern::Prefix(p)) | (Pattern::Prefix(p), Pattern::Exact(v)) => p
                .contains_addr((*v as u32).into())
                .then_some(Pattern::Exact(*v)),
            (Pattern::Prefix(a), Pattern::Prefix(b)) => a.intersect(b).map(Pattern::Prefix),
        }
    }

    /// Does every value satisfying `other` also satisfy `self`?
    pub fn subsumes(&self, other: &Pattern) -> bool {
        match (self, other) {
            (Pattern::Exact(a), Pattern::Exact(b)) => a == b,
            (Pattern::Exact(_), Pattern::Prefix(p)) => {
                // An exact value subsumes a prefix only if the prefix is a
                // single host that equals the value.
                p.len() == 32 && self.matches(p.bits() as u64)
            }
            (Pattern::Prefix(p), Pattern::Exact(v)) => p.contains_addr((*v as u32).into()),
            (Pattern::Prefix(a), Pattern::Prefix(b)) => a.contains(b),
        }
    }

    /// A prefix pattern normalized: a /32 prefix is the same set as an exact
    /// value, so canonicalize it for cheap equality.
    pub fn canonical(self) -> Pattern {
        match self {
            Pattern::Prefix(p) if p.len() == 32 => Pattern::Exact(p.bits() as u64),
            other => other,
        }
    }

    /// Render the pattern for a given field kind.
    pub fn render(&self, field: Field) -> String {
        match self {
            Pattern::Exact(v) => field.render(*v),
            Pattern::Prefix(p) => p.to_string(),
        }
    }
}

impl From<Prefix> for Pattern {
    fn from(p: Prefix) -> Self {
        Pattern::Prefix(p).canonical()
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pattern::Exact(v) => write!(f, "{v}"),
            Pattern::Prefix(p) => write!(f, "{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfx(s: &str) -> Pattern {
        Pattern::Prefix(s.parse().unwrap())
    }

    fn ip(s: &str) -> u64 {
        u32::from(s.parse::<std::net::Ipv4Addr>().unwrap()) as u64
    }

    #[test]
    fn exact_matching() {
        assert!(Pattern::Exact(80).matches(80));
        assert!(!Pattern::Exact(80).matches(443));
    }

    #[test]
    fn prefix_matching() {
        assert!(pfx("10.0.0.0/8").matches(ip("10.1.2.3")));
        assert!(!pfx("10.0.0.0/8").matches(ip("11.0.0.0")));
    }

    #[test]
    fn intersection_table() {
        assert_eq!(
            Pattern::Exact(1).intersect(&Pattern::Exact(1)),
            Some(Pattern::Exact(1))
        );
        assert_eq!(Pattern::Exact(1).intersect(&Pattern::Exact(2)), None);
        assert_eq!(
            Pattern::Exact(ip("10.0.0.1")).intersect(&pfx("10.0.0.0/8")),
            Some(Pattern::Exact(ip("10.0.0.1")))
        );
        assert_eq!(
            Pattern::Exact(ip("11.0.0.1")).intersect(&pfx("10.0.0.0/8")),
            None
        );
        assert_eq!(
            pfx("10.0.0.0/8").intersect(&pfx("10.1.0.0/16")),
            Some(pfx("10.1.0.0/16"))
        );
        assert_eq!(pfx("10.0.0.0/8").intersect(&pfx("11.0.0.0/8")), None);
    }

    #[test]
    fn subsumption() {
        assert!(pfx("10.0.0.0/8").subsumes(&pfx("10.1.0.0/16")));
        assert!(pfx("10.0.0.0/8").subsumes(&Pattern::Exact(ip("10.9.9.9"))));
        assert!(!pfx("10.1.0.0/16").subsumes(&pfx("10.0.0.0/8")));
        assert!(Pattern::Exact(5).subsumes(&Pattern::Exact(5)));
        assert!(!Pattern::Exact(5).subsumes(&Pattern::Exact(6)));
        assert!(Pattern::Exact(ip("10.0.0.1")).subsumes(&pfx("10.0.0.1/32")));
    }

    #[test]
    fn canonicalization_of_host_prefixes() {
        assert_eq!(
            pfx("10.0.0.1/32").canonical(),
            Pattern::Exact(ip("10.0.0.1"))
        );
        assert_eq!(pfx("10.0.0.0/8").canonical(), pfx("10.0.0.0/8"));
    }
}
