//! A Pyretic-style policy language and classifier compiler — the programming
//! abstraction the SDX offers its participants (§3 of the paper).
//!
//! Participants write *policies*: functions from located packets to sets of
//! located packets, built from `match` predicates, field modifications,
//! `fwd`, and the parallel (`+`) / sequential (`>>`) composition operators.
//! The compiler lowers a policy to a [`Classifier`] — a prioritized rule list
//! isomorphic to an OpenFlow flow table — with the invariant that classifier
//! evaluation agrees with the policy's denotational semantics on every
//! packet.
//!
//! ```
//! use sdx_policy::{fwd, match_, Field, Packet};
//! use std::net::Ipv4Addr;
//!
//! // AS A's outbound policy from Figure 1a of the paper:
//! let b = 101u32; // virtual port towards participant B
//! let c = 102u32; // virtual port towards participant C
//! let policy = (match_(Field::DstPort, 80u16) >> fwd(b))
//!     + (match_(Field::DstPort, 443u16) >> fwd(c));
//!
//! let classifier = policy.compile();
//! let web = Packet::tcp(1, Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(20, 0, 0, 1), 5555, 80);
//! let out = classifier.evaluate(&web);
//! assert_eq!(out.iter().next().unwrap().port(), Some(b));
//! ```

mod classifier;
mod compile;
mod cover;
mod field;
mod intern;
mod matcher;
mod packet;
mod parser;
mod pattern;
mod policy;
mod predicate;

pub use classifier::{Action, Classifier, Elision, ElisionReason, Optimized, Rule};
pub use compile::{
    compile_predicate, parallel_compose, sequential_compose, sequential_compose_naive,
    sequential_compose_traced, sequential_compose_traced_par,
};
pub use cover::{shadowed_rules, witness_outside, Region, ShadowedRule};
pub use field::{Field, Value};
pub use intern::{Interner, PoolStats, PredId, PredicatePool, SharedPredicatePool};
pub use matcher::{Match, MatchSignature, SigKind};
pub use packet::Packet;
pub use parser::{parse_policy, parse_predicate, ParseError};
pub use pattern::Pattern;
pub use policy::Policy;
pub use predicate::Predicate;

/// `match_(field, value)` — the paper's `match(field=value)` predicate.
pub fn match_(field: Field, value: impl Into<Value>) -> Predicate {
    Predicate::test(field, value)
}

/// `match_prefix(field, prefix)` — match an IP field against a CIDR prefix.
pub fn match_prefix(field: Field, prefix: sdx_ip::Prefix) -> Predicate {
    Predicate::test_prefix(field, prefix)
}

/// `fwd(port)` — forward to a (physical or virtual) port.
pub fn fwd(port: u32) -> Policy {
    Policy::fwd(port)
}

/// `modify(field, value)` — the paper's `mod(field=value)` action.
pub fn modify(field: Field, value: impl Into<Value>) -> Policy {
    Policy::modify(field, value)
}

/// `if_(pred, then, otherwise)` — Pyretic's conditional operator.
pub fn if_(pred: Predicate, then: Policy, otherwise: Policy) -> Policy {
    Policy::if_then_else(pred, then, otherwise)
}

/// `drop()` — the drop policy.
pub fn drop() -> Policy {
    Policy::drop()
}

/// `id()` — the identity (pass-through) policy.
pub fn id() -> Policy {
    Policy::id()
}
