use std::fmt;
use std::net::Ipv4Addr;

use sdx_ip::MacAddr;
use serde::{Deserialize, Serialize};

/// A packet header field the policy language can match on or modify.
///
/// `Port` is the packet's *location* in Pyretic's located-packet model: a
/// match on `Port` tests where the packet currently is (its ingress port, or
/// the virtual port a previous policy stage forwarded it to), and a
/// modification of `Port` moves the packet (i.e. `fwd(p)` is
/// `mod(Port = p)`). All other fields are ordinary header fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Field {
    /// Packet location (ingress port / forwarding destination).
    Port,
    /// Source MAC address.
    SrcMac,
    /// Destination MAC address (carries the VMAC tag in the SDX fabric).
    DstMac,
    /// Ethernet type (0x0800 IPv4, 0x0806 ARP, …).
    EthType,
    /// Source IPv4 address; supports prefix patterns.
    SrcIp,
    /// Destination IPv4 address; supports prefix patterns.
    DstIp,
    /// IP protocol number (6 TCP, 17 UDP, …).
    IpProto,
    /// Transport source port.
    SrcPort,
    /// Transport destination port.
    DstPort,
}

impl Field {
    /// All fields, in the order used for display and canonicalization.
    pub const ALL: [Field; 9] = [
        Field::Port,
        Field::SrcMac,
        Field::DstMac,
        Field::EthType,
        Field::SrcIp,
        Field::DstIp,
        Field::IpProto,
        Field::SrcPort,
        Field::DstPort,
    ];

    /// Does the field hold an IPv4 address (and hence admit prefix patterns)?
    pub fn is_ip(&self) -> bool {
        matches!(self, Field::SrcIp | Field::DstIp)
    }

    /// Does the field hold a MAC address?
    pub fn is_mac(&self) -> bool {
        matches!(self, Field::SrcMac | Field::DstMac)
    }

    /// Short lower-case name, matching the paper's `match(...)` notation.
    pub fn name(&self) -> &'static str {
        match self {
            Field::Port => "port",
            Field::SrcMac => "srcmac",
            Field::DstMac => "dstmac",
            Field::EthType => "ethtype",
            Field::SrcIp => "srcip",
            Field::DstIp => "dstip",
            Field::IpProto => "ipproto",
            Field::SrcPort => "srcport",
            Field::DstPort => "dstport",
        }
    }

    /// Render a raw field value the way a human wrote it (IP dotted quad,
    /// MAC colon-hex, integers otherwise).
    pub fn render(&self, raw: u64) -> String {
        if self.is_ip() {
            Ipv4Addr::from(raw as u32).to_string()
        } else if self.is_mac() {
            MacAddr::from_u64(raw).to_string()
        } else {
            raw.to_string()
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed field value that converts into the raw `u64` representation used
/// by matches and packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Value(pub u64);

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value(v as u64)
    }
}

impl From<u16> for Value {
    fn from(v: u16) -> Self {
        Value(v as u64)
    }
}

impl From<u8> for Value {
    fn from(v: u8) -> Self {
        Value(v as u64)
    }
}

impl From<Ipv4Addr> for Value {
    fn from(v: Ipv4Addr) -> Self {
        Value(u32::from(v) as u64)
    }
}

impl From<MacAddr> for Value {
    fn from(v: MacAddr) -> Self {
        Value(v.to_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let names: std::collections::BTreeSet<_> = Field::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), Field::ALL.len());
    }

    #[test]
    fn render_by_kind() {
        assert_eq!(
            Field::DstIp.render(u32::from(Ipv4Addr::new(10, 0, 0, 1)) as u64),
            "10.0.0.1"
        );
        assert_eq!(Field::DstMac.render(0x0200_0000_0001), "02:00:00:00:00:01");
        assert_eq!(Field::DstPort.render(80), "80");
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(80u16).0, 80);
        assert_eq!(Value::from(Ipv4Addr::new(1, 2, 3, 4)).0, 0x0102_0304);
        assert_eq!(Value::from(MacAddr::from_u64(7)).0, 7);
    }

    #[test]
    fn ip_and_mac_classification() {
        assert!(Field::SrcIp.is_ip() && Field::DstIp.is_ip());
        assert!(Field::SrcMac.is_mac() && Field::DstMac.is_mac());
        assert!(!Field::DstPort.is_ip() && !Field::DstPort.is_mac());
    }
}
